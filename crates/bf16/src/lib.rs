//! bfloat16 scalar support with TPU-faithful semantics.
//!
//! The TPU v3 MXU rounds its float32 inputs down to bfloat16 (1 sign bit,
//! 8 exponent bits, 7 mantissa bits) before multiplying, and accumulates in
//! float32. The paper's correctness study (Fig. 4) hinges on the claim that
//! running the whole Ising update — acceptance ratios and random numbers
//! included — in bfloat16 does not bias the simulation. To test that claim
//! in Rust we need a bit-faithful bfloat16: this crate provides [`Bf16`]
//! with round-to-nearest-even conversion from `f32` (the rounding TPUs and
//! XLA use), arithmetic that rounds after every operation (storage-precision
//! semantics), and the [`Scalar`] trait that lets every kernel in the
//! workspace be written once and instantiated at either precision.

mod scalar;

pub use scalar::Scalar;

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 16-bit brain floating point number: 1 sign, 8 exponent, 7 mantissa bits.
///
/// `Bf16` is a storage format: arithmetic is performed by widening to `f32`,
/// operating, and rounding the result back with round-to-nearest-even. This
/// matches how the TPU vector unit treats bfloat16 element-wise math and how
/// the MXU treats its inputs.
#[derive(Clone, Copy, Default)]
#[repr(transparent)]
pub struct Bf16(u16);

impl PartialEq for Bf16 {
    /// IEEE semantics: `-0.0 == +0.0`, `NaN != NaN`.
    #[inline]
    fn eq(&self, other: &Bf16) -> bool {
        self.to_f32() == other.to_f32()
    }
}

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0x0000);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);
    /// Negative one.
    pub const NEG_ONE: Bf16 = Bf16(0xBF80);
    /// Positive infinity.
    pub const INFINITY: Bf16 = Bf16(0x7F80);
    /// Negative infinity.
    pub const NEG_INFINITY: Bf16 = Bf16(0xFF80);
    /// A quiet NaN.
    pub const NAN: Bf16 = Bf16(0x7FC0);
    /// Smallest positive normal value (2^-126).
    pub const MIN_POSITIVE: Bf16 = Bf16(0x0080);
    /// Largest finite value (~3.39e38).
    pub const MAX: Bf16 = Bf16(0x7F7F);
    /// Machine epsilon: the difference between 1.0 and the next larger
    /// representable number, 2^-7.
    pub const EPSILON: Bf16 = Bf16(0x3C00);

    /// Convert from `f32` with round-to-nearest-even.
    ///
    /// This is the exact algorithm used by XLA's `ConvertElementType` to
    /// BF16 and by the MXU input path: add the rounding bias
    /// `0x7FFF + lsb` to the f32 bit pattern and truncate to the upper
    /// 16 bits. NaN payloads are canonicalized to a quiet NaN to avoid
    /// accidentally producing an infinity.
    #[inline]
    pub fn from_f32(x: f32) -> Bf16 {
        let bits = x.to_bits();
        if x.is_nan() {
            // Preserve sign, force a quiet NaN.
            return Bf16(((bits >> 16) as u16 & 0x8000) | 0x7FC0);
        }
        let lsb = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x7FFF + lsb);
        Bf16((rounded >> 16) as u16)
    }

    /// Convert from `f32` by truncation (round toward zero).
    ///
    /// Some early TPU paths truncated instead of rounding; exposed so the
    /// precision study can quantify the difference.
    #[inline]
    pub fn from_f32_truncate(x: f32) -> Bf16 {
        let bits = x.to_bits();
        if x.is_nan() {
            return Bf16(((bits >> 16) as u16 & 0x8000) | 0x7FC0);
        }
        Bf16((bits >> 16) as u16)
    }

    /// Widen to `f32`. Exact: every bfloat16 value is representable in f32.
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Raw bit pattern.
    #[inline]
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Construct from a raw bit pattern.
    #[inline]
    pub fn from_bits(bits: u16) -> Bf16 {
        Bf16(bits)
    }

    /// `true` if this value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7F80) == 0x7F80 && (self.0 & 0x007F) != 0
    }

    /// `true` if this value is +inf or -inf.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7F80
    }

    /// `true` if this value is finite (not NaN, not infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7F80) != 0x7F80
    }

    /// `true` if the sign bit is set (including -0.0 and NaN with sign).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        (self.0 & 0x8000) != 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub fn abs(self) -> Bf16 {
        Bf16(self.0 & 0x7FFF)
    }

    /// Exponential, computed in f32 and rounded back to bf16.
    ///
    /// This models the TPU VPU, which evaluates transcendentals through its
    /// extended vector unit at (at least) f32 internal precision and stores
    /// the bf16 result.
    #[inline]
    pub fn exp(self) -> Bf16 {
        Bf16::from_f32(self.to_f32().exp())
    }
}

impl fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}bf16", self.to_f32())
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl From<f32> for Bf16 {
    #[inline]
    fn from(x: f32) -> Bf16 {
        Bf16::from_f32(x)
    }
}

impl From<Bf16> for f32 {
    #[inline]
    fn from(x: Bf16) -> f32 {
        x.to_f32()
    }
}

impl PartialOrd for Bf16 {
    #[inline]
    fn partial_cmp(&self, other: &Bf16) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl $trait for Bf16 {
            type Output = Bf16;
            #[inline]
            fn $method(self, rhs: Bf16) -> Bf16 {
                Bf16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
        impl $assign_trait for Bf16 {
            #[inline]
            fn $assign_method(&mut self, rhs: Bf16) {
                *self = *self $op rhs;
            }
        }
    };
}

impl_binop!(Add, add, AddAssign, add_assign, +);
impl_binop!(Sub, sub, SubAssign, sub_assign, -);
impl_binop!(Mul, mul, MulAssign, mul_assign, *);
impl_binop!(Div, div, DivAssign, div_assign, /);

impl Neg for Bf16 {
    type Output = Bf16;
    #[inline]
    fn neg(self) -> Bf16 {
        // Flipping the sign bit is exact, like IEEE negation.
        Bf16(self.0 ^ 0x8000)
    }
}

impl std::iter::Sum for Bf16 {
    fn sum<I: Iterator<Item = Bf16>>(iter: I) -> Bf16 {
        // Accumulate in f32 (MXU-style 32-bit accumulation), round once.
        Bf16::from_f32(iter.map(Bf16::to_f32).sum())
    }
}

impl serde::Serialize for Bf16 {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f32(self.to_f32())
    }
}

impl<'de> serde::Deserialize<'de> for Bf16 {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Bf16, D::Error> {
        f32::deserialize(d).map(Bf16::from_f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constants_roundtrip() {
        assert_eq!(Bf16::ZERO.to_f32(), 0.0);
        assert_eq!(Bf16::ONE.to_f32(), 1.0);
        assert_eq!(Bf16::NEG_ONE.to_f32(), -1.0);
        assert_eq!(Bf16::INFINITY.to_f32(), f32::INFINITY);
        assert_eq!(Bf16::NEG_INFINITY.to_f32(), f32::NEG_INFINITY);
        assert!(Bf16::NAN.is_nan());
        assert_eq!(Bf16::MIN_POSITIVE.to_f32(), f32::from_bits(0x0080_0000));
        assert_eq!(Bf16::EPSILON.to_f32(), (2.0f32).powi(-7));
    }

    #[test]
    fn known_rne_vectors() {
        // Values exactly representable convert exactly.
        for &v in &[0.0f32, 1.0, -1.0, 2.0, 0.5, -0.5, 256.0, 1.5] {
            assert_eq!(Bf16::from_f32(v).to_f32(), v, "exact value {v}");
        }
        // 1.0 + 2^-9 is below the rounding midpoint: rounds down to 1.0.
        assert_eq!(Bf16::from_f32(1.0 + 2f32.powi(-9)).to_f32(), 1.0);
        // 1.0 + 2^-8 is exactly at the midpoint between 1.0 and 1.0+2^-7:
        // round-to-even picks 1.0 (mantissa lsb 0).
        assert_eq!(Bf16::from_f32(1.0 + 2f32.powi(-8)).to_f32(), 1.0);
        // (1.0 + 2^-7) + 2^-8 is midpoint with odd lsb: rounds up to 1.0+2^-6.
        let odd = 1.0 + 2f32.powi(-7) + 2f32.powi(-8);
        assert_eq!(Bf16::from_f32(odd).to_f32(), 1.0 + 2f32.powi(-6));
        // Just above the midpoint rounds up.
        assert_eq!(
            Bf16::from_f32(1.0 + 2f32.powi(-8) + 2f32.powi(-16)).to_f32(),
            1.0 + 2f32.powi(-7)
        );
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        // The largest f32 rounds to bf16 infinity (its exponent+mantissa
        // exceed bf16::MAX after rounding).
        assert!(Bf16::from_f32(f32::MAX).is_infinite());
        assert!(!Bf16::from_f32(f32::MAX).is_sign_negative());
        assert!(Bf16::from_f32(f32::MIN).is_infinite());
        assert!(Bf16::from_f32(f32::MIN).is_sign_negative());
    }

    #[test]
    fn nan_canonicalization() {
        let b = Bf16::from_f32(f32::NAN);
        assert!(b.is_nan());
        // Signaling-style payloads must not become infinity.
        let snan = f32::from_bits(0x7F80_0001);
        assert!(Bf16::from_f32(snan).is_nan());
        let neg_nan = f32::from_bits(0xFF80_0001);
        assert!(Bf16::from_f32(neg_nan).is_nan());
        assert!(Bf16::from_f32(neg_nan).is_sign_negative());
    }

    #[test]
    fn negation_is_exact() {
        for bits in [0u16, 0x3F80, 0x7F7F, 0x0080, 0x0001] {
            let b = Bf16::from_bits(bits);
            assert_eq!((-b).to_f32(), -b.to_f32());
        }
    }

    #[test]
    fn signed_zero() {
        let nz = Bf16::from_f32(-0.0);
        assert!(nz.is_sign_negative());
        assert_eq!(nz.to_f32(), 0.0);
        assert_eq!(nz, Bf16::ZERO); // -0 == +0
    }

    #[test]
    fn arithmetic_rounds_per_op() {
        // 256 + 1 = 257, which needs 9 mantissa bits; bf16 rounds to 256.
        let a = Bf16::from_f32(256.0);
        let b = Bf16::ONE;
        assert_eq!((a + b).to_f32(), 256.0);
        // but 256 + 2 = 258 rounds to 258? 258 = 2^8 * 1.0078125; mantissa
        // needs 1 + 7 bits => representable boundary: step at 2^8 is 2.
        assert_eq!((a + Bf16::from_f32(2.0)).to_f32(), 258.0);
    }

    #[test]
    fn exp_matches_f32_rounded() {
        for &x in &[-4.0f32, -2.0, -0.5, 0.0, 0.5, 1.0] {
            let b = Bf16::from_f32(x);
            assert_eq!(b.exp().to_f32(), Bf16::from_f32(b.to_f32().exp()).to_f32());
        }
    }

    #[test]
    fn sum_accumulates_in_f32() {
        // 512 copies of 1.0: bf16-per-step accumulation would stall at 256,
        // f32 accumulation gets exactly 512.
        let s: Bf16 = std::iter::repeat_n(Bf16::ONE, 512).sum();
        assert_eq!(s.to_f32(), 512.0);
    }

    #[test]
    fn truncate_vs_round() {
        // x = 1 + 2^-7 + 2^-8 is the midpoint between 1+2^-7 and 1+2^-6
        // with an odd mantissa lsb: truncation keeps 1+2^-7, RNE rounds up.
        let x = 1.0 + 2f32.powi(-7) + 2f32.powi(-8);
        assert_eq!(Bf16::from_f32_truncate(x).to_f32(), 1.0 + 2f32.powi(-7));
        assert_eq!(Bf16::from_f32(x).to_f32(), 1.0 + 2f32.powi(-6));
    }

    proptest! {
        #[test]
        fn roundtrip_is_identity_on_bf16_values(bits in 0u16..=0xFFFF) {
            let b = Bf16::from_bits(bits);
            if !b.is_nan() {
                prop_assert_eq!(Bf16::from_f32(b.to_f32()).to_bits(), bits);
            } else {
                prop_assert!(Bf16::from_f32(b.to_f32()).is_nan());
            }
        }

        #[test]
        fn relative_error_bound(x in -1.0e30f32..1.0e30f32) {
            // RNE conversion error is at most half a ulp = 2^-8 relative.
            let b = Bf16::from_f32(x).to_f32();
            let err = (b - x).abs();
            prop_assert!(err <= x.abs() * 2f32.powi(-8) + f32::MIN_POSITIVE);
        }

        #[test]
        fn conversion_is_monotone(a in -1.0e30f32..1.0e30f32, b in -1.0e30f32..1.0e30f32) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(Bf16::from_f32(lo) <= Bf16::from_f32(hi));
        }

        #[test]
        fn add_commutes(a in -1.0e18f32..1.0e18f32, b in -1.0e18f32..1.0e18f32) {
            let (x, y) = (Bf16::from_f32(a), Bf16::from_f32(b));
            prop_assert_eq!((x + y).to_bits(), (y + x).to_bits());
        }

        #[test]
        fn mul_commutes(a in -1.0e18f32..1.0e18f32, b in -1.0e18f32..1.0e18f32) {
            let (x, y) = (Bf16::from_f32(a), Bf16::from_f32(b));
            prop_assert_eq!((x * y).to_bits(), (y * x).to_bits());
        }

        #[test]
        fn abs_clears_sign(bits in 0u16..=0xFFFF) {
            let b = Bf16::from_bits(bits);
            prop_assert!(!b.abs().is_sign_negative());
        }
    }
}
