//! The [`Scalar`] abstraction over simulation precisions.
//!
//! Every numeric kernel in the workspace (acceptance ratios, neighbor sums,
//! RNG output, tensor ops) is generic over `Scalar` so the same code runs
//! the float32 and the bfloat16 experiment — exactly how the paper's single
//! TensorFlow graph is re-instantiated at either dtype.

use crate::Bf16;

/// A simulation scalar: either `f32` or [`Bf16`].
///
/// Semantics contract:
/// - `from_f32`/`to_f32` round / widen with the precision's native rules.
/// - Arithmetic on the type rounds to storage precision after every
///   operation (trivially true for `f32`; enforced by [`Bf16`]'s ops).
/// - `mul_acc_f32` models the MXU: multiply at storage precision, accumulate
///   in f32.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + Default
    + PartialOrd
    + PartialEq
    + std::fmt::Debug
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Neg<Output = Self>
    + 'static
{
    /// Human-readable dtype name, matching XLA nomenclature.
    const DTYPE: &'static str;
    /// Size in bytes of the storage format (drives HBM traffic modeling).
    const BYTES: usize;

    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Round an `f32` into this precision.
    fn from_f32(x: f32) -> Self;
    /// Widen to `f32` (exact for both precisions).
    fn to_f32(self) -> f32;
    /// `e^self`, evaluated through f32 and rounded to storage precision.
    fn exp(self) -> Self;

    /// MXU-style multiply-accumulate: `acc + self * rhs` where the product
    /// inputs are at storage precision but the accumulation stays in f32.
    #[inline]
    fn mul_acc_f32(self, rhs: Self, acc: f32) -> f32 {
        acc + self.to_f32() * rhs.to_f32()
    }
}

impl Scalar for f32 {
    const DTYPE: &'static str = "f32";
    const BYTES: usize = 4;

    #[inline]
    fn zero() -> f32 {
        0.0
    }
    #[inline]
    fn one() -> f32 {
        1.0
    }
    #[inline]
    fn from_f32(x: f32) -> f32 {
        x
    }
    #[inline]
    fn to_f32(self) -> f32 {
        self
    }
    #[inline]
    fn exp(self) -> f32 {
        f32::exp(self)
    }
}

impl Scalar for Bf16 {
    const DTYPE: &'static str = "bf16";
    const BYTES: usize = 2;

    #[inline]
    fn zero() -> Bf16 {
        Bf16::ZERO
    }
    #[inline]
    fn one() -> Bf16 {
        Bf16::ONE
    }
    #[inline]
    fn from_f32(x: f32) -> Bf16 {
        Bf16::from_f32(x)
    }
    #[inline]
    fn to_f32(self) -> f32 {
        Bf16::to_f32(self)
    }
    #[inline]
    fn exp(self) -> Bf16 {
        Bf16::exp(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_axioms<S: Scalar>() {
        assert_eq!(S::zero().to_f32(), 0.0);
        assert_eq!(S::one().to_f32(), 1.0);
        assert_eq!((S::one() + S::one()).to_f32(), 2.0);
        assert_eq!((S::one() - S::one()).to_f32(), 0.0);
        assert_eq!((-S::one()).to_f32(), -1.0);
        assert_eq!((S::one() * S::from_f32(2.0)).to_f32(), 2.0);
        assert_eq!(S::zero().exp().to_f32(), 1.0);
        // spin values ±1 are exact at both precisions
        for s in [-1.0f32, 1.0] {
            assert_eq!(S::from_f32(s).to_f32(), s);
        }
        // neighbor sums −4..4 are exact at both precisions
        for n in -4i32..=4 {
            assert_eq!(S::from_f32(n as f32).to_f32(), n as f32);
        }
    }

    #[test]
    fn f32_axioms() {
        generic_axioms::<f32>();
    }

    #[test]
    fn bf16_axioms() {
        generic_axioms::<Bf16>();
    }

    #[test]
    fn mul_acc_keeps_f32_accumulator() {
        // bf16 1.0 added 300 times through mul_acc stays exact because the
        // accumulator is f32 (bf16 += would stall at 256).
        let mut acc = 0.0f32;
        for _ in 0..300 {
            acc = Bf16::ONE.mul_acc_f32(Bf16::ONE, acc);
        }
        assert_eq!(acc, 300.0);
    }

    #[test]
    fn dtype_metadata() {
        assert_eq!(f32::DTYPE, "f32");
        assert_eq!(Bf16::DTYPE, "bf16");
        assert_eq!(f32::BYTES, 4);
        assert_eq!(Bf16::BYTES, 2);
    }
}
