//! Mapping raw `u32`s to uniforms in `[0, 1)` at each precision.

use tpu_ising_bf16::{Bf16, Scalar};

/// A scalar that can be sampled uniformly on `[0, 1)` from one random `u32`.
///
/// The mapping uses exactly as many random mantissa bits as the format can
/// hold, so the result is an *unbiased, exactly representable* uniform:
/// converting an f32 uniform to bf16 by rounding would push mass onto 1.0
/// (values ≥ 1 − 2⁻⁹ round up), which is both out of range and a subtle
/// acceptance-test bias; generating natively at 8 bits avoids that. This is
/// also what XLA's `RngUniform` does for each dtype.
pub trait RandomUniform: Scalar {
    /// Map a full-entropy `u32` to a uniform sample in `[0, 1)`.
    fn uniform_from_u32(u: u32) -> Self;
}

impl RandomUniform for f32 {
    #[inline]
    fn uniform_from_u32(u: u32) -> f32 {
        // 24 high bits → multiples of 2^-24 in [0,1). Using the high bits
        // matters: Philox's words are uniform, but taking high bits is the
        // convention shared with the TF implementation.
        (u >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl RandomUniform for Bf16 {
    #[inline]
    fn uniform_from_u32(u: u32) -> Bf16 {
        // Cast a 24-bit f32 uniform down to bf16 by *truncation* (round
        // toward zero). Two properties matter for Metropolis acceptance:
        //
        // 1. The result stays < 1 (round-to-nearest would push values
        //    ≥ 1 − 2⁻⁹ up to exactly 1.0, which is outside [0,1) and would
        //    never accept a ratio-1 proposal).
        // 2. Resolution is *floating point*: near 0 the grid is far finer
        //    than 2⁻⁸, so small acceptance probabilities like
        //    e^{−8β} ≈ 0.02 are compared at ~2⁻¹³ granularity. A
        //    fixed-point 8-bit grid here measurably biases the ordered
        //    phase (≈2 % extra flips at T = 0.8·Tc) — this matches how
        //    XLA converts wider uniforms to bf16 rather than sampling a
        //    fixed-point grid.
        Bf16::from_f32_truncate(f32::uniform_from_u32(u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_extremes() {
        assert_eq!(f32::uniform_from_u32(0), 0.0);
        let max = f32::uniform_from_u32(u32::MAX);
        assert!(max < 1.0);
        assert!(max > 0.9999);
    }

    #[test]
    fn bf16_extremes_stay_in_unit_interval() {
        assert_eq!(Bf16::uniform_from_u32(0).to_f32(), 0.0);
        let max = Bf16::uniform_from_u32(u32::MAX).to_f32();
        assert!(max < 1.0, "truncation must keep uniforms below 1, got {max}");
        assert!(max > 0.99);
    }

    #[test]
    fn bf16_truncates_the_f32_uniform() {
        for u in [0u32, 1 << 24, 0x7FFF_FFFF, 0xDEAD_BEEF, u32::MAX] {
            let f = f32::uniform_from_u32(u);
            let b = Bf16::uniform_from_u32(u).to_f32();
            assert!(b <= f, "truncation never rounds up: {b} vs {f}");
            assert!(f - b <= f * 2f32.powi(-7) + f32::MIN_POSITIVE, "within one ulp");
        }
    }

    #[test]
    fn bf16_keeps_fine_resolution_near_zero() {
        // The acceptance threshold e^{−8β} at β ≈ 0.49 is ~0.0199; the
        // empirical P(u < p) at bf16 must track p to ~1 %, which a
        // fixed-point 8-bit grid cannot do (it would give 6/256 ≈ 0.0234).
        let p = 0.0199f32;
        let pb = Bf16::from_f32(p);
        let trials = 2_000_000u32;
        let mut hits = 0u64;
        let mut stream = crate::PhiloxStream::from_seed(99);
        for _ in 0..trials {
            let u: Bf16 = stream.uniform();
            if u < pb {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        assert!((rate - p as f64).abs() / (p as f64) < 0.02, "P(u < {p}) = {rate}, bias too large");
    }

    #[test]
    fn f32_uses_high_bits() {
        // low 8 bits must not affect the output
        assert_eq!(f32::uniform_from_u32(0xABCD_EF00), f32::uniform_from_u32(0xABCD_EFFF));
    }
}
