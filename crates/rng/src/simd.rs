//! Runtime SIMD tier detection for the bit-sliced hot kernels.
//!
//! Every vectorized kernel in the workspace — the Philox plane batches in
//! [`crate::philox`] and the acceptance comparison trees in
//! [`crate::bitsliced`] — dispatches through **one** detected tier, cached
//! on first use (`is_x86_feature_detected!` reads CPUID once; afterwards
//! the choice is a relaxed load). All tiers are bit-identical by
//! construction: a tier is an evaluation-order optimization, never a
//! semantic change, so a trajectory computed on an AVX-512 host replays
//! exactly on a scalar one.
//!
//! The default dispatch prefers the **AVX2** tier even on AVX-512
//! hosts: the 512-bit tree keeps every bitwise op on `zmm` registers,
//! which on Skylake-SP/Cascade Lake server cores costs a frequency
//! license that measures ~13% slower end to end than the 256-bit tree
//! (see EXPERIMENTS.md). The wide tier stays available as an explicit
//! opt-in.
//!
//! The [`FORCE_ENV`] environment variable (`TPU_ISING_SIMD=scalar`,
//! `sse2`, `avx2` or `avx512`) selects any tier the CPU can execute,
//! read once before the first dispatch — down for debugging and CI
//! fallback coverage, or up to `avx512` to opt in to the wide tree.
//! Requesting a tier the CPU cannot execute clamps to the detected one
//! with a warning — the variable can never make the process crash on
//! illegal instructions.

use std::sync::OnceLock;

/// Environment variable that forces the dispatched tier (`scalar`,
/// `sse2`, `avx2`, `avx512`). Read once, before the first kernel runs.
pub const FORCE_ENV: &str = "TPU_ISING_SIMD";

/// The instruction-set tiers the dispatched kernels are compiled for,
/// ordered by width so `<=` means "executable wherever the other is".
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdIsa {
    /// Portable `u64` bitwise code — every architecture.
    Scalar,
    /// 128-bit trees (part of the x86-64 baseline): the two acceptance
    /// thresholds ride the two 64-bit lanes of one `xmm` register.
    Sse2,
    /// 256-bit trees: four 64-bit lanes per feed (two threshold pairs).
    Avx2,
    /// 512-bit trees: eight 64-bit lanes per feed. Only light bitwise
    /// ops run at 512-bit width (no frequency-license concern); the
    /// multiply-heavy Philox rounds stay at 256-bit under AVX-512VL.
    Avx512,
}

impl SimdIsa {
    /// Lower-case tier name, as stamped into benchmark provenance rows.
    pub fn name(self) -> &'static str {
        match self {
            SimdIsa::Scalar => "scalar",
            SimdIsa::Sse2 => "sse2",
            SimdIsa::Avx2 => "avx2",
            SimdIsa::Avx512 => "avx512",
        }
    }

    /// 64-bit lanes one comparison-tree feed folds at once.
    pub fn lanes(self) -> usize {
        match self {
            SimdIsa::Scalar => 1,
            SimdIsa::Sse2 => 2,
            SimdIsa::Avx2 => 4,
            SimdIsa::Avx512 => 8,
        }
    }

    /// Parse a [`FORCE_ENV`] value (case-insensitive).
    pub fn parse(s: &str) -> Option<SimdIsa> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdIsa::Scalar),
            "sse2" => Some(SimdIsa::Sse2),
            "avx2" => Some(SimdIsa::Avx2),
            "avx512" | "avx512f" => Some(SimdIsa::Avx512),
            _ => None,
        }
    }
}

/// Raw CPU capability bits, independent of any [`FORCE_ENV`] override —
/// what the host *could* run, recorded in benchmark metadata so a scalar
/// fallback row is still attributable to the hardware it ran on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuFeatures {
    /// SSE2 (always true on x86-64).
    pub sse2: bool,
    /// AVX2.
    pub avx2: bool,
    /// AVX-512 Foundation.
    pub avx512f: bool,
}

impl CpuFeatures {
    /// Comma-joined list of the detected flags (`"sse2,avx2,avx512f"`),
    /// or `"none"` off x86-64 — the provenance string for JSON rows.
    pub fn summary(&self) -> String {
        let mut out: Vec<&str> = Vec::new();
        if self.sse2 {
            out.push("sse2");
        }
        if self.avx2 {
            out.push("avx2");
        }
        if self.avx512f {
            out.push("avx512f");
        }
        if out.is_empty() {
            "none".to_string()
        } else {
            out.join(",")
        }
    }
}

/// Detect the host's capability bits (cached CPUID reads).
pub fn cpu_features() -> CpuFeatures {
    #[cfg(target_arch = "x86_64")]
    {
        CpuFeatures {
            sse2: true,
            avx2: std::arch::is_x86_feature_detected!("avx2"),
            avx512f: std::arch::is_x86_feature_detected!("avx512f"),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        CpuFeatures::default()
    }
}

/// The widest tier this CPU can execute, ignoring any override. The
/// AVX-512 tier additionally requires AVX-512VL: the Philox rounds run at
/// 256-bit width (`vpermt2d`/`vpternlogd` on `ymm`), which VL gates.
pub fn native_isa() -> SimdIsa {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            SimdIsa::Avx512
        } else if std::arch::is_x86_feature_detected!("avx2") {
            SimdIsa::Avx2
        } else {
            SimdIsa::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdIsa::Scalar
    }
}

/// The dispatched tier, decided once per process: the [`FORCE_ENV`]
/// override when set (clamped to [`native_isa`]), otherwise the native
/// tier capped at [`SimdIsa::Avx2`] — the wide tier's all-`zmm` tree
/// triggers the 512-bit frequency license on Skylake-SP-class cores and
/// measures slower than the 256-bit tree there, so AVX-512 is opt-in
/// via `TPU_ISING_SIMD=avx512`. Every kernel dispatch site and every
/// provenance stamp reads this single source of truth.
pub fn isa() -> SimdIsa {
    static ISA: OnceLock<SimdIsa> = OnceLock::new();
    *ISA.get_or_init(|| {
        let native = native_isa();
        // The workspace env fallback rule (`envcfg`): unparseable values
        // warn and behave like an unset variable — fall back to the
        // default (avx2-capped) dispatch, never silently opt in to the
        // wide tier.
        let forced = crate::envcfg::env_parse(FORCE_ENV, |raw| {
            SimdIsa::parse(raw)
                .ok_or_else(|| format!("expected scalar|sse2|avx2|avx512, got '{raw}'"))
        });
        match forced {
            Some(forced) if forced <= native => forced,
            Some(forced) => {
                // A *valid* tier the CPU cannot execute clamps (with a
                // warning) instead of falling back: the intent "force a
                // specific tier" is honored as far as the hardware allows,
                // and the variable can never crash the process.
                eprintln!(
                    "warning: {FORCE_ENV} requests {} but this CPU tops out at {}; using {}",
                    forced.name(),
                    native.name(),
                    native.name()
                );
                native
            }
            None => native.min(SimdIsa::Avx2),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_are_ordered_by_width() {
        assert!(SimdIsa::Scalar < SimdIsa::Sse2);
        assert!(SimdIsa::Sse2 < SimdIsa::Avx2);
        assert!(SimdIsa::Avx2 < SimdIsa::Avx512);
        assert_eq!(SimdIsa::Scalar.lanes(), 1);
        assert_eq!(SimdIsa::Sse2.lanes(), 2);
        assert_eq!(SimdIsa::Avx2.lanes(), 4);
        assert_eq!(SimdIsa::Avx512.lanes(), 8);
    }

    #[test]
    fn parse_accepts_every_tier_name_and_rejects_noise() {
        for isa in [SimdIsa::Scalar, SimdIsa::Sse2, SimdIsa::Avx2, SimdIsa::Avx512] {
            assert_eq!(SimdIsa::parse(isa.name()), Some(isa));
            assert_eq!(SimdIsa::parse(&isa.name().to_uppercase()), Some(isa));
        }
        assert_eq!(SimdIsa::parse("avx512f"), Some(SimdIsa::Avx512));
        assert_eq!(SimdIsa::parse("neon"), None);
        assert_eq!(SimdIsa::parse(""), None);
    }

    #[test]
    fn dispatched_isa_never_exceeds_native() {
        assert!(isa() <= native_isa());
    }

    #[test]
    fn default_dispatch_caps_at_avx2() {
        // The wide tier is opt-in: without an explicit force the process
        // must not dispatch past the 256-bit tree.
        if std::env::var(FORCE_ENV).map_or(true, |v| v.is_empty()) {
            assert!(isa() <= SimdIsa::Avx2);
        }
    }

    #[test]
    fn feature_summary_lists_detected_flags() {
        let f = cpu_features();
        let s = f.summary();
        #[cfg(target_arch = "x86_64")]
        {
            assert!(f.sse2);
            assert!(s.starts_with("sse2"), "{s}");
        }
        assert_eq!(f.avx2, s.contains("avx2"));
        assert_eq!(f.avx512f, s.contains("avx512f"));
        // the summary is stable and never empty
        assert!(!s.is_empty());
        assert_eq!(CpuFeatures::default().summary(), "none");
    }

    #[test]
    fn native_isa_matches_feature_flags() {
        let f = cpu_features();
        let n = native_isa();
        if f.avx2 {
            assert!(n >= SimdIsa::Avx2);
        }
        if !f.avx2 {
            assert!(n <= SimdIsa::Sse2);
        }
    }
}
