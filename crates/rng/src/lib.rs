//! Counter-based random number generation for massively parallel MCMC.
//!
//! The paper's TensorFlow implementation draws its acceptance uniforms from
//! `tf.random_uniform`, which on TPU is backed by the **Philox4x32-10**
//! counter-based generator (Salmon et al., "Parallel random numbers: as easy
//! as 1, 2, 3", SC 2011). Counter-based generators are the natural fit for
//! SPMD hardware: the stream is a pure function `(key, counter) → 4×u32`,
//! so every core / sub-lattice / color phase can own a disjoint, reproducible
//! slice of the stream without any shared state or locking.
//!
//! This crate implements Philox4x32-10 from scratch (no external RNG crates
//! are used for simulation randomness) and layers three facilities on top:
//!
//! - [`PhiloxStream`]: a sequential stream with 128-bit counter, constant-
//!   time [`PhiloxStream::skip`] (jump-ahead), used by single-threaded code.
//! - [`PhiloxStream::split`]: derive a statistically independent stream for
//!   a child task (core id, sub-lattice id, …) — the SPMD runtime gives each
//!   TensorCore its own split, mirroring how TF seeds per-replica RNG ops.
//! - [`SiteRng`]: a *site-keyed* generator where the uniform consumed by
//!   lattice site `(row, col)` at sweep `s` for color `c` is a pure function
//!   of `(seed, s, c, row, col)`. Two different algorithms (naive Algorithm 1,
//!   compact Algorithm 2, the conv variant, or a distributed run) driven by
//!   the same `SiteRng` make *bit-identical flip decisions*, which is what
//!   the cross-implementation equivalence tests rely on.
//! - [`bitsliced`]: bit-sliced Bernoulli masks — 64 independent
//!   Bernoulli(p) draws packed in one `u64`, the acceptance machinery of
//!   the multi-spin sweepers in `baseline` and `core`.

pub mod bitsliced;
pub mod envcfg;
mod philox;
pub mod simd;
mod site;
mod uniform;

pub use bitsliced::{
    bernoulli_mask, bernoulli_mask_with, bernoulli_masks_dual, expand, tree_feed, DualMaskBuilder,
    TreeFeed, BERNOULLI_BITS,
};
pub use philox::{
    philox4x32_10, philox4x32_10_planes16, philox4x32_10_planes8_x2, philox4x32_10_x8,
    Philox4x32Key, PHILOX_BATCH,
};
pub use simd::{cpu_features, CpuFeatures, SimdIsa};
pub use site::SiteRng;
pub use uniform::RandomUniform;

use tpu_ising_bf16::Scalar;

/// Multiplier constants from the Philox paper.
pub(crate) const PHILOX_M0: u32 = 0xD251_1F53;
pub(crate) const PHILOX_M1: u32 = 0xCD9E_8D57;
/// Weyl key-schedule increments (golden ratio and sqrt(3)-1 fractions).
pub(crate) const PHILOX_W0: u32 = 0x9E37_79B9;
pub(crate) const PHILOX_W1: u32 = 0xBB67_AE85;

/// A sequential Philox4x32-10 stream: a key plus a 128-bit block counter.
///
/// Each [`next_block`](Self::next_block) call consumes one counter value and
/// yields four `u32`s. The generator has period 2^130 per key and 2^64
/// distinct keys reachable via [`split`](Self::split).
#[derive(Clone, Debug)]
pub struct PhiloxStream {
    key: Philox4x32Key,
    counter: u128,
    /// Buffered outputs not yet consumed by `next_u32`.
    buf: [u32; 4],
    buf_pos: usize,
}

impl PhiloxStream {
    /// Create a stream from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        PhiloxStream { key: Philox4x32Key::from_seed(seed), counter: 0, buf: [0; 4], buf_pos: 4 }
    }

    /// Create a stream with an explicit key (for tests / KAT vectors).
    pub fn from_key(key: Philox4x32Key) -> Self {
        PhiloxStream { key, counter: 0, buf: [0; 4], buf_pos: 4 }
    }

    /// Reconstruct a stream from checkpointed `(key, counter)` state.
    ///
    /// Any partially-consumed output buffer is discarded, so restoring is
    /// exact for consumers that draw via [`fill_uniform`](Self::fill_uniform)
    /// (which resets the buffer anyway) and conservative — never repeats
    /// outputs — for buffered `next_u32` consumers.
    pub fn from_state(key: Philox4x32Key, counter: u128) -> Self {
        PhiloxStream { key, counter, buf: [0; 4], buf_pos: 4 }
    }

    /// Derive an independent child stream.
    ///
    /// The child's key mixes the parent key with `stream_id` through one
    /// Philox evaluation, so children of different ids — and children vs the
    /// parent — have unrelated keys. The parent stream is unaffected.
    pub fn split(&self, stream_id: u64) -> PhiloxStream {
        let ctr = [
            stream_id as u32,
            (stream_id >> 32) as u32,
            0x5EED_5EED, // domain-separation tag for "split"
            0x0000_0001,
        ];
        let out = philox4x32_10(ctr, self.key);
        PhiloxStream {
            key: Philox4x32Key::new(out[0], out[1]),
            counter: 0,
            buf: [0; 4],
            buf_pos: 4,
        }
    }

    /// The next 4-word block; advances the counter by one.
    #[inline]
    pub fn next_block(&mut self) -> [u32; 4] {
        let ctr = [
            self.counter as u32,
            (self.counter >> 32) as u32,
            (self.counter >> 64) as u32,
            (self.counter >> 96) as u32,
        ];
        self.counter = self.counter.wrapping_add(1);
        philox4x32_10(ctr, self.key)
    }

    /// The next single `u32`, served from an internal 4-word buffer.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.buf_pos == 4 {
            self.buf = self.next_block();
            self.buf_pos = 0;
        }
        let v = self.buf[self.buf_pos];
        self.buf_pos += 1;
        v
    }

    /// The next `u64` (two buffered words).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// A uniform in `[0, 1)` at precision `S`.
    #[inline]
    pub fn uniform<S: RandomUniform>(&mut self) -> S {
        S::uniform_from_u32(self.next_u32())
    }

    /// Fill `out` with uniforms in `[0, 1)` at precision `S`.
    ///
    /// This is the Rust analogue of `tf.random_uniform(shape)`: one bulk op
    /// producing a tensor's worth of uniforms from consecutive counters.
    pub fn fill_uniform<S: RandomUniform>(&mut self, out: &mut [S]) {
        // Whole blocks first (discarding any partially-consumed buffer keeps
        // the fill reproducible regardless of prior next_u32 calls).
        self.buf_pos = 4;
        let mut chunks = out.chunks_exact_mut(4);
        for chunk in &mut chunks {
            let block = self.next_block();
            for (o, &b) in chunk.iter_mut().zip(block.iter()) {
                *o = S::uniform_from_u32(b);
            }
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let block = self.next_block();
            for (o, &b) in rem.iter_mut().zip(block.iter()) {
                *o = S::uniform_from_u32(b);
            }
        }
    }

    /// Jump the stream forward by `n_blocks` counter values in O(1).
    pub fn skip(&mut self, n_blocks: u128) {
        self.counter = self.counter.wrapping_add(n_blocks);
        self.buf_pos = 4;
    }

    /// Current 128-bit block counter (for checkpointing).
    pub fn counter(&self) -> u128 {
        self.counter
    }

    /// The stream's key (for checkpointing).
    pub fn key(&self) -> Philox4x32Key {
        self.key
    }

    /// A standard-normal sample via Box–Muller (used by diagnostics only;
    /// the Ising update itself needs only uniforms).
    pub fn normal_f32(&mut self) -> f32 {
        loop {
            let u1: f32 = self.uniform::<f32>();
            let u2: f32 = self.uniform::<f32>();
            if u1 > 0.0 {
                return (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
            }
        }
    }
}

/// Convenience: fill a freshly allocated `Vec` with uniforms.
pub fn uniform_vec<S: RandomUniform + Scalar>(stream: &mut PhiloxStream, n: usize) -> Vec<S> {
    let mut v = vec![S::zero(); n];
    stream.fill_uniform(&mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tpu_ising_bf16::Bf16;

    #[test]
    fn stream_is_deterministic() {
        let mut a = PhiloxStream::from_seed(42);
        let mut b = PhiloxStream::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = PhiloxStream::from_seed(1);
        let mut b = PhiloxStream::from_seed(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same <= 1, "streams from different seeds nearly collide");
    }

    #[test]
    fn split_streams_are_independent() {
        let parent = PhiloxStream::from_seed(7);
        let mut c0 = parent.split(0);
        let mut c1 = parent.split(1);
        let mut c2 = parent.split(0); // same id → same stream
        let a: Vec<u32> = (0..16).map(|_| c0.next_u32()).collect();
        let b: Vec<u32> = (0..16).map(|_| c1.next_u32()).collect();
        let c: Vec<u32> = (0..16).map(|_| c2.next_u32()).collect();
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn split_does_not_mutate_parent() {
        let mut p = PhiloxStream::from_seed(3);
        let before = p.clone().next_u32();
        let _ = p.split(99);
        assert_eq!(p.next_u32(), before);
    }

    #[test]
    fn skip_matches_sequential_consumption() {
        let mut a = PhiloxStream::from_seed(5);
        let mut b = PhiloxStream::from_seed(5);
        for _ in 0..10 {
            a.next_block();
        }
        b.skip(10);
        assert_eq!(a.next_block(), b.next_block());
    }

    #[test]
    fn fill_uniform_matches_block_order() {
        let mut a = PhiloxStream::from_seed(9);
        let mut b = PhiloxStream::from_seed(9);
        let mut out = [0.0f32; 8];
        a.fill_uniform(&mut out);
        let blk0 = b.next_block();
        let blk1 = b.next_block();
        let expect: Vec<f32> =
            blk0.iter().chain(blk1.iter()).map(|&u| f32::uniform_from_u32(u)).collect();
        assert_eq!(out.to_vec(), expect);
    }

    #[test]
    fn uniform_mean_and_bounds_f32() {
        let mut s = PhiloxStream::from_seed(1234);
        let n = 200_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let u: f32 = s.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u as f64;
        }
        let mean = sum / n as f64;
        // std error of the mean ≈ 1/sqrt(12 n) ≈ 6.5e-4; allow 5σ.
        assert!((mean - 0.5).abs() < 3.3e-3, "mean {mean}");
    }

    #[test]
    fn uniform_mean_and_bounds_bf16() {
        let mut s = PhiloxStream::from_seed(4321);
        let n = 200_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let u: Bf16 = s.uniform();
            let f = u.to_f32();
            assert!((0.0..1.0).contains(&f));
            sum += f as f64;
        }
        let mean = sum / n as f64;
        // bf16 uniforms are multiples of 2^-8 in [0,1): mean (2^8-1)/2^9 ≈ 0.498.
        assert!((mean - 0.498).abs() < 4.0e-3, "mean {mean}");
    }

    #[test]
    fn normal_has_unit_variance() {
        let mut s = PhiloxStream::from_seed(77);
        let n = 100_000;
        let (mut m, mut v) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let x = s.normal_f32() as f64;
            m += x;
            v += x * x;
        }
        m /= n as f64;
        v = v / n as f64 - m * m;
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.03, "var {v}");
    }

    proptest! {
        #[test]
        fn counter_values_never_repeat_within_window(seed in any::<u64>(), start in 0u64..1_000_000) {
            let mut s = PhiloxStream::from_seed(seed);
            s.skip(start as u128);
            let a = s.next_block();
            let b = s.next_block();
            prop_assert_ne!(a, b);
        }

        #[test]
        fn skip_composes(seed in any::<u64>(), a in 0u64..10_000, b in 0u64..10_000) {
            let mut x = PhiloxStream::from_seed(seed);
            let mut y = PhiloxStream::from_seed(seed);
            x.skip(a as u128);
            x.skip(b as u128);
            y.skip(a as u128 + b as u128);
            prop_assert_eq!(x.next_block(), y.next_block());
        }
    }
}
