//! The Philox4x32-10 bijection (Salmon et al., SC 2011).
//!
//! Philox is a keyed bijection on 128-bit counters built from multiply-
//! hi/lo mixing rounds, designed so that consecutive counters produce
//! statistically independent outputs (it passes BigCrush). TensorFlow's
//! stateless RNG ops — the ones behind `tf.random_uniform` on TPU — use
//! exactly this function.

use crate::{PHILOX_M0, PHILOX_M1, PHILOX_W0, PHILOX_W1};

/// The 64-bit Philox key, stored as two 32-bit words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Philox4x32Key {
    pub k0: u32,
    pub k1: u32,
}

impl Philox4x32Key {
    /// Construct from explicit words.
    #[inline]
    pub fn new(k0: u32, k1: u32) -> Self {
        Philox4x32Key { k0, k1 }
    }

    /// Construct from a 64-bit seed (low word → k0, high word → k1).
    #[inline]
    pub fn from_seed(seed: u64) -> Self {
        Philox4x32Key { k0: seed as u32, k1: (seed >> 32) as u32 }
    }

    /// The Weyl-sequence key schedule bump applied between rounds.
    #[inline]
    fn bump(self) -> Self {
        Philox4x32Key { k0: self.k0.wrapping_add(PHILOX_W0), k1: self.k1.wrapping_add(PHILOX_W1) }
    }
}

/// 32×32→64 multiply, split into (hi, lo) words.
#[inline]
fn mulhilo(a: u32, b: u32) -> (u32, u32) {
    let p = (a as u64) * (b as u64);
    ((p >> 32) as u32, p as u32)
}

/// One Philox4x32 S-P round.
#[inline]
fn round(ctr: [u32; 4], key: Philox4x32Key) -> [u32; 4] {
    let (hi0, lo0) = mulhilo(PHILOX_M0, ctr[0]);
    let (hi1, lo1) = mulhilo(PHILOX_M1, ctr[2]);
    [hi1 ^ ctr[1] ^ key.k0, lo1, hi0 ^ ctr[3] ^ key.k1, lo0]
}

/// The full 10-round Philox4x32 bijection: maps a 128-bit counter to four
/// statistically independent `u32`s under a 64-bit key.
#[inline]
pub fn philox4x32_10(mut ctr: [u32; 4], mut key: Philox4x32Key) -> [u32; 4] {
    // 10 rounds with 9 key bumps in between (Random123 reference layout).
    for _ in 0..9 {
        ctr = round(ctr, key);
        key = key.bump();
    }
    round(ctr, key)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer vectors from the Random123 distribution
    /// (`kat_vectors`, `philox4x32 10` rows). These pin our implementation
    /// bit-for-bit to the published reference.
    #[test]
    fn random123_known_answers() {
        // counter = 0, key = 0
        assert_eq!(
            philox4x32_10([0, 0, 0, 0], Philox4x32Key::new(0, 0)),
            [0x6627_e8d5, 0xe169_c58d, 0xbc57_ac4c, 0x9b00_dbd8]
        );
        // counter = all-ones, key = all-ones
        assert_eq!(
            philox4x32_10([0xffff_ffff; 4], Philox4x32Key::new(0xffff_ffff, 0xffff_ffff)),
            [0x408f_276d, 0x41c8_3b0e, 0xa20b_c7c6, 0x6d54_51fd]
        );
        // counter/key = digits of pi (the Random123 "pi" vector)
        assert_eq!(
            philox4x32_10(
                [0x243f_6a88, 0x85a3_08d3, 0x1319_8a2e, 0x0370_7344],
                Philox4x32Key::new(0xa409_3822, 0x299f_31d0)
            ),
            [0xd16c_fe09, 0x94fd_cceb, 0x5001_e420, 0x2412_6ea1]
        );
    }

    #[test]
    fn is_a_bijection_on_sampled_pairs() {
        // Distinct counters must map to distinct outputs under a fixed key.
        let key = Philox4x32Key::from_seed(0xDEAD_BEEF_CAFE_F00D);
        let mut seen = std::collections::HashSet::new();
        for i in 0u32..4096 {
            let out = philox4x32_10([i, i.wrapping_mul(7), 0, 1], key);
            assert!(seen.insert(out), "collision at i={i}");
        }
    }

    #[test]
    fn avalanche_single_bit_flip() {
        // Flipping one counter bit should flip ~half the 128 output bits.
        let key = Philox4x32Key::from_seed(12345);
        let base = philox4x32_10([1, 2, 3, 4], key);
        let flipped = philox4x32_10([1 ^ 1, 2, 3, 4], key);
        let diff: u32 = base.iter().zip(flipped.iter()).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert!((40..=88).contains(&diff), "avalanche bits = {diff}");
    }

    #[test]
    fn key_bump_is_weyl_sequence() {
        let k = Philox4x32Key::new(0, 0).bump();
        assert_eq!(k.k0, PHILOX_W0);
        assert_eq!(k.k1, PHILOX_W1);
    }
}
