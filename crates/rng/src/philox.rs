//! The Philox4x32-10 bijection (Salmon et al., SC 2011).
//!
//! Philox is a keyed bijection on 128-bit counters built from multiply-
//! hi/lo mixing rounds, designed so that consecutive counters produce
//! statistically independent outputs (it passes BigCrush). TensorFlow's
//! stateless RNG ops — the ones behind `tf.random_uniform` on TPU — use
//! exactly this function.

use crate::{PHILOX_M0, PHILOX_M1, PHILOX_W0, PHILOX_W1};

/// The 64-bit Philox key, stored as two 32-bit words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Philox4x32Key {
    pub k0: u32,
    pub k1: u32,
}

impl Philox4x32Key {
    /// Construct from explicit words.
    #[inline]
    pub fn new(k0: u32, k1: u32) -> Self {
        Philox4x32Key { k0, k1 }
    }

    /// Construct from a 64-bit seed (low word → k0, high word → k1).
    #[inline]
    pub fn from_seed(seed: u64) -> Self {
        Philox4x32Key { k0: seed as u32, k1: (seed >> 32) as u32 }
    }

    /// The Weyl-sequence key schedule bump applied between rounds.
    #[inline]
    fn bump(self) -> Self {
        Philox4x32Key { k0: self.k0.wrapping_add(PHILOX_W0), k1: self.k1.wrapping_add(PHILOX_W1) }
    }
}

/// 32×32→64 multiply, split into (hi, lo) words.
#[inline]
fn mulhilo(a: u32, b: u32) -> (u32, u32) {
    let p = (a as u64) * (b as u64);
    ((p >> 32) as u32, p as u32)
}

/// One Philox4x32 S-P round.
#[inline]
fn round(ctr: [u32; 4], key: Philox4x32Key) -> [u32; 4] {
    let (hi0, lo0) = mulhilo(PHILOX_M0, ctr[0]);
    let (hi1, lo1) = mulhilo(PHILOX_M1, ctr[2]);
    [hi1 ^ ctr[1] ^ key.k0, lo1, hi0 ^ ctr[3] ^ key.k1, lo0]
}

/// The full 10-round Philox4x32 bijection: maps a 128-bit counter to four
/// statistically independent `u32`s under a 64-bit key.
#[inline]
pub fn philox4x32_10(mut ctr: [u32; 4], mut key: Philox4x32Key) -> [u32; 4] {
    // 10 rounds with 9 key bumps in between (Random123 reference layout).
    for _ in 0..9 {
        ctr = round(ctr, key);
        key = key.bump();
    }
    round(ctr, key)
}

/// Lanes evaluated together by [`philox4x32_10_x8`].
pub const PHILOX_BATCH: usize = 8;

/// The eight-counter Philox body in structure-of-arrays form. One scalar
/// call is a serial chain of 20 dependent 32×32→64 multiplies (~48 cycles
/// measured); eight independent counters walked in lockstep expose the
/// widening-multiply idiom the auto-vectorizer maps onto `vpmuludq`, so
/// the batch costs a small multiple of one call rather than eight.
#[inline(always)]
fn philox_x8_body(ctrs: &[[u32; 4]; PHILOX_BATCH], key: Philox4x32Key) -> [[u32; 4]; PHILOX_BATCH] {
    let mut c0 = [0u32; PHILOX_BATCH];
    let mut c1 = [0u32; PHILOX_BATCH];
    let mut c2 = [0u32; PHILOX_BATCH];
    let mut c3 = [0u32; PHILOX_BATCH];
    for i in 0..PHILOX_BATCH {
        c0[i] = ctrs[i][0];
        c1[i] = ctrs[i][1];
        c2[i] = ctrs[i][2];
        c3[i] = ctrs[i][3];
    }
    let (mut k0, mut k1) = (key.k0, key.k1);
    for r in 0..10 {
        for i in 0..PHILOX_BATCH {
            let p0 = (PHILOX_M0 as u64) * (c0[i] as u64);
            let p1 = (PHILOX_M1 as u64) * (c2[i] as u64);
            let n0 = ((p1 >> 32) as u32) ^ c1[i] ^ k0;
            let n2 = ((p0 >> 32) as u32) ^ c3[i] ^ k1;
            c0[i] = n0;
            c1[i] = p1 as u32;
            c2[i] = n2;
            c3[i] = p0 as u32;
        }
        if r < 9 {
            k0 = k0.wrapping_add(PHILOX_W0);
            k1 = k1.wrapping_add(PHILOX_W1);
        }
    }
    let mut out = [[0u32; 4]; PHILOX_BATCH];
    for i in 0..PHILOX_BATCH {
        out[i] = [c0[i], c1[i], c2[i], c3[i]];
    }
    out
}

/// Hand-vectorized AVX2 batch: the four counter words live as 8-lane
/// `ymm` registers and every round does the two widening multiplies with
/// `vpmuludq` on even/odd dword lanes, reassembling hi/lo vectors with
/// qword shifts and blends. Bit-identical to the scalar bijection.
///
/// # Safety
/// The caller must have verified AVX2 support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn philox_x8_avx2(
    ctrs: &[[u32; 4]; PHILOX_BATCH],
    key: Philox4x32Key,
) -> [[u32; 4]; PHILOX_BATCH] {
    use std::arch::x86_64::*;
    // SAFETY: callers guarantee AVX2; all loads/stores go through
    // properly-sized stack arrays.
    unsafe {
        let mut a = [[0u32; PHILOX_BATCH]; 4];
        for (i, c) in ctrs.iter().enumerate() {
            for w in 0..4 {
                a[w][i] = c[w];
            }
        }
        let mut c0 = _mm256_loadu_si256(a[0].as_ptr().cast());
        let mut c1 = _mm256_loadu_si256(a[1].as_ptr().cast());
        let mut c2 = _mm256_loadu_si256(a[2].as_ptr().cast());
        let mut c3 = _mm256_loadu_si256(a[3].as_ptr().cast());
        let m0 = _mm256_set1_epi32(PHILOX_M0 as i32);
        let m1 = _mm256_set1_epi32(PHILOX_M1 as i32);
        let w0 = _mm256_set1_epi32(PHILOX_W0 as i32);
        let w1 = _mm256_set1_epi32(PHILOX_W1 as i32);
        let mut k0 = _mm256_set1_epi32(key.k0 as i32);
        let mut k1 = _mm256_set1_epi32(key.k1 as i32);
        for r in 0..10 {
            // vpmuludq multiplies the even dword lanes; shifting the odd
            // lanes down covers the other four counters.
            let p0e = _mm256_mul_epu32(c0, m0);
            let p0o = _mm256_mul_epu32(_mm256_srli_epi64(c0, 32), m0);
            let p1e = _mm256_mul_epu32(c2, m1);
            let p1o = _mm256_mul_epu32(_mm256_srli_epi64(c2, 32), m1);
            // Lane-ordered lo/hi dword vectors of each 64-bit product:
            // even positions come from the even-lane products, odd
            // positions from the odd-lane products.
            let lo0 = _mm256_blend_epi32(p0e, _mm256_slli_epi64(p0o, 32), 0b1010_1010);
            let hi0 = _mm256_blend_epi32(_mm256_srli_epi64(p0e, 32), p0o, 0b1010_1010);
            let lo1 = _mm256_blend_epi32(p1e, _mm256_slli_epi64(p1o, 32), 0b1010_1010);
            let hi1 = _mm256_blend_epi32(_mm256_srli_epi64(p1e, 32), p1o, 0b1010_1010);
            c0 = _mm256_xor_si256(_mm256_xor_si256(hi1, c1), k0);
            c1 = lo1;
            c2 = _mm256_xor_si256(_mm256_xor_si256(hi0, c3), k1);
            c3 = lo0;
            if r < 9 {
                k0 = _mm256_add_epi32(k0, w0);
                k1 = _mm256_add_epi32(k1, w1);
            }
        }
        _mm256_storeu_si256(a[0].as_mut_ptr().cast(), c0);
        _mm256_storeu_si256(a[1].as_mut_ptr().cast(), c1);
        _mm256_storeu_si256(a[2].as_mut_ptr().cast(), c2);
        _mm256_storeu_si256(a[3].as_mut_ptr().cast(), c3);
        let mut out = [[0u32; 4]; PHILOX_BATCH];
        for (i, o) in out.iter_mut().enumerate() {
            *o = [a[0][i], a[1][i], a[2][i], a[3][i]];
        }
        out
    }
}

/// SIMD tier of the Philox batch kernels: 1 = AVX-512 (F+VL at 256-bit
/// width, so no heavy-512 frequency license), 2 = AVX2, 3 = scalar.
/// Routed through the shared [`crate::simd::isa`] dispatch (one CPUID
/// read, [`crate::simd::FORCE_ENV`]-overridable), so forcing the process
/// to a tier also forces the Philox expansion — CI's forced-scalar pass
/// exercises the portable batch bodies end to end.
#[cfg(target_arch = "x86_64")]
#[inline]
fn simd_tier() -> u8 {
    use crate::simd::SimdIsa;
    match crate::simd::isa() {
        SimdIsa::Avx512 => 1,
        SimdIsa::Avx2 => 2,
        SimdIsa::Sse2 | SimdIsa::Scalar => 3,
    }
}

/// True when at least AVX2 is available (AVX-512 implies it).
#[cfg(target_arch = "x86_64")]
#[inline]
fn has_avx2() -> bool {
    simd_tier() <= 2
}

/// Eight [`philox4x32_10`] evaluations at once, bit-identical to calling
/// the scalar bijection on each counter. Runtime-dispatches to an AVX2
/// compilation of the batch body on x86-64 (one-time detection), falling
/// back to the portable structure-of-arrays form everywhere else.
pub fn philox4x32_10_x8(
    ctrs: &[[u32; 4]; PHILOX_BATCH],
    key: Philox4x32Key,
) -> [[u32; 4]; PHILOX_BATCH] {
    #[cfg(target_arch = "x86_64")]
    if has_avx2() {
        // SAFETY: AVX2 support was just verified.
        return unsafe { philox_x8_avx2(ctrs, key) };
    }
    philox_x8_body(ctrs, key)
}

/// The ten Philox rounds on eight counters held as four 8-lane `ymm`
/// registers (`c[w]` = word `w` of every lane). Every round does the two
/// widening multiplies with `vpmuludq` on even/odd dword lanes and
/// reassembles lane-ordered hi/lo vectors with qword shifts and blends.
///
/// # Safety
/// The caller must have verified AVX2 support at runtime.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn philox_rounds_avx2(
    c: [std::arch::x86_64::__m256i; 4],
    key: Philox4x32Key,
) -> [std::arch::x86_64::__m256i; 4] {
    use std::arch::x86_64::*;
    {
        let [mut c0, mut c1, mut c2, mut c3] = c;
        let m0 = _mm256_set1_epi32(PHILOX_M0 as i32);
        let m1 = _mm256_set1_epi32(PHILOX_M1 as i32);
        let w0 = _mm256_set1_epi32(PHILOX_W0 as i32);
        let w1 = _mm256_set1_epi32(PHILOX_W1 as i32);
        let mut k0 = _mm256_set1_epi32(key.k0 as i32);
        let mut k1 = _mm256_set1_epi32(key.k1 as i32);
        for r in 0..10 {
            // vpmuludq multiplies the even dword lanes; shifting the odd
            // lanes down covers the other four counters.
            let p0e = _mm256_mul_epu32(c0, m0);
            let p0o = _mm256_mul_epu32(_mm256_srli_epi64(c0, 32), m0);
            let p1e = _mm256_mul_epu32(c2, m1);
            let p1o = _mm256_mul_epu32(_mm256_srli_epi64(c2, 32), m1);
            // Lane-ordered lo/hi dword vectors of each 64-bit product:
            // even positions come from the even-lane products, odd
            // positions from the odd-lane products.
            let lo0 = _mm256_blend_epi32(p0e, _mm256_slli_epi64(p0o, 32), 0b1010_1010);
            let hi0 = _mm256_blend_epi32(_mm256_srli_epi64(p0e, 32), p0o, 0b1010_1010);
            let lo1 = _mm256_blend_epi32(p1e, _mm256_slli_epi64(p1o, 32), 0b1010_1010);
            let hi1 = _mm256_blend_epi32(_mm256_srli_epi64(p1e, 32), p1o, 0b1010_1010);
            c0 = _mm256_xor_si256(_mm256_xor_si256(hi1, c1), k0);
            c1 = lo1;
            c2 = _mm256_xor_si256(_mm256_xor_si256(hi0, c3), k1);
            c3 = lo0;
            if r < 9 {
                k0 = _mm256_add_epi32(k0, w0);
                k1 = _mm256_add_epi32(k1, w1);
            }
        }
        [c0, c1, c2, c3]
    }
}

/// Interleave the four output registers of [`philox_rounds_avx2`] into the
/// per-lane planes `(out1‖out0, out3‖out2)`, stored as four qword arrays.
///
/// `vpunpckl/hdq` put lane `b`'s planes at register `(b >> 1) & 1` (even
/// planes) / `2 + ((b >> 1) & 1)` (odd planes), qword
/// `(b & 1) | ((b >> 2) << 1)` — see the callers for the index math.
///
/// # Safety
/// The caller must have verified AVX2 support at runtime.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn philox_lanes_to_planes_avx2(c: [std::arch::x86_64::__m256i; 4]) -> [[u64; 4]; 4] {
    use std::arch::x86_64::*;
    // SAFETY: stores go through sized stack arrays; callers guarantee AVX2.
    unsafe {
        let e01 = _mm256_unpacklo_epi32(c[0], c[1]); // even planes, lanes 0,1 | 4,5
        let h01 = _mm256_unpackhi_epi32(c[0], c[1]); // even planes, lanes 2,3 | 6,7
        let e23 = _mm256_unpacklo_epi32(c[2], c[3]); // odd planes, lanes 0,1 | 4,5
        let h23 = _mm256_unpackhi_epi32(c[2], c[3]); // odd planes, lanes 2,3 | 6,7
        let mut a = [[0u64; 4]; 4];
        _mm256_storeu_si256(a[0].as_mut_ptr().cast(), e01);
        _mm256_storeu_si256(a[1].as_mut_ptr().cast(), h01);
        _mm256_storeu_si256(a[2].as_mut_ptr().cast(), e23);
        _mm256_storeu_si256(a[3].as_mut_ptr().cast(), h23);
        a
    }
}

/// The ten rounds again at AVX-512VL 256-bit width: `vpermt2d` builds each
/// lane-ordered hi/lo vector in one shuffle (instead of shift + blend) and
/// `vpternlogd` fuses the three-way XOR, cutting the round from ~16 to
/// ~12 ops. Still 256-bit registers only — no 512-bit frequency license.
///
/// # Safety
/// The caller must have verified AVX512F + AVX512VL support at runtime.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx512f,avx512vl")]
unsafe fn philox_rounds_avx512(
    c: [std::arch::x86_64::__m256i; 4],
    key: Philox4x32Key,
) -> [std::arch::x86_64::__m256i; 4] {
    use std::arch::x86_64::*;
    {
        let [mut c0, mut c1, mut c2, mut c3] = c;
        let m0 = _mm256_set1_epi32(PHILOX_M0 as i32);
        let m1 = _mm256_set1_epi32(PHILOX_M1 as i32);
        let w0 = _mm256_set1_epi32(PHILOX_W0 as i32);
        let w1 = _mm256_set1_epi32(PHILOX_W1 as i32);
        let mut k0 = _mm256_set1_epi32(key.k0 as i32);
        let mut k1 = _mm256_set1_epi32(key.k1 as i32);
        // Even-lane products hold lanes 0,2,4,6 as (lo, hi) dword pairs,
        // odd-lane products lanes 1,3,5,7; these indices gather the lo
        // (resp. hi) dwords of all eight lanes in lane order.
        let idx_lo = _mm256_setr_epi32(0, 8, 2, 10, 4, 12, 6, 14);
        let idx_hi = _mm256_setr_epi32(1, 9, 3, 11, 5, 13, 7, 15);
        for r in 0..10 {
            let p0e = _mm256_mul_epu32(c0, m0);
            let p0o = _mm256_mul_epu32(_mm256_srli_epi64(c0, 32), m0);
            let p1e = _mm256_mul_epu32(c2, m1);
            let p1o = _mm256_mul_epu32(_mm256_srli_epi64(c2, 32), m1);
            let lo0 = _mm256_permutex2var_epi32(p0e, idx_lo, p0o);
            let hi0 = _mm256_permutex2var_epi32(p0e, idx_hi, p0o);
            let lo1 = _mm256_permutex2var_epi32(p1e, idx_lo, p1o);
            let hi1 = _mm256_permutex2var_epi32(p1e, idx_hi, p1o);
            // 0x96 = three-input XOR truth table.
            c0 = _mm256_ternarylogic_epi32(hi1, c1, k0, 0x96);
            c1 = lo1;
            c2 = _mm256_ternarylogic_epi32(hi0, c3, k1, 0x96);
            c3 = lo0;
            if r < 9 {
                k0 = _mm256_add_epi32(k0, w0);
                k1 = _mm256_add_epi32(k1, w1);
            }
        }
        [c0, c1, c2, c3]
    }
}

/// AVX2 compilation of [`philox4x32_10_planes16`]: the eight counters are
/// synthesized in-register (they differ only in the block byte of word 3)
/// and the sixteen output planes are assembled straight from the four
/// lane registers — no array-of-structs marshalling on either edge, which
/// is where a generic batch call loses its SIMD win.
///
/// # Safety
/// The caller must have verified AVX2 support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn philox_planes16_avx2(ctr: [u32; 4], block0: u32, key: Philox4x32Key) -> [u64; 16] {
    use std::arch::x86_64::*;
    // SAFETY: callers guarantee AVX2.
    unsafe {
        let blocks = _mm256_setr_epi32(
            ((block0) << 24) as i32,
            ((block0 + 1) << 24) as i32,
            ((block0 + 2) << 24) as i32,
            ((block0 + 3) << 24) as i32,
            ((block0 + 4) << 24) as i32,
            ((block0 + 5) << 24) as i32,
            ((block0 + 6) << 24) as i32,
            ((block0 + 7) << 24) as i32,
        );
        let c = philox_rounds_avx2(
            [
                _mm256_set1_epi32(ctr[0] as i32),
                _mm256_set1_epi32(ctr[1] as i32),
                _mm256_set1_epi32(ctr[2] as i32),
                _mm256_or_si256(_mm256_set1_epi32(ctr[3] as i32), blocks),
            ],
            key,
        );
        let a = philox_lanes_to_planes_avx2(c);
        let mut planes = [0u64; 16];
        for b in 0..PHILOX_BATCH {
            let reg = (b >> 1) & 1;
            let q = (b & 1) | ((b >> 2) << 1);
            planes[2 * b] = a[reg][q];
            planes[2 * b + 1] = a[2 + reg][q];
        }
        planes
    }
}

/// [`philox_planes16_avx2`] with the AVX-512VL round body.
///
/// # Safety
/// The caller must have verified AVX512F + AVX512VL support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl")]
unsafe fn philox_planes16_avx512(ctr: [u32; 4], block0: u32, key: Philox4x32Key) -> [u64; 16] {
    use std::arch::x86_64::*;
    // SAFETY: AVX512VL implies AVX2; dispatch verified support.
    unsafe {
        let blocks = _mm256_setr_epi32(
            ((block0) << 24) as i32,
            ((block0 + 1) << 24) as i32,
            ((block0 + 2) << 24) as i32,
            ((block0 + 3) << 24) as i32,
            ((block0 + 4) << 24) as i32,
            ((block0 + 5) << 24) as i32,
            ((block0 + 6) << 24) as i32,
            ((block0 + 7) << 24) as i32,
        );
        let c = philox_rounds_avx512(
            [
                _mm256_set1_epi32(ctr[0] as i32),
                _mm256_set1_epi32(ctr[1] as i32),
                _mm256_set1_epi32(ctr[2] as i32),
                _mm256_or_si256(_mm256_set1_epi32(ctr[3] as i32), blocks),
            ],
            key,
        );
        let a = philox_lanes_to_planes_avx2(c);
        let mut planes = [0u64; 16];
        for b in 0..PHILOX_BATCH {
            let reg = (b >> 1) & 1;
            let q = (b & 1) | ((b >> 2) << 1);
            planes[2 * b] = a[reg][q];
            planes[2 * b + 1] = a[2 + reg][q];
        }
        planes
    }
}

/// AVX2 compilation of [`philox4x32_10_planes8_x2`]: lanes 0–3 carry site
/// A's four blocks, lanes 4–7 site B's, so one 8-lane batch yields the
/// first eight planes of two sites at once.
///
/// # Safety
/// The caller must have verified AVX2 support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn philox_planes8_x2_avx2(
    ctr_a: [u32; 4],
    ctr_b: [u32; 4],
    block0: u32,
    key: Philox4x32Key,
) -> ([u64; 8], [u64; 8]) {
    use std::arch::x86_64::*;
    // SAFETY: callers guarantee AVX2.
    unsafe {
        let pair = |a: u32, b: u32| {
            _mm256_setr_epi32(
                a as i32, a as i32, a as i32, a as i32, b as i32, b as i32, b as i32, b as i32,
            )
        };
        let blocks = _mm256_setr_epi32(
            ((block0) << 24) as i32,
            ((block0 + 1) << 24) as i32,
            ((block0 + 2) << 24) as i32,
            ((block0 + 3) << 24) as i32,
            ((block0) << 24) as i32,
            ((block0 + 1) << 24) as i32,
            ((block0 + 2) << 24) as i32,
            ((block0 + 3) << 24) as i32,
        );
        let c = philox_rounds_avx2(
            [
                pair(ctr_a[0], ctr_b[0]),
                pair(ctr_a[1], ctr_b[1]),
                pair(ctr_a[2], ctr_b[2]),
                _mm256_or_si256(pair(ctr_a[3], ctr_b[3]), blocks),
            ],
            key,
        );
        let a = philox_lanes_to_planes_avx2(c);
        let (mut pa, mut pb) = ([0u64; 8], [0u64; 8]);
        for b in 0..4 {
            // site A = lanes 0..4 (qwords 0,1 of each unpack register),
            // site B = lanes 4..8 (qwords 2,3).
            let reg = b >> 1;
            pa[2 * b] = a[reg][b & 1];
            pa[2 * b + 1] = a[2 + reg][b & 1];
            pb[2 * b] = a[reg][(b & 1) | 2];
            pb[2 * b + 1] = a[2 + reg][(b & 1) | 2];
        }
        (pa, pb)
    }
}

/// Sixteen Philox bit-planes for one site: lane `b` of the batch runs the
/// bijection on `ctr` with `(block0 + b) << 24` OR-ed into word 3, and its
/// four outputs become planes `2b` (`out1‖out0`) and `2b+1` (`out3‖out2`).
/// Bit-identical to scalar [`philox4x32_10`] calls with the same counter
/// addressing — batching is a pure evaluation-order optimization.
///
/// `block0 + 7` must fit the block byte (bits 24..31 of word 3 clear of
/// the OR-ed range), which holds for the sweep engines' 13-block budget.
pub fn philox4x32_10_planes16(ctr: [u32; 4], block0: u32, key: Philox4x32Key) -> [u64; 16] {
    #[cfg(target_arch = "x86_64")]
    match simd_tier() {
        // SAFETY: the matching tier was just verified.
        1 => return unsafe { philox_planes16_avx512(ctr, block0, key) },
        2 => return unsafe { philox_planes16_avx2(ctr, block0, key) },
        _ => {}
    }
    let mut planes = [0u64; 16];
    for b in 0..PHILOX_BATCH as u32 {
        let o = philox4x32_10([ctr[0], ctr[1], ctr[2], ctr[3] | ((block0 + b) << 24)], key);
        planes[2 * b as usize] = ((o[1] as u64) << 32) | o[0] as u64;
        planes[2 * b as usize + 1] = ((o[3] as u64) << 32) | o[2] as u64;
    }
    planes
}

/// The first eight planes (blocks `block0..block0+4`) of **two** site
/// counters from a single 8-lane batch — two sweep sites usually resolve
/// within eight planes each, so pairing them halves the per-site cost of
/// the batched bijection. Plane addressing is identical to
/// [`philox4x32_10_planes16`]; batching is bit-transparent.
pub fn philox4x32_10_planes8_x2(
    ctr_a: [u32; 4],
    ctr_b: [u32; 4],
    block0: u32,
    key: Philox4x32Key,
) -> ([u64; 8], [u64; 8]) {
    #[cfg(target_arch = "x86_64")]
    if has_avx2() {
        // SAFETY: AVX2 support was just verified.
        return unsafe { philox_planes8_x2_avx2(ctr_a, ctr_b, block0, key) };
    }
    let mut out = [[0u64; 8]; 2];
    for (ctr, planes) in [ctr_a, ctr_b].iter().zip(out.iter_mut()) {
        for b in 0..4u32 {
            let o = philox4x32_10([ctr[0], ctr[1], ctr[2], ctr[3] | ((block0 + b) << 24)], key);
            planes[2 * b as usize] = ((o[1] as u64) << 32) | o[0] as u64;
            planes[2 * b as usize + 1] = ((o[3] as u64) << 32) | o[2] as u64;
        }
    }
    (out[0], out[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_matches_scalar_bijection() {
        // The x8 batch (and its AVX2 compilation, when dispatched) must be
        // bit-identical to eight scalar calls on arbitrary counters/keys.
        for seed in [0u64, 1, 0xDEAD_BEEF_0BAD_F00D, u64::MAX] {
            let key = Philox4x32Key::from_seed(seed);
            let mut ctrs = [[0u32; 4]; PHILOX_BATCH];
            for (i, c) in ctrs.iter_mut().enumerate() {
                let i = i as u32;
                *c = [
                    i.wrapping_mul(0x9E37_79B9),
                    seed as u32 ^ i,
                    (seed >> 32) as u32,
                    0x0700_0000 | (i << 24),
                ];
            }
            let batch = philox4x32_10_x8(&ctrs, key);
            for (c, got) in ctrs.iter().zip(batch.iter()) {
                assert_eq!(*got, philox4x32_10(*c, key));
            }
        }
    }

    #[test]
    fn planes16_matches_scalar_addressing() {
        // The plane batch must agree bit-for-bit with scalar calls using
        // the same block-byte counter addressing, for several base
        // counters (including the color bit set) and block offsets.
        for seed in [7u64, 0xFEED_FACE_CAFE_BEEF] {
            let key = Philox4x32Key::from_seed(seed);
            for &(ctr, block0) in &[
                ([3u32, 9, 1234, 0], 0u32),
                ([0, 0, 0xFFFF_FFFF, 0x8012_3456 & 0x80FF_FFFF], 4),
                ([65535, 1, 2, 0x00AB_CDEF], 5),
            ] {
                let planes = philox4x32_10_planes16(ctr, block0, key);
                for b in 0..PHILOX_BATCH as u32 {
                    let o =
                        philox4x32_10([ctr[0], ctr[1], ctr[2], ctr[3] | ((block0 + b) << 24)], key);
                    assert_eq!(planes[2 * b as usize], ((o[1] as u64) << 32) | o[0] as u64);
                    assert_eq!(planes[2 * b as usize + 1], ((o[3] as u64) << 32) | o[2] as u64);
                }
            }
        }
    }

    #[test]
    fn paired_planes_match_the_single_site_batch() {
        // The two-site batch must reproduce the single-site plane
        // addressing exactly for both counters, at several block offsets.
        let key = Philox4x32Key::from_seed(0x0DDB_A11_CAFE);
        let ctr_a = [12u32, 34, 0xDEAD_BEEF, 0x8000_0123 & 0x80FF_FFFF];
        let ctr_b = [12u32, 36, 0xDEAD_BEEF, 0x8000_0123 & 0x80FF_FFFF];
        for block0 in [0u32, 4, 8] {
            let (pa, pb) = philox4x32_10_planes8_x2(ctr_a, ctr_b, block0, key);
            let full_a = philox4x32_10_planes16(ctr_a, block0, key);
            let full_b = philox4x32_10_planes16(ctr_b, block0, key);
            assert_eq!(pa, full_a[..8], "site A planes, block0={block0}");
            assert_eq!(pb, full_b[..8], "site B planes, block0={block0}");
        }
    }

    /// Known-answer vectors from the Random123 distribution
    /// (`kat_vectors`, `philox4x32 10` rows). These pin our implementation
    /// bit-for-bit to the published reference.
    #[test]
    fn random123_known_answers() {
        // counter = 0, key = 0
        assert_eq!(
            philox4x32_10([0, 0, 0, 0], Philox4x32Key::new(0, 0)),
            [0x6627_e8d5, 0xe169_c58d, 0xbc57_ac4c, 0x9b00_dbd8]
        );
        // counter = all-ones, key = all-ones
        assert_eq!(
            philox4x32_10([0xffff_ffff; 4], Philox4x32Key::new(0xffff_ffff, 0xffff_ffff)),
            [0x408f_276d, 0x41c8_3b0e, 0xa20b_c7c6, 0x6d54_51fd]
        );
        // counter/key = digits of pi (the Random123 "pi" vector)
        assert_eq!(
            philox4x32_10(
                [0x243f_6a88, 0x85a3_08d3, 0x1319_8a2e, 0x0370_7344],
                Philox4x32Key::new(0xa409_3822, 0x299f_31d0)
            ),
            [0xd16c_fe09, 0x94fd_cceb, 0x5001_e420, 0x2412_6ea1]
        );
    }

    #[test]
    fn is_a_bijection_on_sampled_pairs() {
        // Distinct counters must map to distinct outputs under a fixed key.
        let key = Philox4x32Key::from_seed(0xDEAD_BEEF_CAFE_F00D);
        let mut seen = std::collections::HashSet::new();
        for i in 0u32..4096 {
            let out = philox4x32_10([i, i.wrapping_mul(7), 0, 1], key);
            assert!(seen.insert(out), "collision at i={i}");
        }
    }

    #[test]
    fn avalanche_single_bit_flip() {
        // Flipping one counter bit should flip ~half the 128 output bits.
        let key = Philox4x32Key::from_seed(12345);
        let base = philox4x32_10([1, 2, 3, 4], key);
        let flipped = philox4x32_10([1 ^ 1, 2, 3, 4], key);
        let diff: u32 = base.iter().zip(flipped.iter()).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert!((40..=88).contains(&diff), "avalanche bits = {diff}");
    }

    #[test]
    fn key_bump_is_weyl_sequence() {
        let k = Philox4x32Key::new(0, 0).bump();
        assert_eq!(k.k0, PHILOX_W0);
        assert_eq!(k.k1, PHILOX_W1);
    }
}
