//! One fallback rule for every `TPU_ISING_*` tuning variable.
//!
//! The workspace reads a handful of environment knobs
//! (`TPU_ISING_SIMD`, `TPU_ISING_SWEEP_WORKERS`, `TPU_ISING_TILE_ROWS`).
//! They are *tuning* inputs, never correctness inputs, so an invalid
//! value must never panic or silently change behavior. Every reader
//! follows the same documented rule:
//!
//! - **unset or empty** → use the built-in default, silently;
//! - **invalid** (garbage, out of range, overflow) → warn once on
//!   stderr naming the variable and the offending value, then use the
//!   built-in default — exactly as if the variable were unset.
//!
//! [`env_parse`] implements the rule for any value type; [`env_usize`]
//! is the common integer case.

/// Read `name` and parse it with `parse`, applying the workspace
/// fallback rule: unset/empty → `None` silently; a parse error → warn
/// and `None`. `parse` returns `Err(reason)` for invalid values.
pub fn env_parse<T>(name: &str, parse: impl FnOnce(&str) -> Result<T, String>) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    match parse(trimmed) {
        Ok(v) => Some(v),
        Err(why) => {
            warn_ignored(name, trimmed, &why);
            None
        }
    }
}

/// Read an integer knob that must be at least `min`. Zero, negative,
/// non-numeric, and overflowing values all fall back with a warning.
pub fn env_usize(name: &str, min: usize) -> Option<usize> {
    env_parse(name, |raw| match raw.parse::<usize>() {
        Ok(v) if v >= min => Ok(v),
        Ok(v) => Err(format!("must be at least {min}, got {v}")),
        Err(_) => Err("not a valid non-negative integer".to_string()),
    })
}

/// The warning side of the fallback rule, shared so every knob reports
/// invalid values in the same shape.
pub fn warn_ignored(name: &str, raw: &str, why: &str) {
    eprintln!("warning: ignoring {name}={raw} ({why}); using the default");
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test owns a distinct variable name: the process environment
    // is global and tests run concurrently.

    #[test]
    fn unset_is_none() {
        assert_eq!(env_usize("TPU_ISING_TEST_UNSET", 1), None);
    }

    #[test]
    fn empty_is_none() {
        std::env::set_var("TPU_ISING_TEST_EMPTY", "");
        assert_eq!(env_usize("TPU_ISING_TEST_EMPTY", 1), None);
        std::env::set_var("TPU_ISING_TEST_BLANK", "   ");
        assert_eq!(env_usize("TPU_ISING_TEST_BLANK", 1), None);
    }

    #[test]
    fn valid_value_parses() {
        std::env::set_var("TPU_ISING_TEST_OK", "7");
        assert_eq!(env_usize("TPU_ISING_TEST_OK", 1), Some(7));
        std::env::set_var("TPU_ISING_TEST_PAD", " 3 ");
        assert_eq!(env_usize("TPU_ISING_TEST_PAD", 1), Some(3));
    }

    #[test]
    fn zero_below_min_falls_back() {
        std::env::set_var("TPU_ISING_TEST_ZERO", "0");
        assert_eq!(env_usize("TPU_ISING_TEST_ZERO", 1), None);
    }

    #[test]
    fn garbage_falls_back() {
        std::env::set_var("TPU_ISING_TEST_GARBAGE", "lots");
        assert_eq!(env_usize("TPU_ISING_TEST_GARBAGE", 1), None);
        std::env::set_var("TPU_ISING_TEST_NEGATIVE", "-4");
        assert_eq!(env_usize("TPU_ISING_TEST_NEGATIVE", 1), None);
    }

    #[test]
    fn overflow_falls_back() {
        std::env::set_var("TPU_ISING_TEST_OVERFLOW", "99999999999999999999999999");
        assert_eq!(env_usize("TPU_ISING_TEST_OVERFLOW", 1), None);
    }

    #[test]
    fn custom_parser_applies_same_rule() {
        std::env::set_var("TPU_ISING_TEST_ENUM", "banana");
        let parsed = env_parse("TPU_ISING_TEST_ENUM", |raw| match raw {
            "apple" => Ok(1u8),
            other => Err(format!("unknown fruit '{other}'")),
        });
        assert_eq!(parsed, None);
        std::env::set_var("TPU_ISING_TEST_ENUM_OK", "apple");
        let parsed = env_parse("TPU_ISING_TEST_ENUM_OK", |raw| match raw {
            "apple" => Ok(1u8),
            other => Err(format!("unknown fruit '{other}'")),
        });
        assert_eq!(parsed, Some(1));
    }
}
