//! Bit-sliced Bernoulli masks for multi-spin coding.
//!
//! Multi-spin coding packs 64 independent replicas into one `u64` and
//! advances all of them with bitwise arithmetic, so it needs a *vector* of
//! 64 independent Bernoulli(p) draws per packed site — as a single word.
//! The bit-sliced construction compares a uniform `U` against `p` one
//! binary digit at a time, across all 64 lanes simultaneously: plane `i`
//! of the uniforms (one random word) is compared against bit `i` of `p`'s
//! binary expansion, and a lane is decided at the first plane where they
//! differ. Expected cost is ~2 planes per *lane*, but the loop runs until
//! the last undecided lane resolves (≈ log₂64 + 2 planes per word) — still
//! far below one random word per replica-spin.
//!
//! This module is the single shared implementation used by both the
//! `baseline` toy sweeper and the production engine in `core`; the mask
//! builders are generic over the plane source so sequential streams
//! ([`crate::PhiloxStream`]) and counter-addressed site-keyed generators
//! plug in equally.

use crate::PhiloxStream;

/// Resolution (random bit-planes) of the Bernoulli masks: 24 bits, the
/// entropy of an f32-derived uniform.
pub const BERNOULLI_BITS: u32 = 24;

/// MSB-first binary expansion of `p ∈ [0, 1]`, **rounded to nearest** at
/// [`BERNOULLI_BITS`] bits.
///
/// The realized acceptance probability is `round(p·2²⁴)/2²⁴`, within
/// `2⁻²⁵` of `p` — truncating instead (as the first implementation did)
/// biases every acceptance *down* by up to `2⁻²⁴`. Probabilities that
/// round up to exactly 1 saturate at `1 − 2⁻²⁴` (24 bits cannot express
/// 1.0); only `p > 1 − 2⁻²⁵` is affected.
pub fn expand(p: f64) -> [bool; BERNOULLI_BITS as usize] {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    let scale = (1u64 << BERNOULLI_BITS) as f64;
    let q = ((p * scale).round() as u64).min((1 << BERNOULLI_BITS) - 1) as u32;
    let mut bits = [false; BERNOULLI_BITS as usize];
    for (i, b) in bits.iter_mut().enumerate() {
        *b = (q >> (BERNOULLI_BITS as usize - 1 - i)) & 1 == 1;
    }
    bits
}

/// Build a word whose 64 bits are independently 1 with probability `p`
/// (given by its [`expand`]-ed bits), drawing one random plane per
/// consumed bit-plane from `next_plane`.
///
/// Lane semantics: compare a uniform `U` (bit-planes MSB first) against
/// `p`; the lane accepts iff `U < p`, decided at the first plane where
/// they differ. Exactly-equal lanes (probability `2⁻²⁴`) reject — the
/// comparison is strict, matching `u < p` on f32 uniforms.
pub fn bernoulli_mask_with(bits: &[bool], mut next_plane: impl FnMut() -> u64) -> u64 {
    let mut accept: u64 = 0;
    let mut undecided: u64 = !0;
    for &pb in bits {
        let u = next_plane();
        if pb {
            // p-bit 1: lanes with u-bit 0 accept; u-bit 1 stays undecided
            accept |= undecided & !u;
            undecided &= u;
        } else {
            // p-bit 0: lanes with u-bit 1 reject; u-bit 0 stays undecided
            undecided &= !u;
        }
        if undecided == 0 {
            break;
        }
    }
    accept
}

/// [`bernoulli_mask_with`] drawing planes from a sequential Philox stream.
pub fn bernoulli_mask(bits: &[bool], rng: &mut PhiloxStream) -> u64 {
    bernoulli_mask_with(bits, || rng.next_u64())
}

/// Build **two** Bernoulli masks (probabilities `hi` ≥ `lo`, same length
/// expansions) from **one shared sequence of uniform planes**, stopping as
/// soon as every lane *someone needs* is decided.
///
/// `need_hi` / `need_lo` flag the lanes whose `hi` / `lo` bit the caller
/// will actually consume; bits outside a mask's need set are unspecified.
/// Sharing the planes halves the RNG cost of a two-threshold Metropolis
/// update and is statistically exact **provided each lane consumes at most
/// one of the two masks**, with the choice made independently of the
/// uniforms (in the Ising update the neighborhood decides which threshold
/// applies, so the condition holds). For any single lane the returned bit
/// is exactly `[U < p]` for its consumed threshold.
pub fn bernoulli_masks_dual(
    hi_bits: &[bool],
    lo_bits: &[bool],
    need_hi: u64,
    need_lo: u64,
    mut next_plane: impl FnMut() -> u64,
) -> (u64, u64) {
    debug_assert_eq!(hi_bits.len(), lo_bits.len());
    let mut b = DualMaskBuilder::new();
    while b.planes_used() < hi_bits.len() && b.undecided(need_hi, need_lo) {
        b.feed(hi_bits, lo_bits, &[next_plane()]);
    }
    b.masks()
}

/// Incremental dual-threshold mask construction: the state of the
/// [`bernoulli_masks_dual`] comparison, exposed so callers that *batch*
/// their uniform planes (e.g. interleaved counter-based Philox blocks,
/// whose independent 10-round chains pipeline ~2× better than serial
/// draws) can feed several planes in one straight-line, branch-free pass
/// and poll for completion between batches rather than per plane.
///
/// Plane `i` fed (in order, across all `feed` calls) is compared against
/// bit `i` of the two expansions; the accept/undecided lane semantics are
/// exactly those of [`bernoulli_mask_with`], per threshold.
#[derive(Clone, Copy, Debug)]
pub struct DualMaskBuilder {
    acc_hi: u64,
    und_hi: u64,
    acc_lo: u64,
    und_lo: u64,
    planes_used: usize,
}

impl DualMaskBuilder {
    /// Fresh state: nothing accepted, every lane of both masks undecided.
    #[allow(clippy::new_without_default)]
    #[inline]
    pub fn new() -> Self {
        DualMaskBuilder { acc_hi: 0, und_hi: !0, acc_lo: 0, und_lo: !0, planes_used: 0 }
    }

    /// Planes consumed so far (= the expansion bit the next plane meets).
    #[inline]
    pub fn planes_used(&self) -> usize {
        self.planes_used
    }

    /// True while some lane a caller cares about is still undecided in the
    /// mask it will consume.
    #[inline]
    pub fn undecided(&self, need_hi: u64, need_lo: u64) -> bool {
        (self.und_hi & need_hi) | (self.und_lo & need_lo) != 0
    }

    /// Compare a batch of uniform planes against the next expansion bits.
    /// Branch-free: the per-plane p-bit select is a mask blend, so the
    /// whole batch schedules as one straight line of bitwise ops.
    #[inline]
    pub fn feed(&mut self, hi_bits: &[bool], lo_bits: &[bool], planes: &[u64]) {
        debug_assert!(self.planes_used + planes.len() <= hi_bits.len());
        debug_assert_eq!(hi_bits.len(), lo_bits.len());
        let hi = hi_bits[self.planes_used..].iter();
        let lo = lo_bits[self.planes_used..].iter();
        for ((&u, &hb), &lb) in planes.iter().zip(hi).zip(lo) {
            // mh = all-ones iff the hi p-bit is 1; then und &= u (keep
            // ties), else und &= !u (reject) — blended without branching.
            let mh = (hb as u64).wrapping_neg();
            let ml = (lb as u64).wrapping_neg();
            self.acc_hi |= self.und_hi & !u & mh;
            self.und_hi &= u ^ !mh;
            self.acc_lo |= self.und_lo & !u & ml;
            self.und_lo &= u ^ !ml;
        }
        self.planes_used += planes.len();
    }

    /// Compare eight planes at once by folding the lane-wise comparison
    /// as a balanced tree instead of a serial scan. Per plane the
    /// comparison state is `(lt, eq)` — "already decided less" and "still
    /// tied" — and two segments combine associatively as
    /// `(ltA | eqA·ltB, eqA·eqB)`, so eight planes reduce in depth 3
    /// rather than a chain of eight dependent updates. Bit-identical to
    /// [`Self::feed`] on the same planes; worth ~2× on the sweep hot path
    /// where the mask build is latency-bound.
    #[inline]
    pub fn feed_tree8(&mut self, hi_bits: &[bool], lo_bits: &[bool], planes: &[u64; 8]) {
        debug_assert!(self.planes_used + 8 <= hi_bits.len());
        debug_assert_eq!(hi_bits.len(), lo_bits.len());
        // On x86_64 the hi and lo thresholds ride in the two 64-bit lanes
        // of one xmm register, so one tree decides both thresholds — the
        // combine count halves against running the scalar tree twice.
        // SSE2 is part of the x86_64 baseline, no dispatch needed.
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 intrinsics, unconditionally available on x86_64.
        unsafe {
            use std::arch::x86_64::*;
            #[inline(always)]
            unsafe fn combine(a: (__m128i, __m128i), b: (__m128i, __m128i)) -> (__m128i, __m128i) {
                (_mm_or_si128(a.0, _mm_and_si128(a.1, b.0)), _mm_and_si128(a.1, b.1))
            }
            let off = self.planes_used;
            let ones = _mm_set1_epi64x(-1);
            let mut leaf = [(ones, ones); 8];
            for (i, l) in leaf.iter_mut().enumerate() {
                let u = _mm_set1_epi64x(planes[i] as i64);
                // per lane: m = all-ones iff that threshold's p-bit is 1;
                // below p only where the p-bit is 1 and the u-bit is 0,
                // tied where they match: (lt, eq) = (!u & m, u ^ !m)
                let m = _mm_set_epi64x(-(hi_bits[off + i] as i64), -(lo_bits[off + i] as i64));
                *l = (_mm_andnot_si128(u, m), _mm_xor_si128(u, _mm_xor_si128(m, ones)));
            }
            let (lt, eq) = combine(
                combine(combine(leaf[0], leaf[1]), combine(leaf[2], leaf[3])),
                combine(combine(leaf[4], leaf[5]), combine(leaf[6], leaf[7])),
            );
            let und = _mm_set_epi64x(self.und_hi as i64, self.und_lo as i64);
            let acc = _mm_set_epi64x(self.acc_hi as i64, self.acc_lo as i64);
            let acc = _mm_or_si128(acc, _mm_and_si128(und, lt));
            let und = _mm_and_si128(und, eq);
            self.acc_lo = _mm_cvtsi128_si64(acc) as u64;
            self.acc_hi = _mm_cvtsi128_si64(_mm_unpackhi_epi64(acc, acc)) as u64;
            self.und_lo = _mm_cvtsi128_si64(und) as u64;
            self.und_hi = _mm_cvtsi128_si64(_mm_unpackhi_epi64(und, und)) as u64;
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            #[inline(always)]
            fn combine(a: (u64, u64), b: (u64, u64)) -> (u64, u64) {
                (a.0 | (a.1 & b.0), a.1 & b.1)
            }
            #[inline(always)]
            fn tree8(bits: &[bool], off: usize, planes: &[u64; 8]) -> (u64, u64) {
                let mut leaf = [(0u64, 0u64); 8];
                for (i, l) in leaf.iter_mut().enumerate() {
                    let u = planes[i];
                    // m = all-ones iff p-bit is 1: below p only possible
                    // where the p-bit is 1 and the u-bit is 0; tied where
                    // they match.
                    let m = (bits[off + i] as u64).wrapping_neg();
                    *l = (!u & m, u ^ !m);
                }
                combine(
                    combine(combine(leaf[0], leaf[1]), combine(leaf[2], leaf[3])),
                    combine(combine(leaf[4], leaf[5]), combine(leaf[6], leaf[7])),
                )
            }
            let (lt_h, eq_h) = tree8(hi_bits, self.planes_used, planes);
            let (lt_l, eq_l) = tree8(lo_bits, self.planes_used, planes);
            self.acc_hi |= self.und_hi & lt_h;
            self.und_hi &= eq_h;
            self.acc_lo |= self.und_lo & lt_l;
            self.und_lo &= eq_l;
        }
        self.planes_used += 8;
    }

    /// One vectorized RNG batch worth of planes — sixteen — folded as two
    /// [`Self::feed_tree8`] trees with the second skipped when the first
    /// already decided every lane in `need_hi`/`need_lo`. Semantically
    /// exactly
    /// `feed_tree8(..planes[..8]); if undecided { feed_tree8(..planes[8..]) }`,
    /// but on x86_64 the comparison state stays in one xmm register across
    /// both trees and the short-circuit test instead of being packed and
    /// unpacked per call — this is the hot path of the multi-spin sweep,
    /// where a word is decided by the first tree ~75 % of the time.
    #[inline]
    pub fn feed_tree16(
        &mut self,
        hi_bits: &[bool],
        lo_bits: &[bool],
        planes: &[u64; 16],
        need_hi: u64,
        need_lo: u64,
    ) {
        debug_assert!(self.planes_used + 16 <= hi_bits.len());
        debug_assert_eq!(hi_bits.len(), lo_bits.len());
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 intrinsics, unconditionally available on x86_64.
        unsafe {
            use std::arch::x86_64::*;
            #[inline(always)]
            unsafe fn combine(a: (__m128i, __m128i), b: (__m128i, __m128i)) -> (__m128i, __m128i) {
                (_mm_or_si128(a.0, _mm_and_si128(a.1, b.0)), _mm_and_si128(a.1, b.1))
            }
            #[inline(always)]
            unsafe fn tree8(
                hi_bits: &[bool],
                lo_bits: &[bool],
                off: usize,
                planes: &[u64],
            ) -> (__m128i, __m128i) {
                let ones = _mm_set1_epi64x(-1);
                let mut leaf = [(ones, ones); 8];
                for (i, l) in leaf.iter_mut().enumerate() {
                    let u = _mm_set1_epi64x(planes[i] as i64);
                    let m = _mm_set_epi64x(-(hi_bits[off + i] as i64), -(lo_bits[off + i] as i64));
                    *l = (_mm_andnot_si128(u, m), _mm_xor_si128(u, _mm_xor_si128(m, ones)));
                }
                combine(
                    combine(combine(leaf[0], leaf[1]), combine(leaf[2], leaf[3])),
                    combine(combine(leaf[4], leaf[5]), combine(leaf[6], leaf[7])),
                )
            }
            let off = self.planes_used;
            let (lt, eq) = tree8(hi_bits, lo_bits, off, &planes[..8]);
            let mut und = _mm_set_epi64x(self.und_hi as i64, self.und_lo as i64);
            let mut acc = _mm_set_epi64x(self.acc_hi as i64, self.acc_lo as i64);
            acc = _mm_or_si128(acc, _mm_and_si128(und, lt));
            und = _mm_and_si128(und, eq);
            let need = _mm_set_epi64x(need_hi as i64, need_lo as i64);
            let live = _mm_and_si128(und, need);
            // SSE2 all-zero test: every byte compares equal to zero
            let decided = _mm_movemask_epi8(_mm_cmpeq_epi8(live, _mm_setzero_si128())) == 0xFFFF;
            if decided {
                self.planes_used = off + 8;
            } else {
                let (lt, eq) = tree8(hi_bits, lo_bits, off + 8, &planes[8..]);
                acc = _mm_or_si128(acc, _mm_and_si128(und, lt));
                und = _mm_and_si128(und, eq);
                self.planes_used = off + 16;
            }
            self.acc_lo = _mm_cvtsi128_si64(acc) as u64;
            self.acc_hi = _mm_cvtsi128_si64(_mm_unpackhi_epi64(acc, acc)) as u64;
            self.und_lo = _mm_cvtsi128_si64(und) as u64;
            self.und_hi = _mm_cvtsi128_si64(_mm_unpackhi_epi64(und, und)) as u64;
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            self.feed_tree8(hi_bits, lo_bits, planes[..8].try_into().expect("8 planes"));
            if self.undecided(need_hi, need_lo) {
                self.feed_tree8(hi_bits, lo_bits, planes[8..].try_into().expect("8 planes"));
            }
        }
    }

    /// The accept masks accumulated so far `(hi, lo)`; final once
    /// [`Self::undecided`] is false for the caller's need sets (undecided
    /// lanes read as reject, matching the strict `U < p` comparison).
    #[inline]
    pub fn masks(&self) -> (u64, u64) {
        (self.acc_hi, self.acc_lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reconstruct the probability an expansion encodes.
    fn value_of(bits: &[bool]) -> f64 {
        bits.iter()
            .enumerate()
            .map(|(i, &b)| if b { 2f64.powi(-(i as i32 + 1)) } else { 0.0 })
            .sum()
    }

    #[test]
    fn expansion_roundtrips_within_half_ulp() {
        for p in [0.0, 0.5, 0.25, 0.75, 0.123456, 0.9999] {
            let x = value_of(&expand(p));
            assert!((x - p).abs() <= 2f64.powi(-(BERNOULLI_BITS as i32 + 1)), "p={p} got {x}");
        }
    }

    #[test]
    fn expansion_rounds_to_nearest_on_known_betas() {
        // The acceptance probabilities the Ising sweep actually uses. A
        // truncating expansion is below p·2²⁴ whenever the fraction is
        // nonzero; round-to-nearest must land on the nearest grid point.
        for beta in [0.2f64, 0.4, 0.44, 0.4406868, 0.6, 1.0] {
            for p in [(-8.0 * beta).exp(), (-4.0 * beta).exp()] {
                let q = (p * 2f64.powi(24)).round();
                let got = value_of(&expand(p)) * 2f64.powi(24);
                assert_eq!(got, q, "β-derived p={p} encoded {got}, want {q}");
            }
        }
    }

    #[test]
    fn truncation_bias_regression() {
        // p chosen so the 24-bit fraction is > 1/2: truncation loses a full
        // 2⁻²⁴ here, rounding must go up.
        let p = (1000.0 + 0.75) / 2f64.powi(24);
        let got = value_of(&expand(p)) * 2f64.powi(24);
        assert_eq!(got, 1001.0, "expansion must round up, not truncate");
    }

    #[test]
    fn expansion_saturates_near_one() {
        let bits = expand(1.0);
        assert!(bits.iter().all(|&b| b), "p=1 must saturate to all-ones");
    }

    #[test]
    fn mask_density_matches_p() {
        let mut rng = PhiloxStream::from_seed(7);
        for &p in &[0.1f64, 0.5, 0.9] {
            let bits = expand(p);
            let mut ones = 0u64;
            let trials = 4000;
            for _ in 0..trials {
                ones += bernoulli_mask(&bits, &mut rng).count_ones() as u64;
            }
            let density = ones as f64 / (64.0 * trials as f64);
            // σ ≈ sqrt(p(1-p)/(64·4000)) ≈ 1e-3; allow 5σ
            assert!((density - p).abs() < 5e-3, "p={p} density={density}");
        }
    }

    #[test]
    fn mask_extremes() {
        let mut rng = PhiloxStream::from_seed(3);
        assert_eq!(bernoulli_mask(&expand(0.0), &mut rng), 0);
        let m = bernoulli_mask(&expand(1.0 - 2f64.powi(-24)), &mut rng);
        assert!(m.count_ones() >= 60);
    }

    #[test]
    fn dual_masks_match_single_threshold_builders() {
        // With identical thresholds and full need sets, the dual builder
        // consumes the same planes and must reproduce the single builder.
        let bits = expand(0.37);
        let mut seq = PhiloxStream::from_seed(11);
        let single = bernoulli_mask(&bits, &mut seq);
        let mut seq = PhiloxStream::from_seed(11);
        let (hi, lo) = bernoulli_masks_dual(&bits, &bits, !0, !0, || seq.next_u64());
        assert_eq!(hi, lo);
        assert_eq!(hi, single);
    }

    #[test]
    fn dual_masks_are_nested() {
        // U < p_lo ⇒ U < p_hi, so on fully-decided lanes lo ⊆ hi.
        let hi = expand(0.8);
        let lo = expand(0.15);
        let mut seq = PhiloxStream::from_seed(23);
        for _ in 0..2000 {
            let (mhi, mlo) = bernoulli_masks_dual(&hi, &lo, !0, !0, || seq.next_u64());
            assert_eq!(mlo & !mhi, 0, "lo mask must be a subset of hi mask");
        }
    }

    #[test]
    fn dual_masks_have_correct_densities() {
        let hi = expand(0.6);
        let lo = expand(0.05);
        let mut seq = PhiloxStream::from_seed(5);
        let trials = 4000;
        let (mut ones_hi, mut ones_lo) = (0u64, 0u64);
        for _ in 0..trials {
            let (mhi, mlo) = bernoulli_masks_dual(&hi, &lo, !0, !0, || seq.next_u64());
            ones_hi += mhi.count_ones() as u64;
            ones_lo += mlo.count_ones() as u64;
        }
        let n = 64.0 * trials as f64;
        assert!((ones_hi as f64 / n - 0.6).abs() < 5e-3);
        assert!((ones_lo as f64 / n - 0.05).abs() < 3e-3);
    }

    #[test]
    fn tree_feed_is_bit_identical_to_serial_feed() {
        // feed_tree8 must be an evaluation-order optimization only: same
        // accept masks and same undecided state as plane-by-plane feeds.
        let hi = expand(0.37);
        let lo = expand(0.004);
        let mut seq = PhiloxStream::from_seed(99);
        for _ in 0..500 {
            let mut planes = [0u64; 16];
            for p in planes.iter_mut() {
                *p = seq.next_u64();
            }
            let mut serial = DualMaskBuilder::new();
            serial.feed(&hi, &lo, &planes);
            let mut tree = DualMaskBuilder::new();
            tree.feed_tree8(&hi, &lo, planes[..8].try_into().unwrap());
            tree.feed_tree8(&hi, &lo, planes[8..].try_into().unwrap());
            assert_eq!(serial.masks(), tree.masks());
            assert_eq!(serial.undecided(!0, !0), tree.undecided(!0, !0));
            assert_eq!(serial.planes_used(), tree.planes_used());
        }
    }

    #[test]
    fn tree16_matches_conditional_tree8_pair() {
        // feed_tree16 = first tree, then the second only if a needed lane
        // is still undecided — including the consumed-plane count, which
        // determines which expansion bits any later refill planes meet.
        let hi = expand(0.37);
        let lo = expand(0.004);
        let mut seq = PhiloxStream::from_seed(1234);
        for trial in 0..500 {
            let mut planes = [0u64; 16];
            for p in planes.iter_mut() {
                *p = seq.next_u64();
            }
            // vary the need sets: full, sparse, disjoint, empty
            let (need_hi, need_lo) = match trial % 4 {
                0 => (!0u64, !0u64),
                1 => (seq.next_u64(), seq.next_u64()),
                2 => (seq.next_u64(), 0),
                _ => (0, 0),
            };
            let mut reference = DualMaskBuilder::new();
            reference.feed_tree8(&hi, &lo, planes[..8].try_into().unwrap());
            if reference.undecided(need_hi, need_lo) {
                reference.feed_tree8(&hi, &lo, planes[8..].try_into().unwrap());
            }
            let mut fused = DualMaskBuilder::new();
            fused.feed_tree16(&hi, &lo, &planes, need_hi, need_lo);
            assert_eq!(reference.masks(), fused.masks());
            assert_eq!(reference.planes_used(), fused.planes_used());
            assert_eq!(reference.undecided(need_hi, need_lo), fused.undecided(need_hi, need_lo));
        }
    }

    #[test]
    fn dual_need_masks_stop_early_but_agree_on_needed_lanes() {
        // Restricting the need sets must not change the bits inside them.
        let hi = expand(0.4);
        let lo = expand(0.02);
        for seed in 0..50u64 {
            let need_hi = 0xFFFF_0000_FFFF_0000u64;
            let need_lo = !need_hi;
            let mut a = PhiloxStream::from_seed(seed);
            let (fh, fl) = bernoulli_masks_dual(&hi, &lo, !0, !0, || a.next_u64());
            let mut b = PhiloxStream::from_seed(seed);
            let (nh, nl) = bernoulli_masks_dual(&hi, &lo, need_hi, need_lo, || b.next_u64());
            assert_eq!(fh & need_hi, nh & need_hi);
            assert_eq!(fl & need_lo, nl & need_lo);
        }
    }
}
