//! Bit-sliced Bernoulli masks for multi-spin coding.
//!
//! Multi-spin coding packs 64 independent replicas into one `u64` and
//! advances all of them with bitwise arithmetic, so it needs a *vector* of
//! 64 independent Bernoulli(p) draws per packed site — as a single word.
//! The bit-sliced construction compares a uniform `U` against `p` one
//! binary digit at a time, across all 64 lanes simultaneously: plane `i`
//! of the uniforms (one random word) is compared against bit `i` of `p`'s
//! binary expansion, and a lane is decided at the first plane where they
//! differ. Expected cost is ~2 planes per *lane*, but the loop runs until
//! the last undecided lane resolves (≈ log₂64 + 2 planes per word) — still
//! far below one random word per replica-spin.
//!
//! This module is the single shared implementation used by both the
//! `baseline` toy sweeper and the production engine in `core`; the mask
//! builders are generic over the plane source so sequential streams
//! ([`crate::PhiloxStream`]) and counter-addressed site-keyed generators
//! plug in equally.

use crate::simd::SimdIsa;
use crate::PhiloxStream;

/// Resolution (random bit-planes) of the Bernoulli masks: 24 bits, the
/// entropy of an f32-derived uniform.
pub const BERNOULLI_BITS: u32 = 24;

/// MSB-first binary expansion of `p ∈ [0, 1]`, **rounded to nearest** at
/// [`BERNOULLI_BITS`] bits.
///
/// The realized acceptance probability is `round(p·2²⁴)/2²⁴`, within
/// `2⁻²⁵` of `p` — truncating instead (as the first implementation did)
/// biases every acceptance *down* by up to `2⁻²⁴`. Probabilities that
/// round up to exactly 1 saturate at `1 − 2⁻²⁴` (24 bits cannot express
/// 1.0); only `p > 1 − 2⁻²⁵` is affected.
pub fn expand(p: f64) -> [bool; BERNOULLI_BITS as usize] {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    let scale = (1u64 << BERNOULLI_BITS) as f64;
    let q = ((p * scale).round() as u64).min((1 << BERNOULLI_BITS) - 1) as u32;
    let mut bits = [false; BERNOULLI_BITS as usize];
    for (i, b) in bits.iter_mut().enumerate() {
        *b = (q >> (BERNOULLI_BITS as usize - 1 - i)) & 1 == 1;
    }
    bits
}

/// Build a word whose 64 bits are independently 1 with probability `p`
/// (given by its [`expand`]-ed bits), drawing one random plane per
/// consumed bit-plane from `next_plane`.
///
/// Lane semantics: compare a uniform `U` (bit-planes MSB first) against
/// `p`; the lane accepts iff `U < p`, decided at the first plane where
/// they differ. Exactly-equal lanes (probability `2⁻²⁴`) reject — the
/// comparison is strict, matching `u < p` on f32 uniforms.
pub fn bernoulli_mask_with(bits: &[bool], mut next_plane: impl FnMut() -> u64) -> u64 {
    let mut accept: u64 = 0;
    let mut undecided: u64 = !0;
    for &pb in bits {
        let u = next_plane();
        if pb {
            // p-bit 1: lanes with u-bit 0 accept; u-bit 1 stays undecided
            accept |= undecided & !u;
            undecided &= u;
        } else {
            // p-bit 0: lanes with u-bit 1 reject; u-bit 0 stays undecided
            undecided &= !u;
        }
        if undecided == 0 {
            break;
        }
    }
    accept
}

/// [`bernoulli_mask_with`] drawing planes from a sequential Philox stream.
pub fn bernoulli_mask(bits: &[bool], rng: &mut PhiloxStream) -> u64 {
    bernoulli_mask_with(bits, || rng.next_u64())
}

/// Build **two** Bernoulli masks (probabilities `hi` ≥ `lo`, same length
/// expansions) from **one shared sequence of uniform planes**, stopping as
/// soon as every lane *someone needs* is decided.
///
/// `need_hi` / `need_lo` flag the lanes whose `hi` / `lo` bit the caller
/// will actually consume; bits outside a mask's need set are unspecified.
/// Sharing the planes halves the RNG cost of a two-threshold Metropolis
/// update and is statistically exact **provided each lane consumes at most
/// one of the two masks**, with the choice made independently of the
/// uniforms (in the Ising update the neighborhood decides which threshold
/// applies, so the condition holds). For any single lane the returned bit
/// is exactly `[U < p]` for its consumed threshold.
pub fn bernoulli_masks_dual(
    hi_bits: &[bool],
    lo_bits: &[bool],
    need_hi: u64,
    need_lo: u64,
    mut next_plane: impl FnMut() -> u64,
) -> (u64, u64) {
    debug_assert_eq!(hi_bits.len(), lo_bits.len());
    let mut b = DualMaskBuilder::new();
    while b.planes_used() < hi_bits.len() && b.undecided(need_hi, need_lo) {
        b.feed(hi_bits, lo_bits, &[next_plane()]);
    }
    b.masks()
}

/// Incremental dual-threshold mask construction: the state of the
/// [`bernoulli_masks_dual`] comparison, exposed so callers that *batch*
/// their uniform planes (e.g. interleaved counter-based Philox blocks,
/// whose independent 10-round chains pipeline ~2× better than serial
/// draws) can feed several planes in one straight-line, branch-free pass
/// and poll for completion between batches rather than per plane.
///
/// Plane `i` fed (in order, across all `feed` calls) is compared against
/// bit `i` of the two expansions; the accept/undecided lane semantics are
/// exactly those of [`bernoulli_mask_with`], per threshold.
#[derive(Clone, Copy, Debug)]
pub struct DualMaskBuilder {
    acc_hi: u64,
    und_hi: u64,
    acc_lo: u64,
    und_lo: u64,
    planes_used: usize,
}

impl DualMaskBuilder {
    /// Fresh state: nothing accepted, every lane of both masks undecided.
    #[allow(clippy::new_without_default)]
    #[inline]
    pub fn new() -> Self {
        DualMaskBuilder { acc_hi: 0, und_hi: !0, acc_lo: 0, und_lo: !0, planes_used: 0 }
    }

    /// Planes consumed so far (= the expansion bit the next plane meets).
    #[inline]
    pub fn planes_used(&self) -> usize {
        self.planes_used
    }

    /// True while some lane a caller cares about is still undecided in the
    /// mask it will consume.
    #[inline]
    pub fn undecided(&self, need_hi: u64, need_lo: u64) -> bool {
        (self.und_hi & need_hi) | (self.und_lo & need_lo) != 0
    }

    /// Compare a batch of uniform planes against the next expansion bits.
    /// Branch-free: the per-plane p-bit select is a mask blend, so the
    /// whole batch schedules as one straight line of bitwise ops.
    #[inline]
    pub fn feed(&mut self, hi_bits: &[bool], lo_bits: &[bool], planes: &[u64]) {
        debug_assert!(self.planes_used + planes.len() <= hi_bits.len());
        debug_assert_eq!(hi_bits.len(), lo_bits.len());
        let hi = hi_bits[self.planes_used..].iter();
        let lo = lo_bits[self.planes_used..].iter();
        for ((&u, &hb), &lb) in planes.iter().zip(hi).zip(lo) {
            // mh = all-ones iff the hi p-bit is 1; then und &= u (keep
            // ties), else und &= !u (reject) — blended without branching.
            let mh = (hb as u64).wrapping_neg();
            let ml = (lb as u64).wrapping_neg();
            self.acc_hi |= self.und_hi & !u & mh;
            self.und_hi &= u ^ !mh;
            self.acc_lo |= self.und_lo & !u & ml;
            self.und_lo &= u ^ !ml;
        }
        self.planes_used += planes.len();
    }

    /// Compare eight planes at once by folding the lane-wise comparison
    /// as a balanced tree instead of a serial scan. Per plane the
    /// comparison state is `(lt, eq)` — "already decided less" and "still
    /// tied" — and two segments combine associatively as
    /// `(ltA | eqA·ltB, eqA·eqB)`, so eight planes reduce in depth 3
    /// rather than a chain of eight dependent updates. Because the
    /// combine is associative, *any* association order — scalar chain,
    /// SSE2 pairs, AVX2 quads, AVX-512 octets — produces bit-identical
    /// masks; the kernel is picked once per process by [`tree_feed`].
    #[inline]
    pub fn feed_tree8(&mut self, hi_bits: &[bool], lo_bits: &[bool], planes: &[u64; 8]) {
        self.feed_tree8_with(tree_feed(), hi_bits, lo_bits, planes)
    }

    /// [`Self::feed_tree8`] through an explicit kernel set instead of the
    /// process-wide dispatch table. Differential tests use this to run
    /// several ISA tiers side by side in one process.
    #[inline]
    pub fn feed_tree8_with(
        &mut self,
        kernels: &TreeFeed,
        hi_bits: &[bool],
        lo_bits: &[bool],
        planes: &[u64; 8],
    ) {
        debug_assert!(self.planes_used + 8 <= hi_bits.len());
        debug_assert_eq!(hi_bits.len(), lo_bits.len());
        (kernels.feed8)(self, hi_bits, lo_bits, planes)
    }

    /// One vectorized RNG batch worth of planes — sixteen — folded as two
    /// [`Self::feed_tree8`] trees with the second skipped when the first
    /// already decided every lane in `need_hi`/`need_lo`. Semantically
    /// exactly
    /// `feed_tree8(..planes[..8]); if undecided { feed_tree8(..planes[8..]) }`,
    /// but the vector kernels keep the comparison state in registers
    /// across both trees and the short-circuit test instead of packing
    /// and unpacking per call — this is the hot path of the multi-spin
    /// sweep, where a word is decided by the first tree ~75 % of the time.
    #[inline]
    pub fn feed_tree16(
        &mut self,
        hi_bits: &[bool],
        lo_bits: &[bool],
        planes: &[u64; 16],
        need_hi: u64,
        need_lo: u64,
    ) {
        self.feed_tree16_with(tree_feed(), hi_bits, lo_bits, planes, need_hi, need_lo)
    }

    /// [`Self::feed_tree16`] through an explicit kernel set — see
    /// [`Self::feed_tree8_with`].
    #[inline]
    pub fn feed_tree16_with(
        &mut self,
        kernels: &TreeFeed,
        hi_bits: &[bool],
        lo_bits: &[bool],
        planes: &[u64; 16],
        need_hi: u64,
        need_lo: u64,
    ) {
        debug_assert!(self.planes_used + 16 <= hi_bits.len());
        debug_assert_eq!(hi_bits.len(), lo_bits.len());
        (kernels.feed16)(self, hi_bits, lo_bits, planes, need_hi, need_lo)
    }

    /// The accept masks accumulated so far `(hi, lo)`; final once
    /// [`Self::undecided`] is false for the caller's need sets (undecided
    /// lanes read as reject, matching the strict `U < p` comparison).
    #[inline]
    pub fn masks(&self) -> (u64, u64) {
        (self.acc_hi, self.acc_lo)
    }
}

// ---------------------------------------------------------------------------
// Runtime-dispatched tree-feed kernels
//
// Four implementations of the same fold, one per ISA tier. The comparison
// combine `(ltA | eqA·ltB, eqA·eqB)` is associative, so the tiers differ
// only in how many (threshold, plane) pairs ride one register — 1 per u64
// (scalar), 2 per xmm (SSE2), 4 per ymm (AVX2), 8 per zmm (AVX-512) — and
// in which association order the final reduction uses. Every tier is
// bit-identical to the serial `feed` by construction, which the
// differential test below pins for whatever the host can execute.
// ---------------------------------------------------------------------------

/// Signature of an unconditional 8-plane feed kernel.
type Feed8Fn = fn(&mut DualMaskBuilder, &[bool], &[bool], &[u64; 8]);
/// Signature of a need-gated 16-plane feed kernel.
type Feed16Fn = fn(&mut DualMaskBuilder, &[bool], &[bool], &[u64; 16], u64, u64);

/// The tree-feed kernel set for one ISA tier. Obtain the process-wide
/// dispatched set with [`tree_feed`], or a specific tier (for tests and
/// benchmarks) with [`TreeFeed::try_for_isa`].
#[derive(Clone, Copy)]
pub struct TreeFeed {
    /// The tier these kernels run at.
    pub isa: SimdIsa,
    feed8: Feed8Fn,
    feed16: Feed16Fn,
}

/// The portable tier, available everywhere.
const SCALAR_FEED: TreeFeed =
    TreeFeed { isa: SimdIsa::Scalar, feed8: feed8_scalar, feed16: feed16_scalar };

impl TreeFeed {
    /// The kernel set for `isa`, or `None` when this CPU cannot execute
    /// that tier (differential tests iterate all tiers and skip the
    /// unsupported ones).
    pub fn try_for_isa(isa: SimdIsa) -> Option<TreeFeed> {
        if isa > crate::simd::native_isa() {
            return None;
        }
        match isa {
            SimdIsa::Scalar => Some(SCALAR_FEED),
            #[cfg(target_arch = "x86_64")]
            SimdIsa::Sse2 => Some(TreeFeed { isa, feed8: feed8_sse2, feed16: feed16_sse2 }),
            #[cfg(target_arch = "x86_64")]
            SimdIsa::Avx2 => Some(TreeFeed { isa, feed8: feed8_avx2, feed16: feed16_avx2 }),
            #[cfg(target_arch = "x86_64")]
            SimdIsa::Avx512 => Some(TreeFeed { isa, feed8: feed8_avx512, feed16: feed16_avx512 }),
            #[cfg(not(target_arch = "x86_64"))]
            _ => None,
        }
    }
}

/// The process-wide tree-feed dispatch table: resolved once from
/// [`crate::simd::isa`] (native detection clamped by the
/// [`crate::simd::FORCE_ENV`] override), then a plain function-pointer
/// pair for the life of the process.
pub fn tree_feed() -> &'static TreeFeed {
    use std::sync::OnceLock;
    static TABLE: OnceLock<TreeFeed> = OnceLock::new();
    TABLE.get_or_init(|| TreeFeed::try_for_isa(crate::simd::isa()).unwrap_or(SCALAR_FEED))
}

/// Compile-time handle on one tier's tree-feed kernels.
///
/// [`TreeFeed`]'s function pointers are right for occasional calls, but a
/// pointer call is an optimization barrier: the builder state round-trips
/// through memory and the threshold vectors are rebuilt from the `&[bool]`
/// expansions on every call. A hot loop that is *monomorphized* over one
/// of the zero-sized types below — and, for the AVX tiers, wrapped in a
/// matching `#[target_feature]` outer function — lets LLVM inline the
/// whole feed, keep `(acc, und)` in registers, and hoist the threshold
/// loads out of the loop. The multi-spin sweep dispatches once per color
/// update and runs each row tile through such a monomorphized body.
///
/// The methods are `unsafe fn`: the caller promises the tier's CPU
/// features are available, which holds whenever the tier was picked by
/// [`crate::simd::isa`] / [`TreeFeed::try_for_isa`] (both clamp to what
/// the host detected).
pub trait TreeFeedKernel {
    /// The tier these kernels run at.
    const ISA: SimdIsa;

    /// [`DualMaskBuilder::feed_tree8`] through this tier's kernel.
    ///
    /// # Safety
    /// The CPU must support [`Self::ISA`].
    unsafe fn feed8(b: &mut DualMaskBuilder, hi_bits: &[bool], lo_bits: &[bool], planes: &[u64; 8]);

    /// [`DualMaskBuilder::feed_tree16`] through this tier's kernel.
    ///
    /// # Safety
    /// The CPU must support [`Self::ISA`].
    unsafe fn feed16(
        b: &mut DualMaskBuilder,
        hi_bits: &[bool],
        lo_bits: &[bool],
        planes: &[u64; 16],
        need_hi: u64,
        need_lo: u64,
    );
}

/// [`TreeFeedKernel`] for the portable tier.
pub struct ScalarTree;

impl TreeFeedKernel for ScalarTree {
    const ISA: SimdIsa = SimdIsa::Scalar;

    #[inline(always)]
    unsafe fn feed8(b: &mut DualMaskBuilder, hi: &[bool], lo: &[bool], planes: &[u64; 8]) {
        feed8_scalar(b, hi, lo, planes)
    }

    #[inline(always)]
    unsafe fn feed16(
        b: &mut DualMaskBuilder,
        hi: &[bool],
        lo: &[bool],
        planes: &[u64; 16],
        need_hi: u64,
        need_lo: u64,
    ) {
        feed16_scalar(b, hi, lo, planes, need_hi, need_lo)
    }
}

/// [`TreeFeedKernel`] for the SSE2 tier (x86_64 baseline).
#[cfg(target_arch = "x86_64")]
pub struct Sse2Tree;

#[cfg(target_arch = "x86_64")]
impl TreeFeedKernel for Sse2Tree {
    const ISA: SimdIsa = SimdIsa::Sse2;

    #[inline(always)]
    unsafe fn feed8(b: &mut DualMaskBuilder, hi: &[bool], lo: &[bool], planes: &[u64; 8]) {
        feed8_sse2(b, hi, lo, planes)
    }

    #[inline(always)]
    unsafe fn feed16(
        b: &mut DualMaskBuilder,
        hi: &[bool],
        lo: &[bool],
        planes: &[u64; 16],
        need_hi: u64,
        need_lo: u64,
    ) {
        feed16_sse2(b, hi, lo, planes, need_hi, need_lo)
    }
}

/// [`TreeFeedKernel`] for the AVX2 tier. Call only from an
/// `#[target_feature(enable = "avx2")]` context (or after detection).
#[cfg(target_arch = "x86_64")]
pub struct Avx2Tree;

#[cfg(target_arch = "x86_64")]
impl TreeFeedKernel for Avx2Tree {
    const ISA: SimdIsa = SimdIsa::Avx2;

    #[inline(always)]
    unsafe fn feed8(b: &mut DualMaskBuilder, hi: &[bool], lo: &[bool], planes: &[u64; 8]) {
        feed8_avx2_impl(b, hi, lo, planes)
    }

    #[inline(always)]
    unsafe fn feed16(
        b: &mut DualMaskBuilder,
        hi: &[bool],
        lo: &[bool],
        planes: &[u64; 16],
        need_hi: u64,
        need_lo: u64,
    ) {
        feed16_avx2_impl(b, hi, lo, planes, need_hi, need_lo)
    }
}

/// [`TreeFeedKernel`] for the AVX-512 tier. Call only from an
/// `#[target_feature(enable = "avx512f,avx512vl")]` context.
#[cfg(target_arch = "x86_64")]
pub struct Avx512Tree;

#[cfg(target_arch = "x86_64")]
impl TreeFeedKernel for Avx512Tree {
    const ISA: SimdIsa = SimdIsa::Avx512;

    #[inline(always)]
    unsafe fn feed8(b: &mut DualMaskBuilder, hi: &[bool], lo: &[bool], planes: &[u64; 8]) {
        feed8_avx512_impl(b, hi, lo, planes)
    }

    #[inline(always)]
    unsafe fn feed16(
        b: &mut DualMaskBuilder,
        hi: &[bool],
        lo: &[bool],
        planes: &[u64; 16],
        need_hi: u64,
        need_lo: u64,
    ) {
        feed16_avx512_impl(b, hi, lo, planes, need_hi, need_lo)
    }
}

// ---- scalar tier: one (threshold, plane) pair per u64 op --------------------

/// Scalar `(lt, eq)` segment combine.
#[inline(always)]
fn combine_scalar(a: (u64, u64), b: (u64, u64)) -> (u64, u64) {
    (a.0 | (a.1 & b.0), a.1 & b.1)
}

/// Depth-3 fold of eight planes against one threshold expansion.
#[inline(always)]
fn tree8_scalar(bits: &[bool], off: usize, planes: &[u64]) -> (u64, u64) {
    let mut leaf = [(0u64, 0u64); 8];
    for (i, l) in leaf.iter_mut().enumerate() {
        let u = planes[i];
        // m = all-ones iff p-bit is 1: below p only possible where the
        // p-bit is 1 and the u-bit is 0; tied where they match.
        let m = (bits[off + i] as u64).wrapping_neg();
        *l = (!u & m, u ^ !m);
    }
    combine_scalar(
        combine_scalar(combine_scalar(leaf[0], leaf[1]), combine_scalar(leaf[2], leaf[3])),
        combine_scalar(combine_scalar(leaf[4], leaf[5]), combine_scalar(leaf[6], leaf[7])),
    )
}

#[inline]
fn feed8_scalar(b: &mut DualMaskBuilder, hi_bits: &[bool], lo_bits: &[bool], planes: &[u64; 8]) {
    let (lt_h, eq_h) = tree8_scalar(hi_bits, b.planes_used, planes);
    let (lt_l, eq_l) = tree8_scalar(lo_bits, b.planes_used, planes);
    b.acc_hi |= b.und_hi & lt_h;
    b.und_hi &= eq_h;
    b.acc_lo |= b.und_lo & lt_l;
    b.und_lo &= eq_l;
    b.planes_used += 8;
}

#[inline]
fn feed16_scalar(
    b: &mut DualMaskBuilder,
    hi_bits: &[bool],
    lo_bits: &[bool],
    planes: &[u64; 16],
    need_hi: u64,
    need_lo: u64,
) {
    feed8_scalar(b, hi_bits, lo_bits, planes[..8].try_into().expect("8 planes"));
    if b.undecided(need_hi, need_lo) {
        feed8_scalar(b, hi_bits, lo_bits, planes[8..].try_into().expect("8 planes"));
    }
}

// ---- SSE2 tier: hi and lo thresholds in the two lanes of one xmm -----------

#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn combine128(
    a: (std::arch::x86_64::__m128i, std::arch::x86_64::__m128i),
    b: (std::arch::x86_64::__m128i, std::arch::x86_64::__m128i),
) -> (std::arch::x86_64::__m128i, std::arch::x86_64::__m128i) {
    use std::arch::x86_64::*;
    (_mm_or_si128(a.0, _mm_and_si128(a.1, b.0)), _mm_and_si128(a.1, b.1))
}

/// Eight planes × both thresholds in one xmm: lane 0 carries the lo
/// threshold, lane 1 the hi — one tree decides both, halving the combine
/// count against running the scalar tree twice.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn tree8_sse2(
    hi_bits: &[bool],
    lo_bits: &[bool],
    off: usize,
    planes: &[u64],
) -> (std::arch::x86_64::__m128i, std::arch::x86_64::__m128i) {
    use std::arch::x86_64::*;
    let ones = _mm_set1_epi64x(-1);
    let mut leaf = [(ones, ones); 8];
    for (i, l) in leaf.iter_mut().enumerate() {
        let u = _mm_set1_epi64x(planes[i] as i64);
        // per lane: m = all-ones iff that threshold's p-bit is 1; below p
        // only where the p-bit is 1 and the u-bit is 0, tied where they
        // match: (lt, eq) = (!u & m, u ^ !m)
        let m = _mm_set_epi64x(-(hi_bits[off + i] as i64), -(lo_bits[off + i] as i64));
        *l = (_mm_andnot_si128(u, m), _mm_xor_si128(u, _mm_xor_si128(m, ones)));
    }
    combine128(
        combine128(combine128(leaf[0], leaf[1]), combine128(leaf[2], leaf[3])),
        combine128(combine128(leaf[4], leaf[5]), combine128(leaf[6], leaf[7])),
    )
}

/// Unpack an xmm `(acc, und)` pair back into the builder fields.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn store_state128(
    b: &mut DualMaskBuilder,
    acc: std::arch::x86_64::__m128i,
    und: std::arch::x86_64::__m128i,
) {
    use std::arch::x86_64::*;
    b.acc_lo = _mm_cvtsi128_si64(acc) as u64;
    b.acc_hi = _mm_cvtsi128_si64(_mm_unpackhi_epi64(acc, acc)) as u64;
    b.und_lo = _mm_cvtsi128_si64(und) as u64;
    b.und_hi = _mm_cvtsi128_si64(_mm_unpackhi_epi64(und, und)) as u64;
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn feed8_sse2(b: &mut DualMaskBuilder, hi_bits: &[bool], lo_bits: &[bool], planes: &[u64; 8]) {
    // SAFETY: SSE2 intrinsics, unconditionally available on x86_64.
    unsafe {
        use std::arch::x86_64::*;
        let (lt, eq) = tree8_sse2(hi_bits, lo_bits, b.planes_used, planes);
        let und = _mm_set_epi64x(b.und_hi as i64, b.und_lo as i64);
        let acc = _mm_set_epi64x(b.acc_hi as i64, b.acc_lo as i64);
        let acc = _mm_or_si128(acc, _mm_and_si128(und, lt));
        let und = _mm_and_si128(und, eq);
        store_state128(b, acc, und);
    }
    b.planes_used += 8;
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn feed16_sse2(
    b: &mut DualMaskBuilder,
    hi_bits: &[bool],
    lo_bits: &[bool],
    planes: &[u64; 16],
    need_hi: u64,
    need_lo: u64,
) {
    // SAFETY: SSE2 intrinsics, unconditionally available on x86_64.
    unsafe {
        use std::arch::x86_64::*;
        let off = b.planes_used;
        let (lt, eq) = tree8_sse2(hi_bits, lo_bits, off, &planes[..8]);
        let mut und = _mm_set_epi64x(b.und_hi as i64, b.und_lo as i64);
        let mut acc = _mm_set_epi64x(b.acc_hi as i64, b.acc_lo as i64);
        acc = _mm_or_si128(acc, _mm_and_si128(und, lt));
        und = _mm_and_si128(und, eq);
        let need = _mm_set_epi64x(need_hi as i64, need_lo as i64);
        let live = _mm_and_si128(und, need);
        // SSE2 all-zero test: every byte compares equal to zero
        let decided = _mm_movemask_epi8(_mm_cmpeq_epi8(live, _mm_setzero_si128())) == 0xFFFF;
        if decided {
            b.planes_used = off + 8;
        } else {
            let (lt, eq) = tree8_sse2(hi_bits, lo_bits, off + 8, &planes[8..]);
            acc = _mm_or_si128(acc, _mm_and_si128(und, lt));
            und = _mm_and_si128(und, eq);
            b.planes_used = off + 16;
        }
        store_state128(b, acc, und);
    }
}

// ---- AVX2 tier: two threshold pairs (four lanes) per ymm -------------------

/// Eight planes × both thresholds with four lanes per register: leaf `k`
/// holds plane `k` in its low xmm half and plane `k+4` in its high half,
/// each as the SSE2 `[lo, hi]` lane pair. Three 256-bit combines fold the
/// pairs, then one cross-half 128-bit combine joins planes 0–3 with 4–7 —
/// the same association tree as SSE2 at half the combine count.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn tree8_avx2(
    hi_bits: &[bool],
    lo_bits: &[bool],
    off: usize,
    planes: &[u64],
) -> (std::arch::x86_64::__m128i, std::arch::x86_64::__m128i) {
    use std::arch::x86_64::*;
    #[inline(always)]
    unsafe fn combine256(a: (__m256i, __m256i), b: (__m256i, __m256i)) -> (__m256i, __m256i) {
        (_mm256_or_si256(a.0, _mm256_and_si256(a.1, b.0)), _mm256_and_si256(a.1, b.1))
    }
    let ones = _mm256_set1_epi64x(-1);
    let mut leaf = [(ones, ones); 4];
    for (k, l) in leaf.iter_mut().enumerate() {
        let u = _mm256_set_epi64x(
            planes[k + 4] as i64,
            planes[k + 4] as i64,
            planes[k] as i64,
            planes[k] as i64,
        );
        let m = _mm256_set_epi64x(
            -(hi_bits[off + k + 4] as i64),
            -(lo_bits[off + k + 4] as i64),
            -(hi_bits[off + k] as i64),
            -(lo_bits[off + k] as i64),
        );
        *l = (_mm256_andnot_si256(u, m), _mm256_xor_si256(u, _mm256_xor_si256(m, ones)));
    }
    // low halves fold ((0·1)·(2·3)), high halves ((4·5)·(6·7)) in lockstep
    let t = combine256(combine256(leaf[0], leaf[1]), combine256(leaf[2], leaf[3]));
    let lo_half = (_mm256_castsi256_si128(t.0), _mm256_castsi256_si128(t.1));
    let hi_half = (_mm256_extracti128_si256(t.0, 1), _mm256_extracti128_si256(t.1, 1));
    combine128(lo_half, hi_half)
}

#[cfg(target_arch = "x86_64")]
fn feed8_avx2(b: &mut DualMaskBuilder, hi_bits: &[bool], lo_bits: &[bool], planes: &[u64; 8]) {
    // SAFETY: this entry is only installed in a TreeFeed after AVX2 was
    // detected at runtime (TreeFeed::try_for_isa clamps to native_isa).
    unsafe { feed8_avx2_impl(b, hi_bits, lo_bits, planes) }
}

#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn feed8_avx2_impl(
    b: &mut DualMaskBuilder,
    hi_bits: &[bool],
    lo_bits: &[bool],
    planes: &[u64; 8],
) {
    use std::arch::x86_64::*;
    let (lt, eq) = tree8_avx2(hi_bits, lo_bits, b.planes_used, planes);
    let und = _mm_set_epi64x(b.und_hi as i64, b.und_lo as i64);
    let acc = _mm_set_epi64x(b.acc_hi as i64, b.acc_lo as i64);
    let acc = _mm_or_si128(acc, _mm_and_si128(und, lt));
    let und = _mm_and_si128(und, eq);
    store_state128(b, acc, und);
    b.planes_used += 8;
}

#[cfg(target_arch = "x86_64")]
fn feed16_avx2(
    b: &mut DualMaskBuilder,
    hi_bits: &[bool],
    lo_bits: &[bool],
    planes: &[u64; 16],
    need_hi: u64,
    need_lo: u64,
) {
    // SAFETY: installed only after AVX2 was detected at runtime.
    unsafe { feed16_avx2_impl(b, hi_bits, lo_bits, planes, need_hi, need_lo) }
}

#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn feed16_avx2_impl(
    b: &mut DualMaskBuilder,
    hi_bits: &[bool],
    lo_bits: &[bool],
    planes: &[u64; 16],
    need_hi: u64,
    need_lo: u64,
) {
    use std::arch::x86_64::*;
    let off = b.planes_used;
    let (lt, eq) = tree8_avx2(hi_bits, lo_bits, off, &planes[..8]);
    let mut und = _mm_set_epi64x(b.und_hi as i64, b.und_lo as i64);
    let mut acc = _mm_set_epi64x(b.acc_hi as i64, b.acc_lo as i64);
    acc = _mm_or_si128(acc, _mm_and_si128(und, lt));
    und = _mm_and_si128(und, eq);
    let need = _mm_set_epi64x(need_hi as i64, need_lo as i64);
    if _mm_testz_si128(und, need) != 0 {
        b.planes_used = off + 8;
    } else {
        let (lt, eq) = tree8_avx2(hi_bits, lo_bits, off + 8, &planes[8..]);
        acc = _mm_or_si128(acc, _mm_and_si128(und, lt));
        und = _mm_and_si128(und, eq);
        b.planes_used = off + 16;
    }
    store_state128(b, acc, und);
}

// ---- AVX-512 tier: four threshold pairs (eight lanes) per zmm --------------

/// Eight planes × both thresholds in two zmm registers: R0 carries planes
/// 0,2,4,6 and R1 planes 1,3,5,7, each 128-bit block a `[lo, hi]` lane
/// pair. One 512-bit combine joins odd planes into even (blocks become
/// the segments (0·1),(2·3),(4·5),(6·7)), a block shuffle folds evens
/// against odds at 256 bits, and a final 128-bit combine yields the
/// segment of all eight planes. `vpternlogd` fuses each combine's
/// or-and pair (`A|(B&C)` = imm 0xF8) and the XNOR leaf (imm 0xC3) into
/// single ops.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl")]
unsafe fn tree8_avx512(
    hi_bits: &[bool],
    lo_bits: &[bool],
    off: usize,
    planes: &[u64],
) -> (std::arch::x86_64::__m128i, std::arch::x86_64::__m128i) {
    use std::arch::x86_64::*;
    debug_assert!(planes.len() >= 8);
    // One 512-bit load of all eight planes, then two qword permutes fan
    // them out pairwise — far cheaper than building each register from
    // sixteen 64-bit inserts.
    let src = _mm512_loadu_si512(planes.as_ptr() as *const _);
    let u0 = _mm512_permutexvar_epi64(_mm512_set_epi64(6, 6, 4, 4, 2, 2, 0, 0), src);
    let u1 = _mm512_permutexvar_epi64(_mm512_set_epi64(7, 7, 5, 5, 3, 3, 1, 1), src);
    let thresholds = |a: usize, b: usize, c: usize, d: usize| {
        _mm512_set_epi64(
            -(hi_bits[off + d] as i64),
            -(lo_bits[off + d] as i64),
            -(hi_bits[off + c] as i64),
            -(lo_bits[off + c] as i64),
            -(hi_bits[off + b] as i64),
            -(lo_bits[off + b] as i64),
            -(hi_bits[off + a] as i64),
            -(lo_bits[off + a] as i64),
        )
    };
    let m0 = thresholds(0, 2, 4, 6);
    let m1 = thresholds(1, 3, 5, 7);
    // leaf: (lt, eq) = (!u & m, XNOR(u, m)); 0xC3 is the XNOR(A, B) table
    let lt0 = _mm512_andnot_si512(u0, m0);
    let eq0 = _mm512_ternarylogic_epi64(u0, m0, m0, 0xC3);
    let lt1 = _mm512_andnot_si512(u1, m1);
    let eq1 = _mm512_ternarylogic_epi64(u1, m1, m1, 0xC3);
    // combine even planes with their odd successors: 0xF8 is A | (B & C)
    let lt = _mm512_ternarylogic_epi64(lt0, eq0, lt1, 0xF8);
    let eq = _mm512_and_si512(eq0, eq1);
    // fold even segments [q0,q2] against odd segments [q1,q3]
    let lt_e = _mm512_castsi512_si256(_mm512_shuffle_i64x2(lt, lt, 0x88));
    let lt_o = _mm512_castsi512_si256(_mm512_shuffle_i64x2(lt, lt, 0xDD));
    let eq_e = _mm512_castsi512_si256(_mm512_shuffle_i64x2(eq, eq, 0x88));
    let eq_o = _mm512_castsi512_si256(_mm512_shuffle_i64x2(eq, eq, 0xDD));
    let lt2 = _mm256_ternarylogic_epi64(lt_e, eq_e, lt_o, 0xF8);
    let eq2 = _mm256_and_si256(eq_e, eq_o);
    // final cross-half combine: planes 0–3 (low xmm) with planes 4–7
    let alt = _mm256_castsi256_si128(lt2);
    let aeq = _mm256_castsi256_si128(eq2);
    let blt = _mm256_extracti128_si256(lt2, 1);
    let beq = _mm256_extracti128_si256(eq2, 1);
    (_mm_ternarylogic_epi64(alt, aeq, blt, 0xF8), _mm_and_si128(aeq, beq))
}

#[cfg(target_arch = "x86_64")]
fn feed8_avx512(b: &mut DualMaskBuilder, hi_bits: &[bool], lo_bits: &[bool], planes: &[u64; 8]) {
    // SAFETY: installed only after AVX-512F+VL was detected at runtime.
    unsafe { feed8_avx512_impl(b, hi_bits, lo_bits, planes) }
}

#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx512f,avx512vl")]
unsafe fn feed8_avx512_impl(
    b: &mut DualMaskBuilder,
    hi_bits: &[bool],
    lo_bits: &[bool],
    planes: &[u64; 8],
) {
    use std::arch::x86_64::*;
    let (lt, eq) = tree8_avx512(hi_bits, lo_bits, b.planes_used, planes);
    let und = _mm_set_epi64x(b.und_hi as i64, b.und_lo as i64);
    let acc = _mm_set_epi64x(b.acc_hi as i64, b.acc_lo as i64);
    let acc = _mm_ternarylogic_epi64(acc, und, lt, 0xF8);
    let und = _mm_and_si128(und, eq);
    store_state128(b, acc, und);
    b.planes_used += 8;
}

#[cfg(target_arch = "x86_64")]
fn feed16_avx512(
    b: &mut DualMaskBuilder,
    hi_bits: &[bool],
    lo_bits: &[bool],
    planes: &[u64; 16],
    need_hi: u64,
    need_lo: u64,
) {
    // SAFETY: installed only after AVX-512F+VL was detected at runtime.
    unsafe { feed16_avx512_impl(b, hi_bits, lo_bits, planes, need_hi, need_lo) }
}

#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx512f,avx512vl")]
unsafe fn feed16_avx512_impl(
    b: &mut DualMaskBuilder,
    hi_bits: &[bool],
    lo_bits: &[bool],
    planes: &[u64; 16],
    need_hi: u64,
    need_lo: u64,
) {
    use std::arch::x86_64::*;
    let off = b.planes_used;
    let (lt, eq) = tree8_avx512(hi_bits, lo_bits, off, &planes[..8]);
    let mut und = _mm_set_epi64x(b.und_hi as i64, b.und_lo as i64);
    let mut acc = _mm_set_epi64x(b.acc_hi as i64, b.acc_lo as i64);
    acc = _mm_ternarylogic_epi64(acc, und, lt, 0xF8);
    und = _mm_and_si128(und, eq);
    let need = _mm_set_epi64x(need_hi as i64, need_lo as i64);
    if _mm_test_epi64_mask(und, need) == 0 {
        b.planes_used = off + 8;
    } else {
        let (lt, eq) = tree8_avx512(hi_bits, lo_bits, off + 8, &planes[8..]);
        acc = _mm_ternarylogic_epi64(acc, und, lt, 0xF8);
        und = _mm_and_si128(und, eq);
        b.planes_used = off + 16;
    }
    store_state128(b, acc, und);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reconstruct the probability an expansion encodes.
    fn value_of(bits: &[bool]) -> f64 {
        bits.iter()
            .enumerate()
            .map(|(i, &b)| if b { 2f64.powi(-(i as i32 + 1)) } else { 0.0 })
            .sum()
    }

    #[test]
    fn expansion_roundtrips_within_half_ulp() {
        for p in [0.0, 0.5, 0.25, 0.75, 0.123456, 0.9999] {
            let x = value_of(&expand(p));
            assert!((x - p).abs() <= 2f64.powi(-(BERNOULLI_BITS as i32 + 1)), "p={p} got {x}");
        }
    }

    #[test]
    fn expansion_rounds_to_nearest_on_known_betas() {
        // The acceptance probabilities the Ising sweep actually uses. A
        // truncating expansion is below p·2²⁴ whenever the fraction is
        // nonzero; round-to-nearest must land on the nearest grid point.
        for beta in [0.2f64, 0.4, 0.44, 0.4406868, 0.6, 1.0] {
            for p in [(-8.0 * beta).exp(), (-4.0 * beta).exp()] {
                let q = (p * 2f64.powi(24)).round();
                let got = value_of(&expand(p)) * 2f64.powi(24);
                assert_eq!(got, q, "β-derived p={p} encoded {got}, want {q}");
            }
        }
    }

    #[test]
    fn truncation_bias_regression() {
        // p chosen so the 24-bit fraction is > 1/2: truncation loses a full
        // 2⁻²⁴ here, rounding must go up.
        let p = (1000.0 + 0.75) / 2f64.powi(24);
        let got = value_of(&expand(p)) * 2f64.powi(24);
        assert_eq!(got, 1001.0, "expansion must round up, not truncate");
    }

    #[test]
    fn expansion_saturates_near_one() {
        let bits = expand(1.0);
        assert!(bits.iter().all(|&b| b), "p=1 must saturate to all-ones");
    }

    #[test]
    fn mask_density_matches_p() {
        let mut rng = PhiloxStream::from_seed(7);
        for &p in &[0.1f64, 0.5, 0.9] {
            let bits = expand(p);
            let mut ones = 0u64;
            let trials = 4000;
            for _ in 0..trials {
                ones += bernoulli_mask(&bits, &mut rng).count_ones() as u64;
            }
            let density = ones as f64 / (64.0 * trials as f64);
            // σ ≈ sqrt(p(1-p)/(64·4000)) ≈ 1e-3; allow 5σ
            assert!((density - p).abs() < 5e-3, "p={p} density={density}");
        }
    }

    #[test]
    fn mask_extremes() {
        let mut rng = PhiloxStream::from_seed(3);
        assert_eq!(bernoulli_mask(&expand(0.0), &mut rng), 0);
        let m = bernoulli_mask(&expand(1.0 - 2f64.powi(-24)), &mut rng);
        assert!(m.count_ones() >= 60);
    }

    #[test]
    fn dual_masks_match_single_threshold_builders() {
        // With identical thresholds and full need sets, the dual builder
        // consumes the same planes and must reproduce the single builder.
        let bits = expand(0.37);
        let mut seq = PhiloxStream::from_seed(11);
        let single = bernoulli_mask(&bits, &mut seq);
        let mut seq = PhiloxStream::from_seed(11);
        let (hi, lo) = bernoulli_masks_dual(&bits, &bits, !0, !0, || seq.next_u64());
        assert_eq!(hi, lo);
        assert_eq!(hi, single);
    }

    #[test]
    fn dual_masks_are_nested() {
        // U < p_lo ⇒ U < p_hi, so on fully-decided lanes lo ⊆ hi.
        let hi = expand(0.8);
        let lo = expand(0.15);
        let mut seq = PhiloxStream::from_seed(23);
        for _ in 0..2000 {
            let (mhi, mlo) = bernoulli_masks_dual(&hi, &lo, !0, !0, || seq.next_u64());
            assert_eq!(mlo & !mhi, 0, "lo mask must be a subset of hi mask");
        }
    }

    #[test]
    fn dual_masks_have_correct_densities() {
        let hi = expand(0.6);
        let lo = expand(0.05);
        let mut seq = PhiloxStream::from_seed(5);
        let trials = 4000;
        let (mut ones_hi, mut ones_lo) = (0u64, 0u64);
        for _ in 0..trials {
            let (mhi, mlo) = bernoulli_masks_dual(&hi, &lo, !0, !0, || seq.next_u64());
            ones_hi += mhi.count_ones() as u64;
            ones_lo += mlo.count_ones() as u64;
        }
        let n = 64.0 * trials as f64;
        assert!((ones_hi as f64 / n - 0.6).abs() < 5e-3);
        assert!((ones_lo as f64 / n - 0.05).abs() < 3e-3);
    }

    #[test]
    fn tree_feed_is_bit_identical_to_serial_feed() {
        // feed_tree8 must be an evaluation-order optimization only: same
        // accept masks and same undecided state as plane-by-plane feeds.
        let hi = expand(0.37);
        let lo = expand(0.004);
        let mut seq = PhiloxStream::from_seed(99);
        for _ in 0..500 {
            let mut planes = [0u64; 16];
            for p in planes.iter_mut() {
                *p = seq.next_u64();
            }
            let mut serial = DualMaskBuilder::new();
            serial.feed(&hi, &lo, &planes);
            let mut tree = DualMaskBuilder::new();
            tree.feed_tree8(&hi, &lo, planes[..8].try_into().unwrap());
            tree.feed_tree8(&hi, &lo, planes[8..].try_into().unwrap());
            assert_eq!(serial.masks(), tree.masks());
            assert_eq!(serial.undecided(!0, !0), tree.undecided(!0, !0));
            assert_eq!(serial.planes_used(), tree.planes_used());
        }
    }

    #[test]
    fn tree16_matches_conditional_tree8_pair() {
        // feed_tree16 = first tree, then the second only if a needed lane
        // is still undecided — including the consumed-plane count, which
        // determines which expansion bits any later refill planes meet.
        let hi = expand(0.37);
        let lo = expand(0.004);
        let mut seq = PhiloxStream::from_seed(1234);
        for trial in 0..500 {
            let mut planes = [0u64; 16];
            for p in planes.iter_mut() {
                *p = seq.next_u64();
            }
            // vary the need sets: full, sparse, disjoint, empty
            let (need_hi, need_lo) = match trial % 4 {
                0 => (!0u64, !0u64),
                1 => (seq.next_u64(), seq.next_u64()),
                2 => (seq.next_u64(), 0),
                _ => (0, 0),
            };
            let mut reference = DualMaskBuilder::new();
            reference.feed_tree8(&hi, &lo, planes[..8].try_into().unwrap());
            if reference.undecided(need_hi, need_lo) {
                reference.feed_tree8(&hi, &lo, planes[8..].try_into().unwrap());
            }
            let mut fused = DualMaskBuilder::new();
            fused.feed_tree16(&hi, &lo, &planes, need_hi, need_lo);
            assert_eq!(reference.masks(), fused.masks());
            assert_eq!(reference.planes_used(), fused.planes_used());
            assert_eq!(reference.undecided(need_hi, need_lo), fused.undecided(need_hi, need_lo));
        }
    }

    /// Every ISA tier this host can execute, scalar reference first.
    fn supported_tiers() -> Vec<TreeFeed> {
        [SimdIsa::Scalar, SimdIsa::Sse2, SimdIsa::Avx2, SimdIsa::Avx512]
            .into_iter()
            .filter_map(TreeFeed::try_for_isa)
            .collect()
    }

    #[test]
    fn tree_feed_table_matches_dispatched_isa() {
        assert_eq!(tree_feed().isa, crate::simd::isa());
        // a tier above the native one must be refused, never mis-installed
        for isa in [SimdIsa::Sse2, SimdIsa::Avx2, SimdIsa::Avx512] {
            if isa > crate::simd::native_isa() {
                assert!(TreeFeed::try_for_isa(isa).is_none());
            }
        }
    }

    #[test]
    fn all_tiers_bit_identical_on_random_planes() {
        // The differential property: random thresholds, random planes and
        // random need sets through every executable tier — masks, consumed
        // plane count and full accept/undecided state must match the
        // scalar reference word for word (tiers the CPU lacks are skipped).
        let tiers = supported_tiers();
        assert_eq!(tiers[0].isa, SimdIsa::Scalar);
        let mut seq = PhiloxStream::from_seed(0xD15BA7C4);
        for trial in 0..600 {
            let p_hi = (seq.next_u32() as f64 + 0.5) / 2f64.powi(32);
            let p_lo = p_hi * ((seq.next_u32() as f64 + 0.5) / 2f64.powi(32));
            // sprinkle in the degenerate expansions (all-zero, all-one)
            let (hi, lo) = match trial % 8 {
                6 => (expand(1.0), expand(0.0)),
                7 => (expand(0.0), expand(0.0)),
                _ => (expand(p_hi), expand(p_lo)),
            };
            let mut planes = [0u64; 16];
            for p in planes.iter_mut() {
                *p = seq.next_u64();
            }
            let (need_hi, need_lo) = match trial % 4 {
                0 => (!0u64, !0u64),
                1 => (seq.next_u64(), seq.next_u64()),
                2 => (seq.next_u64(), 0),
                _ => (0, 0),
            };
            let mut reference = DualMaskBuilder::new();
            reference.feed_tree16_with(&tiers[0], &hi, &lo, &planes, need_hi, need_lo);
            let mut ref8 = DualMaskBuilder::new();
            ref8.feed_tree8_with(&tiers[0], &hi, &lo, planes[..8].try_into().unwrap());
            for tier in &tiers[1..] {
                let mut t16 = DualMaskBuilder::new();
                t16.feed_tree16_with(tier, &hi, &lo, &planes, need_hi, need_lo);
                assert_eq!(reference.masks(), t16.masks(), "{} tree16", tier.isa.name());
                assert_eq!(reference.planes_used(), t16.planes_used(), "{}", tier.isa.name());
                assert_eq!((reference.und_hi, reference.und_lo), (t16.und_hi, t16.und_lo));
                let mut t8 = DualMaskBuilder::new();
                t8.feed_tree8_with(tier, &hi, &lo, planes[..8].try_into().unwrap());
                assert_eq!(ref8.masks(), t8.masks(), "{} tree8", tier.isa.name());
                assert_eq!((ref8.und_hi, ref8.und_lo), (t8.und_hi, t8.und_lo));
                assert_eq!(ref8.planes_used(), t8.planes_used());
            }
        }
    }

    #[test]
    fn all_tiers_match_serial_feed_to_full_depth() {
        // Chain tree8 feeds to the full 24-plane resolution on every tier
        // and compare against the plane-by-plane serial feed.
        let hi = expand(0.37);
        let lo = expand(0.004);
        let mut seq = PhiloxStream::from_seed(0x7EE5);
        for _ in 0..200 {
            let mut planes = [0u64; 24];
            for p in planes.iter_mut() {
                *p = seq.next_u64();
            }
            let mut serial = DualMaskBuilder::new();
            serial.feed(&hi, &lo, &planes);
            for tier in supported_tiers() {
                let mut tree = DualMaskBuilder::new();
                tree.feed_tree8_with(&tier, &hi, &lo, planes[..8].try_into().unwrap());
                tree.feed_tree8_with(&tier, &hi, &lo, planes[8..16].try_into().unwrap());
                tree.feed_tree8_with(&tier, &hi, &lo, planes[16..].try_into().unwrap());
                assert_eq!(serial.masks(), tree.masks(), "{}", tier.isa.name());
                assert_eq!(serial.undecided(!0, !0), tree.undecided(!0, !0));
                assert_eq!(serial.planes_used(), tree.planes_used());
            }
        }
    }

    #[test]
    fn dual_need_masks_stop_early_but_agree_on_needed_lanes() {
        // Restricting the need sets must not change the bits inside them.
        let hi = expand(0.4);
        let lo = expand(0.02);
        for seed in 0..50u64 {
            let need_hi = 0xFFFF_0000_FFFF_0000u64;
            let need_lo = !need_hi;
            let mut a = PhiloxStream::from_seed(seed);
            let (fh, fl) = bernoulli_masks_dual(&hi, &lo, !0, !0, || a.next_u64());
            let mut b = PhiloxStream::from_seed(seed);
            let (nh, nl) = bernoulli_masks_dual(&hi, &lo, need_hi, need_lo, || b.next_u64());
            assert_eq!(fh & need_hi, nh & need_hi);
            assert_eq!(fl & need_lo, nl & need_lo);
        }
    }
}
