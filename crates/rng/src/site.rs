//! Site-keyed randomness for cross-implementation equivalence testing.

use crate::philox::{philox4x32_10, Philox4x32Key};
use crate::uniform::RandomUniform;

/// A random field over lattice sites: the uniform consumed by site
/// `(row, col)` at sweep `sweep` for color phase `color` is a pure function
/// of those coordinates and the seed.
///
/// This decouples the randomness from the *order* in which an algorithm
/// visits sites. The naive Algorithm 1 (masked full lattice), the compact
/// Algorithm 2 (four deinterleaved sub-lattices), the conv variant, and the
/// distributed SPMD runner all visit the same logical sites — driven by a
/// `SiteRng` they make bit-identical flip decisions, turning "the three
/// implementations are equivalent" from a statistical claim into an exact
/// test. (Production sampling uses [`crate::PhiloxStream`] instead, which
/// is faster because it burns one Philox call per four uniforms.)
#[derive(Clone, Copy, Debug)]
pub struct SiteRng {
    key: Philox4x32Key,
}

impl SiteRng {
    /// Create a site-keyed field from a seed.
    pub fn new(seed: u64) -> Self {
        SiteRng { key: Philox4x32Key::from_seed(seed) }
    }

    /// The underlying key (for checkpointing).
    pub fn key(&self) -> Philox4x32Key {
        self.key
    }

    /// Reconstruct from a checkpointed key.
    pub fn from_key(key: Philox4x32Key) -> Self {
        SiteRng { key }
    }

    /// The raw 32-bit word for `(sweep, color, row, col)`.
    ///
    /// `color` is 0 (black / even parity) or 1 (white / odd parity); `sweep`
    /// counts half-sweeps of that color. Row and column are *global torus
    /// coordinates*, so distributed sub-lattices index with their global
    /// offsets and reproduce the single-core stream exactly.
    #[inline]
    pub fn word(&self, sweep: u64, color: u8, row: u32, col: u32) -> u32 {
        let ctr =
            [row, col, sweep as u32, ((sweep >> 32) as u32 & 0x7FFF_FFFF) | ((color as u32) << 31)];
        philox4x32_10(ctr, self.key)[0]
    }

    /// The uniform in `[0,1)` for a site at precision `S`.
    #[inline]
    pub fn uniform<S: RandomUniform>(&self, sweep: u64, color: u8, row: u32, col: u32) -> S {
        S::uniform_from_u32(self.word(sweep, color, row, col))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_function_of_coordinates() {
        let r = SiteRng::new(99);
        assert_eq!(r.word(3, 1, 10, 20), r.word(3, 1, 10, 20));
        assert_ne!(r.word(3, 1, 10, 20), r.word(4, 1, 10, 20));
        assert_ne!(r.word(3, 1, 10, 20), r.word(3, 0, 10, 20));
        assert_ne!(r.word(3, 1, 10, 20), r.word(3, 1, 11, 20));
        assert_ne!(r.word(3, 1, 10, 20), r.word(3, 1, 10, 21));
    }

    #[test]
    fn seeds_give_different_fields() {
        let a = SiteRng::new(1);
        let b = SiteRng::new(2);
        let same = (0..64u32).filter(|&i| a.word(0, 0, i, 0) == b.word(0, 0, i, 0)).count();
        assert!(same <= 1);
    }

    #[test]
    fn color_bit_does_not_clobber_high_sweeps() {
        let r = SiteRng::new(5);
        // sweeps below 2^63 must not alias across colors
        let s = (1u64 << 40) + 17;
        assert_ne!(r.word(s, 0, 0, 0), r.word(s, 1, 0, 0));
    }

    #[test]
    fn field_mean_is_uniform() {
        let r = SiteRng::new(2024);
        let n = 100_000u32;
        let mut sum = 0.0f64;
        for i in 0..n {
            sum += r.uniform::<f32>(0, 0, i / 317, i % 317) as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 5e-3, "mean {mean}");
    }
}
