use tpu_ising_rng::{
    philox4x32_10, philox4x32_10_planes16, philox4x32_10_x8, Philox4x32Key, PHILOX_BATCH,
};
fn main() {
    let key = Philox4x32Key::from_seed(42);
    let n: u32 = 20_000_000;
    // serial-dependent chain
    let t0 = std::time::Instant::now();
    let mut acc = [0u32; 4];
    for i in 0..n {
        acc = philox4x32_10([acc[0] ^ i, acc[1], acc[2], acc[3]], key);
    }
    let dt = t0.elapsed().as_secs_f64();
    println!("serial: {:.1} cycles/call (acc {acc:?})", dt * 2.1e9 / n as f64);
    // independent calls
    let t0 = std::time::Instant::now();
    let mut sum = 0u64;
    for i in 0..n {
        let o = philox4x32_10([i, 0, 0, 0], key);
        sum ^= ((o[1] as u64) << 32) | o[0] as u64;
    }
    let dt = t0.elapsed().as_secs_f64();
    println!("indep:  {:.1} cycles/call (sum {sum})", dt * 2.1e9 / n as f64);
    // 8-wide batch
    let nb = n / PHILOX_BATCH as u32;
    let t0 = std::time::Instant::now();
    let mut sum = 0u64;
    for i in 0..nb {
        let mut ctrs = [[0u32; 4]; PHILOX_BATCH];
        for (b, c) in ctrs.iter_mut().enumerate() {
            *c = [i, 0, 0, (b as u32) << 24];
        }
        let outs = philox4x32_10_x8(&ctrs, key);
        for o in &outs {
            sum ^= ((o[1] as u64) << 32) | o[0] as u64;
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "x8:     {:.1} cycles/call = {:.1} cycles/batch (sum {sum})",
        dt * 2.1e9 / (nb as f64 * PHILOX_BATCH as f64),
        dt * 2.1e9 / nb as f64
    );
    // plane-oriented batch
    let t0 = std::time::Instant::now();
    let mut sum = 0u64;
    for i in 0..nb {
        let planes = philox4x32_10_planes16([i, 1, 2, 3], 0, key);
        for p in &planes {
            sum ^= p;
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "planes16: {:.1} cycles/call-equiv = {:.1} cycles/batch (sum {sum})",
        dt * 2.1e9 / (nb as f64 * PHILOX_BATCH as f64),
        dt * 2.1e9 / nb as f64
    );
}
