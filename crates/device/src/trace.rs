//! A tiny profiler modeled on the TPU trace viewer (paper §5.2, Fig. 6).
//!
//! The paper's Table 3 comes from aggregating profiler spans by hardware
//! unit. [`Trace`] records modeled spans the same way: the HLO cost walker
//! and the benchmark harness emit one span per op with its modeled duration
//! and class, and [`Trace::breakdown`] aggregates the Table-3 percentages.

use parking_lot::Mutex;
use serde::Serialize;

// The span taxonomy and breakdown shape are shared with the *measured*
// observability layer (`tpu-ising-obs`), so modeled and measured Table-3
// views aggregate into the same types.
pub use tpu_ising_obs::{SpanKind, TraceBreakdown};

/// One recorded span.
#[derive(Clone, Debug, Serialize)]
pub struct Span {
    /// Hardware-unit class.
    pub kind: SpanKind,
    /// Op label (e.g. `"matmul σ̂01·K̂"`).
    pub label: String,
    /// Modeled duration in seconds.
    pub seconds: f64,
}

/// Thread-safe span recorder.
#[derive(Default)]
pub struct Trace {
    spans: Mutex<Vec<Span>>,
}

impl Trace {
    /// A fresh, empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Record one span.
    pub fn record(&self, kind: SpanKind, label: impl Into<String>, seconds: f64) {
        self.spans.lock().push(Span { kind, label: label.into(), seconds });
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.lock().is_empty()
    }

    /// Snapshot of all spans.
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().clone()
    }

    /// Aggregate by hardware-unit class.
    pub fn breakdown(&self) -> TraceBreakdown {
        let mut b = TraceBreakdown::default();
        for s in self.spans.lock().iter() {
            b.add(s.kind, s.seconds);
        }
        b
    }

    /// Discard all spans.
    pub fn clear(&self) {
        self.spans.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_by_kind() {
        let t = Trace::new();
        t.record(SpanKind::Mxu, "mm1", 0.6);
        t.record(SpanKind::Mxu, "mm2", 0.4);
        t.record(SpanKind::Vpu, "rng", 0.5);
        t.record(SpanKind::Format, "reshape", 0.5);
        t.record(SpanKind::Host, "infeed", 10.0);
        let b = t.breakdown();
        assert_eq!(b.mxu, 1.0);
        assert_eq!(b.vpu, 0.5);
        assert_eq!(b.format, 0.5);
        assert_eq!(b.host, 10.0);
        assert_eq!(b.step_seconds(), 2.0); // host excluded
        let (mxu, vpu, fmt, cp) = b.percentages();
        assert_eq!(mxu, 50.0);
        assert_eq!(vpu, 25.0);
        assert_eq!(fmt, 25.0);
        assert_eq!(cp, 0.0);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.breakdown().percentages(), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn concurrent_recording() {
        let t = Trace::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        t.record(SpanKind::Vpu, "x", 0.001);
                    }
                });
            }
        });
        assert_eq!(t.len(), 800);
        assert!((t.breakdown().vpu - 0.8).abs() < 1e-9);
    }

    #[test]
    fn clear_resets() {
        let t = Trace::new();
        t.record(SpanKind::Mxu, "a", 1.0);
        t.clear();
        assert!(t.is_empty());
    }
}
