//! HBM capacity accounting for one TensorCore.
//!
//! TPU v3 gives each core 16 GB of HBM, and arrays are *tiled*: the last
//! two dimensions pad to multiples of (8, 128) (paper §2). This module
//! tracks live allocations with that padding applied, so capacity
//! questions — "what is the largest lattice a core can hold?" (§4.2.1) —
//! are answered by the same arithmetic the benchmarks use.

use std::collections::HashMap;

/// The (sublane, lane) padding rule. Mirrors
/// `tpu_ising_tensor::TPU_TILE`, restated here so the device crate stays
/// dependency-light.
const TILE: (usize, usize) = (8, 128);

/// Failed allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested (after padding).
    pub requested: u64,
    /// Bytes free at the time of the request.
    pub available: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HBM out of memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// A per-core HBM allocator model.
#[derive(Debug, Clone)]
pub struct HbmModel {
    capacity: u64,
    live: HashMap<String, u64>,
    used: u64,
    peak: u64,
}

/// Physical (padded) bytes of a rank-4 tensor.
pub fn padded_bytes(dims: [usize; 4], dtype_bytes: usize) -> u64 {
    let pad = |d: usize, to: usize| if d == 0 { 0 } else { d.div_ceil(to) * to };
    (dims[0] * dims[1] * pad(dims[2], TILE.0) * pad(dims[3], TILE.1) * dtype_bytes) as u64
}

impl HbmModel {
    /// A model with the given capacity in bytes.
    pub fn new(capacity: u64) -> HbmModel {
        HbmModel { capacity, live: HashMap::new(), used: 0, peak: 0 }
    }

    /// A TPU v3 core's HBM (16 GB).
    pub fn v3_core() -> HbmModel {
        HbmModel::new(crate::params::TpuV3Params::v3().hbm_capacity_bytes)
    }

    /// Allocate a rank-4 tensor under `label`. Applies tile padding.
    /// Fails without side effects if it does not fit.
    pub fn allocate(
        &mut self,
        label: impl Into<String>,
        dims: [usize; 4],
        dtype_bytes: usize,
    ) -> Result<u64, OutOfMemory> {
        let bytes = padded_bytes(dims, dtype_bytes);
        let available = self.capacity - self.used;
        if bytes > available {
            return Err(OutOfMemory { requested: bytes, available });
        }
        let label = label.into();
        assert!(!self.live.contains_key(&label), "duplicate allocation label {label}");
        self.live.insert(label, bytes);
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        Ok(bytes)
    }

    /// Allocate a raw byte count under `label` (scratch buffers whose
    /// layout the compiler chooses; no tile padding applied).
    pub fn allocate_raw(
        &mut self,
        label: impl Into<String>,
        bytes: u64,
    ) -> Result<u64, OutOfMemory> {
        let available = self.capacity - self.used;
        if bytes > available {
            return Err(OutOfMemory { requested: bytes, available });
        }
        let label = label.into();
        assert!(!self.live.contains_key(&label), "duplicate allocation label {label}");
        self.live.insert(label, bytes);
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        Ok(bytes)
    }

    /// Free a previous allocation. Panics on unknown labels (a model bug).
    pub fn free(&mut self, label: &str) {
        let bytes = self.live.remove(label).unwrap_or_else(|| {
            panic!("free of unknown allocation {label}");
        });
        self.used -= bytes;
    }

    /// Bytes currently live.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// High-water mark.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Live fraction of capacity.
    pub fn utilization(&self) -> f64 {
        self.used as f64 / self.capacity as f64
    }

    /// Allocate the working set of one compact-algorithm core: the four
    /// compact sub-lattices plus the fused-temporary overhead the
    /// calibration charges ([`crate::calib::HBM_TEMP_FACTOR`]).
    ///
    /// `h × w` is the per-core lattice. Returns total bytes or OOM.
    pub fn allocate_compact_working_set(
        &mut self,
        h: usize,
        w: usize,
        dtype_bytes: usize,
    ) -> Result<u64, OutOfMemory> {
        assert!(h.is_multiple_of(2) && w.is_multiple_of(2), "compact form needs even dims");
        let mut total = 0;
        for (i, label) in ["s00", "s01", "s10", "s11"].iter().enumerate() {
            // quarter lattices as [h/256, w/256, 128, 128]-style grids;
            // model at [1, 1, h/2, w/2] — identical bytes when dims are
            // 128-multiples, padding handles the rest.
            match self.allocate(format!("lattice/{label}"), [1, 1, h / 2, w / 2], dtype_bytes) {
                Ok(b) => total += b,
                Err(e) => {
                    // roll back the partial set
                    for l in ["s00", "s01", "s10", "s11"].iter().take(i) {
                        self.free(&format!("lattice/{l}"));
                    }
                    return Err(e);
                }
            }
        }
        let temps = (total as f64 * crate::calib::HBM_TEMP_FACTOR) as u64;
        match self.allocate_raw("scratch/fused-temporaries", temps.max(1)) {
            Ok(b) => Ok(total + b),
            Err(e) => {
                for l in ["s00", "s01", "s10", "s11"] {
                    self.free(&format!("lattice/{l}"));
                }
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_rules() {
        // aligned shape: exact
        assert_eq!(padded_bytes([2, 2, 128, 128], 2), 2 * 2 * 128 * 128 * 2);
        // [1,1,4,64] pads to [1,1,8,128]
        assert_eq!(padded_bytes([1, 1, 4, 64], 4), 8 * 128 * 4);
    }

    #[test]
    fn allocate_free_cycle() {
        let mut h = HbmModel::new(10_000_000);
        let b = h.allocate("a", [1, 1, 8, 128], 4).unwrap();
        assert_eq!(b, 4096);
        assert_eq!(h.used(), 4096);
        h.free("a");
        assert_eq!(h.used(), 0);
        assert_eq!(h.peak(), 4096);
    }

    #[test]
    fn oom_is_side_effect_free() {
        let mut h = HbmModel::new(1000);
        let before = h.used();
        let err = h.allocate("big", [1, 1, 8, 128], 4).unwrap_err();
        assert_eq!(err.requested, 4096);
        assert_eq!(err.available, 1000);
        assert_eq!(h.used(), before);
    }

    #[test]
    #[should_panic(expected = "duplicate allocation")]
    fn duplicate_labels_panic() {
        let mut h = HbmModel::new(1_000_000);
        h.allocate("x", [1, 1, 8, 128], 2).unwrap();
        let _ = h.allocate("x", [1, 1, 8, 128], 2);
    }

    #[test]
    fn papers_max_lattice_fits_and_the_next_step_does_not() {
        // (656·128)² bf16 fits at ~96 % utilization; (672·128)² does not.
        let mut h = HbmModel::v3_core();
        let side = 656 * 128;
        h.allocate_compact_working_set(side, side, 2).unwrap();
        assert!((h.utilization() - 0.96).abs() < 0.01, "{}", h.utilization());

        let mut h = HbmModel::v3_core();
        let side = 672 * 128;
        let err = h.allocate_compact_working_set(side, side, 2);
        assert!(err.is_err(), "(672·128)² must not fit");
        assert_eq!(h.used(), 0, "failed bulk allocation must roll back");
    }

    #[test]
    fn f32_halves_the_capacity() {
        let mut h = HbmModel::v3_core();
        let side = 656 * 128;
        assert!(h.allocate_compact_working_set(side, side, 4).is_err());
        let mut h = HbmModel::v3_core();
        let side = 464 * 128;
        assert!(h.allocate_compact_working_set(side, side, 4).is_ok());
    }
}
