//! The TPU Pod's 2-D toroidal mesh: topology, timing, and a functional
//! SPMD runtime.
//!
//! The timing side feeds the cost model ([`crate::cost`]); the functional
//! side runs *real threads* — one per modeled TensorCore — exchanging halo
//! tensors through channels with exactly the `collective_permute` semantics
//! the paper's distributed graph uses: every core executes the same program
//! and calls the collective with a globally identical source→destination
//! list; the call blocks until the core has both sent and received.
//!
//! At the paper's production scale (10⁶–8·10⁶ sweeps on up to 2048 cores,
//! §6) core death and preemption are routine, so every failure mode on the
//! collective paths surfaces as a typed [`MeshError`] instead of a panic or
//! a hang: a vanished peer is a [`MeshError::PeerGone`] or, bounded by the
//! configurable [`MeshConfig::recv_timeout`], a [`MeshError::RecvTimeout`].
//! A deterministic [`FaultPlan`] (kill core N at collective K, drop or
//! delay a packet) makes those paths testable in CI without real flaky
//! hardware.

use std::collections::HashMap;
use std::future::Future;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tpu_ising_obs as obs;

/// A 2-D torus of `nx × ny` cores, each identified by `id = x * ny + y`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Torus {
    /// Cores along the first axis.
    pub nx: usize,
    /// Cores along the second axis.
    pub ny: usize,
}

/// The four mesh directions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Toward decreasing x (wraps).
    North,
    /// Toward increasing x (wraps).
    South,
    /// Toward decreasing y (wraps).
    West,
    /// Toward increasing y (wraps).
    East,
}

impl Torus {
    /// Construct an `nx × ny` torus. Panics if either dimension is zero.
    pub fn new(nx: usize, ny: usize) -> Torus {
        assert!(nx > 0 && ny > 0, "torus dimensions must be positive");
        Torus { nx, ny }
    }

    /// Total cores.
    pub fn cores(&self) -> usize {
        self.nx * self.ny
    }

    /// Core id at coordinates `(x, y)`.
    pub fn id(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny);
        x * self.ny + y
    }

    /// Coordinates of a core id.
    pub fn coords(&self, id: usize) -> (usize, usize) {
        debug_assert!(id < self.cores());
        (id / self.ny, id % self.ny)
    }

    /// The neighboring core in a direction, with torus wrap.
    pub fn neighbor(&self, id: usize, dir: Dir) -> usize {
        let (x, y) = self.coords(id);
        match dir {
            Dir::North => self.id((x + self.nx - 1) % self.nx, y),
            Dir::South => self.id((x + 1) % self.nx, y),
            Dir::West => self.id(x, (y + self.ny - 1) % self.ny),
            Dir::East => self.id(x, (y + 1) % self.ny),
        }
    }

    /// Minimal hop count between two cores on the torus.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        let dx = ax.abs_diff(bx);
        let dy = ay.abs_diff(by);
        dx.min(self.nx - dx) + dy.min(self.ny - dy)
    }

    /// The torus diameter (maximal minimal-hop distance).
    pub fn diameter(&self) -> usize {
        self.nx / 2 + self.ny / 2
    }

    /// The globally identical source→destination list that shifts every
    /// core's tensor one step in `dir` — the argument the paper passes to
    /// `tpu_ops.collective_permute` (Fig. 5).
    pub fn shift_pairs(&self, dir: Dir) -> Vec<(usize, usize)> {
        (0..self.cores()).map(|src| (src, self.neighbor(src, dir))).collect()
    }
}

/// A failure on the functional mesh, carried out of [`run_spmd`] instead
/// of panicking the pod.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MeshError {
    /// A peer's endpoint vanished: its receiver was dropped (it exited
    /// early) or every sender to this core is gone.
    PeerGone {
        /// The core reporting the failure.
        core: usize,
        /// The peer it was exchanging with.
        peer: usize,
        /// The collective sequence number at failure.
        seq: u64,
    },
    /// No packet arrived within [`MeshConfig::recv_timeout`] — the
    /// bounded-wait surface of a dead or wedged peer.
    RecvTimeout {
        /// The core reporting the failure.
        core: usize,
        /// The peer whose packet never came.
        peer: usize,
        /// The collective sequence number at failure.
        seq: u64,
        /// How long the core waited, in milliseconds.
        waited_ms: u64,
    },
    /// A [`FaultPlan`] killed this core at this collective.
    InjectedKill {
        /// The killed core.
        core: usize,
        /// The collective sequence number at which it died.
        seq: u64,
    },
    /// A core's closure panicked; the panic is contained and reported.
    CorePanicked {
        /// The panicked core.
        core: usize,
    },
    /// An invariant of the collective protocol was violated.
    Protocol {
        /// The core reporting the violation.
        core: usize,
        /// What went wrong.
        msg: String,
    },
    /// The integrity scrubber detected silent data corruption: a lattice
    /// digest changed between sweeps or a halo payload failed its wire
    /// checksum. The corrupted state is discarded and the tiered recovery
    /// ladder restarts from the last verified snapshot.
    Corrupt {
        /// The core that detected the corruption.
        core: usize,
        /// The sweep the core was on when the check failed.
        sweep: u64,
        /// What failed verification ("lattice digest", "halo checksum").
        what: &'static str,
    },
    /// The liveness watchdog declared this core stalled: it made no
    /// progress within [`MeshConfig::watchdog_timeout`] (virtual time on
    /// the cooperative runtime, wall time on the thread mesh).
    Stalled {
        /// The stalled core.
        core: usize,
        /// The collective sequence number at which it stalled.
        seq: u64,
        /// How long the watchdog waited before declaring the stall, ms.
        stalled_ms: u64,
    },
}

impl std::fmt::Display for MeshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshError::PeerGone { core, peer, seq } => {
                write!(f, "core {core}: peer {peer} hung up at collective {seq}")
            }
            MeshError::RecvTimeout { core, peer, seq, waited_ms } => write!(
                f,
                "core {core}: no packet from peer {peer} at collective {seq} after {waited_ms} ms"
            ),
            MeshError::InjectedKill { core, seq } => {
                write!(f, "core {core}: killed by fault plan at collective {seq}")
            }
            MeshError::CorePanicked { core } => write!(f, "core {core} panicked"),
            MeshError::Protocol { core, msg } => write!(f, "core {core}: protocol error: {msg}"),
            MeshError::Corrupt { core, sweep, what } => {
                write!(f, "core {core}: silent corruption detected at sweep {sweep}: {what}")
            }
            MeshError::Stalled { core, seq, stalled_ms } => write!(
                f,
                "core {core}: watchdog declared stall at collective {seq} after {stalled_ms} ms"
            ),
        }
    }
}

impl std::error::Error for MeshError {}

impl MeshError {
    /// The core that reported (or caused) the error.
    pub fn core(&self) -> usize {
        match *self {
            MeshError::PeerGone { core, .. }
            | MeshError::RecvTimeout { core, .. }
            | MeshError::InjectedKill { core, .. }
            | MeshError::CorePanicked { core }
            | MeshError::Protocol { core, .. }
            | MeshError::Corrupt { core, .. }
            | MeshError::Stalled { core, .. } => core,
        }
    }

    /// How close this error is to a root cause. A dead core produces a
    /// cascade: its own `InjectedKill`/`CorePanicked` (rank 0), its peers'
    /// `PeerGone` sends into the dropped receiver (rank 2), and timeouts
    /// ripple outward from there (rank 3). [`run_spmd_cfg`] reports the
    /// lowest-ranked error so the caller sees the cause, not a symptom.
    pub(crate) fn rank(&self) -> u8 {
        match self {
            MeshError::InjectedKill { .. } | MeshError::CorePanicked { .. } => 0,
            // A detected corruption or a declared stall names the core at
            // fault; the timeouts its neighbors see are knock-on symptoms.
            MeshError::Corrupt { .. } | MeshError::Stalled { .. } => 1,
            MeshError::Protocol { .. } => 2,
            MeshError::PeerGone { .. } => 3,
            MeshError::RecvTimeout { .. } => 4,
        }
    }
}

/// What a deterministic fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The core aborts its SPMD program with [`MeshError::InjectedKill`]
    /// *before* sending — exactly like a preempted TensorCore.
    Kill,
    /// The core's send to `to` is silently dropped (a lost packet); the
    /// receiver surfaces it as a [`MeshError::RecvTimeout`].
    DropPacket {
        /// Destination core of the dropped packet.
        to: usize,
    },
    /// The core sleeps before sending — a slow link. Collectives still
    /// deliver (the runtime stashes out-of-order packets), so a delay
    /// alone must not change any result.
    Delay {
        /// Sleep duration in microseconds.
        micros: u64,
    },
    /// Silent data corruption in the core's lattice words: the pod driver
    /// flips one stored bit *between sweeps*, where only the integrity
    /// scrubber can see it. For this kind `at_collective` holds the sweep
    /// index (SDC is injected at sweep boundaries, not collectives).
    FlipLatticeBit {
        /// Which lattice word to corrupt (wrapped into range by the
        /// engine).
        word: u32,
        /// Which bit of the word flips (engine-specific addressing).
        bit: u8,
    },
    /// Wire corruption of the core's outgoing halo payload at this
    /// collective, applied *after* the wire checksum is computed — so an
    /// armed scrubber detects it on the receiver and a disarmed one lets
    /// the corrupt halo poison the neighbor's update.
    CorruptHalo {
        /// Which bit of the first payload element flips (engine-specific
        /// addressing; scalar elements flip their sign).
        bit: u8,
    },
    /// The core stops making progress at this collective — a livelock or
    /// scheduler wedge. With the watchdog armed the core declares itself
    /// [`MeshError::Stalled`] after [`MeshConfig::watchdog_timeout`];
    /// disarmed, the stall only surfaces through its peers' receive
    /// deadlines.
    WedgeCore,
}

/// One deterministic fault: fires on `core` when its collective counter
/// reaches `at_collective`, but only on run `attempt` (so a retry after a
/// restart is not re-hit by the same transient fault).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// The core the fault fires on (the sender, for packet faults).
    pub core: usize,
    /// The collective sequence number it fires at.
    pub at_collective: u64,
    /// The run attempt it fires on (see [`MeshConfig::attempt`]).
    pub attempt: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic fault-injection schedule, evaluated by every
/// [`MeshHandle`] against its own collective counter. Deterministic by
/// construction: the same plan on the same program always fires at the
/// same point of the trajectory, which is what makes failure handling
/// testable in CI.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled faults.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// `true` if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Kill `core` when its collective counter reaches `at_collective`
    /// (on attempt 0).
    pub fn kill(self, core: usize, at_collective: u64) -> FaultPlan {
        self.kill_on_attempt(core, at_collective, 0)
    }

    /// Kill `core` at `at_collective`, but only on run `attempt`.
    pub fn kill_on_attempt(mut self, core: usize, at_collective: u64, attempt: usize) -> FaultPlan {
        self.faults.push(Fault { core, at_collective, attempt, kind: FaultKind::Kill });
        self
    }

    /// Drop the packet `from` sends to `to` at collective `at_collective`
    /// (on attempt 0).
    pub fn drop_packet(mut self, from: usize, to: usize, at_collective: u64) -> FaultPlan {
        self.faults.push(Fault {
            core: from,
            at_collective,
            attempt: 0,
            kind: FaultKind::DropPacket { to },
        });
        self
    }

    /// Delay `core`'s send at collective `at_collective` by `delay`
    /// (on attempt 0).
    pub fn delay(mut self, core: usize, at_collective: u64, delay: Duration) -> FaultPlan {
        self.faults.push(Fault {
            core,
            at_collective,
            attempt: 0,
            kind: FaultKind::Delay { micros: delay.as_micros() as u64 },
        });
        self
    }

    /// Flip `bit` of lattice `word` on `core` at the top of sweep
    /// `at_sweep` (on attempt 0) — silent data corruption only the
    /// integrity scrubber can catch.
    pub fn flip_lattice_bit(mut self, core: usize, at_sweep: u64, word: u32, bit: u8) -> FaultPlan {
        self.faults.push(Fault {
            core,
            at_collective: at_sweep,
            attempt: 0,
            kind: FaultKind::FlipLatticeBit { word, bit },
        });
        self
    }

    /// Corrupt `core`'s outgoing halo payload at collective
    /// `at_collective` (on attempt 0), after its wire checksum is taken.
    pub fn corrupt_halo(mut self, core: usize, at_collective: u64, bit: u8) -> FaultPlan {
        self.faults.push(Fault {
            core,
            at_collective,
            attempt: 0,
            kind: FaultKind::CorruptHalo { bit },
        });
        self
    }

    /// Wedge `core` at collective `at_collective` (on attempt 0): it stops
    /// progressing until the watchdog — or its peers' deadlines — give up.
    pub fn wedge(mut self, core: usize, at_collective: u64) -> FaultPlan {
        self.faults.push(Fault { core, at_collective, attempt: 0, kind: FaultKind::WedgeCore });
        self
    }

    pub(crate) fn kill_fires(&self, core: usize, seq: u64, attempt: usize) -> bool {
        self.faults.iter().any(|f| {
            f.kind == FaultKind::Kill
                && f.core == core
                && f.at_collective == seq
                && f.attempt == attempt
        })
    }

    pub(crate) fn drop_fires(&self, core: usize, to: usize, seq: u64, attempt: usize) -> bool {
        self.faults.iter().any(|f| {
            f.core == core
                && f.at_collective == seq
                && f.attempt == attempt
                && f.kind == FaultKind::DropPacket { to }
        })
    }

    pub(crate) fn delay_for(&self, core: usize, seq: u64, attempt: usize) -> Option<Duration> {
        self.faults.iter().find_map(|f| match f.kind {
            FaultKind::Delay { micros }
                if f.core == core && f.at_collective == seq && f.attempt == attempt =>
            {
                Some(Duration::from_micros(micros))
            }
            _ => None,
        })
    }

    /// The `(word, bit)` of a scheduled [`FaultKind::FlipLatticeBit`] on
    /// `core` at sweep `sweep` on this `attempt`, if any. Public because
    /// the SDC injection happens in the pod sweep loop, not the mesh.
    pub fn lattice_flip_for(&self, core: usize, sweep: u64, attempt: usize) -> Option<(u32, u8)> {
        self.faults.iter().find_map(|f| match f.kind {
            FaultKind::FlipLatticeBit { word, bit }
                if f.core == core && f.at_collective == sweep && f.attempt == attempt =>
            {
                Some((word, bit))
            }
            _ => None,
        })
    }

    /// The bit of a scheduled [`FaultKind::CorruptHalo`] on `core` at
    /// collective `seq` on this `attempt`, if any. Public because halo
    /// payloads are typed in the pod layer, above the generic mesh.
    pub fn halo_corrupt_for(&self, core: usize, seq: u64, attempt: usize) -> Option<u8> {
        self.faults.iter().find_map(|f| match f.kind {
            FaultKind::CorruptHalo { bit }
                if f.core == core && f.at_collective == seq && f.attempt == attempt =>
            {
                Some(bit)
            }
            _ => None,
        })
    }

    pub(crate) fn wedge_fires(&self, core: usize, seq: u64, attempt: usize) -> bool {
        self.faults.iter().any(|f| {
            f.kind == FaultKind::WedgeCore
                && f.core == core
                && f.at_collective == seq
                && f.attempt == attempt
        })
    }
}

/// Tier-1 recovery: bounded in-place retries of a timed-out collective
/// receive, before the error escalates to the pod-restart tier.
///
/// A slow link or a transiently wedged peer often delivers the packet a
/// little late; tearing down and restarting the whole pod for that wastes
/// every core's progress since the last checkpoint. Instead the receive
/// deadline is extended `max_retries` times, each extension one full
/// [`MeshConfig::recv_timeout`] window plus a deterministic exponential
/// backoff (`backoff`, `2·backoff`, `4·backoff`, …). Only
/// [`MeshError::RecvTimeout`] is retried — a hung-up peer
/// ([`MeshError::PeerGone`]) is permanent and escalates immediately.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How many extra receive windows to grant before giving up.
    pub max_retries: u32,
    /// Base backoff added to the first extension; doubles per retry.
    pub backoff: Duration,
}

impl RetryPolicy {
    /// No retries: the first timeout escalates immediately (the pre-tiered
    /// behavior; used by tests that assert timeout timing).
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_retries: 0, backoff: Duration::ZERO }
    }

    /// The extra wait granted by retry number `k` (1-based): one receive
    /// window plus `backoff · 2^(k−1)`.
    pub(crate) fn extension(&self, recv_timeout: Duration, k: u32) -> Duration {
        recv_timeout + self.backoff.saturating_mul(1u32 << (k - 1).min(16))
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_retries: 2, backoff: Duration::from_millis(50) }
    }
}

/// Which execution substrate carries the SPMD cores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MeshRuntime {
    /// One OS thread per modeled core (the original runtime). Faithful to
    /// real preemption and wall-clock timeouts, but capped by how many
    /// threads the host tolerates.
    #[default]
    Threads,
    /// The work-stealing cooperative scheduler ([`crate::sched`]): N
    /// logical cores multiplexed over `min(N, workers)` worker threads,
    /// yielding at collective boundaries, with timeouts, retry backoff and
    /// injected delays on a deterministic virtual clock. This is what runs
    /// the paper's 2025/2048-core topologies on a laptop-class host.
    Coop {
        /// Worker threads; `None` means `min(cores, available_parallelism)`.
        workers: Option<usize>,
    },
    /// [`MeshRuntime::Threads`] while the topology fits the host's
    /// parallelism, [`MeshRuntime::Coop`] beyond it.
    Auto,
}

impl MeshRuntime {
    /// The cooperative runtime with the default worker count.
    pub fn coop() -> MeshRuntime {
        MeshRuntime::Coop { workers: None }
    }

    /// Resolve `Auto` against a concrete core count.
    pub fn resolve(self, cores: usize) -> MeshRuntime {
        match self {
            MeshRuntime::Auto => {
                let host = std::thread::available_parallelism().map_or(1, |n| n.get());
                if cores > host {
                    MeshRuntime::coop()
                } else {
                    MeshRuntime::Threads
                }
            }
            other => other,
        }
    }
}

impl std::str::FromStr for MeshRuntime {
    type Err = String;
    fn from_str(s: &str) -> Result<MeshRuntime, String> {
        match s {
            "threads" => Ok(MeshRuntime::Threads),
            "coop" => Ok(MeshRuntime::coop()),
            "auto" => Ok(MeshRuntime::Auto),
            other => Err(format!("unknown mesh runtime '{other}' (expected threads|coop|auto)")),
        }
    }
}

/// Runtime configuration of the functional mesh.
#[derive(Clone, Debug)]
pub struct MeshConfig {
    /// How long a core waits for a packet before reporting
    /// [`MeshError::RecvTimeout`]. Bounds the damage of a dead peer: the
    /// pod surfaces an error instead of hanging forever. On the
    /// cooperative runtime this window elapses in *virtual* time.
    pub recv_timeout: Duration,
    /// Deterministic fault schedule (empty by default).
    pub faults: FaultPlan,
    /// Which run attempt this is; only [`Fault`]s with a matching
    /// `attempt` fire. Restart drivers bump this per retry so transient
    /// faults are not replayed against the recovered run.
    pub attempt: usize,
    /// Tier-1 recovery: how many times a timed-out receive is retried in
    /// place before the timeout escalates.
    pub retry: RetryPolicy,
    /// Which substrate carries the cores (threads, cooperative scheduler,
    /// or auto-selection by topology size).
    pub runtime: MeshRuntime,
    /// Integrity scrubber cadence in sweeps: `Some(k)` arms per-core
    /// lattice digests (verified across the inter-sweep gap every `k`
    /// sweeps) and wire checksums on every halo payload. `None` disarms
    /// the scrubber entirely (the pre-integrity behavior).
    pub scrub_every: Option<u64>,
    /// Liveness watchdog: how long a core may go without progress before
    /// declaring itself [`MeshError::Stalled`]. Virtual time on the
    /// cooperative runtime, wall time on the thread mesh. `None` disarms
    /// the watchdog; stalls then surface only as peers' receive timeouts.
    pub watchdog_timeout: Option<Duration>,
}

impl Default for MeshConfig {
    fn default() -> MeshConfig {
        MeshConfig {
            recv_timeout: Duration::from_secs(30),
            faults: FaultPlan::new(),
            attempt: 0,
            retry: RetryPolicy::default(),
            runtime: MeshRuntime::Threads,
            scrub_every: None,
            watchdog_timeout: None,
        }
    }
}

/// A message on the mesh: (collective sequence number, source core,
/// earliest delivery instant, payload). `deliver_at` is `None` for an
/// undelayed packet; a [`FaultKind::Delay`] stamps the maturity instant
/// instead of sleeping in the sender, so an injected delay never occupies
/// the sending thread (and, on the cooperative scheduler, never occupies a
/// worker at all — it becomes a virtual-time wakeup).
type Packet<T> = (u64, usize, Option<Instant>, T);

/// Per-core handle into the functional mesh: identifies the core and lets
/// it participate in collectives.
pub struct MeshHandle<T: Send> {
    id: usize,
    torus: Torus,
    seq: u64,
    senders: Vec<Sender<Packet<T>>>,
    receiver: Receiver<Packet<T>>,
    /// Out-of-order (or not-yet-mature) packets parked until their
    /// collective comes up and their delivery instant has passed.
    stash: HashMap<(u64, usize), (Option<Instant>, T)>,
    config: Arc<MeshConfig>,
}

impl<T: Send> MeshHandle<T> {
    /// This core's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// This core's torus coordinates.
    pub fn coords(&self) -> (usize, usize) {
        self.torus.coords(self.id)
    }

    /// The mesh topology.
    pub fn torus(&self) -> Torus {
        self.torus
    }

    /// The collective sequence number the next collective will use.
    pub fn next_collective(&self) -> u64 {
        self.seq
    }

    /// An injected [`FaultKind::WedgeCore`] fired: stop progressing. With
    /// the watchdog armed, the stall converts to a typed
    /// [`MeshError::Stalled`] after `watchdog_timeout` of wall time; with
    /// it disarmed the core merely resumes after every peer's retry budget
    /// has burned down, so the stall surfaces as their timeouts.
    fn wedge_stall(&self, seq: u64) -> Option<MeshError> {
        if obs::is_metrics() {
            obs::metrics().counter("mesh_faults_injected_total").inc(1);
        }
        match self.config.watchdog_timeout {
            Some(deadline) => {
                std::thread::sleep(deadline);
                let stalled_ms = deadline.as_millis() as u64;
                obs::record(obs::EventKind::WatchdogStall { collective: seq, stalled_ms });
                if obs::is_metrics() {
                    obs::metrics().counter("watchdog_stalls_total").inc(1);
                }
                Some(MeshError::Stalled { core: self.id, seq, stalled_ms })
            }
            None => {
                std::thread::sleep(peer_patience(&self.config));
                None
            }
        }
    }

    /// XLA `CollectivePermute`: permute `data` across cores according to a
    /// globally identical `(source, destination)` pair list.
    ///
    /// Every core appearing as a source sends; every core appearing as a
    /// destination receives; the call blocks until this core has done both
    /// (bounded by [`MeshConfig::recv_timeout`]). Returns `Ok(Some(tensor))`
    /// if this core is a destination, `Ok(None)` if not, and a typed
    /// [`MeshError`] if a peer died, a packet never arrived, or the
    /// fault plan killed this core. Each core must appear at most once as
    /// source and once as destination (XLA's precondition).
    pub fn collective_permute(
        &mut self,
        data: T,
        pairs: &[(usize, usize)],
    ) -> Result<Option<T>, MeshError> {
        let _span = obs::span!("collective_permute", obs::SpanKind::CollectivePermute);
        if obs::is_metrics() {
            obs::metrics().counter("collectives_total").inc(1);
        }
        let seq = self.seq;
        self.seq += 1;
        let attempt = self.config.attempt;
        if self.config.faults.kill_fires(self.id, seq, attempt) {
            if obs::is_metrics() {
                obs::metrics().counter("mesh_faults_injected_total").inc(1);
            }
            obs::record(obs::EventKind::KillInjected { collective: seq });
            return Err(MeshError::InjectedKill { core: self.id, seq });
        }
        if self.config.faults.wedge_fires(self.id, seq, attempt) {
            if let Some(err) = self.wedge_stall(seq) {
                return Err(err);
            }
            // Watchdog disarmed: the core resumes late; its peers have
            // already burned their receive deadlines.
        }
        let (expect_from, send_to) = parse_pairs(self.id, pairs)?;
        // An injected delay stamps the packet's maturity instant instead of
        // sleeping here: the receiver holds the packet until it matures, so
        // the sending thread (or scheduler worker) is never occupied.
        let deliver_at =
            self.config.faults.delay_for(self.id, seq, attempt).map(|d| Instant::now() + d);
        if let Some(dst) = send_to {
            if self.config.faults.drop_fires(self.id, dst, seq, attempt) {
                if obs::is_metrics() {
                    obs::metrics().counter("mesh_faults_injected_total").inc(1);
                }
                obs::record(obs::EventKind::DropInjected { collective: seq, peer: dst as u32 });
            } else {
                obs::record(obs::EventKind::CollectiveSend { collective: seq, peer: dst as u32 });
                self.senders[dst]
                    .send((seq, self.id, deliver_at, data))
                    .map_err(|_| MeshError::PeerGone { core: self.id, peer: dst, seq })?;
            }
        }
        let Some(src) = expect_from else {
            return Ok(None);
        };
        let started = Instant::now();
        let mut retries_used: u32 = 0;
        let mut deadline = started + self.config.recv_timeout;
        // The maturity instant of an already-arrived but still-delayed
        // packet for this collective, if any.
        let mut pending_at: Option<Instant> = None;
        if let Some((at, t)) = self.stash.remove(&(seq, src)) {
            match at {
                Some(at) if Instant::now() < at => {
                    pending_at = Some(at);
                    self.stash.insert((seq, src), (Some(at), t));
                }
                _ => {
                    obs::record(obs::EventKind::CollectiveRecv {
                        collective: seq,
                        peer: src as u32,
                    });
                    return Ok(Some(t));
                }
            }
        }
        // Drain until our packet arrives and matures; park strays (they
        // belong to collectives this core has not reached yet — lockstep
        // programs guarantee they will be consumed in order).
        loop {
            let now = Instant::now();
            if let Some(at) = pending_at {
                if now >= at {
                    let (_, t) = self.stash.remove(&(seq, src)).expect("pending packet vanished");
                    if retries_used > 0 {
                        if obs::is_metrics() {
                            obs::metrics().counter("recovery_tier_retry_total").inc(1);
                        }
                        obs::record(obs::EventKind::RetryRecovered {
                            collective: seq,
                            extensions: retries_used,
                        });
                    }
                    obs::record(obs::EventKind::CollectiveRecv {
                        collective: seq,
                        peer: src as u32,
                    });
                    return Ok(Some(t));
                }
            }
            // Wake at whichever comes first: the receive deadline or the
            // maturity of a delayed packet already in hand.
            let wake_at = pending_at.map_or(deadline, |at| at.min(deadline));
            let remaining = wake_at.saturating_duration_since(now);
            match self.receiver.recv_timeout(remaining) {
                Ok((pseq, psrc, at, payload)) => {
                    let mature = at.is_none_or(|a| Instant::now() >= a);
                    if pseq == seq && psrc == src && mature {
                        if retries_used > 0 {
                            if obs::is_metrics() {
                                obs::metrics().counter("recovery_tier_retry_total").inc(1);
                            }
                            obs::record(obs::EventKind::RetryRecovered {
                                collective: seq,
                                extensions: retries_used,
                            });
                        }
                        obs::record(obs::EventKind::CollectiveRecv {
                            collective: seq,
                            peer: src as u32,
                        });
                        return Ok(Some(payload));
                    }
                    if pseq == seq && psrc == src {
                        pending_at = at;
                    }
                    self.stash.insert((pseq, psrc), (at, payload));
                }
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() < deadline {
                        // Woken for a maturing delayed packet, not the
                        // deadline; the loop head delivers it.
                        continue;
                    }
                    // Tier-1 recovery: a timeout may be a slow link, not a
                    // dead peer — extend the deadline a bounded number of
                    // times before escalating to the restart tier.
                    if retries_used < self.config.retry.max_retries {
                        retries_used += 1;
                        if obs::is_metrics() {
                            obs::metrics().counter("collective_retries_total").inc(1);
                        }
                        obs::record(obs::EventKind::RetryExtended {
                            collective: seq,
                            attempt: retries_used,
                        });
                        deadline = Instant::now()
                            + self.config.retry.extension(self.config.recv_timeout, retries_used);
                        continue;
                    }
                    obs::record(obs::EventKind::RetryExhausted { collective: seq });
                    return Err(MeshError::RecvTimeout {
                        core: self.id,
                        peer: src,
                        seq,
                        waited_ms: started.elapsed().as_millis() as u64,
                    });
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(MeshError::PeerGone { core: self.id, peer: src, seq });
                }
            }
        }
    }

    /// Shift a tensor one mesh step in `dir`; every core sends and receives.
    pub fn shift(&mut self, data: T, dir: Dir) -> Result<T, MeshError> {
        let pairs = self.torus.shift_pairs(dir);
        match self.collective_permute(data, &pairs)? {
            Some(t) => Ok(t),
            None => Err(MeshError::Protocol {
                core: self.id,
                msg: "full-shift permute delivered nothing".into(),
            }),
        }
    }

    /// XLA `AllToAll`: core `i` provides one chunk per core; afterwards
    /// core `i` holds chunk `i` from every core (in core-id order).
    ///
    /// Implemented as `P − 1` rotation collective-permutes (the classic
    /// ring schedule), which is exactly how a 2-D torus without all-to-all
    /// hardware support executes it.
    pub fn all_to_all(&mut self, chunks: Vec<T>) -> Result<Vec<T>, MeshError>
    where
        T: Clone + Default,
    {
        let p = self.torus.cores();
        if chunks.len() != p {
            return Err(MeshError::Protocol {
                core: self.id,
                msg: format!("all_to_all needs one chunk per core ({} != {p})", chunks.len()),
            });
        }
        let mut out: Vec<T> = vec![T::default(); p];
        let mut chunks = chunks;
        // own chunk stays
        out[self.id] = std::mem::take(&mut chunks[self.id]);
        for k in 1..p {
            // rotation by k: every core sends the chunk destined for core
            // (id + k) directly to it.
            let pairs: Vec<(usize, usize)> = (0..p).map(|src| (src, (src + k) % p)).collect();
            let dst = (self.id + k) % p;
            let src = (self.id + p - k) % p;
            match self.collective_permute(std::mem::take(&mut chunks[dst]), &pairs)? {
                Some(received) => out[src] = received,
                None => {
                    return Err(MeshError::Protocol {
                        core: self.id,
                        msg: "rotation permute delivered nothing".into(),
                    });
                }
            }
        }
        Ok(out)
    }
}

/// Run one closure per core, SPMD-style, on real threads, with the default
/// [`MeshConfig`]. Returns each core's result indexed by core id, or the
/// root-cause [`MeshError`] if any core failed.
pub fn run_spmd<T, R, F>(torus: Torus, f: F) -> Result<Vec<R>, MeshError>
where
    T: Send,
    R: Send,
    F: Fn(MeshHandle<T>) -> Result<R, MeshError> + Sync,
{
    run_spmd_cfg(torus, MeshConfig::default(), f)
}

/// [`run_spmd`] with an explicit [`MeshConfig`] (recv timeout, fault plan,
/// attempt number).
///
/// The closure receives a [`MeshHandle`] for collectives and returns a
/// `Result`; collective failures propagate with `?`. A panicking core is
/// contained and reported as [`MeshError::CorePanicked`] — it never tears
/// down the pod process. When several cores fail (one dies, its neighbors
/// time out waiting for halos), the *root cause* is returned: a non-timeout
/// error is preferred over the knock-on timeouts it produces.
pub fn run_spmd_cfg<T, R, F>(torus: Torus, config: MeshConfig, f: F) -> Result<Vec<R>, MeshError>
where
    T: Send,
    R: Send,
    F: Fn(MeshHandle<T>) -> Result<R, MeshError> + Sync,
{
    let n = torus.cores();
    let config = Arc::new(config);
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, r) = channel::<Packet<T>>();
        senders.push(s);
        receivers.push(r);
    }
    let mut handles: Vec<MeshHandle<T>> = receivers
        .into_iter()
        .enumerate()
        .map(|(id, receiver)| MeshHandle {
            id,
            torus,
            seq: 0,
            senders: senders.clone(),
            receiver,
            stash: HashMap::new(),
            config: config.clone(),
        })
        .collect();
    drop(senders);

    let f = &f;
    let per_core: Vec<Result<R, MeshError>> = std::thread::scope(|scope| {
        let joins: Vec<_> = handles.drain(..).map(|h| scope.spawn(move || f(h))).collect();
        joins
            .into_iter()
            .enumerate()
            .map(|(core, j)| j.join().unwrap_or(Err(MeshError::CorePanicked { core })))
            .collect()
    });

    fold_outcomes(per_core)
}

/// How long a wedged core must stay silent for every peer to exhaust its
/// receive window plus the full tier-1 retry budget (plus a small margin).
pub(crate) fn peer_patience(config: &MeshConfig) -> Duration {
    let mut total = config.recv_timeout;
    for k in 1..=config.retry.max_retries {
        total += config.retry.extension(config.recv_timeout, k);
    }
    total + Duration::from_millis(50)
}

/// Root-cause selection shared by both runtimes: fold per-core outcomes
/// into either every result (core-id order) or the lowest-ranked error.
pub(crate) fn fold_outcomes<R>(per_core: Vec<Result<R, MeshError>>) -> Result<Vec<R>, MeshError> {
    let mut results = Vec::with_capacity(per_core.len());
    let mut first_err: Option<MeshError> = None;
    for r in per_core {
        match r {
            Ok(v) => results.push(v),
            Err(e) => {
                let replace = match &first_err {
                    None => true,
                    Some(prev) => e.rank() < prev.rank(),
                };
                if replace {
                    first_err = Some(e);
                }
            }
        }
    }
    match first_err {
        None => Ok(results),
        Some(e) => {
            if obs::is_metrics() {
                obs::metrics().counter("mesh_faults_total").inc(1);
            }
            Err(e)
        }
    }
}

/// Parse a `collective_permute` pair list from one core's point of view:
/// whom it receives from and whom it sends to, enforcing XLA's
/// at-most-once precondition on both roles.
pub(crate) fn parse_pairs(
    id: usize,
    pairs: &[(usize, usize)],
) -> Result<(Option<usize>, Option<usize>), MeshError> {
    let mut expect_from = None;
    let mut send_to = None;
    for &(src, dst) in pairs {
        if src == id {
            if send_to.is_some() {
                return Err(MeshError::Protocol {
                    core: id,
                    msg: format!("core {id} listed as source twice"),
                });
            }
            send_to = Some(dst);
        }
        if dst == id {
            if expect_from.is_some() {
                return Err(MeshError::Protocol {
                    core: id,
                    msg: format!("core {id} listed as destination twice"),
                });
            }
            expect_from = Some(src);
        }
    }
    Ok((expect_from, send_to))
}

/// The collective surface a per-core SPMD program runs against, written
/// once and executed by either runtime: on [`MeshRuntime::Threads`] every
/// operation completes synchronously inside a dedicated OS thread; on
/// [`MeshRuntime::Coop`] the returned futures genuinely suspend at
/// collective boundaries so thousands of logical cores multiplex over a
/// few workers.
pub trait Collectives<T: Send>: Send {
    /// This core's id.
    fn id(&self) -> usize;

    /// The mesh topology.
    fn torus(&self) -> Torus;

    /// This core's torus coordinates.
    fn coords(&self) -> (usize, usize) {
        self.torus().coords(self.id())
    }

    /// The collective sequence number the next collective will use.
    fn next_collective(&self) -> u64;

    /// The mesh configuration this core runs under — fault plan, current
    /// attempt, scrubber cadence, watchdog deadline. The pod layer reads
    /// it to fold integrity digests and apply lattice-level injections.
    fn mesh_config(&self) -> &MeshConfig;

    /// XLA `CollectivePermute` (see [`MeshHandle::collective_permute`]).
    fn collective_permute(
        &mut self,
        data: T,
        pairs: &[(usize, usize)],
    ) -> impl Future<Output = Result<Option<T>, MeshError>> + Send;

    /// Shift a tensor one mesh step in `dir`; every core sends and
    /// receives.
    fn shift(&mut self, data: T, dir: Dir) -> impl Future<Output = Result<T, MeshError>> + Send;
}

impl<T: Send> Collectives<T> for MeshHandle<T> {
    fn id(&self) -> usize {
        self.id
    }

    fn torus(&self) -> Torus {
        self.torus
    }

    fn next_collective(&self) -> u64 {
        self.seq
    }

    fn mesh_config(&self) -> &MeshConfig {
        &self.config
    }

    fn collective_permute(
        &mut self,
        data: T,
        pairs: &[(usize, usize)],
    ) -> impl Future<Output = Result<Option<T>, MeshError>> + Send {
        // Evaluated eagerly: on the thread runtime the blocking collective
        // *is* the operation; the future only carries its result.
        std::future::ready(MeshHandle::collective_permute(self, data, pairs))
    }

    fn shift(&mut self, data: T, dir: Dir) -> impl Future<Output = Result<T, MeshError>> + Send {
        std::future::ready(MeshHandle::shift(self, data, dir))
    }
}

/// A per-core SPMD program, generic over the runtime it lands on. The one
/// `run` body is compiled twice: against [`MeshHandle`] (threads, every
/// await ready immediately) and against
/// [`crate::sched::CoopMeshHandle`] (cooperative scheduler, awaits
/// suspend).
pub trait CoreProgram<T: Send>: Sync {
    /// What each core returns.
    type Out: Send;

    /// The program one core runs.
    fn run<H: Collectives<T>>(
        &self,
        handle: H,
    ) -> impl Future<Output = Result<Self::Out, MeshError>> + Send;
}

/// Single-poll executor for the thread runtime: every await in a
/// [`CoreProgram`] running against a [`MeshHandle`] is ready immediately,
/// so the whole program completes in one poll on its dedicated thread.
pub(crate) fn block_on_ready<F: Future>(fut: F) -> F::Output {
    let mut fut = std::pin::pin!(fut);
    let mut cx = std::task::Context::from_waker(std::task::Waker::noop());
    match fut.as_mut().poll(&mut cx) {
        std::task::Poll::Ready(v) => v,
        std::task::Poll::Pending => {
            unreachable!("thread-runtime mesh futures complete in one poll")
        }
    }
}

/// Run a [`CoreProgram`] on every core of the torus, on whichever runtime
/// `config.runtime` selects ([`MeshRuntime::Auto`] resolves against the
/// host's parallelism). Results come back in core-id order; failures
/// surface as the root-cause [`MeshError`], identically on both runtimes.
pub fn run_mesh<T, P>(torus: Torus, config: MeshConfig, prog: &P) -> Result<Vec<P::Out>, MeshError>
where
    T: Send,
    P: CoreProgram<T>,
{
    match config.runtime.resolve(torus.cores()) {
        MeshRuntime::Coop { workers } => crate::sched::run_coop(torus, config, workers, prog),
        _ => run_spmd_cfg(torus, config, |h| block_on_ready(prog.run(h))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A short timeout so fault tests fail fast instead of waiting the
    /// 30 s production default. Retries are off so timeout-timing
    /// assertions see exactly one receive window.
    fn fast(faults: FaultPlan) -> MeshConfig {
        MeshConfig {
            recv_timeout: Duration::from_millis(300),
            faults,
            attempt: 0,
            retry: RetryPolicy::none(),
            runtime: MeshRuntime::Threads,
            ..MeshConfig::default()
        }
    }

    #[test]
    fn topology_ids_and_coords_roundtrip() {
        let t = Torus::new(4, 8);
        for id in 0..t.cores() {
            let (x, y) = t.coords(id);
            assert_eq!(t.id(x, y), id);
        }
    }

    #[test]
    fn neighbors_wrap() {
        let t = Torus::new(3, 3);
        assert_eq!(t.neighbor(t.id(0, 0), Dir::North), t.id(2, 0));
        assert_eq!(t.neighbor(t.id(2, 0), Dir::South), t.id(0, 0));
        assert_eq!(t.neighbor(t.id(0, 0), Dir::West), t.id(0, 2));
        assert_eq!(t.neighbor(t.id(0, 2), Dir::East), t.id(0, 0));
    }

    #[test]
    fn neighbor_relations_are_inverse() {
        let t = Torus::new(4, 5);
        for id in 0..t.cores() {
            assert_eq!(t.neighbor(t.neighbor(id, Dir::North), Dir::South), id);
            assert_eq!(t.neighbor(t.neighbor(id, Dir::East), Dir::West), id);
        }
    }

    #[test]
    fn hops_and_diameter() {
        let t = Torus::new(4, 4);
        assert_eq!(t.hops(t.id(0, 0), t.id(0, 0)), 0);
        assert_eq!(t.hops(t.id(0, 0), t.id(0, 1)), 1);
        assert_eq!(t.hops(t.id(0, 0), t.id(2, 2)), 4); // wrap both axes
        assert_eq!(t.hops(t.id(0, 0), t.id(3, 0)), 1); // wrap
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn shift_pairs_cover_all_cores_once() {
        let t = Torus::new(3, 4);
        let pairs = t.shift_pairs(Dir::East);
        let mut sources: Vec<_> = pairs.iter().map(|p| p.0).collect();
        let mut dests: Vec<_> = pairs.iter().map(|p| p.1).collect();
        sources.sort_unstable();
        dests.sort_unstable();
        assert_eq!(sources, (0..12).collect::<Vec<_>>());
        assert_eq!(dests, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn spmd_shift_moves_values_around_the_ring() {
        // Each core contributes its id; after one eastward shift each core
        // holds its western neighbor's id.
        let t = Torus::new(2, 3);
        let got: Vec<usize> = run_spmd(t, |mut h: MeshHandle<usize>| {
            let id = h.id();
            h.shift(id, Dir::East)
        })
        .unwrap();
        for (id, &g) in got.iter().enumerate() {
            assert_eq!(g, t.neighbor(id, Dir::West), "core {id}");
        }
    }

    #[test]
    fn spmd_ring_pass_accumulates_full_sum() {
        // Pass a partial sum all the way around a 1×4 ring.
        let t = Torus::new(1, 4);
        let sums: Vec<u64> = run_spmd(t, |mut h: MeshHandle<u64>| {
            let mut acc = h.id() as u64;
            let mut carry = h.id() as u64;
            for _ in 0..3 {
                carry = h.shift(carry, Dir::East)?;
                acc += carry;
            }
            Ok(acc)
        })
        .unwrap();
        assert!(sums.iter().all(|&s| s == 1 + 2 + 3));
    }

    #[test]
    fn spmd_multiple_sequential_collectives_do_not_cross_talk() {
        let t = Torus::new(2, 2);
        let results: Vec<(usize, usize)> = run_spmd(t, |mut h: MeshHandle<usize>| {
            let a = h.shift(h.id() * 10, Dir::South)?;
            let b = h.shift(h.id() * 100, Dir::East)?;
            Ok((a, b))
        })
        .unwrap();
        for (id, r) in results.iter().enumerate() {
            assert_eq!(r.0, t.neighbor(id, Dir::North) * 10);
            assert_eq!(r.1, t.neighbor(id, Dir::West) * 100);
        }
    }

    #[test]
    fn partial_permute_returns_none_for_non_destinations() {
        // Only core 0 → core 1 communicates; others pass through.
        let t = Torus::new(1, 3);
        let got: Vec<Option<u32>> = run_spmd(t, |mut h: MeshHandle<u32>| {
            h.collective_permute(h.id() as u32 + 7, &[(0, 1)])
        })
        .unwrap();
        assert_eq!(got, vec![None, Some(7), None]);
    }

    #[test]
    fn all_to_all_is_a_transpose() {
        // core i sends chunk (i, j) to core j; afterwards core j holds
        // (i, j) at position i — the distributed matrix transpose.
        let t = Torus::new(2, 3);
        let p = t.cores();
        let results: Vec<Vec<(usize, usize)>> = run_spmd(t, |mut h: MeshHandle<(usize, usize)>| {
            let chunks: Vec<(usize, usize)> = (0..p).map(|j| (h.id(), j)).collect();
            h.all_to_all(chunks)
        })
        .unwrap();
        for (j, row) in results.iter().enumerate() {
            for (i, &cell) in row.iter().enumerate() {
                assert_eq!(cell, (i, j), "core {j}, slot {i}");
            }
        }
    }

    #[test]
    fn all_to_all_on_single_core_is_identity() {
        let t = Torus::new(1, 1);
        let got: Vec<Vec<u8>> =
            run_spmd(t, |mut h: MeshHandle<u8>| h.all_to_all(vec![42])).unwrap();
        assert_eq!(got, vec![vec![42]]);
    }

    #[test]
    fn single_core_torus_shifts_to_itself() {
        let t = Torus::new(1, 1);
        let got: Vec<u8> = run_spmd(t, |mut h: MeshHandle<u8>| h.shift(42, Dir::East)).unwrap();
        assert_eq!(got, vec![42]);
    }

    #[test]
    fn injected_kill_surfaces_as_typed_error() {
        // Kill core 3 at its third collective; the pod reports the kill
        // (the root cause), not the timeouts the other cores see.
        let t = Torus::new(2, 2);
        let err = run_spmd_cfg(t, fast(FaultPlan::new().kill(3, 2)), |mut h: MeshHandle<u32>| {
            let mut v = h.id() as u32;
            for _ in 0..5 {
                v = h.shift(v, Dir::East)?;
            }
            Ok(v)
        })
        .unwrap_err();
        assert_eq!(err, MeshError::InjectedKill { core: 3, seq: 2 });
    }

    #[test]
    fn dead_peer_times_out_instead_of_hanging() {
        // Core 0 exits before the collective; core 1 waits for its packet
        // and must get a bounded RecvTimeout, not a hang.
        let t = Torus::new(1, 3);
        let err = run_spmd_cfg(t, fast(FaultPlan::new()), |mut h: MeshHandle<u32>| {
            if h.id() == 0 {
                return Ok(0);
            }
            h.collective_permute(7, &[(0, 1)]).map(|v| v.unwrap_or(0))
        })
        .unwrap_err();
        match err {
            MeshError::RecvTimeout { core: 1, peer: 0, seq: 0, waited_ms } => {
                assert!(waited_ms >= 300);
            }
            other => panic!("expected RecvTimeout, got {other:?}"),
        }
    }

    #[test]
    fn dropped_packet_times_out_receiver_only() {
        let t = Torus::new(1, 2);
        let err = run_spmd_cfg(
            t,
            fast(FaultPlan::new().drop_packet(0, 1, 0)),
            |mut h: MeshHandle<u32>| h.shift(h.id() as u32, Dir::East),
        )
        .unwrap_err();
        assert!(
            matches!(err, MeshError::RecvTimeout { core: 1, peer: 0, .. }),
            "expected core 1 to time out on the dropped packet, got {err:?}"
        );
    }

    #[test]
    fn delayed_packet_changes_nothing() {
        let t = Torus::new(1, 3);
        let plan = FaultPlan::new().delay(1, 0, Duration::from_millis(40));
        let got: Vec<usize> =
            run_spmd_cfg(t, fast(plan), |mut h: MeshHandle<usize>| h.shift(h.id(), Dir::East))
                .unwrap();
        for (id, &g) in got.iter().enumerate() {
            assert_eq!(g, t.neighbor(id, Dir::West), "core {id}");
        }
    }

    #[test]
    fn panicking_core_is_contained() {
        let t = Torus::new(1, 2);
        let err = run_spmd_cfg(t, fast(FaultPlan::new()), |mut h: MeshHandle<u32>| {
            if h.id() == 1 {
                panic!("simulated bug in core 1");
            }
            h.shift(0, Dir::East)
        })
        .unwrap_err();
        assert_eq!(err, MeshError::CorePanicked { core: 1 });
    }

    #[test]
    fn faults_gate_on_attempt() {
        // A fault scheduled for attempt 1 must not fire on attempt 0, and
        // vice versa.
        let t = Torus::new(1, 2);
        let plan = FaultPlan::new().kill_on_attempt(0, 0, 1);
        let run = |attempt: usize| {
            let cfg = MeshConfig {
                recv_timeout: Duration::from_millis(300),
                faults: plan.clone(),
                attempt,
                retry: RetryPolicy::none(),
                runtime: MeshRuntime::Threads,
                ..MeshConfig::default()
            };
            run_spmd_cfg(t, cfg, |mut h: MeshHandle<u32>| h.shift(h.id() as u32, Dir::East))
        };
        assert!(run(0).is_ok());
        assert_eq!(run(1).unwrap_err(), MeshError::InjectedKill { core: 0, seq: 0 });
    }

    #[test]
    fn transient_delay_is_absorbed_by_collective_retries() {
        // Core 0's send is delayed 180 ms; the receive window is only
        // 100 ms. Tier-1 retries extend the deadline (100, then
        // 100 + 50 = 150 more — cumulative 250 ms > 180 ms), so the
        // collective succeeds without any pod-level restart.
        let t = Torus::new(1, 2);
        let cfg = MeshConfig {
            recv_timeout: Duration::from_millis(100),
            faults: FaultPlan::new().delay(0, 0, Duration::from_millis(180)),
            attempt: 0,
            retry: RetryPolicy { max_retries: 2, backoff: Duration::from_millis(50) },
            runtime: MeshRuntime::Threads,
            ..MeshConfig::default()
        };
        let got: Vec<u32> =
            run_spmd_cfg(t, cfg, |mut h: MeshHandle<u32>| h.shift(h.id() as u32, Dir::East))
                .unwrap();
        assert_eq!(got, vec![1, 0]);
    }

    #[test]
    fn same_delay_without_retries_times_out() {
        // The identical schedule with retries disabled escalates: the
        // packet lands at 180 ms, after the single 100 ms window closed.
        let t = Torus::new(1, 2);
        let cfg = MeshConfig {
            recv_timeout: Duration::from_millis(100),
            faults: FaultPlan::new().delay(0, 0, Duration::from_millis(180)),
            attempt: 0,
            retry: RetryPolicy::none(),
            runtime: MeshRuntime::Threads,
            ..MeshConfig::default()
        };
        let err = run_spmd_cfg(t, cfg, |mut h: MeshHandle<u32>| h.shift(h.id() as u32, Dir::East))
            .unwrap_err();
        // Core 1 times out at 100 ms; core 0's late send at 180 ms may
        // then land on a dropped receiver (PeerGone, which outranks the
        // timeout in root-cause selection). Both are the same failure.
        assert!(
            matches!(err, MeshError::RecvTimeout { core: 1, peer: 0, .. })
                || matches!(err, MeshError::PeerGone { core: 0, peer: 1, .. }),
            "expected RecvTimeout or PeerGone, got {err:?}"
        );
    }

    #[test]
    fn retries_are_bounded_and_report_total_wait() {
        // A dropped packet never arrives: after max_retries extensions the
        // timeout escalates, and waited_ms reflects the whole tiered wait
        // (3 windows of 100 ms plus 50 + 100 ms backoff ≥ 450 ms).
        let t = Torus::new(1, 2);
        let cfg = MeshConfig {
            recv_timeout: Duration::from_millis(100),
            faults: FaultPlan::new().drop_packet(0, 1, 0),
            attempt: 0,
            retry: RetryPolicy { max_retries: 2, backoff: Duration::from_millis(50) },
            runtime: MeshRuntime::Threads,
            ..MeshConfig::default()
        };
        let err = run_spmd_cfg(t, cfg, |mut h: MeshHandle<u32>| h.shift(h.id() as u32, Dir::East))
            .unwrap_err();
        match err {
            MeshError::RecvTimeout { core: 1, peer: 0, waited_ms, .. } => {
                assert!(waited_ms >= 440, "waited only {waited_ms} ms");
            }
            other => panic!("expected RecvTimeout, got {other:?}"),
        }
    }

    #[test]
    fn retry_backoff_schedule_is_deterministic() {
        let p = RetryPolicy { max_retries: 3, backoff: Duration::from_millis(50) };
        let w = Duration::from_millis(100);
        assert_eq!(p.extension(w, 1), Duration::from_millis(150));
        assert_eq!(p.extension(w, 2), Duration::from_millis(200));
        assert_eq!(p.extension(w, 3), Duration::from_millis(300));
        assert_eq!(RetryPolicy::none().max_retries, 0);
    }

    #[test]
    fn mesh_error_display_is_informative() {
        let e = MeshError::RecvTimeout { core: 2, peer: 5, seq: 17, waited_ms: 250 };
        let s = e.to_string();
        assert!(s.contains("core 2") && s.contains("peer 5") && s.contains("250"));
        let k = MeshError::InjectedKill { core: 1, seq: 3 }.to_string();
        assert!(k.contains("fault plan"));
    }

    /// The paper-scale and deliberately awkward shapes: the paper's 45×45
    /// and 32×64 pods, a degenerate 1×N ring, and a small odd-by-odd grid.
    const AWKWARD_GRIDS: [(usize, usize); 4] = [(45, 45), (32, 64), (1, 2048), (3, 5)];

    fn opposite(dir: Dir) -> Dir {
        match dir {
            Dir::North => Dir::South,
            Dir::South => Dir::North,
            Dir::West => Dir::East,
            Dir::East => Dir::West,
        }
    }

    /// Exhaustive neighbor-math properties on non-square and odd grids:
    /// id↔coords roundtrip, neighbor-inverse symmetry, single-axis moves,
    /// and wraparound at the edges.
    #[test]
    fn torus_neighbor_math_holds_on_awkward_grids() {
        for (nx, ny) in AWKWARD_GRIDS {
            let t = Torus::new(nx, ny);
            assert_eq!(t.cores(), nx * ny);
            for id in 0..t.cores() {
                let (x, y) = t.coords(id);
                assert_eq!(t.id(x, y), id, "{nx}x{ny} roundtrip of {id}");
                for dir in [Dir::North, Dir::South, Dir::West, Dir::East] {
                    let n = t.neighbor(id, dir);
                    assert!(n < t.cores(), "{nx}x{ny} neighbor out of range");
                    assert_eq!(
                        t.neighbor(n, opposite(dir)),
                        id,
                        "{nx}x{ny} {dir:?} not inverted by its opposite at {id}"
                    );
                    // A step moves exactly one axis, by a wrap-aware
                    // distance of one (zero only on a length-1 axis).
                    let (xn, yn) = t.coords(n);
                    let expect = match dir {
                        Dir::North | Dir::South => usize::from(nx > 1),
                        Dir::West | Dir::East => usize::from(ny > 1),
                    };
                    assert_eq!(t.hops(id, n), expect, "{nx}x{ny} {dir:?} hop from {id}");
                    match dir {
                        Dir::North | Dir::South => assert_eq!(yn, y),
                        Dir::West | Dir::East => assert_eq!(xn, x),
                    }
                }
            }
            // Wraparound symmetry: walking a full axis returns home.
            for id in [0, t.cores() / 2, t.cores() - 1] {
                let mut walk = id;
                for _ in 0..nx {
                    walk = t.neighbor(walk, Dir::South);
                }
                assert_eq!(walk, id, "{nx}x{ny} south walk is not {nx}-periodic");
                for _ in 0..ny {
                    walk = t.neighbor(walk, Dir::East);
                }
                assert_eq!(walk, id, "{nx}x{ny} east walk is not {ny}-periodic");
            }
        }
    }

    /// `shift_pairs` must be a permutation on every grid — each core
    /// appears exactly once as source and once as destination, so a shift
    /// is collision-free and delivers to everyone.
    #[test]
    fn shift_pairs_is_a_permutation_on_awkward_grids() {
        for (nx, ny) in AWKWARD_GRIDS {
            let t = Torus::new(nx, ny);
            for dir in [Dir::North, Dir::South, Dir::West, Dir::East] {
                let pairs = t.shift_pairs(dir);
                assert_eq!(pairs.len(), t.cores());
                let mut as_src = vec![false; t.cores()];
                let mut as_dst = vec![false; t.cores()];
                for &(src, dst) in &pairs {
                    assert!(!as_src[src], "{nx}x{ny} {dir:?}: duplicate source {src}");
                    assert!(!as_dst[dst], "{nx}x{ny} {dir:?}: duplicate destination {dst}");
                    as_src[src] = true;
                    as_dst[dst] = true;
                    assert_eq!(dst, t.neighbor(src, dir));
                }
            }
        }
    }

    /// Hop distances stay symmetric and bounded by the diameter on skewed
    /// grids, and transposing the torus transposes the metric — the
    /// geometric half of reshape-on-resume compatibility (the state-level
    /// half lives in the pod resume tests).
    #[test]
    fn torus_metric_is_symmetric_and_transpose_consistent() {
        for (nx, ny) in [(32usize, 64usize), (1, 2048), (3, 5), (45, 45)] {
            let t = Torus::new(nx, ny);
            let flipped = Torus::new(ny, nx);
            assert_eq!(t.diameter(), flipped.diameter());
            let samples = [0, 1 % t.cores(), t.cores() / 3, t.cores() / 2, t.cores() - 1];
            for &a in &samples {
                for &b in &samples {
                    assert_eq!(t.hops(a, b), t.hops(b, a), "{nx}x{ny} hops asymmetric");
                    assert!(t.hops(a, b) <= t.diameter(), "{nx}x{ny} hops exceed diameter");
                    // Transposed coordinates give the same distance.
                    let (ax, ay) = t.coords(a);
                    let (bx, by) = t.coords(b);
                    assert_eq!(
                        t.hops(a, b),
                        flipped.hops(flipped.id(ay, ax), flipped.id(by, bx)),
                        "{nx}x{ny} metric changed under transpose"
                    );
                }
            }
        }
    }
}
