//! The TPU Pod's 2-D toroidal mesh: topology, timing, and a functional
//! SPMD runtime.
//!
//! The timing side feeds the cost model ([`crate::cost`]); the functional
//! side runs *real threads* — one per modeled TensorCore — exchanging halo
//! tensors through channels with exactly the `collective_permute` semantics
//! the paper's distributed graph uses: every core executes the same program
//! and calls the collective with a globally identical source→destination
//! list; the call blocks until the core has both sent and received.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use tpu_ising_obs as obs;

/// A 2-D torus of `nx × ny` cores, each identified by `id = x * ny + y`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Torus {
    /// Cores along the first axis.
    pub nx: usize,
    /// Cores along the second axis.
    pub ny: usize,
}

/// The four mesh directions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Toward decreasing x (wraps).
    North,
    /// Toward increasing x (wraps).
    South,
    /// Toward decreasing y (wraps).
    West,
    /// Toward increasing y (wraps).
    East,
}

impl Torus {
    /// Construct an `nx × ny` torus. Panics if either dimension is zero.
    pub fn new(nx: usize, ny: usize) -> Torus {
        assert!(nx > 0 && ny > 0, "torus dimensions must be positive");
        Torus { nx, ny }
    }

    /// Total cores.
    pub fn cores(&self) -> usize {
        self.nx * self.ny
    }

    /// Core id at coordinates `(x, y)`.
    pub fn id(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny);
        x * self.ny + y
    }

    /// Coordinates of a core id.
    pub fn coords(&self, id: usize) -> (usize, usize) {
        debug_assert!(id < self.cores());
        (id / self.ny, id % self.ny)
    }

    /// The neighboring core in a direction, with torus wrap.
    pub fn neighbor(&self, id: usize, dir: Dir) -> usize {
        let (x, y) = self.coords(id);
        match dir {
            Dir::North => self.id((x + self.nx - 1) % self.nx, y),
            Dir::South => self.id((x + 1) % self.nx, y),
            Dir::West => self.id(x, (y + self.ny - 1) % self.ny),
            Dir::East => self.id(x, (y + 1) % self.ny),
        }
    }

    /// Minimal hop count between two cores on the torus.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        let dx = ax.abs_diff(bx);
        let dy = ay.abs_diff(by);
        dx.min(self.nx - dx) + dy.min(self.ny - dy)
    }

    /// The torus diameter (maximal minimal-hop distance).
    pub fn diameter(&self) -> usize {
        self.nx / 2 + self.ny / 2
    }

    /// The globally identical source→destination list that shifts every
    /// core's tensor one step in `dir` — the argument the paper passes to
    /// `tpu_ops.collective_permute` (Fig. 5).
    pub fn shift_pairs(&self, dir: Dir) -> Vec<(usize, usize)> {
        (0..self.cores()).map(|src| (src, self.neighbor(src, dir))).collect()
    }
}

/// A message on the mesh: (collective sequence number, source core, payload).
type Packet<T> = (u64, usize, T);

/// Per-core handle into the functional mesh: identifies the core and lets
/// it participate in collectives.
pub struct MeshHandle<T: Send> {
    id: usize,
    torus: Torus,
    seq: u64,
    senders: Vec<Sender<Packet<T>>>,
    receiver: Receiver<Packet<T>>,
    /// Out-of-order packets parked until their collective comes up.
    stash: HashMap<(u64, usize), T>,
}

impl<T: Send> MeshHandle<T> {
    /// This core's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// This core's torus coordinates.
    pub fn coords(&self) -> (usize, usize) {
        self.torus.coords(self.id)
    }

    /// The mesh topology.
    pub fn torus(&self) -> Torus {
        self.torus
    }

    /// XLA `CollectivePermute`: permute `data` across cores according to a
    /// globally identical `(source, destination)` pair list.
    ///
    /// Every core appearing as a source sends; every core appearing as a
    /// destination receives; the call blocks until this core has done both.
    /// Returns `Some(tensor)` if this core is a destination, `None` if not.
    /// Each core must appear at most once as source and once as destination
    /// (XLA's precondition).
    pub fn collective_permute(&mut self, data: T, pairs: &[(usize, usize)]) -> Option<T> {
        let _span = obs::span!("collective_permute", obs::SpanKind::CollectivePermute);
        if obs::is_metrics() {
            obs::metrics().counter("collectives_total").inc(1);
        }
        let seq = self.seq;
        self.seq += 1;
        let mut expect_from = None;
        let mut send_to = None;
        for &(src, dst) in pairs {
            if src == self.id {
                assert!(send_to.is_none(), "core {} listed as source twice", self.id);
                send_to = Some(dst);
            }
            if dst == self.id {
                assert!(expect_from.is_none(), "core {} listed as destination twice", self.id);
                expect_from = Some(src);
            }
        }
        if let Some(dst) = send_to {
            self.senders[dst].send((seq, self.id, data)).expect("mesh peer hung up");
        }
        let src = expect_from?;
        // Drain until our packet arrives; park strays (they belong to
        // collectives this core has not reached yet — lockstep programs
        // guarantee they will be consumed in order).
        if let Some(t) = self.stash.remove(&(seq, src)) {
            return Some(t);
        }
        loop {
            let (pseq, psrc, payload) = self.receiver.recv().expect("mesh peer hung up");
            if pseq == seq && psrc == src {
                return Some(payload);
            }
            self.stash.insert((pseq, psrc), payload);
        }
    }

    /// Shift a tensor one mesh step in `dir`; every core sends and receives.
    pub fn shift(&mut self, data: T, dir: Dir) -> T {
        let pairs = self.torus.shift_pairs(dir);
        self.collective_permute(data, &pairs).expect("full-shift permute always delivers")
    }

    /// XLA `AllToAll`: core `i` provides one chunk per core; afterwards
    /// core `i` holds chunk `i` from every core (in core-id order).
    ///
    /// Implemented as `P − 1` rotation collective-permutes (the classic
    /// ring schedule), which is exactly how a 2-D torus without all-to-all
    /// hardware support executes it.
    pub fn all_to_all(&mut self, chunks: Vec<T>) -> Vec<T>
    where
        T: Clone + Default,
    {
        let p = self.torus.cores();
        assert_eq!(chunks.len(), p, "all_to_all needs one chunk per core");
        let mut out: Vec<T> = vec![T::default(); p];
        let mut chunks = chunks;
        // own chunk stays
        out[self.id] = std::mem::take(&mut chunks[self.id]);
        for k in 1..p {
            // rotation by k: every core sends the chunk destined for core
            // (id + k) directly to it.
            let pairs: Vec<(usize, usize)> = (0..p).map(|src| (src, (src + k) % p)).collect();
            let dst = (self.id + k) % p;
            let src = (self.id + p - k) % p;
            let received = self
                .collective_permute(std::mem::take(&mut chunks[dst]), &pairs)
                .expect("rotation permute always delivers");
            out[src] = received;
        }
        out
    }
}

/// Run one closure per core, SPMD-style, on real threads. Returns each
/// core's result indexed by core id.
///
/// The closure receives a [`MeshHandle`] for collectives. Panics in any
/// core propagate.
pub fn run_spmd<T, R, F>(torus: Torus, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(MeshHandle<T>) -> R + Sync,
{
    let n = torus.cores();
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, r) = unbounded::<Packet<T>>();
        senders.push(s);
        receivers.push(r);
    }
    let mut handles: Vec<MeshHandle<T>> = receivers
        .into_iter()
        .enumerate()
        .map(|(id, receiver)| MeshHandle {
            id,
            torus,
            seq: 0,
            senders: senders.clone(),
            receiver,
            stash: HashMap::new(),
        })
        .collect();
    drop(senders);

    let f = &f;
    crossbeam::thread::scope(|scope| {
        let joins: Vec<_> = handles.drain(..).map(|h| scope.spawn(move |_| f(h))).collect();
        joins.into_iter().map(|j| j.join().expect("SPMD core panicked")).collect()
    })
    .expect("SPMD scope panicked")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_ids_and_coords_roundtrip() {
        let t = Torus::new(4, 8);
        for id in 0..t.cores() {
            let (x, y) = t.coords(id);
            assert_eq!(t.id(x, y), id);
        }
    }

    #[test]
    fn neighbors_wrap() {
        let t = Torus::new(3, 3);
        assert_eq!(t.neighbor(t.id(0, 0), Dir::North), t.id(2, 0));
        assert_eq!(t.neighbor(t.id(2, 0), Dir::South), t.id(0, 0));
        assert_eq!(t.neighbor(t.id(0, 0), Dir::West), t.id(0, 2));
        assert_eq!(t.neighbor(t.id(0, 2), Dir::East), t.id(0, 0));
    }

    #[test]
    fn neighbor_relations_are_inverse() {
        let t = Torus::new(4, 5);
        for id in 0..t.cores() {
            assert_eq!(t.neighbor(t.neighbor(id, Dir::North), Dir::South), id);
            assert_eq!(t.neighbor(t.neighbor(id, Dir::East), Dir::West), id);
        }
    }

    #[test]
    fn hops_and_diameter() {
        let t = Torus::new(4, 4);
        assert_eq!(t.hops(t.id(0, 0), t.id(0, 0)), 0);
        assert_eq!(t.hops(t.id(0, 0), t.id(0, 1)), 1);
        assert_eq!(t.hops(t.id(0, 0), t.id(2, 2)), 4); // wrap both axes
        assert_eq!(t.hops(t.id(0, 0), t.id(3, 0)), 1); // wrap
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn shift_pairs_cover_all_cores_once() {
        let t = Torus::new(3, 4);
        let pairs = t.shift_pairs(Dir::East);
        let mut sources: Vec<_> = pairs.iter().map(|p| p.0).collect();
        let mut dests: Vec<_> = pairs.iter().map(|p| p.1).collect();
        sources.sort_unstable();
        dests.sort_unstable();
        assert_eq!(sources, (0..12).collect::<Vec<_>>());
        assert_eq!(dests, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn spmd_shift_moves_values_around_the_ring() {
        // Each core contributes its id; after one eastward shift each core
        // holds its western neighbor's id.
        let t = Torus::new(2, 3);
        let got: Vec<usize> = run_spmd(t, |mut h: MeshHandle<usize>| {
            let id = h.id();
            h.shift(id, Dir::East)
        });
        for (id, &g) in got.iter().enumerate() {
            assert_eq!(g, t.neighbor(id, Dir::West), "core {id}");
        }
    }

    #[test]
    fn spmd_ring_pass_accumulates_full_sum() {
        // Pass a partial sum all the way around a 1×4 ring.
        let t = Torus::new(1, 4);
        let sums: Vec<u64> = run_spmd(t, |mut h: MeshHandle<u64>| {
            let mut acc = h.id() as u64;
            let mut carry = h.id() as u64;
            for _ in 0..3 {
                carry = h.shift(carry, Dir::East);
                acc += carry;
            }
            acc
        });
        assert!(sums.iter().all(|&s| s == 1 + 2 + 3));
    }

    #[test]
    fn spmd_multiple_sequential_collectives_do_not_cross_talk() {
        let t = Torus::new(2, 2);
        let results: Vec<(usize, usize)> = run_spmd(t, |mut h: MeshHandle<usize>| {
            let a = h.shift(h.id() * 10, Dir::South);
            let b = h.shift(h.id() * 100, Dir::East);
            (a, b)
        });
        for (id, r) in results.iter().enumerate() {
            assert_eq!(r.0, t.neighbor(id, Dir::North) * 10);
            assert_eq!(r.1, t.neighbor(id, Dir::West) * 100);
        }
    }

    #[test]
    fn partial_permute_returns_none_for_non_destinations() {
        // Only core 0 → core 1 communicates; others pass through.
        let t = Torus::new(1, 3);
        let got: Vec<Option<u32>> = run_spmd(t, |mut h: MeshHandle<u32>| {
            h.collective_permute(h.id() as u32 + 7, &[(0, 1)])
        });
        assert_eq!(got, vec![None, Some(7), None]);
    }

    #[test]
    fn all_to_all_is_a_transpose() {
        // core i sends chunk (i, j) to core j; afterwards core j holds
        // (i, j) at position i — the distributed matrix transpose.
        let t = Torus::new(2, 3);
        let p = t.cores();
        let results: Vec<Vec<(usize, usize)>> = run_spmd(t, |mut h: MeshHandle<(usize, usize)>| {
            let chunks: Vec<(usize, usize)> = (0..p).map(|j| (h.id(), j)).collect();
            h.all_to_all(chunks)
        });
        for (j, row) in results.iter().enumerate() {
            for (i, &cell) in row.iter().enumerate() {
                assert_eq!(cell, (i, j), "core {j}, slot {i}");
            }
        }
    }

    #[test]
    fn all_to_all_on_single_core_is_identity() {
        let t = Torus::new(1, 1);
        let got: Vec<Vec<u8>> = run_spmd(t, |mut h: MeshHandle<u8>| h.all_to_all(vec![42]));
        assert_eq!(got, vec![vec![42]]);
    }

    #[test]
    fn single_core_torus_shifts_to_itself() {
        let t = Torus::new(1, 1);
        let got: Vec<u8> = run_spmd(t, |mut h: MeshHandle<u8>| h.shift(42, Dir::East));
        assert_eq!(got, vec![42]);
    }
}
