//! Calibrated sustained-rate constants for the TPU v3 performance model.
//!
//! Every constant here is derived from numbers the paper itself publishes,
//! the way the paper validates its own profiler readings in §5.2 (op count
//! divided by measured time). The derivations below use the *distributed
//! Algorithm 2* configuration that anchors Tables 2–5: per-core lattice
//! `[896·128, 448·128]` (HW = 6.576e9 spins), step time 574.7 ms, and the
//! Table 3 breakdown (59.6 % MXU, 12 % VPU, 28.1 % data formatting,
//! 0.024–0.11 % collective permute).
//!
//! With per-spin op counts from [`crate::cost::step_counts`] (256 MACs,
//! 13 VPU element-ops, 6.07 formatting passes per spin for the compact
//! algorithm at bf16):
//!
//! - `t_mxu/spin = 0.596 · 8.740e-11 s = 5.209e-11 s` ⇒ sustained MXU rate
//!   `256 / 5.209e-11 ≈ 4.91e12 MACs/s` (≈16 % of the 3.1e13 peak — the
//!   band-kernel matmul is memory-shape limited, consistent with the paper's
//!   "memory bound" roofline verdict).
//! - `t_vpu/spin = 0.120 · 8.740e-11 = 1.049e-11 s` ⇒ sustained VPU rate
//!   `13 / 1.049e-11 ≈ 1.24e12 element-ops/s` (≈ the VPU's 2×8×128 lanes at
//!   ~0.96 GHz — full VPU utilization, matching the paper's observation that
//!   RNG keeps the VPU busy).
//! - `t_fmt/spin = 0.281 · 8.740e-11 = 2.456e-11 s` over 12.14 bytes/spin ⇒
//!   formatting rate ≈ 4.94e11 B/s (≈half of HBM spec bandwidth: gather /
//!   scatter at sub-tile granularity).

/// Sustained MXU rate in multiply-accumulates per second.
pub const MXU_SUSTAINED_MACS: f64 = 4.9146e12;

/// Sustained VPU rate in element-operations per second.
pub const VPU_SUSTAINED_ELEMS: f64 = 1.2395e12;

/// Sustained data-formatting (reshape/slice/transpose) rate in bytes/sec.
pub const FMT_RATE_BYTES: f64 = 4.943e11;

/// VPU element-ops charged per generated uniform (Philox is ~4 vector ops
/// per output word on the VPU).
pub const RNG_OPS_PER_UNIFORM: f64 = 4.0;

/// Effective HBM streaming bandwidth (bytes/s) used by the roofline model.
///
/// Chosen so the modeled step achieves ≈76.5 % of the memory-bound roofline
/// at the anchor configuration (Table 5). The paper's own roofline-plot
/// slope gives "at least ~300 GB/s"; the calibrated effective value lands
/// between that floor and the ~900 GB/s spec number.
pub const HBM_EFFECTIVE_BW: f64 = 5.70e11;

/// f32 matmuls decompose into multiple bf16 MXU passes (paper §4.1: "float32
/// matrix multiplication is more expensive as several bfloat16 passes are
/// required"). Classic 3-pass decomposition.
pub const MXU_F32_PASSES: f64 = 3.0;

/// Data-formatting passes over the lattice per sweep, by program variant.
/// One "pass" reads or writes every spin once at storage width.
pub mod fmt_passes {
    /// Compact Algorithm 2, distributed graph (halo staging included):
    /// calibrated so formatting is 28.1 % of the anchor step (Table 3).
    pub const COMPACT_DISTRIBUTED: f64 = 6.07;
    /// Compact Algorithm 2, single-core graph: calibrated so the Table 1
    /// asymptote lands at 12.906 flips/ns.
    pub const COMPACT_SINGLE: f64 = 3.69;
    /// Conv-based variant (appendix): calibrated against Table 6's dense
    /// rows (≈4.98e-11 s/spin).
    pub const CONV: f64 = 6.51;
    /// Naive masked Algorithm 1: formatting-heavy (full-lattice temporaries
    /// for probs, nn, acceptance, mask, flips). With this value the model
    /// puts Algorithm 1 at ~2.6× the compact step time; the paper reports
    /// ~3× including memory-footprint effects we do not model.
    pub const NAIVE: f64 = 24.0;
}

/// MXU utilization-regime multiplier for the *distributed compact* graph:
/// per-core lattices below this spin count run at a higher per-spin cost
/// (Table 4: shrinking the per-core lattice 4× from [896·128, 448·128]
/// reduces step time only to 44 %, not 25 %, then scales linearly below).
pub const DIST_SMALL_LATTICE_THRESHOLD_SPINS: f64 = 3.0e9;
/// The calibrated cost multiplier below the threshold
/// (255 ms / (1.644e9 · 8.714e-11 s) ≈ 1.78).
pub const DIST_SMALL_LATTICE_MULTIPLIER: f64 = 1.78;

/// Collective-permute time model (milliseconds):
/// `t = CP_BASE + CP_SQRT·√P + CP_LIN·P + bytes/CP_LINK_BW`.
///
/// The √P term is the torus-diameter synchronization cost (the paper notes
/// logical neighbors may be physically distant); the linear term models the
/// pod-scale fan-in that bends Table 7's strong scaling past ~1000 cores;
/// the bandwidth term is small because halo edges are tiny (≤229 376 bytes,
/// §5.2). Constants fitted to Table 4 (0.18–0.65 ms over 32–512 cores) and
/// Table 7's knee (≈1.5 ms at 2048 cores).
pub const CP_BASE_MS: f64 = 0.10;
/// √cores coefficient, ms.
pub const CP_SQRT_MS: f64 = 0.0165;
/// Linear-in-cores coefficient, ms.
pub const CP_LIN_MS: f64 = 0.0003;
/// Effective per-link bandwidth for halo payloads, bytes/s.
pub const CP_LINK_BW: f64 = 5.0e9;

/// HBM working-set overhead beyond the raw lattice (fused temporaries,
/// per-quarter scratch). Calibrated so a (656·128)² bf16 lattice consumes
/// 96 % of a core's 16 GB HBM, as the paper reports in §4.2.1.
pub const HBM_TEMP_FACTOR: f64 = 0.169;

/// Single-core efficiency curve: (lattice spins, fraction of asymptotic
/// throughput). Taken from Table 1's measured flips/ns relative to the
/// 12.9056 flips/ns plateau; interpolated piecewise-linearly in log₂(spins)
/// and clamped flat outside the measured range. This is the one place the
/// model consumes a measured *curve* rather than a single constant — the
/// small-lattice ramp-up is a pipeline-utilization property we cannot
/// derive from op counts alone.
pub const SINGLE_CORE_EFF: [(f64, f64); 6] = [
    (6.5536e6, 0.6348),
    (2.62144e7, 0.7254),
    (1.048576e8, 0.9559),
    (4.194304e8, 0.9939),
    (1.6777216e9, 1.0000),
    (6.7108864e9, 0.9979),
];

/// Interpolate the single-core efficiency curve at `spins`.
pub fn single_core_efficiency(spins: f64) -> f64 {
    let pts = &SINGLE_CORE_EFF;
    if spins <= pts[0].0 {
        return pts[0].1;
    }
    if spins >= pts[pts.len() - 1].0 {
        return pts[pts.len() - 1].1;
    }
    for w in pts.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if spins <= x1 {
            let t = (spins.log2() - x0.log2()) / (x1.log2() - x0.log2());
            return y0 + t * (y1 - y0);
        }
    }
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_reproduces_anchor_points() {
        for &(spins, eff) in SINGLE_CORE_EFF.iter() {
            assert!((single_core_efficiency(spins) - eff).abs() < 1e-12);
        }
    }

    #[test]
    fn efficiency_is_clamped_outside_range() {
        assert_eq!(single_core_efficiency(1.0), SINGLE_CORE_EFF[0].1);
        assert_eq!(single_core_efficiency(1e12), SINGLE_CORE_EFF[5].1);
    }

    #[test]
    fn efficiency_interpolates_monotonically_up_to_plateau() {
        let mut prev = 0.0;
        for i in 0..=40 {
            let spins = 6.5e6 * 2f64.powf(i as f64 * 0.2);
            let e = single_core_efficiency(spins);
            assert!((0.6..=1.0001).contains(&e));
            if spins < 1.6e9 {
                assert!(e + 1e-9 >= prev, "dip at {spins}");
                prev = e;
            }
        }
    }

    #[test]
    fn anchor_breakdown_is_self_consistent() {
        // The three sustained rates must reproduce Table 3's split at the
        // anchor config: 256 MACs, 13 VPU ops, 12.14 fmt bytes per spin.
        let t_mxu = 256.0 / MXU_SUSTAINED_MACS;
        let t_vpu = 13.0 / VPU_SUSTAINED_ELEMS;
        let t_fmt = 2.0 * fmt_passes::COMPACT_DISTRIBUTED / FMT_RATE_BYTES;
        let total = t_mxu + t_vpu + t_fmt;
        let mxu_pct = t_mxu / total * 100.0;
        let vpu_pct = t_vpu / total * 100.0;
        let fmt_pct = t_fmt / total * 100.0;
        assert!((mxu_pct - 59.6).abs() < 1.0, "mxu {mxu_pct}");
        assert!((vpu_pct - 12.0).abs() < 1.0, "vpu {vpu_pct}");
        assert!((fmt_pct - 28.1).abs() < 1.0, "fmt {fmt_pct}");
        // and the anchor step time: 6.576e9 spins → ~575 ms
        let step_ms = total * 6.576e9 * 1e3;
        assert!((step_ms - 575.0).abs() < 6.0, "step {step_ms}");
    }
}
