//! Op counting and step-time assembly — the engine behind Tables 1–7.
//!
//! The model follows the paper's own validation arithmetic (§5.2): count
//! what one sweep does per spin, divide by calibrated sustained rates, add
//! the collective-permute time for distributed runs.

use crate::calib;
use crate::params::TpuV3Params;
use serde::Serialize;

/// Which of the paper's three update programs is being modeled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Variant {
    /// Algorithm 1: full-lattice matmuls with a parity mask.
    Naive,
    /// Algorithm 2: four deinterleaved compact sub-lattices (the paper's
    /// main benchmark configuration).
    Compact,
    /// The appendix variant: nearest-neighbor sums via `tf.nn.conv2d`.
    Conv,
}

impl std::str::FromStr for Variant {
    type Err = String;
    fn from_str(s: &str) -> Result<Variant, String> {
        match s {
            "naive" => Ok(Variant::Naive),
            "compact" => Ok(Variant::Compact),
            "conv" => Ok(Variant::Conv),
            other => Err(format!("unknown variant '{other}' (expected naive|compact|conv)")),
        }
    }
}

/// Single-core or SPMD-distributed execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum ExecutionMode {
    /// One TensorCore, no halo exchange (Table 1's program).
    SingleCore,
    /// SPMD over `cores` TensorCores with collective-permute halo exchange
    /// (Tables 2–4, 6, 7).
    Distributed {
        /// Number of participating TensorCores.
        cores: usize,
    },
}

/// One modeled configuration: the per-core lattice, precision, program
/// variant and execution mode.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct StepConfig {
    /// Per-core lattice height in spins (e.g. `896 * 128`).
    pub per_core_h: usize,
    /// Per-core lattice width in spins.
    pub per_core_w: usize,
    /// Storage bytes per spin value: 2 for bf16, 4 for f32.
    pub dtype_bytes: usize,
    /// Update program.
    pub variant: Variant,
    /// Execution mode.
    pub mode: ExecutionMode,
}

impl StepConfig {
    /// Spins per core.
    pub fn per_core_spins(&self) -> f64 {
        self.per_core_h as f64 * self.per_core_w as f64
    }

    /// Total spins across all cores.
    pub fn total_spins(&self) -> f64 {
        self.per_core_spins() * self.cores() as f64
    }

    /// Participating cores (1 for single-core mode).
    pub fn cores(&self) -> usize {
        match self.mode {
            ExecutionMode::SingleCore => 1,
            ExecutionMode::Distributed { cores } => cores,
        }
    }
}

/// Per-core, per-sweep operation counts (one sweep = black + white update).
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct OpCounts {
    /// MXU multiply-accumulates.
    pub macs: f64,
    /// VPU element-operations (RNG weighted by
    /// [`calib::RNG_OPS_PER_UNIFORM`], plus element-wise math).
    pub vpu_elems: f64,
    /// Bytes moved by data-formatting ops (reshape / slice / interleave).
    pub fmt_bytes: f64,
    /// Total HBM traffic in bytes (matmul + element-wise + formatting).
    pub hbm_bytes: f64,
    /// Halo bytes exchanged over the inter-chip network.
    pub cp_bytes: f64,
}

/// Per-spin op intensities for each variant, at bf16 storage.
fn per_spin(variant: Variant, mode: ExecutionMode, dtype_bytes: usize) -> (f64, f64, f64, f64) {
    let b = dtype_bytes as f64;
    // MACs per spin per sweep. Compact: 8 batched matmuls over quarter
    // lattices, 128 MACs per produced element ⇒ 8·(1/4)·128 = 256.
    // Naive: 4 full-lattice matmuls (σK + Kσ per color) ⇒ 4·128 = 512.
    // Conv: XLA lowers the plus-kernel conv to patch dot-products packed
    // onto the MXU ⇒ ~64 effective MACs/spin (see DESIGN.md).
    let macs = match variant {
        Variant::Naive => 512.0,
        Variant::Compact => 256.0,
        Variant::Conv => 64.0,
    };
    // f32 matmuls take multiple bf16 MXU passes.
    let macs = if dtype_bytes == 4 { macs * calib::MXU_F32_PASSES } else { macs };
    // VPU element-ops per spin: uniforms (weighted) + element-wise chain
    // (multiply by σ and 2β, exp, compare, select-and-flip).
    let vpu = match variant {
        Variant::Naive => 2.0 * calib::RNG_OPS_PER_UNIFORM + 22.0,
        Variant::Compact | Variant::Conv => calib::RNG_OPS_PER_UNIFORM + 9.0,
    };
    // Formatting passes over the lattice at storage width.
    let fmt_passes = match (variant, mode) {
        (Variant::Naive, _) => calib::fmt_passes::NAIVE,
        (Variant::Compact, ExecutionMode::SingleCore) => calib::fmt_passes::COMPACT_SINGLE,
        (Variant::Compact, ExecutionMode::Distributed { .. }) => {
            calib::fmt_passes::COMPACT_DISTRIBUTED
        }
        (Variant::Conv, _) => calib::fmt_passes::CONV,
    };
    let fmt_bytes = fmt_passes * b;
    // HBM traffic: matmul operand/result streaming + element-wise reads and
    // writes + formatting.
    let matmul_passes = match variant {
        Variant::Naive => 8.0,
        Variant::Compact => 4.0,
        Variant::Conv => 2.0,
    };
    let vpu_passes = match variant {
        Variant::Naive => 20.0,
        Variant::Compact | Variant::Conv => 9.0,
    };
    let hbm_bytes = (matmul_passes + vpu_passes) * b + fmt_bytes;
    (macs, vpu, fmt_bytes, hbm_bytes)
}

/// Count one sweep's per-core operations for a configuration.
pub fn step_counts(cfg: &StepConfig) -> OpCounts {
    let spins = cfg.per_core_spins();
    let (macs, vpu, fmt_b, hbm_b) = per_spin(cfg.variant, cfg.mode, cfg.dtype_bytes);
    let cp_bytes = match cfg.mode {
        ExecutionMode::SingleCore => 0.0,
        // One boundary row + one boundary column, both directions
        // (paper §5.1: 896·128·2 B and 448·128·2 B per edge per direction).
        ExecutionMode::Distributed { .. } => {
            2.0 * (cfg.per_core_h + cfg.per_core_w) as f64 * cfg.dtype_bytes as f64
        }
    };
    OpCounts {
        macs: macs * spins,
        vpu_elems: vpu * spins,
        fmt_bytes: fmt_b * spins,
        hbm_bytes: hbm_b * spins,
        cp_bytes,
    }
}

/// Modeled time of one sweep, split the way the paper's profiler reports it
/// (Table 3). All times in seconds.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct Breakdown {
    /// Matrix-unit time (nearest-neighbor matmuls).
    pub t_mxu: f64,
    /// Vector-unit time (RNG + element-wise math).
    pub t_vpu: f64,
    /// Data-formatting time (reshape / slice / interleave).
    pub t_fmt: f64,
    /// Collective-permute time (halo exchange + synchronization).
    pub t_cp: f64,
}

impl Breakdown {
    /// Total step time in seconds.
    pub fn total(&self) -> f64 {
        self.t_mxu + self.t_vpu + self.t_fmt + self.t_cp
    }

    /// Percentage shares `(mxu, vpu, fmt, cp)` of the total.
    pub fn percentages(&self) -> (f64, f64, f64, f64) {
        let t = self.total();
        (
            self.t_mxu / t * 100.0,
            self.t_vpu / t * 100.0,
            self.t_fmt / t * 100.0,
            self.t_cp / t * 100.0,
        )
    }
}

/// The collective-permute time model in seconds (see [`calib`] for the
/// fitted constants and their provenance).
pub fn collective_permute_time(cores: usize, cp_bytes: f64) -> f64 {
    if cores <= 1 {
        return 0.0;
    }
    let p = cores as f64;
    let ms = calib::CP_BASE_MS
        + calib::CP_SQRT_MS * p.sqrt()
        + calib::CP_LIN_MS * p
        + cp_bytes / calib::CP_LINK_BW * 1e3;
    ms * 1e-3
}

/// Assemble the modeled step time for a configuration.
pub fn step_time(params: &TpuV3Params, cfg: &StepConfig) -> Breakdown {
    let _ = params; // rates are calibrated constants; params feeds roofline/energy
    let counts = step_counts(cfg);
    let mut t_mxu = counts.macs / calib::MXU_SUSTAINED_MACS;
    let mut t_vpu = counts.vpu_elems / calib::VPU_SUSTAINED_ELEMS;
    let mut t_fmt = counts.fmt_bytes / calib::FMT_RATE_BYTES;
    let t_cp = match cfg.mode {
        ExecutionMode::SingleCore => {
            // Small lattices under-fill the MXU/VPU pipelines; scale the
            // whole compute by the measured single-core efficiency curve.
            let eff = calib::single_core_efficiency(cfg.per_core_spins());
            t_mxu /= eff;
            t_vpu /= eff;
            t_fmt /= eff;
            0.0
        }
        ExecutionMode::Distributed { cores } => {
            // The distributed compact graph loses MXU utilization below the
            // calibrated per-core size threshold (Table 4's 44 % step).
            if cfg.variant == Variant::Compact
                && cfg.per_core_spins() < calib::DIST_SMALL_LATTICE_THRESHOLD_SPINS
            {
                let m = calib::DIST_SMALL_LATTICE_MULTIPLIER;
                t_mxu *= m;
                t_vpu *= m;
                t_fmt *= m;
            }
            collective_permute_time(cores, counts.cp_bytes)
        }
    };
    Breakdown { t_mxu, t_vpu, t_fmt, t_cp }
}

/// Whole-job throughput in spin flips per nanosecond: every spin is visited
/// once per sweep, so throughput = total spins / step time.
pub fn throughput_flips_per_ns(params: &TpuV3Params, cfg: &StepConfig) -> f64 {
    cfg.total_spins() / (step_time(params, cfg).total() * 1e9)
}

/// The largest `k` such that a `(k·128)²` lattice fits in one core's HBM at
/// the given precision, including the calibrated temporary-tensor overhead.
///
/// `k` steps in multiples of 16: the compact supergrid reorganizes the
/// lattice into `[256, 256]` super-tiles whose quarters must land on (8,128)
/// HBM tile boundaries, which quantizes realizable square lattice sides.
/// With that granularity the model reproduces the paper's §4.2.1 maximum of
/// `(656·128)²` at 96 % HBM utilization.
pub fn max_square_lattice_k(params: &TpuV3Params, dtype_bytes: usize) -> usize {
    let budget = params.hbm_capacity_bytes as f64;
    let mut k = 16usize;
    loop {
        let side = ((k + 16) * 128) as f64;
        let need = side * side * dtype_bytes as f64 * (1.0 + calib::HBM_TEMP_FACTOR);
        if need > budget {
            return k;
        }
        k += 16;
    }
}

/// Fraction of HBM a `(k·128)²` lattice consumes at the given precision.
pub fn hbm_utilization(params: &TpuV3Params, k: usize, dtype_bytes: usize) -> f64 {
    let side = (k * 128) as f64;
    side * side * dtype_bytes as f64 * (1.0 + calib::HBM_TEMP_FACTOR)
        / params.hbm_capacity_bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anchor() -> StepConfig {
        StepConfig {
            per_core_h: 896 * 128,
            per_core_w: 448 * 128,
            dtype_bytes: 2,
            variant: Variant::Compact,
            mode: ExecutionMode::Distributed { cores: 2 },
        }
    }

    #[test]
    fn anchor_step_time_matches_table2() {
        let bd = step_time(&TpuV3Params::v3(), &anchor());
        let ms = bd.total() * 1e3;
        assert!((ms - 574.7).abs() < 6.0, "step {ms} ms");
    }

    #[test]
    fn anchor_breakdown_matches_table3() {
        let bd = step_time(&TpuV3Params::v3(), &anchor());
        let (mxu, vpu, fmt, cp) = bd.percentages();
        assert!((mxu - 59.6).abs() < 1.5, "mxu {mxu}");
        assert!((vpu - 12.0).abs() < 1.0, "vpu {vpu}");
        assert!((fmt - 28.1).abs() < 1.5, "fmt {fmt}");
        assert!(cp < 0.2, "cp {cp}");
    }

    #[test]
    fn weak_scaling_is_linear() {
        // Table 2: same per-core lattice on 2..512 cores → flat step time,
        // throughput ∝ cores.
        let p = TpuV3Params::v3();
        let mut base = 0.0;
        for (i, &cores) in [2usize, 8, 32, 128, 512].iter().enumerate() {
            let cfg = StepConfig { mode: ExecutionMode::Distributed { cores }, ..anchor() };
            let t = step_time(&p, &cfg).total();
            let f = throughput_flips_per_ns(&p, &cfg);
            if i == 0 {
                base = f / cores as f64;
            }
            assert!((t * 1e3 - 575.0).abs() < 8.0, "step {t}");
            let per_core = f / cores as f64;
            assert!((per_core - base).abs() / base < 0.01, "per-core {per_core}");
        }
    }

    #[test]
    fn single_core_table1_endpoints() {
        // Table 1: (20·128)² → 8.19 flips/ns, (320·128)² → 12.91 flips/ns.
        let p = TpuV3Params::v3();
        let mk = |k: usize| StepConfig {
            per_core_h: k * 128,
            per_core_w: k * 128,
            dtype_bytes: 2,
            variant: Variant::Compact,
            mode: ExecutionMode::SingleCore,
        };
        let f20 = throughput_flips_per_ns(&p, &mk(20));
        let f320 = throughput_flips_per_ns(&p, &mk(320));
        assert!((f20 - 8.192).abs() < 0.15, "k=20: {f20}");
        assert!((f320 - 12.9056).abs() < 0.15, "k=320: {f320}");
    }

    #[test]
    fn utilization_regime_reproduces_table4() {
        // [448·128, 224·128] per core at 128 cores → ~255 ms (not ~144 ms).
        let p = TpuV3Params::v3();
        let cfg = StepConfig {
            per_core_h: 448 * 128,
            per_core_w: 224 * 128,
            dtype_bytes: 2,
            variant: Variant::Compact,
            mode: ExecutionMode::Distributed { cores: 128 },
        };
        let ms = step_time(&p, &cfg).total() * 1e3;
        assert!((ms - 255.0).abs() < 4.0, "step {ms}");
    }

    #[test]
    fn conv_variant_matches_table6() {
        // Loose-packed [224·128, 224·128] per core → ~41 ms at any scale.
        let p = TpuV3Params::v3();
        for cores in [8usize, 128, 2048] {
            let cfg = StepConfig {
                per_core_h: 224 * 128,
                per_core_w: 224 * 128,
                dtype_bytes: 2,
                variant: Variant::Conv,
                mode: ExecutionMode::Distributed { cores },
            };
            let ms = step_time(&p, &cfg).total() * 1e3;
            assert!((40.0..44.5).contains(&ms), "{cores} cores: {ms} ms");
        }
    }

    #[test]
    fn strong_scaling_bends_past_1000_cores() {
        // Table 7: fixed (128·1792)² lattice; past ~1000 cores the cp time
        // becomes a significant share.
        let p = TpuV3Params::v3();
        let total = (1792 * 128) as usize;
        let t_at = |nx: usize, ny: usize| {
            let cfg = StepConfig {
                per_core_h: total / nx,
                per_core_w: total / ny,
                dtype_bytes: 2,
                variant: Variant::Conv,
                mode: ExecutionMode::Distributed { cores: nx * ny },
            };
            step_time(&p, &cfg).total()
        };
        let t64 = t_at(8, 8);
        let t2048 = t_at(32, 64);
        // ideal speedup from 64→2048 cores is 32×; the knee keeps it well below
        let speedup = t64 / t2048;
        assert!(speedup > 10.0 && speedup < 26.0, "speedup {speedup}");
        // cp share at 2048 cores is large
        let cfg = StepConfig {
            per_core_h: total / 32,
            per_core_w: total / 64,
            dtype_bytes: 2,
            variant: Variant::Conv,
            mode: ExecutionMode::Distributed { cores: 2048 },
        };
        let bd = step_time(&p, &cfg);
        assert!(bd.t_cp / bd.total() > 0.3, "cp share {}", bd.t_cp / bd.total());
    }

    #[test]
    fn f32_is_slower_than_bf16() {
        let p = TpuV3Params::v3();
        let b16 = throughput_flips_per_ns(&p, &anchor());
        let f32cfg = StepConfig { dtype_bytes: 4, ..anchor() };
        let f32t = throughput_flips_per_ns(&p, &f32cfg);
        assert!(b16 / f32t > 1.8, "bf16 {b16} vs f32 {f32t}");
    }

    #[test]
    fn naive_is_2x_to_3x_slower_than_compact() {
        let p = TpuV3Params::v3();
        let compact = step_time(&p, &anchor()).total();
        let naive = step_time(&p, &StepConfig { variant: Variant::Naive, ..anchor() }).total();
        let ratio = naive / compact;
        assert!((2.0..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn hbm_capacity_matches_paper() {
        // Paper §4.2.1: max (656·128)² at bf16, consuming 96 % of HBM.
        let p = TpuV3Params::v3();
        let k = max_square_lattice_k(&p, 2);
        assert_eq!(k, 656);
        let util = hbm_utilization(&p, k, 2);
        assert!((util - 0.96).abs() < 0.01, "util {util}");
        // f32 halves the max side (×√2 area): k ≈ 656/√2 ≈ 464
        let k32 = max_square_lattice_k(&p, 4);
        assert!((460..=470).contains(&k32), "f32 k = {k32}");
    }

    #[test]
    fn cp_time_is_core_count_bound_not_bandwidth_bound() {
        // Table 4's observation: cp time moves with cores, barely with size.
        let small = collective_permute_time(512, 86_016.0);
        let large = collective_permute_time(512, 344_064.0);
        let few = collective_permute_time(32, 344_064.0);
        assert!(large - small < 0.0001, "size effect {}", large - small);
        assert!(large - few > 0.0002, "core effect {}", large - few);
    }
}
