//! Roofline analysis (paper Table 5).
//!
//! The roofline model bounds achievable FLOPS by
//! `min(peak, bandwidth × arithmetic intensity)`. The paper reports its
//! step achieves ≈76.5 % of the memory-bound roofline and ≈9.3 % of raw
//! hardware peak, with both ratios essentially flat across 2–512 cores.

use crate::cost::{step_counts, step_time, StepConfig};
use crate::params::TpuV3Params;
use serde::Serialize;

/// A roofline evaluation of one configuration.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct RooflineReport {
    /// Arithmetic intensity in flops/byte (2 flops per MAC).
    pub intensity_flops_per_byte: f64,
    /// Achieved flops/s per core = flops / modeled step time.
    pub achieved_flops: f64,
    /// Roofline bound: `min(peak, bw × intensity)`.
    pub roofline_flops: f64,
    /// Raw hardware peak flops/s per core.
    pub peak_flops: f64,
    /// `true` when the roofline bound is the memory (bandwidth) side.
    pub memory_bound: bool,
}

impl RooflineReport {
    /// Percent of the roofline optimum achieved.
    pub fn pct_of_roofline(&self) -> f64 {
        self.achieved_flops / self.roofline_flops * 100.0
    }

    /// Percent of hardware peak achieved.
    pub fn pct_of_peak(&self) -> f64 {
        self.achieved_flops / self.peak_flops * 100.0
    }
}

/// Evaluate the roofline for a configuration.
pub fn roofline(params: &TpuV3Params, cfg: &StepConfig) -> RooflineReport {
    let counts = step_counts(cfg);
    let t = step_time(params, cfg).total();
    let flops = 2.0 * counts.macs;
    let intensity = flops / counts.hbm_bytes;
    let peak = params.peak_flops();
    let bw_bound = params.hbm_bw_bytes_per_s * intensity;
    let roof = peak.min(bw_bound);
    RooflineReport {
        intensity_flops_per_byte: intensity,
        achieved_flops: flops / t,
        roofline_flops: roof,
        peak_flops: peak,
        memory_bound: bw_bound < peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{ExecutionMode, Variant};

    fn anchor(cores: usize) -> StepConfig {
        StepConfig {
            per_core_h: 896 * 128,
            per_core_w: 448 * 128,
            dtype_bytes: 2,
            variant: Variant::Compact,
            mode: ExecutionMode::Distributed { cores },
        }
    }

    #[test]
    fn anchor_matches_table5() {
        let p = TpuV3Params::v3();
        let r = roofline(&p, &anchor(2));
        assert!(r.memory_bound, "paper: all measurements are memory bound");
        let pr = r.pct_of_roofline();
        let pp = r.pct_of_peak();
        assert!((pr - 76.6).abs() < 3.0, "roofline pct {pr}");
        assert!((pp - 9.3).abs() < 1.0, "peak pct {pp}");
        // achieved ≈ 5.8–5.9 TFLOPS per core (paper §5.2 cross-check)
        assert!((r.achieved_flops - 5.86e12).abs() < 0.2e12, "{}", r.achieved_flops);
    }

    #[test]
    fn ratios_are_stable_across_scales() {
        // Table 5: 76.68 % → 76.43 % from 2 to 512 cores (slight decrease
        // as cp time grows).
        let p = TpuV3Params::v3();
        let r2 = roofline(&p, &anchor(2));
        let r512 = roofline(&p, &anchor(512));
        assert!(r2.pct_of_roofline() > r512.pct_of_roofline());
        assert!(r2.pct_of_roofline() - r512.pct_of_roofline() < 1.0);
    }

    #[test]
    fn implied_bandwidth_is_at_least_300_gbs() {
        // Paper §5.2: "we can estimate the HBM bandwidth to be at least
        // ~300 GB/sec" from the roofline slope.
        let p = TpuV3Params::v3();
        assert!(p.hbm_bw_bytes_per_s >= 3.0e11);
    }
}
