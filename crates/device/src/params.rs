//! Physical parameters of the modeled hardware.

use serde::Serialize;

/// TPU v3 TensorCore parameters (one core = half a TPU v3 chip).
///
/// Sources: the paper's §2 and §5 (2 MXUs per core, 128×128
/// multiply-accumulate per cycle, 16 GB HBM per core), Google's published
/// TPU v3 figures (420 TFLOPS per 4-chip unit), and the paper's §4.2.1
/// power estimate (200 W per chip ⇒ 100 W per core).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct TpuV3Params {
    /// Core clock in GHz. 0.96 GHz reproduces the paper's Table 5 ratio of
    /// achieved-to-peak FLOPS (9.3 % at 5.89 TFLOPS ⇒ ~63 TFLOPS peak/core).
    pub clock_ghz: f64,
    /// Matrix units per TensorCore.
    pub mxu_count: usize,
    /// MXU systolic array dimension (128 ⇒ 128×128 MACs/cycle).
    pub mxu_dim: usize,
    /// HBM capacity per core in bytes (16 GB).
    pub hbm_capacity_bytes: u64,
    /// Effective streaming HBM bandwidth in bytes/sec used by the roofline.
    /// The paper's §5.2 roofline slope implies "at least ~300 GB/s" for this
    /// workload; see [`crate::calib`] for the exact calibrated value.
    pub hbm_bw_bytes_per_s: f64,
    /// Average power per core in watts (paper §4.2.1 upper-bound estimate).
    pub power_w: f64,
}

impl TpuV3Params {
    /// The calibrated default TPU v3 core.
    pub fn v3() -> TpuV3Params {
        TpuV3Params {
            clock_ghz: 0.96,
            mxu_count: 2,
            mxu_dim: 128,
            hbm_capacity_bytes: 16 * (1 << 30),
            hbm_bw_bytes_per_s: crate::calib::HBM_EFFECTIVE_BW,
            power_w: 100.0,
        }
    }

    /// Peak multiply-accumulates per second for one core.
    pub fn peak_macs_per_s(&self) -> f64 {
        self.clock_ghz * 1e9 * (self.mxu_count * self.mxu_dim * self.mxu_dim) as f64
    }

    /// Peak FLOPS (2 flops per MAC) for one core.
    pub fn peak_flops(&self) -> f64 {
        2.0 * self.peak_macs_per_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_flops_matches_published_order() {
        let p = TpuV3Params::v3();
        // ~63 TFLOPS per core, ~126 per chip — consistent with the 420
        // TFLOPS marketing figure for a 4-chip / 8-core unit (which is
        // quoted at a boost clock; we care about the ratio in Table 5).
        let per_core = p.peak_flops();
        assert!(per_core > 5.5e13 && per_core < 7.0e13, "{per_core}");
    }

    #[test]
    fn hbm_capacity_is_16g() {
        assert_eq!(TpuV3Params::v3().hbm_capacity_bytes, 17_179_869_184);
    }

    #[test]
    fn macs_per_cycle() {
        let p = TpuV3Params::v3();
        assert_eq!(p.mxu_count * p.mxu_dim * p.mxu_dim, 32768);
    }
}
