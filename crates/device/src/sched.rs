//! Work-stealing cooperative scheduler: paper-scale mesh topologies on a
//! laptop-class host.
//!
//! The thread-per-core runtime ([`crate::mesh::run_spmd_cfg`]) is faithful
//! but capped: the paper's §6 topologies (45×45 = 2025 and 32×64 = 2048
//! TensorCores) would need thousands of OS threads mostly parked in
//! `recv_timeout`. Here each logical core is a resumable task — the same
//! [`CoreProgram`] body the thread runtime runs — multiplexed over
//! `min(cores, workers)` worker threads. Tasks yield at collective
//! boundaries; a halo send wakes the receiving core's task through its
//! mailbox waker; and *every* time-out — receive deadlines, tier-1 retry
//! backoff, injected [`FaultKind::Delay`](crate::mesh::FaultKind)s — lives
//! on a **virtual clock** that only advances when no task can run. A
//! 2048-core pod with fault injection therefore runs on a 16-core (or
//! 1-core) host with zero threads sleeping in real time, and its virtual
//! timeout behavior is deterministic: independent of worker count, steal
//! order, and host load.
//!
//! Scheduler shape: per-worker FIFO deques behind mutexes plus a global
//! injector; a worker drains its own deque, then the injector, then
//! steals from the back of its siblings' deques (counted in the
//! `sched_steals` metric). Idle workers park on a condvar
//! (`sched_park_ns`); when *all* workers are idle and nothing is
//! runnable, the earliest virtual timer fires and the clock jumps to it.

use crate::mesh::{fold_outcomes, parse_pairs, CoreProgram, Dir, MeshConfig, MeshError, Torus};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Instant;
use tpu_ising_obs as obs;

/// Task states for the wake/poll handshake.
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const RUNNING_WOKEN: u8 = 3;
const DONE: u8 = 4;

thread_local! {
    /// Which worker this thread is, so wakes issued from inside a poll
    /// land on the waking worker's own deque.
    static CURRENT_WORKER: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// One virtual-time wakeup. Ordered by `(at_ns, seq)` so equal deadlines
/// fire in registration order — deterministic regardless of worker count.
struct TimerEntry {
    at_ns: u64,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &TimerEntry) -> bool {
        (self.at_ns, self.seq) == (other.at_ns, other.seq)
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &TimerEntry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &TimerEntry) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest timer
        // on top.
        (other.at_ns, other.seq).cmp(&(self.at_ns, self.seq))
    }
}

/// The type-erased scheduler core: run queues, task states, the virtual
/// clock and its timer heap. Wakers hold an `Arc` of this (it carries no
/// payload type, so wakers stay `'static`).
struct RuntimeCore {
    workers: usize,
    state: Vec<AtomicU8>,
    locals: Vec<Mutex<VecDeque<usize>>>,
    injector: Mutex<VecDeque<usize>>,
    /// Tasks sitting in some queue.
    runnable: AtomicUsize,
    /// Tasks not yet complete.
    live: AtomicUsize,
    /// Parked-or-parking workers; also the quiescence gate.
    idle: Mutex<usize>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Virtual time, nanoseconds since the run started.
    now_ns: AtomicU64,
    timers: Mutex<(BinaryHeap<TimerEntry>, u64)>,
    steals: AtomicU64,
    park_ns: AtomicU64,
}

impl RuntimeCore {
    fn new(tasks: usize, workers: usize) -> RuntimeCore {
        RuntimeCore {
            workers,
            state: (0..tasks).map(|_| AtomicU8::new(QUEUED)).collect(),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            runnable: AtomicUsize::new(tasks),
            live: AtomicUsize::new(tasks),
            idle: Mutex::new(0),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            now_ns: AtomicU64::new(0),
            timers: Mutex::new((BinaryHeap::new(), 0)),
            steals: AtomicU64::new(0),
            park_ns: AtomicU64::new(0),
        }
    }

    fn lock<'a, Q>(m: &'a Mutex<Q>) -> MutexGuard<'a, Q> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Current virtual time, nanoseconds.
    fn now(&self) -> u64 {
        self.now_ns.load(Ordering::SeqCst)
    }

    /// Schedule `waker` at virtual instant `at_ns` (immediately if the
    /// clock is already past it).
    fn register_timer(&self, at_ns: u64, waker: Waker) {
        if at_ns <= self.now() {
            waker.wake();
            return;
        }
        let mut timers = Self::lock(&self.timers);
        let seq = timers.1;
        timers.1 += 1;
        timers.0.push(TimerEntry { at_ns, seq, waker });
    }

    /// Put a queued task into a run queue and unpark a worker.
    fn push_runnable(&self, tid: usize) {
        let hint = CURRENT_WORKER.with(|w| w.get());
        match hint {
            Some(w) => Self::lock(&self.locals[w]).push_back(tid),
            None => Self::lock(&self.injector).push_back(tid),
        }
        let depth = self.runnable.fetch_add(1, Ordering::SeqCst) + 1;
        if obs::is_metrics() {
            obs::metrics().gauge("runnable_depth").set(depth as f64);
        }
        // Serialize with the park path so a worker checking `runnable`
        // under the idle lock cannot miss this wakeup.
        let _idle = Self::lock(&self.idle);
        self.cv.notify_all();
    }

    /// Transition `tid` toward runnable from a waker.
    fn wake_task(&self, tid: usize) {
        loop {
            match self.state[tid].load(Ordering::SeqCst) {
                IDLE => {
                    if self.state[tid]
                        .compare_exchange(IDLE, QUEUED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        self.push_runnable(tid);
                        return;
                    }
                }
                RUNNING => {
                    if self.state[tid]
                        .compare_exchange(
                            RUNNING,
                            RUNNING_WOKEN,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued, already woken, or complete.
                _ => return,
            }
        }
    }

    /// Pop the next task for worker `w`: own deque front, then the
    /// injector, then steal from the back of a sibling's deque.
    fn next_task(&self, w: usize) -> Option<usize> {
        let found = Self::lock(&self.locals[w]).pop_front().or_else(|| {
            Self::lock(&self.injector).pop_front().or_else(|| {
                (1..self.workers).find_map(|i| {
                    let victim = (w + i) % self.workers;
                    let stolen = Self::lock(&self.locals[victim]).pop_back();
                    if stolen.is_some() {
                        self.steals.fetch_add(1, Ordering::Relaxed);
                    }
                    stolen
                })
            })
        })?;
        self.runnable.fetch_sub(1, Ordering::SeqCst);
        Some(found)
    }

    /// All workers idle, nothing runnable: fire every timer at the
    /// earliest deadline and jump the clock to it.
    fn advance_clock(&self) {
        let mut fired: Vec<Waker> = Vec::new();
        {
            let mut timers = Self::lock(&self.timers);
            let Some(at) = timers.0.peek().map(|t| t.at_ns) else {
                // Live tasks, no runnable work, and nothing scheduled:
                // a genuine scheduler invariant violation — every pending
                // mesh future registers a timer.
                panic!(
                    "cooperative mesh wedged: {} live task(s), nothing runnable, no timers",
                    self.live.load(Ordering::SeqCst)
                );
            };
            self.now_ns.fetch_max(at, Ordering::SeqCst);
            while timers.0.peek().is_some_and(|t| t.at_ns <= at) {
                fired.push(timers.0.pop().expect("peeked timer").waker);
            }
        }
        for w in fired {
            w.wake();
        }
    }
}

struct TaskWaker {
    tid: usize,
    rt: Arc<RuntimeCore>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.rt.wake_task(self.tid);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.rt.wake_task(self.tid);
    }
}

/// One logical core's mailbox: packets keyed by `(collective seq, source
/// core)` with their virtual maturity instant, plus the waker of a task
/// blocked on a receive.
struct Mailbox<T> {
    packets: HashMap<(u64, usize), (u64, T)>,
    waker: Option<Waker>,
}

/// The mesh fabric shared by every cooperative core: mailboxes, death
/// flags, the config, and the scheduler core that carries the clock.
struct MeshShared<T> {
    config: MeshConfig,
    mailboxes: Vec<Mutex<Mailbox<T>>>,
    dead: Vec<AtomicBool>,
    rt: Arc<RuntimeCore>,
}

impl<T: Send> MeshShared<T> {
    fn send(
        &self,
        from: usize,
        to: usize,
        seq: u64,
        deliver_at_ns: u64,
        data: T,
    ) -> Result<(), MeshError> {
        if self.dead[to].load(Ordering::SeqCst) {
            return Err(MeshError::PeerGone { core: from, peer: to, seq });
        }
        let waker = {
            let mut mb = RuntimeCore::lock(&self.mailboxes[to]);
            mb.packets.insert((seq, from), (deliver_at_ns, data));
            mb.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
        Ok(())
    }
}

/// The receive half of a cooperative collective: suspends until the
/// expected packet is present *and mature*, extending its virtual
/// deadline through the tier-1 retry policy exactly like the thread
/// runtime does in real time.
struct RecvFuture<'a, T: Send> {
    shared: &'a MeshShared<T>,
    core: usize,
    src: usize,
    seq: u64,
    started_ns: u64,
    deadline_ns: u64,
    retries_used: u32,
    timer_at: Option<u64>,
}

impl<T: Send> Future for RecvFuture<'_, T> {
    type Output = Result<T, MeshError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let now = this.shared.rt.now();
        let mut mb = RuntimeCore::lock(&this.shared.mailboxes[this.core]);
        let mut maturity = None;
        if let Some(&(at, _)) = mb.packets.get(&(this.seq, this.src)) {
            if at <= now {
                let (_, t) = mb.packets.remove(&(this.seq, this.src)).expect("packet vanished");
                drop(mb);
                if this.retries_used > 0 {
                    if obs::is_metrics() {
                        obs::metrics().counter("recovery_tier_retry_total").inc(1);
                    }
                    obs::record(obs::EventKind::RetryRecovered {
                        collective: this.seq,
                        extensions: this.retries_used,
                    });
                }
                obs::record(obs::EventKind::CollectiveRecv {
                    collective: this.seq,
                    peer: this.src as u32,
                });
                return Poll::Ready(Ok(t));
            }
            maturity = Some(at);
        }
        // Timed out (in virtual time): extend through the retry budget,
        // then escalate.
        while now >= this.deadline_ns {
            let retry = this.shared.config.retry;
            if this.retries_used < retry.max_retries {
                this.retries_used += 1;
                if obs::is_metrics() {
                    obs::metrics().counter("collective_retries_total").inc(1);
                }
                obs::record(obs::EventKind::RetryExtended {
                    collective: this.seq,
                    attempt: this.retries_used,
                });
                let ext = retry.extension(this.shared.config.recv_timeout, this.retries_used);
                this.deadline_ns = now + ext.as_nanos() as u64;
            } else {
                drop(mb);
                obs::record(obs::EventKind::RetryExhausted { collective: this.seq });
                return Poll::Ready(Err(MeshError::RecvTimeout {
                    core: this.core,
                    peer: this.src,
                    seq: this.seq,
                    waited_ms: (now - this.started_ns) / 1_000_000,
                }));
            }
        }
        mb.waker = Some(cx.waker().clone());
        drop(mb);
        // Wake at the receive deadline, or earlier if a delayed packet is
        // already in hand and matures first.
        let wake_at = maturity.map_or(this.deadline_ns, |m| m.min(this.deadline_ns));
        if this.timer_at != Some(wake_at) {
            this.shared.rt.register_timer(wake_at, cx.waker().clone());
            this.timer_at = Some(wake_at);
        }
        Poll::Pending
    }
}

/// A pure virtual-time sleep: ready once the runtime clock reaches
/// `at_ns`, registering a timer so the quiescence-gated clock advances
/// past it. Used by the wedge injection so a "hung" core costs no wall
/// time under the cooperative runtime.
struct SleepFuture<'a> {
    rt: &'a Arc<RuntimeCore>,
    at_ns: u64,
    registered: bool,
}

impl Future for SleepFuture<'_> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if this.rt.now() >= this.at_ns {
            return Poll::Ready(());
        }
        if !this.registered {
            this.rt.register_timer(this.at_ns, cx.waker().clone());
            this.registered = true;
        }
        Poll::Pending
    }
}

/// Per-core handle into the cooperative mesh: the [`Collectives`]
/// implementation whose operations genuinely suspend.
///
/// [`Collectives`]: crate::mesh::Collectives
pub struct CoopMeshHandle<T: Send> {
    id: usize,
    torus: Torus,
    seq: u64,
    shared: Arc<MeshShared<T>>,
}

impl<T: Send> CoopMeshHandle<T> {
    async fn permute(&mut self, data: T, pairs: &[(usize, usize)]) -> Result<Option<T>, MeshError> {
        if obs::is_metrics() {
            obs::metrics().counter("collectives_total").inc(1);
        }
        let seq = self.seq;
        self.seq += 1;
        let cfg = &self.shared.config;
        let attempt = cfg.attempt;
        if cfg.faults.kill_fires(self.id, seq, attempt) {
            if obs::is_metrics() {
                obs::metrics().counter("mesh_faults_injected_total").inc(1);
            }
            obs::record(obs::EventKind::KillInjected { collective: seq });
            return Err(MeshError::InjectedKill { core: self.id, seq });
        }
        if cfg.faults.wedge_fires(self.id, seq, attempt) {
            if obs::is_metrics() {
                obs::metrics().counter("mesh_faults_injected_total").inc(1);
            }
            if let Some(deadline) = cfg.watchdog_timeout {
                // Armed: the stall elapses in virtual time, then the
                // watchdog converts the wedge into a typed error.
                let at = self.shared.rt.now() + deadline.as_nanos() as u64;
                SleepFuture { rt: &self.shared.rt, at_ns: at, registered: false }.await;
                let stalled_ms = deadline.as_millis() as u64;
                obs::record(obs::EventKind::WatchdogStall { collective: seq, stalled_ms });
                if obs::is_metrics() {
                    obs::metrics().counter("watchdog_stalls_total").inc(1);
                }
                return Err(MeshError::Stalled { core: self.id, seq, stalled_ms });
            }
            // Watchdog disarmed: the core resumes late; its peers have
            // already burned their receive deadlines.
            let at = self.shared.rt.now() + crate::mesh::peer_patience(cfg).as_nanos() as u64;
            SleepFuture { rt: &self.shared.rt, at_ns: at, registered: false }.await;
        }
        let (expect_from, send_to) = parse_pairs(self.id, pairs)?;
        // Injected delays are virtual-time stamps on the packet, not
        // sleeps: the sending task keeps running and no worker blocks.
        let deliver_at_ns = match cfg.faults.delay_for(self.id, seq, attempt) {
            Some(d) => self.shared.rt.now() + d.as_nanos() as u64,
            None => 0,
        };
        if let Some(dst) = send_to {
            if cfg.faults.drop_fires(self.id, dst, seq, attempt) {
                if obs::is_metrics() {
                    obs::metrics().counter("mesh_faults_injected_total").inc(1);
                }
                obs::record(obs::EventKind::DropInjected { collective: seq, peer: dst as u32 });
            } else {
                obs::record(obs::EventKind::CollectiveSend { collective: seq, peer: dst as u32 });
                self.shared.send(self.id, dst, seq, deliver_at_ns, data)?;
            }
        }
        let Some(src) = expect_from else {
            return Ok(None);
        };
        let started_ns = self.shared.rt.now();
        let fut = RecvFuture {
            shared: &self.shared,
            core: self.id,
            src,
            seq,
            started_ns,
            deadline_ns: started_ns + cfg.recv_timeout.as_nanos() as u64,
            retries_used: 0,
            timer_at: None,
        };
        fut.await.map(Some)
    }
}

impl<T: Send> crate::mesh::Collectives<T> for CoopMeshHandle<T> {
    fn id(&self) -> usize {
        self.id
    }

    fn torus(&self) -> Torus {
        self.torus
    }

    fn next_collective(&self) -> u64 {
        self.seq
    }

    fn mesh_config(&self) -> &MeshConfig {
        &self.shared.config
    }

    fn collective_permute(
        &mut self,
        data: T,
        pairs: &[(usize, usize)],
    ) -> impl Future<Output = Result<Option<T>, MeshError>> + Send {
        self.permute(data, pairs)
    }

    // Written as an explicit `impl Future` block (not `async fn`) so the
    // `+ Send` bound the trait promises stays visible at the signature.
    #[allow(clippy::manual_async_fn)]
    fn shift(&mut self, data: T, dir: Dir) -> impl Future<Output = Result<T, MeshError>> + Send {
        async move {
            let pairs = self.torus.shift_pairs(dir);
            match self.permute(data, &pairs).await? {
                Some(t) => Ok(t),
                None => Err(MeshError::Protocol {
                    core: self.id,
                    msg: "full-shift permute delivered nothing".into(),
                }),
            }
        }
    }
}

/// One task's future and its observability bindings, swapped in around
/// every poll so flight-recorder events and spans land on the logical
/// core's ring/track even though a few worker threads do all the polling.
struct TaskSlot<F> {
    fut: Option<Pin<Box<F>>>,
    obs: obs::TaskObs,
}

/// Run a [`CoreProgram`] on every core of `torus` under the cooperative
/// scheduler with `workers` worker threads (`None`: one per host CPU,
/// capped at the core count). Semantics — results, root-cause error
/// selection, fault injection, retry policy — match
/// [`crate::mesh::run_spmd_cfg`] exactly; only the substrate differs.
pub(crate) fn run_coop<T, P>(
    torus: Torus,
    config: MeshConfig,
    workers: Option<usize>,
    prog: &P,
) -> Result<Vec<P::Out>, MeshError>
where
    T: Send,
    P: CoreProgram<T>,
{
    run_executor(torus, config, workers, |h| prog.run(h))
}

/// Closure-flavored entry mirroring [`crate::mesh::run_spmd_cfg`]: one
/// async closure per core on the cooperative scheduler. Mostly for tests;
/// production drivers go through [`crate::mesh::run_mesh`].
pub fn run_coop_fn<T, R, F, Fut>(
    torus: Torus,
    config: MeshConfig,
    workers: Option<usize>,
    f: F,
) -> Result<Vec<R>, MeshError>
where
    T: Send,
    R: Send,
    F: Fn(CoopMeshHandle<T>) -> Fut + Sync,
    Fut: Future<Output = Result<R, MeshError>> + Send,
{
    run_executor(torus, config, workers, f)
}

fn run_executor<T, R, F, Fut>(
    torus: Torus,
    config: MeshConfig,
    workers: Option<usize>,
    make: F,
) -> Result<Vec<R>, MeshError>
where
    T: Send,
    R: Send,
    F: Fn(CoopMeshHandle<T>) -> Fut + Sync,
    Fut: Future<Output = Result<R, MeshError>> + Send,
{
    let n = torus.cores();
    let host = std::thread::available_parallelism().map_or(1, |p| p.get());
    let nworkers = workers.unwrap_or(host).min(n).max(1);
    let rt = Arc::new(RuntimeCore::new(n, nworkers));
    let shared = Arc::new(MeshShared {
        config,
        mailboxes: (0..n)
            .map(|_| Mutex::new(Mailbox { packets: HashMap::new(), waker: None }))
            .collect(),
        dead: (0..n).map(|_| AtomicBool::new(false)).collect(),
        rt: rt.clone(),
    });

    // One slot per logical core; tasks seeded round-robin across workers.
    let slots: Vec<Mutex<TaskSlot<Fut>>> = (0..n)
        .map(|id| {
            let handle = CoopMeshHandle { id, torus, seq: 0, shared: shared.clone() };
            Mutex::new(TaskSlot { fut: Some(Box::pin(make(handle))), obs: obs::TaskObs::default() })
        })
        .collect();
    for tid in 0..n {
        RuntimeCore::lock(&rt.locals[tid % nworkers]).push_back(tid);
    }
    let results: Vec<Mutex<Option<Result<R, MeshError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let wakers: Vec<Waker> =
        (0..n).map(|tid| Waker::from(Arc::new(TaskWaker { tid, rt: rt.clone() }))).collect();

    std::thread::scope(|scope| {
        for w in 0..nworkers {
            let rt = &rt;
            let shared = &shared;
            let slots = &slots;
            let results = &results;
            let wakers = &wakers;
            scope.spawn(move || {
                CURRENT_WORKER.with(|c| c.set(Some(w)));
                worker_loop(w, rt, shared, slots, results, wakers);
            });
        }
    });

    let per_core: Vec<Result<R, MeshError>> = results
        .into_iter()
        .enumerate()
        .map(|(core, slot)| {
            RuntimeCore::lock(&slot).take().unwrap_or(Err(MeshError::CorePanicked { core }))
        })
        .collect();
    fold_outcomes(per_core)
}

fn worker_loop<T, F, R>(
    w: usize,
    rt: &Arc<RuntimeCore>,
    shared: &MeshShared<T>,
    slots: &[Mutex<TaskSlot<F>>],
    results: &[Mutex<Option<Result<R, MeshError>>>],
    wakers: &[Waker],
) where
    T: Send,
    F: Future<Output = Result<R, MeshError>> + Send,
    R: Send,
{
    loop {
        if rt.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Some(tid) = rt.next_task(w) {
            run_one(rt, shared, tid, &mut RuntimeCore::lock(&slots[tid]), results, &wakers[tid]);
            continue;
        }
        let mut idle = RuntimeCore::lock(&rt.idle);
        if rt.runnable.load(Ordering::SeqCst) > 0 || rt.shutdown.load(Ordering::SeqCst) {
            continue;
        }
        if rt.live.load(Ordering::SeqCst) == 0 {
            rt.shutdown.store(true, Ordering::SeqCst);
            rt.cv.notify_all();
            return;
        }
        *idle += 1;
        if *idle == rt.workers {
            // Global quiescence: nothing runnable anywhere, no poll in
            // flight — the only way forward is virtual time.
            *idle -= 1;
            drop(idle);
            rt.advance_clock();
            continue;
        }
        let parked = Instant::now();
        idle = rt.cv.wait(idle).unwrap_or_else(std::sync::PoisonError::into_inner);
        *idle -= 1;
        drop(idle);
        rt.park_ns.fetch_add(parked.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

fn run_one<T, F, R>(
    rt: &RuntimeCore,
    shared: &MeshShared<T>,
    tid: usize,
    slot: &mut TaskSlot<F>,
    results: &[Mutex<Option<Result<R, MeshError>>>],
    waker: &Waker,
) where
    T: Send,
    F: Future<Output = Result<R, MeshError>> + Send,
    R: Send,
{
    rt.state[tid].store(RUNNING, Ordering::SeqCst);
    let Some(fut) = slot.fut.as_mut() else {
        rt.state[tid].store(DONE, Ordering::SeqCst);
        return;
    };
    let mut cx = Context::from_waker(waker);
    let prev_obs = obs::swap_task_obs(slot.obs);
    let polled = catch_unwind(AssertUnwindSafe(|| fut.as_mut().poll(&mut cx)));
    slot.obs = obs::swap_task_obs(prev_obs);
    let outcome = match polled {
        Ok(Poll::Pending) => {
            if rt.state[tid]
                .compare_exchange(RUNNING, IDLE, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                // Woken mid-poll: put it straight back on a queue.
                rt.state[tid].store(QUEUED, Ordering::SeqCst);
                rt.push_runnable(tid);
            }
            return;
        }
        Ok(Poll::Ready(res)) => res,
        Err(_panic) => Err(MeshError::CorePanicked { core: tid }),
    };
    slot.fut = None;
    *RuntimeCore::lock(&results[tid]) = Some(outcome);
    rt.state[tid].store(DONE, Ordering::SeqCst);
    shared.dead[tid].store(true, Ordering::SeqCst);
    if rt.live.fetch_sub(1, Ordering::SeqCst) == 1 {
        // Last task out: unpark everyone so the pool can shut down.
        let _idle = RuntimeCore::lock(&rt.idle);
        rt.cv.notify_all();
    }
    if obs::is_metrics() {
        obs::metrics().counter("sched_steals").inc(rt.steals.swap(0, Ordering::Relaxed));
        obs::metrics().counter("sched_park_ns").inc(rt.park_ns.swap(0, Ordering::Relaxed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::{Collectives, FaultPlan, MeshRuntime, RetryPolicy};
    use std::time::Duration;

    fn cfg(recv_ms: u64, faults: FaultPlan, retry: RetryPolicy) -> MeshConfig {
        MeshConfig {
            recv_timeout: Duration::from_millis(recv_ms),
            faults,
            attempt: 0,
            retry,
            runtime: MeshRuntime::coop(),
            ..MeshConfig::default()
        }
    }

    fn shift_east(
        torus: Torus,
        config: MeshConfig,
        workers: Option<usize>,
    ) -> Result<Vec<u32>, MeshError> {
        run_coop_fn(torus, config, workers, |mut h: CoopMeshHandle<u32>| async move {
            let me = h.id() as u32;
            h.shift(me, Dir::East).await
        })
    }

    #[test]
    fn coop_shift_matches_ring_expectation() {
        let t = Torus::new(3, 4);
        let got = shift_east(t, cfg(500, FaultPlan::new(), RetryPolicy::none()), Some(3)).unwrap();
        for (id, &v) in got.iter().enumerate() {
            assert_eq!(v as usize, t.neighbor(id, Dir::West), "core {id}");
        }
    }

    #[test]
    fn coop_handles_self_loop_torus() {
        let got =
            shift_east(Torus::new(1, 1), cfg(500, FaultPlan::new(), RetryPolicy::none()), Some(1))
                .unwrap();
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn two_thousand_cores_run_on_four_workers() {
        let t = Torus::new(1, 2048);
        let got =
            shift_east(t, cfg(2_000, FaultPlan::new(), RetryPolicy::none()), Some(4)).unwrap();
        assert_eq!(got.len(), 2048);
        for (id, &v) in got.iter().enumerate() {
            assert_eq!(v as usize, t.neighbor(id, Dir::West), "core {id}");
        }
    }

    /// Satellite: an injected delay must become a virtual-time wakeup, not
    /// a sleeping worker thread. A 1024-core pod with a 60-second injected
    /// delay finishes in wall-clock milliseconds because the only thing
    /// between the pod and completion is the virtual clock.
    #[test]
    fn injected_delay_on_1024_cores_does_not_occupy_a_worker() {
        let t = Torus::new(32, 32);
        let faults = FaultPlan::new().delay(0, 0, Duration::from_secs(60));
        let started = Instant::now();
        let got = shift_east(t, cfg(120_000, faults, RetryPolicy::none()), Some(2)).unwrap();
        let wall = started.elapsed();
        assert_eq!(got.len(), 1024);
        for (id, &v) in got.iter().enumerate() {
            assert_eq!(v as usize, t.neighbor(id, Dir::West), "core {id}");
        }
        // 60 virtual seconds must not cost anywhere near 60 wall seconds.
        assert!(wall < Duration::from_secs(10), "delay occupied a worker: {wall:?}");
    }

    /// Virtual timeouts are exact: a dropped packet burns the receive
    /// window plus every retry extension in virtual nanoseconds, so
    /// `waited_ms` is a deterministic constant, not a wall-clock measure.
    #[test]
    fn virtual_timeout_is_deterministic_and_fast() {
        let faults = FaultPlan::new().drop_packet(0, 1, 0);
        let retry = RetryPolicy { max_retries: 2, backoff: Duration::from_millis(50) };
        let started = Instant::now();
        let err = shift_east(Torus::new(1, 2), cfg(100, faults, retry), Some(2)).unwrap_err();
        let wall = started.elapsed();
        match err {
            // 100 ms window + (100+50) ms + (100+100) ms extensions.
            MeshError::RecvTimeout { core: 1, peer: 0, seq: 0, waited_ms } => {
                assert_eq!(waited_ms, 450);
            }
            other => panic!("unexpected error: {other:?}"),
        }
        assert!(wall < Duration::from_secs(5), "virtual timeout took {wall:?}");
    }

    #[test]
    fn injected_kill_still_selects_root_cause() {
        let faults = FaultPlan::new().kill(5, 0);
        let err =
            shift_east(Torus::new(2, 4), cfg(200, faults, RetryPolicy::none()), None).unwrap_err();
        assert_eq!(err, MeshError::InjectedKill { core: 5, seq: 0 });
    }

    #[test]
    fn panicking_core_is_contained_by_the_scheduler() {
        let t = Torus::new(1, 3);
        let err = run_coop_fn(
            t,
            cfg(200, FaultPlan::new(), RetryPolicy::none()),
            Some(2),
            |mut h: CoopMeshHandle<u32>| async move {
                if h.id() == 1 {
                    panic!("injected task panic");
                }
                h.shift(0, Dir::East).await
            },
        )
        .unwrap_err();
        assert_eq!(err, MeshError::CorePanicked { core: 1 });
    }

    /// The tentpole determinism claim: packet contents only depend on core
    /// state, and virtual time only advances at quiescence, so the result
    /// vector is bit-identical for any worker count and steal ordering.
    #[test]
    fn results_are_identical_across_worker_counts() {
        fn chained(workers: usize) -> Vec<u64> {
            let t = Torus::new(4, 4);
            run_coop_fn(
                t,
                cfg(2_000, FaultPlan::new(), RetryPolicy::none()),
                Some(workers),
                |mut h: CoopMeshHandle<u64>| async move {
                    let mut acc = h.id() as u64 + 1;
                    for step in 0..8u64 {
                        let dir = if step % 2 == 0 { Dir::East } else { Dir::South };
                        let got = h.shift(acc, dir).await?;
                        acc = acc.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(got ^ step);
                    }
                    Ok(acc)
                },
            )
            .unwrap()
        }
        let host = std::thread::available_parallelism().map_or(1, |p| p.get());
        let reference = chained(1);
        assert_eq!(chained(4), reference);
        assert_eq!(chained(host), reference);
    }

    #[test]
    fn worker_count_defaults_are_clamped() {
        // More workers than cores must not spawn dead threads or wedge.
        let got =
            shift_east(Torus::new(1, 2), cfg(500, FaultPlan::new(), RetryPolicy::none()), Some(64))
                .unwrap();
        assert_eq!(got.len(), 2);
    }
}
