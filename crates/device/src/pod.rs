//! TPU v3 Pod slices: the deployable configurations and their aggregate
//! capabilities (paper §2: "smaller sections of a pod called slices").
//!
//! A full TPU v3 Pod is 1024 chips = 2048 TensorCores on a 32×32 chip
//! torus; Cloud exposes power-of-two slices (v3-8 … v3-2048, the number
//! counting cores). The paper's experiments use `n×n×2`-core slices (the
//! ×2 being the two cores per chip) up to the full pod.

use crate::mesh::Torus;
use crate::params::TpuV3Params;

/// One deployable slice of a TPU v3 pod.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PodSlice {
    /// Chip grid (each chip has two cores).
    pub chips_x: usize,
    /// Chip grid second dimension.
    pub chips_y: usize,
}

impl PodSlice {
    /// The full 1024-chip / 2048-core pod.
    pub fn full_pod() -> PodSlice {
        PodSlice { chips_x: 32, chips_y: 32 }
    }

    /// The standard Cloud slice for a given core count. Supported:
    /// 8, 32, 128, 512, 2048 (the v3-N products). Returns `None` for
    /// non-catalog sizes.
    pub fn v3(cores: usize) -> Option<PodSlice> {
        match cores {
            8 => Some(PodSlice { chips_x: 2, chips_y: 2 }),
            32 => Some(PodSlice { chips_x: 4, chips_y: 4 }),
            128 => Some(PodSlice { chips_x: 8, chips_y: 8 }),
            512 => Some(PodSlice { chips_x: 16, chips_y: 16 }),
            2048 => Some(PodSlice::full_pod()),
            _ => None,
        }
    }

    /// TensorCores in the slice.
    pub fn cores(&self) -> usize {
        2 * self.chips_x * self.chips_y
    }

    /// The *core-level* torus used for SPMD placement: cores are addressed
    /// as an `(2·chips_x) × chips_y` grid (two cores of a chip sit at
    /// adjacent coordinates, sharing the chip's mesh links).
    pub fn core_torus(&self) -> Torus {
        Torus::new(2 * self.chips_x, self.chips_y)
    }

    /// Aggregate HBM in bytes.
    pub fn total_hbm(&self, params: &TpuV3Params) -> u64 {
        params.hbm_capacity_bytes * self.cores() as u64
    }

    /// Aggregate peak FLOPS.
    pub fn total_peak_flops(&self, params: &TpuV3Params) -> f64 {
        params.peak_flops() * self.cores() as f64
    }

    /// Aggregate power estimate in watts (paper §4.2.1: 100 W per core).
    pub fn total_power_w(&self, params: &TpuV3Params) -> f64 {
        params.power_w * self.cores() as f64
    }

    /// The largest square lattice (side in spins, multiple of 16·128 per
    /// the capacity quantization) this slice can hold with the compact
    /// working set at the given precision, assuming the per-core share is
    /// a `side/√cores` square — `None` if even the smallest lattice fails.
    pub fn max_square_lattice_side(&self, params: &TpuV3Params, dtype_bytes: usize) -> usize {
        let per_core_k = crate::cost::max_square_lattice_k(params, dtype_bytes);
        // per-core window of (k·128)², tiled √cores × √cores when square;
        // generally: total spins = cores · (k·128)².
        let total_spins = self.cores() as f64 * ((per_core_k * 128) as f64).powi(2);
        (total_spins.sqrt()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_core_counts() {
        for n in [8usize, 32, 128, 512, 2048] {
            let s = PodSlice::v3(n).unwrap();
            assert_eq!(s.cores(), n);
        }
        assert!(PodSlice::v3(100).is_none());
        assert_eq!(PodSlice::full_pod().cores(), 2048);
    }

    #[test]
    fn core_torus_covers_all_cores() {
        let s = PodSlice::v3(32).unwrap();
        assert_eq!(s.core_torus().cores(), 32);
    }

    #[test]
    fn full_pod_aggregates() {
        let p = TpuV3Params::v3();
        let pod = PodSlice::full_pod();
        // "32 TB of HBM" (paper §1): 2048 × 16 GB = 32 TiB
        assert_eq!(pod.total_hbm(&p), 2048 * 16 * (1u64 << 30));
        // "100+ peta-FLOPS": 2048 × ~63 TFLOPS ≈ 129 PFLOPS
        let pflops = pod.total_peak_flops(&p) / 1e15;
        assert!(pflops > 100.0, "{pflops} PFLOPS");
        assert_eq!(pod.total_power_w(&p), 204_800.0);
    }

    #[test]
    fn slice_max_lattice_scales_with_cores() {
        let p = TpuV3Params::v3();
        let small = PodSlice::v3(8).unwrap().max_square_lattice_side(&p, 2);
        let large = PodSlice::v3(512).unwrap().max_square_lattice_side(&p, 2);
        // 64× the cores → 8× the side
        assert_eq!(large / small, 8);
        // a v3-8 already exceeds the largest single-core lattice
        assert!(small > 656 * 128);
    }
}
