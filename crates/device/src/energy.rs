//! Energy-per-flip estimates (paper §4.2.1, Tables 1–2).
//!
//! The paper estimates an *upper bound* on energy per spin flip as
//! `P / F` where `P` is the device's assumed average power draw and `F`
//! the achieved throughput in flips/ns: 100 W per TPU v3 core, 250 W for a
//! Tesla V100.

/// Energy in nanojoules per flip: `total watts / (flips per nanosecond)`.
///
/// Watts ÷ (flips/ns) = J/s ÷ (flips/1e-9 s) = 1e-9 J/flip = nJ/flip.
pub fn energy_nj_per_flip(total_power_w: f64, flips_per_ns: f64) -> f64 {
    total_power_w / flips_per_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_first_row() {
        // (20·128)²: 8.1920 flips/ns at 100 W → 12.2070 nJ/flip.
        let e = energy_nj_per_flip(100.0, 8.1920);
        assert!((e - 12.2070).abs() < 1e-3, "{e}");
    }

    #[test]
    fn table2_first_row() {
        // 2 cores (200 W) at 22.8873 flips/ns → 8.7385 nJ/flip.
        let e = energy_nj_per_flip(200.0, 22.8873);
        assert!((e - 8.7385).abs() < 1e-3, "{e}");
    }

    #[test]
    fn v100_reference() {
        // 250 W at 11.3704 flips/ns → 21.9869 nJ/flip (Table 1's V100 row).
        let e = energy_nj_per_flip(250.0, 11.3704);
        assert!((e - 21.9869).abs() < 1e-3, "{e}");
    }
}
