//! A performance and topology model of the TPU v3 + Pod substrate.
//!
//! The paper's evaluation (Tables 1–7, Figs. 8–9) was measured on hardware
//! we do not have, so this crate provides the substitution: a *calibrated
//! analytical model* of a TPU v3 TensorCore and of the Pod's 2-D toroidal
//! inter-chip network, plus a *functional* SPMD runtime (real threads and
//! channels) that executes the same collective-permute halo-exchange
//! pattern the paper's distributed graph uses.
//!
//! The model is deliberately built the same way the paper validates its own
//! measurements (§5.2): count the operations an update step performs — MACs
//! on the MXU, element-ops on the VPU, bytes of data formatting, bytes over
//! the interconnect — and divide by sustained rates. The sustained rates are
//! calibrated once, in [`calib`], against the paper's published tables; all
//! benchmark binaries then *derive* their rows from the model. No table
//! hard-codes its own output.
//!
//! Modules:
//! - [`params`] — physical device parameters (clock, MXU shape, HBM, power).
//! - [`calib`]  — calibrated sustained-rate constants with their derivations.
//! - [`cost`]   — op counting and step-time assembly (the heart of Tables 1–7).
//! - [`mesh`]   — 2-D torus topology, `collective_permute` timing, and the
//!   functional threaded SPMD runtime.
//! - [`trace`]  — a tiny profiler: records modeled spans per op class and
//!   aggregates the Table-3 style percentage breakdown.
//! - [`roofline`] — roofline analysis (Table 5).
//! - [`energy`] — energy-per-flip estimates (Tables 1–2).

pub mod calib;
pub mod cost;
pub mod energy;
pub mod hbm;
pub mod mesh;
pub mod params;
pub mod pod;
pub mod roofline;
pub mod sched;
pub mod trace;

pub use cost::{step_counts, step_time, Breakdown, ExecutionMode, OpCounts, StepConfig, Variant};
pub use energy::energy_nj_per_flip;
pub use mesh::{
    run_mesh, run_spmd, run_spmd_cfg, Collectives, CoreProgram, Fault, FaultKind, FaultPlan,
    MeshConfig, MeshError, MeshHandle, MeshRuntime, RetryPolicy, Torus,
};
pub use params::TpuV3Params;
pub use roofline::RooflineReport;
pub use sched::{run_coop_fn, CoopMeshHandle};
pub use trace::{SpanKind, Trace};
