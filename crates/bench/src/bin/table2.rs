//! **Table 2** — weak scaling on TPU v3 slices (compact algorithm, bf16).
//!
//! Each core holds a `[896·128, 448·128]` sub-lattice; an `n × n × 2`-core
//! slice therefore simulates a `(512·128·n)²` lattice. The paper observes
//! a flat ~575 ms step and strictly linear flips/ns. A functional
//! cross-check runs the real SPMD pod (threads + collective permute) on a
//! small lattice.

use tpu_ising_bench::{ms, pct_dev, print_table, write_csv, write_json};
use tpu_ising_core::distributed::{run_pod, PodConfig, PodRng};
use tpu_ising_core::{run_multispin_pod, MultiSpinPodConfig, REPLICAS};
use tpu_ising_device::cost::{
    step_time, throughput_flips_per_ns, ExecutionMode, StepConfig, Variant,
};
use tpu_ising_device::energy::energy_nj_per_flip;
use tpu_ising_device::mesh::Torus;
use tpu_ising_device::params::TpuV3Params;

/// Paper rows: (topology label, cores, step ms, flips/ns, nJ/flip).
const PAPER: [(&str, usize, f64, f64, f64); 5] = [
    ("1x1x2", 2, 574.7, 22.8873, 8.7385),
    ("2x2x2", 8, 574.9, 91.5174, 8.7415),
    ("4x4x2", 32, 575.0, 366.0059, 8.7430),
    ("8x8x2", 128, 575.2, 1463.5146, 8.7461),
    ("16x16x2", 512, 575.3, 5853.0408, 8.7476),
];

#[derive(serde::Serialize)]
struct Row {
    cores: usize,
    lattice_side: usize,
    model_step_ms: f64,
    model_flips_per_ns: f64,
    model_nj_per_flip: f64,
    paper_step_ms: f64,
    paper_flips_per_ns: f64,
}

fn main() {
    let p = TpuV3Params::v3();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &(label, cores, paper_ms, paper_f, _paper_e) in &PAPER {
        let cfg = StepConfig {
            per_core_h: 896 * 128,
            per_core_w: 448 * 128,
            dtype_bytes: 2,
            variant: Variant::Compact,
            mode: ExecutionMode::Distributed { cores },
        };
        let bd = step_time(&p, &cfg);
        let f = throughput_flips_per_ns(&p, &cfg);
        let e = energy_nj_per_flip(p.power_w * cores as f64, f);
        // lattice side: n×n×2 cores of [896·128, 448·128] ⇒ (512·128·n)²
        let n = ((cores / 2) as f64).sqrt() as usize;
        let side = 512 * 128 * n.max(1);
        rows.push(vec![
            label.into(),
            format!("({side})^2"),
            ms(bd.total()),
            format!("{f:.1}"),
            format!("{e:.4}"),
            format!("{paper_ms:.1}"),
            format!("{paper_f:.1}"),
            pct_dev(f, paper_f),
        ]);
        json.push(Row {
            cores,
            lattice_side: side,
            model_step_ms: bd.total() * 1e3,
            model_flips_per_ns: f,
            model_nj_per_flip: e,
            paper_step_ms: paper_ms,
            paper_flips_per_ns: paper_f,
        });
    }
    rows.push(vec![
        "64 GPUs [3]".into(),
        "(800000)^2".into(),
        format!("~{}", tpu_ising_baseline::published::MULTI_GPU_64_STEP_MS),
        format!("{}", tpu_ising_baseline::published::MULTI_GPU_64_FLIPS_PER_NS),
        "-".into(),
        "-".into(),
        "-".into(),
        "ref".into(),
    ]);
    print_table(
        "Table 2: weak scaling, per-core [896x128, 448x128], compact bf16",
        &["cores", "lattice", "step ms", "flips/ns", "nJ/flip", "paper ms", "paper f/ns", "dev"],
        &rows,
    );

    let per_core = json.last().unwrap().model_flips_per_ns / 512.0;
    let per_gpu = tpu_ising_baseline::published::MULTI_GPU_64_FLIPS_PER_NS / 64.0;
    println!(
        "\nper-core flips/ns: {per_core:.4} (paper: 11.4337); per-GPU [3]: {per_gpu:.4}; speedup {:.0}%",
        (per_core / per_gpu - 1.0) * 100.0
    );

    // Functional SPMD cross-check: 2×2 cores, real threads + collective
    // permutes, small per-core lattice.
    let cfg = PodConfig {
        torus: Torus::new(2, 2),
        per_core_h: 128,
        per_core_w: 128,
        tile: 32,
        beta: 1.0 / tpu_ising_core::T_CRITICAL,
        seed: 7,
        rng: PodRng::BulkSplit,
        backend: tpu_ising_core::KernelBackend::Band,
    };
    let sweeps = 4;
    let t0 = std::time::Instant::now();
    let pod = run_pod::<f32>(&cfg, sweeps).expect("pod run failed");
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "functional check: 2x2-core pod, per-core 128x128: {:.4} flips/ns on CPU threads, final |m| = {:.3}",
        (cfg.sites() * sweeps) as f64 / (dt * 1e9),
        pod.magnetization_sums.last().unwrap().abs() / cfg.sites() as f64
    );

    // Same topology through the bit-packed engine: 64 replicas per word,
    // packed halo words over the same collective permutes. Aggregate
    // throughput counts every replica-spin proposed.
    let ms_cfg = MultiSpinPodConfig {
        torus: Torus::new(2, 2),
        per_core_h: 128,
        per_core_w: 128,
        beta: 1.0 / tpu_ising_core::T_CRITICAL,
        seed: 7,
    };
    let sweeps = 8;
    let t0 = std::time::Instant::now();
    let ms_pod = run_multispin_pod(&ms_cfg, sweeps).expect("multispin pod run failed");
    let dt = t0.elapsed().as_secs_f64();
    let last = ms_pod.replica_magnetizations.last().unwrap();
    println!(
        "functional check: same pod, multispin engine ({REPLICAS} replicas/word): \
         {:.4} aggregate flips/ns, replica-0 final |m| = {:.3}",
        (ms_cfg.flips_per_sweep() * sweeps as u64) as f64 / (dt * 1e9),
        last[0].abs() / ms_cfg.sites() as f64
    );

    write_json("table2", &json);
    write_csv(
        "table2",
        &["cores", "model_step_ms", "model_flips_per_ns", "paper_flips_per_ns"],
        &json
            .iter()
            .map(|r| {
                vec![
                    r.cores.to_string(),
                    r.model_step_ms.to_string(),
                    r.model_flips_per_ns.to_string(),
                    r.paper_flips_per_ns.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
