//! **Figure 4** — correctness: Binder parameter `U₄(T)` and magnetization
//! `m(T)` across the critical temperature, float32 vs bfloat16.
//!
//! This is a *real* MCMC run of the compact (Algorithm 2) sampler — the
//! physics experiment of the paper, scaled down from TPU-sized lattices
//! and 10⁶-sample chains to CPU-friendly sizes (set `ISING_BENCH_QUICK=1`
//! or pass `--quick` for an even smaller run). The claims it reproduces:
//!
//! - `m(T)` drops to ~0 above `Tc`, approaching the Onsager curve below;
//! - `U₄(T)` curves of different lattice sizes cross at `Tc`;
//! - the bf16 and f32 curves coincide within error bars.

use tpu_ising_bench::{init_progress, print_table, quick_mode, write_csv, write_json};
use tpu_ising_bf16::Bf16;
use tpu_ising_core::{
    onsager, random_plane, run_chain_labeled, CompactIsing, Randomness, T_CRITICAL,
};

#[derive(serde::Serialize)]
struct Point {
    dtype: String,
    lattice: usize,
    t_over_tc: f64,
    mean_abs_m: f64,
    err_abs_m: f64,
    binder: f64,
    mean_energy: f64,
    onsager_m: f64,
    onsager_e: f64,
}

fn run_size<S: tpu_ising_core::Scalar + tpu_ising_rng::RandomUniform>(
    l: usize,
    temps: &[f64],
    burn: usize,
    samples: usize,
    points: &mut Vec<Point>,
) {
    let tile = (l / 4).clamp(2, 16);
    for &tt in temps {
        let t = tt * T_CRITICAL;
        let beta = 1.0 / t;
        // ordered start below Tc (avoids long domain-wall equilibration),
        // hot start above
        let init = if tt < 1.0 {
            tpu_ising_core::cold_plane::<S>(l, l)
        } else {
            random_plane::<S>(1234 + l as u64, l, l)
        };
        let mut sim = CompactIsing::from_plane(
            &init,
            tile,
            beta,
            Randomness::bulk(l as u64 * 7 + (tt * 1000.0) as u64),
        );
        let label = format!("fig4 L={l} {} T/Tc={tt:.3}", S::DTYPE);
        let stats = run_chain_labeled(&mut sim, burn, samples, &label);
        points.push(Point {
            dtype: S::DTYPE.to_string(),
            lattice: l,
            t_over_tc: tt,
            mean_abs_m: stats.mean_abs_m,
            err_abs_m: stats.err_abs_m,
            binder: stats.binder,
            mean_energy: stats.mean_energy,
            onsager_m: onsager::magnetization(t),
            onsager_e: onsager::energy_per_site(t),
        });
    }
}

fn main() {
    init_progress(); // --progress: heartbeat lines on stderr
    let quick = quick_mode();
    let sizes: &[usize] = if quick { &[16, 32] } else { &[16, 32, 64] };
    let temps: Vec<f64> = if quick {
        vec![0.5, 0.9, 1.0, 1.1, 1.5]
    } else {
        vec![0.5, 0.8, 0.9, 0.95, 0.975, 1.0, 1.025, 1.05, 1.1, 1.2, 1.5]
    };
    let (burn, samples) = if quick { (200, 400) } else { (500, 2000) };
    println!(
        "Fig 4 reproduction: sizes {sizes:?}, {} temperatures, {burn}+{samples} sweeps, f32 and bf16",
        temps.len()
    );

    let mut points = Vec::new();
    for &l in sizes {
        run_size::<f32>(l, &temps, burn, samples, &mut points);
        run_size::<Bf16>(l, &temps, burn, samples, &mut points);
        println!("  L = {l} done ({} chains)", temps.len() * 2);
    }

    // Print per-size tables: f32 and bf16 side by side.
    for &l in sizes {
        let rows: Vec<Vec<String>> = temps
            .iter()
            .map(|&tt| {
                let f = points
                    .iter()
                    .find(|p| p.lattice == l && p.dtype == "f32" && p.t_over_tc == tt)
                    .unwrap();
                let b = points
                    .iter()
                    .find(|p| p.lattice == l && p.dtype == "bf16" && p.t_over_tc == tt)
                    .unwrap();
                vec![
                    format!("{tt:.3}"),
                    format!("{:.4}", f.mean_abs_m),
                    format!("{:.4}", b.mean_abs_m),
                    format!("{:+.4}", f.mean_abs_m - b.mean_abs_m),
                    format!("{:.4}", f.binder),
                    format!("{:.4}", b.binder),
                    format!("{:.4}", f.onsager_m),
                ]
            })
            .collect();
        print_table(
            &format!("Fig 4, L = {l}: m(T) and U4(T), f32 vs bf16"),
            &["T/Tc", "m f32", "m bf16", "Δm", "U4 f32", "U4 bf16", "Onsager m"],
            &rows,
        );
    }

    // Binder crossing check: U4 below Tc larger than above for every size,
    // and max |f32 − bf16| deviations.
    let mut max_dm: f64 = 0.0;
    let mut max_du: f64 = 0.0;
    for &l in sizes {
        for &tt in &temps {
            let f = points
                .iter()
                .find(|p| p.lattice == l && p.dtype == "f32" && p.t_over_tc == tt)
                .unwrap();
            let b = points
                .iter()
                .find(|p| p.lattice == l && p.dtype == "bf16" && p.t_over_tc == tt)
                .unwrap();
            max_dm = max_dm.max((f.mean_abs_m - b.mean_abs_m).abs());
            max_du = max_du.max((f.binder - b.binder).abs());
        }
    }
    println!("\nmax |m_f32 − m_bf16| = {max_dm:.4}; max |U4_f32 − U4_bf16| = {max_du:.4}");
    println!("(the paper's claim: bf16 curves \"almost completely match\" f32)");

    write_json("fig4", &points);
    write_csv(
        "fig4",
        &["dtype", "L", "T_over_Tc", "abs_m", "err", "binder", "energy", "onsager_m"],
        &points
            .iter()
            .map(|p| {
                vec![
                    p.dtype.clone(),
                    p.lattice.to_string(),
                    p.t_over_tc.to_string(),
                    p.mean_abs_m.to_string(),
                    p.err_abs_m.to_string(),
                    p.binder.to_string(),
                    p.mean_energy.to_string(),
                    p.onsager_m.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
