//! **Figure 9** — strong-scaling curve vs ideal linear scaling.
//!
//! Plots (as a printed series + JSON) the Table 7 strong-scaling run
//! against the ideal line anchored at the smallest configuration. The
//! departure past ~1000 cores is the communication knee.

use tpu_ising_bench::{print_table, write_json};
use tpu_ising_device::cost::{
    step_time, throughput_flips_per_ns, ExecutionMode, StepConfig, Variant,
};
use tpu_ising_device::params::TpuV3Params;

const TOPOLOGIES: [(usize, usize); 9] =
    [(2, 4), (4, 4), (4, 8), (8, 8), (8, 16), (16, 16), (16, 32), (32, 32), (32, 64)];

#[derive(serde::Serialize)]
struct Point {
    cores: usize,
    flips_per_ns: f64,
    ideal_flips_per_ns: f64,
    efficiency_pct: f64,
    cp_share_pct: f64,
}

fn main() {
    let p = TpuV3Params::v3();
    let total = 1792 * 128;
    let mut pts: Vec<Point> = Vec::new();
    for &(tx, ty) in &TOPOLOGIES {
        let cores = tx * ty;
        let cfg = StepConfig {
            per_core_h: total / tx,
            per_core_w: total / ty,
            dtype_bytes: 2,
            variant: Variant::Conv,
            mode: ExecutionMode::Distributed { cores },
        };
        let f = throughput_flips_per_ns(&p, &cfg);
        let bd = step_time(&p, &cfg);
        let ideal =
            if let Some(first) = pts.first() { first.flips_per_ns / 8.0 * cores as f64 } else { f };
        pts.push(Point {
            cores,
            flips_per_ns: f,
            ideal_flips_per_ns: ideal,
            efficiency_pct: f / ideal * 100.0,
            cp_share_pct: bd.t_cp / bd.total() * 100.0,
        });
    }
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|pt| {
            // a tiny ASCII sparkline of efficiency
            let bar = "#".repeat((pt.efficiency_pct / 5.0).round() as usize);
            vec![
                pt.cores.to_string(),
                format!("{:.1}", pt.flips_per_ns),
                format!("{:.1}", pt.ideal_flips_per_ns),
                format!("{:.1}", pt.efficiency_pct),
                format!("{:.1}", pt.cp_share_pct),
                bar,
            ]
        })
        .collect();
    print_table(
        "Fig 9: strong scaling vs ideal, (128x1792)^2, conv variant",
        &["cores", "flips/ns", "ideal", "efficiency %", "cp %", "efficiency"],
        &rows,
    );
    let knee = pts.iter().find(|pt| pt.efficiency_pct < 80.0).map(|pt| pt.cores);
    println!(
        "\nefficiency drops below 80% at {} cores (paper: knee past ~1000 cores)",
        knee.map(|c| c.to_string()).unwrap_or_else(|| "-".into())
    );
    write_json("fig9", &pts);
}
