//! Focused multi-spin timing loop for SIMD-tier and tile-size tuning.
//!
//! `perfbase` measures the multi-spin engine in context (against the
//! scalar backends, with provenance and the CI gate); this binary answers
//! the narrower question "how fast is one configuration, measured
//! cleanly?" so the per-ISA table in EXPERIMENTS.md and the
//! `default_tile_rows` constant can be (re)derived in seconds:
//!
//! ```text
//! TPU_ISING_SIMD=sse2 cargo run --release -p tpu-ising-bench --bin mstune -- 256 400
//! TPU_ISING_TILE_ROWS=8 cargo run --release -p tpu-ising-bench --bin mstune
//! ```
//!
//! Arguments: `[L] [sweeps] [beta]` (defaults 256, 400, 0.6). Prints the
//! dispatched tier, the effective tile height, and median-of-5 flips/ns
//! (medians resist the scheduling noise of shared CI machines).

use std::time::Instant;

use tpu_ising_core::MultiSpinIsing;
use tpu_ising_obs as obs;

#[global_allocator]
static ALLOC: obs::alloc::CountingAllocator = obs::alloc::CountingAllocator;

fn main() {
    let mut args = std::env::args().skip(1).filter_map(|a| a.parse::<f64>().ok());
    let l = args.next().unwrap_or(256.0) as usize;
    let sweeps = args.next().unwrap_or(400.0) as usize;
    let beta = args.next().unwrap_or(0.6);

    let mut sim = MultiSpinIsing::new(l, l, beta, 42);
    for _ in 0..5 {
        sim.sweep();
    }
    let flips = sim.flips_per_sweep() * sweeps as u64;

    let mut rates = Vec::new();
    let mut min_alloc = u64::MAX;
    for _ in 0..5 {
        let a0 = obs::alloc::allocated_bytes();
        let t0 = Instant::now();
        for _ in 0..sweeps {
            sim.sweep();
        }
        let secs = t0.elapsed().as_secs_f64();
        min_alloc = min_alloc.min(obs::alloc::allocated_bytes() - a0);
        rates.push(flips as f64 / (secs * 1e9));
    }
    rates.sort_by(|a, b| a.total_cmp(b));

    let isa = tpu_ising_rng::simd::isa();
    println!(
        "L={l} beta={beta} sweeps={sweeps}x5 isa={} lanes={} tile_rows={} \
         flips/ns median={:.4} min={:.4} max={:.4} alloc_B/rep={min_alloc}",
        isa.name(),
        isa.lanes(),
        sim.tile_rows(),
        rates[2],
        rates[0],
        rates[4],
    );
}
