//! **Table 1** — single-TPU-core throughput and energy vs lattice size.
//!
//! Modeled flips/ns and nJ/flip for the compact algorithm (bf16) on one
//! TPU v3 core across the paper's lattice sizes, with the paper's measured
//! values and the GPU/FPGA baselines alongside. A functional cross-check
//! runs the real compact implementation on a scaled-down lattice to show
//! the code path executes.

use tpu_ising_bench::{pct_dev, print_table, write_csv, write_json};
use tpu_ising_core::{random_plane, CompactIsing, Randomness, Sweeper};
use tpu_ising_device::cost::{
    hbm_utilization, max_square_lattice_k, throughput_flips_per_ns, ExecutionMode, StepConfig,
    Variant,
};
use tpu_ising_device::energy::energy_nj_per_flip;
use tpu_ising_device::params::TpuV3Params;

/// Paper's Table 1 measurements: (k, flips/ns, nJ/flip).
const PAPER: [(usize, f64, f64); 6] = [
    (20, 8.1920, 12.2070),
    (40, 9.3623, 10.6811),
    (80, 12.3362, 8.1062),
    (160, 12.8266, 7.7963),
    (320, 12.9056, 7.7486),
    (640, 12.8783, 7.7650),
];

#[derive(serde::Serialize)]
struct Row {
    k: usize,
    lattice_side: usize,
    model_flips_per_ns: f64,
    model_nj_per_flip: f64,
    paper_flips_per_ns: f64,
}

fn main() {
    let p = TpuV3Params::v3();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &(k, paper_f, paper_e) in &PAPER {
        let cfg = StepConfig {
            per_core_h: k * 128,
            per_core_w: k * 128,
            dtype_bytes: 2,
            variant: Variant::Compact,
            mode: ExecutionMode::SingleCore,
        };
        let f = throughput_flips_per_ns(&p, &cfg);
        let e = energy_nj_per_flip(p.power_w, f);
        rows.push(vec![
            format!("({k}x128)^2"),
            format!("{f:.4}"),
            format!("{e:.4}"),
            format!("{paper_f:.4}"),
            format!("{paper_e:.4}"),
            pct_dev(f, paper_f),
        ]);
        json.push(Row {
            k,
            lattice_side: k * 128,
            model_flips_per_ns: f,
            model_nj_per_flip: e,
            paper_flips_per_ns: paper_f,
        });
    }
    // Baseline rows as the paper prints them.
    rows.push(vec![
        "GPU [23,3]".into(),
        format!("{:.4}", tpu_ising_baseline::published::GPU_PREIS_2009_FLIPS_PER_NS),
        "-".into(),
        format!("{:.4}", tpu_ising_baseline::published::GPU_PREIS_2009_FLIPS_PER_NS),
        "-".into(),
        "ref".into(),
    ]);
    let v100 = tpu_ising_baseline::published::V100_FLIPS_PER_NS;
    rows.push(vec![
        "Nvidia Tesla V100".into(),
        format!("{v100:.4}"),
        format!("{:.4}", energy_nj_per_flip(tpu_ising_baseline::published::V100_POWER_W, v100)),
        format!("{v100:.4}"),
        "21.9869".into(),
        "ref".into(),
    ]);
    rows.push(vec![
        "FPGA [20]".into(),
        format!("{:.1}", tpu_ising_baseline::published::FPGA_FLIPS_PER_NS),
        "-".into(),
        format!("{:.1}", tpu_ising_baseline::published::FPGA_FLIPS_PER_NS),
        "-".into(),
        "ref".into(),
    ]);

    print_table(
        "Table 1: single TPU v3 core, compact algorithm, bf16",
        &["lattice", "flips/ns", "nJ/flip", "paper flips/ns", "paper nJ/flip", "dev"],
        &rows,
    );

    // Memory-capacity claim (§4.2.1): max (656·128)² at 96 % HBM.
    let kmax = max_square_lattice_k(&p, 2);
    println!(
        "\nmax single-core lattice (bf16): ({kmax}x128)^2 at {:.1}% HBM  (paper: (656x128)^2 at 96%)",
        hbm_utilization(&p, kmax, 2) * 100.0
    );

    // Functional cross-check on CPU (scaled down): verify the real compact
    // implementation sweeps and report its wall-clock throughput.
    let side = 512;
    let plane = random_plane::<tpu_ising_bf16::Bf16>(1, side, side);
    let mut sim = CompactIsing::from_plane(
        &plane,
        128,
        1.0 / tpu_ising_core::T_CRITICAL,
        Randomness::bulk(2),
    );
    let sweeps = 4;
    let t0 = std::time::Instant::now();
    for _ in 0..sweeps {
        sim.sweep();
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "functional check: compact bf16 {side}x{side} on CPU: {:.4} flips/ns over {sweeps} sweeps (|m| = {:.3})",
        (side * side * sweeps) as f64 / (dt * 1e9),
        sim.magnetization_sum().abs() / (side * side) as f64,
    );

    write_json("table1", &json);
    write_csv(
        "table1",
        &["k", "model_flips_per_ns", "model_nj_per_flip", "paper_flips_per_ns"],
        &json
            .iter()
            .map(|r| {
                vec![
                    r.k.to_string(),
                    r.model_flips_per_ns.to_string(),
                    r.model_nj_per_flip.to_string(),
                    r.paper_flips_per_ns.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
