//! **Table 4** — (step time, collective-permute time) vs per-core lattice
//! size and core count.
//!
//! The paper's observations this table must reproduce: (1) cp time is
//! governed by the core count, not the payload size (edges are tiny);
//! (2) shrinking the per-core lattice 4× from [896·128, 448·128] cuts the
//! step only to ~44 % (MXU-utilization regime change), while the next 4×
//! is a clean ~25 %.

use tpu_ising_bench::{ms, print_table, write_json};
use tpu_ising_device::cost::{step_time, ExecutionMode, StepConfig, Variant};
use tpu_ising_device::params::TpuV3Params;

/// Paper cells: per-core size label → [(cores, step ms, cp ms); 3].
#[allow(clippy::type_complexity)]
const PAPER: [(&str, usize, usize, [(usize, f64, f64); 3]); 3] = [
    ("[896x128, 448x128]", 896, 448, [(32, 575.0, 0.37), (128, 575.2, 0.47), (512, 575.3, 0.65)]),
    ("[448x128, 224x128]", 448, 224, [(32, 255.0, 0.36), (128, 255.11, 0.41), (512, 255.03, 0.64)]),
    ("[224x128, 112x128]", 224, 112, [(32, 64.61, 0.18), (128, 64.69, 0.25), (512, 64.92, 0.58)]),
];

#[derive(serde::Serialize)]
struct Row {
    per_core: String,
    cores: usize,
    model_step_ms: f64,
    model_cp_ms: f64,
    paper_step_ms: f64,
    paper_cp_ms: f64,
}

fn main() {
    let p = TpuV3Params::v3();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &(label, h, w, cells) in &PAPER {
        for &(cores, paper_step, paper_cp) in &cells {
            let cfg = StepConfig {
                per_core_h: h * 128,
                per_core_w: w * 128,
                dtype_bytes: 2,
                variant: Variant::Compact,
                mode: ExecutionMode::Distributed { cores },
            };
            let bd = step_time(&p, &cfg);
            rows.push(vec![
                label.into(),
                cores.to_string(),
                ms(bd.total()),
                format!("{:.3}", bd.t_cp * 1e3),
                format!("{paper_step:.2}"),
                format!("{paper_cp:.2}"),
            ]);
            json.push(Row {
                per_core: label.into(),
                cores,
                model_step_ms: bd.total() * 1e3,
                model_cp_ms: bd.t_cp * 1e3,
                paper_step_ms: paper_step,
                paper_cp_ms: paper_cp,
            });
        }
    }
    print_table(
        "Table 4: step time and collective-permute time (ms)",
        &["per-core lattice", "cores", "step ms", "cp ms", "paper step", "paper cp"],
        &rows,
    );

    // The two regime observations, stated explicitly.
    let step = |h: usize, w: usize| {
        step_time(
            &p,
            &StepConfig {
                per_core_h: h * 128,
                per_core_w: w * 128,
                dtype_bytes: 2,
                variant: Variant::Compact,
                mode: ExecutionMode::Distributed { cores: 128 },
            },
        )
        .total()
    };
    let (t0, t1, t2) = (step(896, 448), step(448, 224), step(224, 112));
    println!(
        "\nregimes: 4x smaller per-core lattice → step {:.1}% (paper ~44%), next 4x → {:.1}% (paper ~25.5%)",
        t1 / t0 * 100.0,
        t2 / t1 * 100.0
    );
    write_json("table4", &json);
}
