//! Kernel-backend performance baseline: dense reference matmuls vs the
//! band-structured fused update, single core and a 2×2 pod.
//!
//! For each tile size the same 256×256 lattice is swept with both
//! [`KernelBackend`]s and we report µs/sweep, spin-flip throughput in
//! flips/ns (every site is proposed once per sweep), and the steady-state
//! heap traffic per sweep as seen by the counting allocator — the band
//! path must hold that at zero. Writes `results/BENCH_compact.json`.
//!
//! The second half benchmarks the bit-packed multi-spin engine (64
//! replicas per `u64` word) against the scalar backends measured in the
//! same process, and writes `results/BENCH_multispin.json` with run
//! provenance (timestamp, CPU model, commit, dispatched SIMD tier).
//! `--gate-multispin` turns the committed acceptance bar into an exit
//! code: single-core multispin must clear an **absolute flips/ns floor
//! keyed on the dispatched ISA tier** (see [`tpu_ising_bench::multispin_floor`]) with a
//! zero-allocation steady state; the old ≥ 10× band ratio is still
//! printed, but as information — a same-run ratio can mask a regression
//! when both sides slow down together.
//!
//! `--quick` (or `ISING_BENCH_QUICK=1`) shrinks tiles and sweep counts.
//! `--append` adds one `{commit, timestamp, algo, isa, flips_per_ns}`
//! row per algorithm (dense, band, multispin; best single-core figure)
//! to `results/BENCH_trajectory.json`, so the performance history across
//! commits accumulates in one machine-readable file.

use std::time::Instant;

use tpu_ising_bench::{
    append_trajectory, multispin_floor, print_table, quick_mode, results_dir, run_metadata,
    TrajectoryRow,
};
use tpu_ising_core::distributed::{run_pod, PodConfig, PodRng, DEFAULT_SCRUB_CADENCE};
use tpu_ising_core::{
    random_plane, run_multispin_pod, run_multispin_pod_with_opts, CompactIsing, KernelBackend,
    MultiSpinIsing, MultiSpinPodConfig, MultiSpinPodRunOpts, Randomness, Sweeper, REPLICAS,
};
use tpu_ising_device::mesh::{MeshConfig, MeshRuntime, Torus};
use tpu_ising_obs as obs;

// Heap traffic is an acceptance criterion here, so this binary measures
// its own allocations rather than trusting the sweeper's gauge.
#[global_allocator]
static ALLOC: obs::alloc::CountingAllocator = obs::alloc::CountingAllocator;

const BETA: f64 = 0.6;
const L: usize = 256;

struct Row {
    mode: &'static str,
    tile: usize,
    lattice: String,
    backend: &'static str,
    sweeps: usize,
    us_per_sweep: f64,
    flips_per_ns: f64,
    steady_alloc_bytes_per_sweep: u64,
    /// The SIMD tier this row's kernels dispatched to. Constant within a
    /// run, but stamped per row so rows stay attributable after files
    /// from different hosts are concatenated.
    simd_isa: &'static str,
}

/// The dispatched tier's name, as every row records it.
fn isa_name() -> &'static str {
    tpu_ising_rng::simd::isa().name()
}

struct Speedup {
    mode: &'static str,
    tile: usize,
    band_over_dense: f64,
}

impl Row {
    fn to_json(&self) -> String {
        format!(
            "{{\"mode\": \"{}\", \"tile\": {}, \"lattice\": \"{}\", \"backend\": \"{}\", \
             \"sweeps\": {}, \"us_per_sweep\": {:.2}, \"flips_per_ns\": {:.5}, \
             \"steady_alloc_bytes_per_sweep\": {}, \"simd_isa\": \"{}\"}}",
            self.mode,
            self.tile,
            self.lattice,
            self.backend,
            self.sweeps,
            self.us_per_sweep,
            self.flips_per_ns,
            self.steady_alloc_bytes_per_sweep,
            self.simd_isa
        )
    }
}

/// Time `sweeps` sweeps of `f`, returning (elapsed seconds, minimum heap
/// delta over any single sweep). The minimum is the steady state: warmup
/// already ran, so any sweep that allocates nothing reports 0 even if a
/// rare sweep grows a buffer.
fn time_sweeps(sweeps: usize, mut f: impl FnMut()) -> (f64, u64) {
    let mut min_alloc = u64::MAX;
    let t0 = Instant::now();
    for _ in 0..sweeps {
        let a0 = obs::alloc::allocated_bytes();
        f();
        min_alloc = min_alloc.min(obs::alloc::allocated_bytes() - a0);
    }
    (t0.elapsed().as_secs_f64(), min_alloc)
}

fn single_core(tile: usize, backend: KernelBackend, sweeps: usize) -> Row {
    let init = random_plane::<f32>(7, L, L);
    let mut sim =
        CompactIsing::from_plane(&init, tile, BETA, Randomness::bulk(42)).with_backend(backend);
    for _ in 0..3 {
        sim.sweep(); // warmup: first sweeps may grow halo buffers
    }
    let sites = sim.sites();
    let (secs, min_alloc) = time_sweeps(sweeps, || sim.sweep());
    Row {
        mode: "single_core",
        tile,
        lattice: format!("{L}x{L}"),
        backend: backend.name(),
        sweeps,
        us_per_sweep: secs * 1e6 / sweeps as f64,
        flips_per_ns: (sites * sweeps) as f64 / (secs * 1e9),
        steady_alloc_bytes_per_sweep: min_alloc,
        simd_isa: isa_name(),
    }
}

fn pod(tile: usize, backend: KernelBackend, sweeps: usize) -> Row {
    let cfg = PodConfig {
        torus: Torus::new(2, 2),
        per_core_h: 2 * tile,
        per_core_w: 2 * tile,
        tile,
        beta: BETA,
        seed: 99,
        rng: PodRng::BulkSplit,
        backend,
    };
    let sites = 4 * cfg.per_core_h * cfg.per_core_w;
    let _ = run_pod::<f32>(&cfg, 2).expect("pod run failed"); // warmup run (mesh setup, buffer growth)
    let t0 = Instant::now();
    let _ = run_pod::<f32>(&cfg, sweeps).expect("pod run failed");
    let secs = t0.elapsed().as_secs_f64();
    Row {
        mode: "pod_2x2",
        tile,
        lattice: format!("{}x{}", 4 * tile, 4 * tile),
        backend: backend.name(),
        sweeps,
        us_per_sweep: secs * 1e6 / sweeps as f64,
        flips_per_ns: (sites * sweeps) as f64 / (secs * 1e9),
        // run_pod rebuilds the mesh each call, so per-sweep steady heap
        // traffic is not observable from outside; the single-core rows
        // are the zero-allocation check.
        steady_alloc_bytes_per_sweep: 0,
        simd_isa: isa_name(),
    }
}

/// One multi-spin engine measurement. `flips_per_ns` is the aggregate
/// across all 64 replicas — every sweep proposes `REPLICAS · sites`
/// replica-spins.
fn multispin_single(sweeps: usize) -> Row {
    let mut sim = MultiSpinIsing::new(L, L, BETA, 42);
    for _ in 0..3 {
        sim.sweep(); // warmup: touch every page, settle the branch mix
    }
    let flips = sim.flips_per_sweep() * sweeps as u64;
    let (secs, min_alloc) = time_sweeps(sweeps, || sim.sweep());
    Row {
        mode: "single_core",
        tile: 0,
        lattice: format!("{L}x{L}"),
        backend: "multispin",
        sweeps,
        us_per_sweep: secs * 1e6 / sweeps as f64,
        flips_per_ns: flips as f64 / (secs * 1e9),
        steady_alloc_bytes_per_sweep: min_alloc,
        simd_isa: isa_name(),
    }
}

fn multispin_pod(sweeps: usize) -> Row {
    let cfg = MultiSpinPodConfig {
        torus: Torus::new(2, 2),
        per_core_h: L / 2,
        per_core_w: L / 2,
        beta: BETA,
        seed: 99,
    };
    let _ = run_multispin_pod(&cfg, 2).expect("multispin pod warmup failed");
    let t0 = Instant::now();
    let _ = run_multispin_pod(&cfg, sweeps).expect("multispin pod run failed");
    let secs = t0.elapsed().as_secs_f64();
    Row {
        mode: "pod_2x2",
        tile: 0,
        lattice: format!("{}x{}", cfg.global_h(), cfg.global_w()),
        backend: "multispin",
        sweeps,
        us_per_sweep: secs * 1e6 / sweeps as f64,
        flips_per_ns: (cfg.flips_per_sweep() * sweeps as u64) as f64 / (secs * 1e9),
        // like `pod`: the mesh is rebuilt per call, so steady per-sweep
        // heap traffic is only observable on the single-core row.
        steady_alloc_bytes_per_sweep: 0,
        simd_isa: isa_name(),
    }
}

/// Multispin throughput with the integrity scrubber folding a CRC-32
/// lattice digest every [`DEFAULT_SCRUB_CADENCE`] sweeps — the cost a
/// production run pays for silent-corruption detection. Returned as
/// (flips/ns scrubbed, flips/ns plain, overhead fraction).
fn multispin_scrub_overhead(sweeps: usize) -> (f64, f64, f64) {
    let cadence = DEFAULT_SCRUB_CADENCE as usize;
    let run = |scrub: bool| {
        let mut sim = MultiSpinIsing::new(L, L, BETA, 42);
        for _ in 0..3 {
            sim.sweep();
        }
        let flips = sim.flips_per_sweep() * sweeps as u64;
        let mut i = 0usize;
        let (secs, _) = time_sweeps(sweeps, || {
            sim.sweep();
            i += 1;
            if scrub && i.is_multiple_of(cadence) {
                std::hint::black_box(sim.state_digest());
            }
        });
        flips as f64 / (secs * 1e9)
    };
    let plain = run(false);
    let scrubbed = run(true);
    (scrubbed, plain, (plain - scrubbed).max(0.0) / plain)
}

/// Aggregate multispin throughput of an `nx`×`ny` pod on the cooperative
/// work-stealing scheduler, strong-scaling a fixed 256×256 global lattice.
/// This is the slice the trajectory file tracks across commits: the same
/// lattice sharded ever finer, up to 1024 logical cores on however few
/// worker threads the host has.
fn multispin_pod_coop(nx: usize, ny: usize, sweeps: usize) -> f64 {
    let cfg = MultiSpinPodConfig {
        torus: Torus::new(nx, ny),
        per_core_h: L / nx,
        per_core_w: L / ny,
        beta: BETA,
        seed: 99,
    };
    let opts = MultiSpinPodRunOpts {
        mesh: MeshConfig { runtime: MeshRuntime::coop(), ..MeshConfig::default() },
        ..MultiSpinPodRunOpts::default()
    };
    let _ = run_multispin_pod_with_opts(&cfg, 1, &opts).expect("coop pod warmup failed");
    let t0 = Instant::now();
    let _ = run_multispin_pod_with_opts(&cfg, sweeps, &opts).expect("coop pod run failed");
    let secs = t0.elapsed().as_secs_f64();
    (cfg.flips_per_sweep() * sweeps as u64) as f64 / (secs * 1e9)
}

fn main() {
    let quick = quick_mode();
    let gate = std::env::args().skip(1).any(|a| a == "--gate-multispin");
    let append = std::env::args().skip(1).any(|a| a == "--append");
    let tiles: &[usize] = if quick { &[8, 16] } else { &[32, 64, 128] };

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for &t in tiles {
        // The dense path is O(t³) per tile; keep its sweep budget small at
        // large tiles so the baseline finishes in minutes, not hours.
        let dense_sweeps = if quick {
            6
        } else if t >= 128 {
            10
        } else {
            20
        };
        let band_sweeps = if quick { 20 } else { 60 };

        let d = single_core(t, KernelBackend::Dense, dense_sweeps);
        let b = single_core(t, KernelBackend::Band, band_sweeps);
        speedups.push(Speedup {
            mode: "single_core",
            tile: t,
            band_over_dense: b.flips_per_ns / d.flips_per_ns,
        });
        rows.push(d);
        rows.push(b);

        let d = pod(t, KernelBackend::Dense, dense_sweeps.min(6));
        let b = pod(t, KernelBackend::Band, band_sweeps.min(20));
        speedups.push(Speedup {
            mode: "pod_2x2",
            tile: t,
            band_over_dense: b.flips_per_ns / d.flips_per_ns,
        });
        rows.push(d);
        rows.push(b);
    }

    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                r.tile.to_string(),
                r.lattice.clone(),
                r.backend.to_string(),
                r.sweeps.to_string(),
                format!("{:.1}", r.us_per_sweep),
                format!("{:.4}", r.flips_per_ns),
                r.steady_alloc_bytes_per_sweep.to_string(),
            ]
        })
        .collect();
    print_table(
        "Kernel backend baseline (compact sweeper)",
        &["mode", "tile", "lattice", "backend", "sweeps", "us/sweep", "flips/ns", "alloc B/sweep"],
        &printable,
    );

    let speedup_rows: Vec<Vec<String>> = speedups
        .iter()
        .map(|s| vec![s.mode.to_string(), s.tile.to_string(), format!("{:.2}x", s.band_over_dense)])
        .collect();
    print_table("Band speedup over dense", &["mode", "tile", "band/dense"], &speedup_rows);

    // JSON is assembled by hand, like the Chrome-trace exporter: the
    // committed baseline must not depend on which serializer is linked.
    let mut json = format!("{{\n  \"quick\": {quick},\n  \"beta\": {BETA},\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!("    {}{}\n", r.to_json(), sep));
    }
    json.push_str("  ],\n  \"speedup\": [\n");
    for (i, s) in speedups.iter().enumerate() {
        let sep = if i + 1 < speedups.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"tile\": {}, \"band_over_dense\": {:.2}}}{}\n",
            s.mode, s.tile, s.band_over_dense, sep
        ));
    }
    json.push_str("  ]\n}\n");
    let path = results_dir().join("BENCH_compact.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\n[results written to {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }

    // ---- multi-spin engine, measured against the rows above in-process ----

    let ms_rows =
        [multispin_single(if quick { 20 } else { 200 }), multispin_pod(if quick { 6 } else { 40 })];
    let printable: Vec<Vec<String>> = ms_rows
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                r.lattice.clone(),
                REPLICAS.to_string(),
                r.sweeps.to_string(),
                format!("{:.1}", r.us_per_sweep),
                format!("{:.4}", r.flips_per_ns),
                r.steady_alloc_bytes_per_sweep.to_string(),
            ]
        })
        .collect();
    print_table(
        "Multi-spin engine (64 replicas per u64 word, aggregate flips/ns)",
        &["mode", "lattice", "replicas", "sweeps", "us/sweep", "flips/ns", "alloc B/sweep"],
        &printable,
    );

    // Same-run comparators: the best single-core scalar figure per backend.
    let best = |name: &str| {
        rows.iter()
            .filter(|r| r.mode == "single_core" && r.backend == name)
            .map(|r| r.flips_per_ns)
            .fold(0.0f64, f64::max)
    };
    let (best_band, best_dense) = (best("band"), best("dense"));
    let ms_single = &ms_rows[0];
    let over_band = ms_single.flips_per_ns / best_band;
    let over_dense = ms_single.flips_per_ns / best_dense;
    let isa = tpu_ising_rng::simd::isa();
    println!(
        "\nmultispin single-core: {:.3} flips/ns = {over_band:.1}x best band, \
         {over_dense:.0}x best dense (same run)",
        ms_single.flips_per_ns
    );
    println!(
        "dispatched SIMD: {} ({} planes/feed; detected: {})",
        isa.name(),
        isa.lanes(),
        tpu_ising_rng::cpu_features().summary()
    );

    // Integrity-scrubber overhead at the recommended production cadence:
    // the CRC-32 lattice digest every DEFAULT_SCRUB_CADENCE sweeps must
    // cost well under 5% of multispin throughput.
    let scrub_sweeps = if quick { 32 } else { 128 };
    let (scrub_on, scrub_off, scrub_overhead) = multispin_scrub_overhead(scrub_sweeps);
    println!(
        "scrubber overhead: {scrub_on:.3} flips/ns scrubbed every {DEFAULT_SCRUB_CADENCE} \
         sweeps vs {scrub_off:.3} plain = {:.2}% (budget 5%)",
        scrub_overhead * 100.0
    );

    let md = run_metadata();
    let mut json = format!(
        "{{\n  {},\n  \"quick\": {quick},\n  \"beta\": {BETA},\n  \"replicas\": {REPLICAS},\n  \
         \"rows\": [\n",
        md.to_json_fields()
    );
    for (i, r) in ms_rows.iter().enumerate() {
        let sep = if i + 1 < ms_rows.len() { "," } else { "" };
        json.push_str(&format!("    {}{}\n", r.to_json(), sep));
    }
    json.push_str(&format!(
        "  ],\n  \"same_run_comparators\": {{\"best_band_single_core\": {best_band:.5}, \
         \"best_dense_single_core\": {best_dense:.5}}},\n  \
         \"speedup\": {{\"multispin_over_band\": {over_band:.2}, \
         \"multispin_over_dense\": {over_dense:.2}}}\n}}\n"
    ));
    let path = results_dir().join("BENCH_multispin.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[results written to {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }

    if append {
        // One trajectory point per algorithm: the best single-core figure
        // from this run, stamped with the commit it measured.
        let point = |algo: &str, cores: usize, flips_per_ns: f64| TrajectoryRow {
            commit: md.commit.clone(),
            timestamp: md.timestamp.clone(),
            algo: algo.to_string(),
            isa: md.simd_isa.clone(),
            cores,
            flips_per_ns,
        };
        let mut traj = vec![
            point("dense", 1, best_dense),
            point("band", 1, best_band),
            point("multispin", 1, ms_single.flips_per_ns),
            point("multispin_scrubbed", 1, scrub_on),
        ];
        // Per-topology scaling points: the same 256×256 multispin lattice
        // strong-scaled across ever more logical cores on the coop
        // scheduler, so the trajectory records how pod overhead moves
        // with the core count (not just the single-core kernel).
        let scaling: &[(usize, usize)] = if quick {
            &[(2, 2), (8, 8), (32, 32)]
        } else {
            &[(2, 2), (4, 4), (8, 8), (16, 16), (32, 32)]
        };
        let pod_sweeps = if quick { 2 } else { 6 };
        let mut scale_rows = Vec::new();
        for &(nx, ny) in scaling {
            let f = multispin_pod_coop(nx, ny, pod_sweeps);
            scale_rows.push(vec![format!("{nx}x{ny}"), (nx * ny).to_string(), format!("{f:.4}")]);
            traj.push(point("multispin_pod_coop", nx * ny, f));
        }
        print_table(
            "Coop-scheduler strong scaling (256x256 multispin, aggregate flips/ns)",
            &["topology", "cores", "flips/ns"],
            &scale_rows,
        );
        let path = results_dir().join("BENCH_trajectory.json");
        match append_trajectory(&path, &traj) {
            Ok(n) => println!("[trajectory: {n} row(s) total in {}]", path.display()),
            Err(e) => eprintln!("warning: could not append to {}: {e}", path.display()),
        }
    }

    if gate {
        let floor = multispin_floor(isa);
        let mut failures = Vec::new();
        if ms_single.flips_per_ns < floor {
            failures.push(format!(
                "multispin {:.3} flips/ns is below the {floor:.2} floor for the dispatched \
                 {} tier",
                ms_single.flips_per_ns,
                isa.name()
            ));
        }
        if ms_single.steady_alloc_bytes_per_sweep != 0 {
            failures.push(format!(
                "multispin steady state allocates {} B/sweep (need 0)",
                ms_single.steady_alloc_bytes_per_sweep
            ));
        }
        if scrub_overhead > 0.05 {
            failures.push(format!(
                "scrubber overhead {:.2}% exceeds the 5% budget at cadence {}",
                scrub_overhead * 100.0,
                DEFAULT_SCRUB_CADENCE
            ));
        }
        if failures.is_empty() {
            println!(
                "[gate-multispin] PASS: {:.3} flips/ns >= {floor:.2} ({} floor), \
                 {over_band:.1}x band, 0 B/sweep",
                ms_single.flips_per_ns,
                isa.name()
            );
        } else {
            for f in &failures {
                eprintln!("[gate-multispin] FAIL: {f}");
            }
            std::process::exit(1);
        }
    }
}
