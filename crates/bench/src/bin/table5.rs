//! **Table 5** — roofline analysis: achieved FLOPS vs memory-bound roofline
//! and hardware peak.
//!
//! The paper: all configurations are memory bound, achieving ≈76.5 % of the
//! roofline and ≈9.3 % of peak (≈5.89 TFLOPS/core), flat from 2 to 512
//! cores; the roofline slope implies ≥~300 GB/s of effective HBM bandwidth.

use tpu_ising_bench::{print_table, write_json};
use tpu_ising_device::cost::{ExecutionMode, StepConfig, Variant};
use tpu_ising_device::params::TpuV3Params;
use tpu_ising_device::roofline::roofline;

/// Paper rows: (cores, % roofline, % peak).
const PAPER: [(usize, f64, f64); 5] =
    [(2, 76.68, 9.31), (8, 76.65, 9.30), (32, 76.51, 9.28), (128, 76.52, 9.27), (512, 76.43, 9.26)];

#[derive(serde::Serialize)]
struct Row {
    cores: usize,
    model_pct_roofline: f64,
    model_pct_peak: f64,
    achieved_tflops: f64,
    intensity_flops_per_byte: f64,
    memory_bound: bool,
    paper_pct_roofline: f64,
    paper_pct_peak: f64,
}

fn main() {
    let p = TpuV3Params::v3();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &(cores, paper_roof, paper_peak) in &PAPER {
        let cfg = StepConfig {
            per_core_h: 896 * 128,
            per_core_w: 448 * 128,
            dtype_bytes: 2,
            variant: Variant::Compact,
            mode: ExecutionMode::Distributed { cores },
        };
        let r = roofline(&p, &cfg);
        rows.push(vec![
            cores.to_string(),
            format!("{:.2}", r.pct_of_roofline()),
            format!("{:.2}", r.pct_of_peak()),
            format!("{:.2}", r.achieved_flops / 1e12),
            format!("{:.1}", r.intensity_flops_per_byte),
            r.memory_bound.to_string(),
            format!("{paper_roof:.2}"),
            format!("{paper_peak:.2}"),
        ]);
        json.push(Row {
            cores,
            model_pct_roofline: r.pct_of_roofline(),
            model_pct_peak: r.pct_of_peak(),
            achieved_tflops: r.achieved_flops / 1e12,
            intensity_flops_per_byte: r.intensity_flops_per_byte,
            memory_bound: r.memory_bound,
            paper_pct_roofline: paper_roof,
            paper_pct_peak: paper_peak,
        });
    }
    print_table(
        "Table 5: roofline, per-core [896x128, 448x128], compact bf16",
        &[
            "cores",
            "% roofline",
            "% peak",
            "TFLOPS/core",
            "flops/byte",
            "mem-bound",
            "paper %roof",
            "paper %peak",
        ],
        &rows,
    );
    println!(
        "\npeak/core = {:.1} TFLOPS; effective HBM bandwidth = {:.0} GB/s (paper: \"at least ~300 GB/s\")",
        p.peak_flops() / 1e12,
        p.hbm_bw_bytes_per_s / 1e9
    );
    println!(
        "paper's own cross-check: ~5.8 TFLOPS from op counts / 580 ms — model gives {:.2} TFLOPS",
        json[0].achieved_tflops
    );
    write_json("table5", &json);
}
