//! **Table 7 / Fig. 9 input** — strong scaling of the conv implementation
//! on a fixed `(128·1792)²` lattice, 8 → 2048 cores.
//!
//! The paper: near-linear speedup until ~1000 cores, after which the
//! collective-permute overhead becomes a significant share of the step.
//!
//! Two sections. The **model** rows replay the paper's exact
//! configurations through the calibrated TPU v3 cost model. The
//! **measured** rows are real: the multispin engine strong-scales a fixed
//! 256×256 lattice from 4 to 2048 *logical* cores on the cooperative
//! work-stealing scheduler, every halo crossing a real mesh collective —
//! the same experiment at host scale, with the same Fig. 9 shape (per-core
//! work shrinks until collective overhead bends the curve).

use std::time::Instant;

use tpu_ising_bench::{pct_dev, print_table, quick_mode, run_metadata, write_json};
use tpu_ising_core::{run_multispin_pod_with_opts, MultiSpinPodConfig, MultiSpinPodRunOpts};
use tpu_ising_device::cost::{
    step_time, throughput_flips_per_ns, ExecutionMode, StepConfig, Variant,
};
use tpu_ising_device::mesh::{MeshConfig, MeshRuntime, Torus};
use tpu_ising_device::params::TpuV3Params;

/// Paper rows: (topology, per-core dims /128, step ms, flips/ns).
#[allow(clippy::type_complexity)]
const PAPER: [((usize, usize), (usize, usize), f64, f64); 9] = [
    ((2, 4), (896, 448), 330.14, 159.37),
    ((4, 4), (448, 448), 162.55, 323.67),
    ((4, 8), (448, 224), 81.81, 643.12),
    ((8, 8), (224, 224), 41.33, 1272.94),
    ((8, 16), (224, 112), 21.68, 2427.26),
    ((16, 16), (112, 112), 11.08, 4749.35),
    ((16, 32), (112, 56), 6.13, 8585.73),
    ((32, 32), (56, 56), 3.84, 13704.96),
    ((32, 64), (56, 28), 2.86, 18396.28),
];

#[derive(serde::Serialize)]
struct Row {
    topology: String,
    cores: usize,
    model_step_ms: f64,
    model_flips_per_ns: f64,
    model_cp_share_pct: f64,
    paper_step_ms: f64,
    paper_flips_per_ns: f64,
    ideal_flips_per_ns: f64,
}

/// One measured row. `relative_throughput` is the aggregate throughput
/// relative to the smallest topology measured — on a fixed lattice this is
/// flat for an ideal scheduler and *drops* as per-core work shrinks below
/// the collective overhead (the host-scale analogue of the paper's Fig. 9
/// knee past ~1000 cores).
struct MeasuredRow {
    topology: String,
    cores: usize,
    per_core: String,
    sweep_ms: f64,
    aggregate_flips_per_ns: f64,
    relative_throughput: f64,
}

impl MeasuredRow {
    /// Hand-assembled, like every committed measurement artifact: the
    /// file must not depend on which serializer is linked.
    fn to_json(&self) -> String {
        format!(
            "{{\"topology\": \"{}\", \"cores\": {}, \"per_core\": \"{}\", \
             \"sweep_ms\": {:.3}, \"aggregate_flips_per_ns\": {:.4}, \
             \"relative_throughput\": {:.3}}}",
            self.topology,
            self.cores,
            self.per_core,
            self.sweep_ms,
            self.aggregate_flips_per_ns,
            self.relative_throughput
        )
    }
}

/// Strong-scaling topologies over the fixed 256×256 measured lattice:
/// 4 → 2048 logical cores, per-core windows 128×128 down to 8×4.
const MEASURED: [(usize, usize); 6] = [(2, 2), (4, 4), (8, 8), (16, 16), (32, 32), (32, 64)];
const MEASURED_L: usize = 256;

fn measure(nx: usize, ny: usize, sweeps: usize) -> (f64, f64) {
    let cfg = MultiSpinPodConfig {
        torus: Torus::new(nx, ny),
        per_core_h: MEASURED_L / nx,
        per_core_w: MEASURED_L / ny,
        beta: 0.6,
        seed: 99,
    };
    let opts = MultiSpinPodRunOpts {
        mesh: MeshConfig { runtime: MeshRuntime::coop(), ..MeshConfig::default() },
        ..MultiSpinPodRunOpts::default()
    };
    let _ = run_multispin_pod_with_opts(&cfg, 1, &opts).expect("warmup failed");
    let t0 = Instant::now();
    let _ = run_multispin_pod_with_opts(&cfg, sweeps, &opts).expect("measured run failed");
    let secs = t0.elapsed().as_secs_f64();
    let sweep_ms = secs * 1e3 / sweeps as f64;
    let flips_per_ns = (cfg.flips_per_sweep() * sweeps as u64) as f64 / (secs * 1e9);
    (sweep_ms, flips_per_ns)
}

fn main() {
    let p = TpuV3Params::v3();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut base_per_core = 0.0;
    for (i, &((tx, ty), (h, w), paper_ms, paper_f)) in PAPER.iter().enumerate() {
        let cores = tx * ty;
        let cfg = StepConfig {
            per_core_h: h * 128,
            per_core_w: w * 128,
            dtype_bytes: 2,
            variant: Variant::Conv,
            mode: ExecutionMode::Distributed { cores },
        };
        let bd = step_time(&p, &cfg);
        let f = throughput_flips_per_ns(&p, &cfg);
        if i == 0 {
            base_per_core = f / cores as f64;
        }
        let ideal = base_per_core * cores as f64;
        let cp_share = bd.t_cp / bd.total() * 100.0;
        rows.push(vec![
            format!("[{tx},{ty}]"),
            cores.to_string(),
            format!("{:.2}", bd.total() * 1e3),
            format!("{f:.1}"),
            format!("{cp_share:.1}"),
            format!("{paper_ms:.2}"),
            format!("{paper_f:.1}"),
            pct_dev(f, paper_f),
        ]);
        json.push(Row {
            topology: format!("[{tx},{ty}]"),
            cores,
            model_step_ms: bd.total() * 1e3,
            model_flips_per_ns: f,
            model_cp_share_pct: cp_share,
            paper_step_ms: paper_ms,
            paper_flips_per_ns: paper_f,
            ideal_flips_per_ns: ideal,
        });
    }
    print_table(
        "Table 7: strong scaling of (128x1792)^2, conv variant",
        &["topology", "cores", "step ms", "flips/ns", "cp %", "paper ms", "paper f/ns", "dev"],
        &rows,
    );
    let eff_512 = json[6].model_flips_per_ns / json[6].ideal_flips_per_ns * 100.0;
    let eff_2048 = json[8].model_flips_per_ns / json[8].ideal_flips_per_ns * 100.0;
    println!(
        "\nparallel efficiency vs ideal: {eff_512:.0}% at 512 cores, {eff_2048:.0}% at 2048 cores \
         (the paper's knee past ~1000 cores)"
    );

    // ---- measured: coop-scheduler strong scaling on this host ----

    let sweeps = if quick_mode() { 2 } else { 8 };
    let mut measured = Vec::new();
    let mut printable = Vec::new();
    let mut base = 0.0;
    for (i, &(nx, ny)) in MEASURED.iter().enumerate() {
        let (sweep_ms, flips) = measure(nx, ny, sweeps);
        if i == 0 {
            base = flips;
        }
        let rel = flips / base;
        printable.push(vec![
            format!("[{nx},{ny}]"),
            (nx * ny).to_string(),
            format!("{}x{}", MEASURED_L / nx, MEASURED_L / ny),
            format!("{sweep_ms:.2}"),
            format!("{flips:.3}"),
            format!("{rel:.2}"),
        ]);
        measured.push(MeasuredRow {
            topology: format!("[{nx},{ny}]"),
            cores: nx * ny,
            per_core: format!("{}x{}", MEASURED_L / nx, MEASURED_L / ny),
            sweep_ms,
            aggregate_flips_per_ns: flips,
            relative_throughput: rel,
        });
    }
    print_table(
        &format!(
            "Table 7 (measured): {MEASURED_L}x{MEASURED_L} multispin on the coop scheduler, \
             {sweeps} sweeps"
        ),
        &["topology", "cores", "per-core", "sweep ms", "agg flips/ns", "rel"],
        &printable,
    );
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\nmeasured on {host} worker thread(s): aggregate throughput is bounded by the host, so \
         the interesting column is `rel` — how much scheduler + collective overhead grows as \
         the same lattice splits across 4 -> 2048 logical cores (the Fig. 9 bend)."
    );
    write_json("table7", &json);
    write_measured(&measured, sweeps, host);
}

/// Write the measured section as `results/table7_measured.json`,
/// hand-assembled so the committed artifact never depends on the linked
/// serializer (the model rows above still go through [`write_json`]).
fn write_measured(rows: &[MeasuredRow], sweeps: usize, host_threads: usize) {
    let md = run_metadata();
    let mut out = format!(
        "{{\n  {},\n  \"engine\": \"multispin\",\n  \"mesh_runtime\": \"coop\",\n  \
         \"global_lattice\": \"{MEASURED_L}x{MEASURED_L}\",\n  \"sweeps\": {sweeps},\n  \
         \"host_threads\": {host_threads},\n  \"rows\": [\n",
        md.to_json_fields()
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!("    {}{}\n", r.to_json(), sep));
    }
    out.push_str("  ]\n}\n");
    let path = tpu_ising_bench::results_dir().join("table7_measured.json");
    match std::fs::write(&path, &out) {
        Ok(()) => println!("[measured rows written to {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
