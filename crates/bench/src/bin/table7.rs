//! **Table 7 / Fig. 9 input** — strong scaling of the conv implementation
//! on a fixed `(128·1792)²` lattice, 8 → 2048 cores.
//!
//! The paper: near-linear speedup until ~1000 cores, after which the
//! collective-permute overhead becomes a significant share of the step.

use tpu_ising_bench::{pct_dev, print_table, write_json};
use tpu_ising_device::cost::{
    step_time, throughput_flips_per_ns, ExecutionMode, StepConfig, Variant,
};
use tpu_ising_device::params::TpuV3Params;

/// Paper rows: (topology, per-core dims /128, step ms, flips/ns).
#[allow(clippy::type_complexity)]
const PAPER: [((usize, usize), (usize, usize), f64, f64); 9] = [
    ((2, 4), (896, 448), 330.14, 159.37),
    ((4, 4), (448, 448), 162.55, 323.67),
    ((4, 8), (448, 224), 81.81, 643.12),
    ((8, 8), (224, 224), 41.33, 1272.94),
    ((8, 16), (224, 112), 21.68, 2427.26),
    ((16, 16), (112, 112), 11.08, 4749.35),
    ((16, 32), (112, 56), 6.13, 8585.73),
    ((32, 32), (56, 56), 3.84, 13704.96),
    ((32, 64), (56, 28), 2.86, 18396.28),
];

#[derive(serde::Serialize)]
struct Row {
    topology: String,
    cores: usize,
    model_step_ms: f64,
    model_flips_per_ns: f64,
    model_cp_share_pct: f64,
    paper_step_ms: f64,
    paper_flips_per_ns: f64,
    ideal_flips_per_ns: f64,
}

fn main() {
    let p = TpuV3Params::v3();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut base_per_core = 0.0;
    for (i, &((tx, ty), (h, w), paper_ms, paper_f)) in PAPER.iter().enumerate() {
        let cores = tx * ty;
        let cfg = StepConfig {
            per_core_h: h * 128,
            per_core_w: w * 128,
            dtype_bytes: 2,
            variant: Variant::Conv,
            mode: ExecutionMode::Distributed { cores },
        };
        let bd = step_time(&p, &cfg);
        let f = throughput_flips_per_ns(&p, &cfg);
        if i == 0 {
            base_per_core = f / cores as f64;
        }
        let ideal = base_per_core * cores as f64;
        let cp_share = bd.t_cp / bd.total() * 100.0;
        rows.push(vec![
            format!("[{tx},{ty}]"),
            cores.to_string(),
            format!("{:.2}", bd.total() * 1e3),
            format!("{f:.1}"),
            format!("{cp_share:.1}"),
            format!("{paper_ms:.2}"),
            format!("{paper_f:.1}"),
            pct_dev(f, paper_f),
        ]);
        json.push(Row {
            topology: format!("[{tx},{ty}]"),
            cores,
            model_step_ms: bd.total() * 1e3,
            model_flips_per_ns: f,
            model_cp_share_pct: cp_share,
            paper_step_ms: paper_ms,
            paper_flips_per_ns: paper_f,
            ideal_flips_per_ns: ideal,
        });
    }
    print_table(
        "Table 7: strong scaling of (128x1792)^2, conv variant",
        &["topology", "cores", "step ms", "flips/ns", "cp %", "paper ms", "paper f/ns", "dev"],
        &rows,
    );
    let eff_512 = json[6].model_flips_per_ns / json[6].ideal_flips_per_ns * 100.0;
    let eff_2048 = json[8].model_flips_per_ns / json[8].ideal_flips_per_ns * 100.0;
    println!(
        "\nparallel efficiency vs ideal: {eff_512:.0}% at 512 cores, {eff_2048:.0}% at 2048 cores \
         (the paper's knee past ~1000 cores)"
    );
    write_json("table7", &json);
}
