//! **Table 6** — weak scaling of the conv-based implementation (appendix),
//! three packing densities, up to a full TPU v3 pod and beyond.
//!
//! Loose-packed \[224,224\]·128, dense-packed \[448,448\]·128 and
//! superdense-packed \[896,448\]·128 per core; the paper reports essentially
//! flat step times (≈41 / 164 / 332 ms) and linear throughput to 2048+
//! cores.

use tpu_ising_bench::{ms, pct_dev, print_table, write_json};
use tpu_ising_device::cost::{
    step_time, throughput_flips_per_ns, ExecutionMode, StepConfig, Variant,
};
use tpu_ising_device::params::TpuV3Params;

/// (density label, per-core h, per-core w, rows: (topology, paper ms, paper flips/ns)).
struct Section {
    label: &'static str,
    h: usize,
    w: usize,
    rows: &'static [((usize, usize), f64, f64)],
}

const SECTIONS: [Section; 3] = [
    Section {
        label: "loose [224,224]x128",
        h: 224,
        w: 224,
        rows: &[
            ((2, 2), 40.78, 80.64),
            ((3, 3), 40.89, 180.93),
            ((4, 4), 40.91, 321.52),
            ((6, 6), 40.87, 724.05),
            ((8, 8), 41.06, 1281.47),
            ((11, 11), 41.06, 2422.60),
            ((16, 16), 41.10, 5120.02),
            ((23, 23), 41.16, 10566.16),
            ((32, 32), 41.15, 20456.20),
            ((45, 45), 41.46, 40456.29),
        ],
    },
    Section {
        label: "dense [448,448]x128",
        h: 448,
        w: 448,
        rows: &[
            ((2, 2), 164.08, 80.17),
            ((3, 3), 164.06, 180.39),
            ((4, 4), 164.14, 320.54),
            ((6, 6), 164.22, 720.85),
            ((8, 8), 164.34, 1280.59),
            ((11, 11), 164.36, 2420.88),
            ((16, 16), 164.39, 5120.83),
            ((23, 23), 164.45, 10577.86),
            ((32, 32), 164.57, 20460.92),
            ((45, 45), 164.75, 40418.07),
        ],
    },
    Section {
        label: "superdense [896,448]x128",
        h: 896,
        w: 448,
        rows: &[
            ((2, 4), 331.80, 158.57),
            ((4, 8), 332.08, 633.75),
            ((8, 16), 332.45, 2532.18),
            ((16, 32), 332.72, 10120.29),
            ((32, 64), 333.36, 40403.46),
        ],
    },
];

#[derive(serde::Serialize)]
struct Row {
    density: String,
    topology: String,
    cores: usize,
    model_step_ms: f64,
    model_flips_per_ns: f64,
    paper_step_ms: f64,
    paper_flips_per_ns: f64,
}

fn main() {
    let p = TpuV3Params::v3();
    let mut json = Vec::new();
    for s in &SECTIONS {
        let mut rows = Vec::new();
        for &((tx, ty), paper_ms, paper_f) in s.rows {
            let cores = tx * ty;
            let cfg = StepConfig {
                per_core_h: s.h * 128,
                per_core_w: s.w * 128,
                dtype_bytes: 2,
                variant: Variant::Conv,
                mode: ExecutionMode::Distributed { cores },
            };
            let bd = step_time(&p, &cfg);
            let f = throughput_flips_per_ns(&p, &cfg);
            rows.push(vec![
                format!("[{tx},{ty}]"),
                cores.to_string(),
                ms(bd.total()),
                format!("{f:.1}"),
                format!("{paper_ms:.2}"),
                format!("{paper_f:.1}"),
                pct_dev(f, paper_f),
            ]);
            json.push(Row {
                density: s.label.into(),
                topology: format!("[{tx},{ty}]"),
                cores,
                model_step_ms: bd.total() * 1e3,
                model_flips_per_ns: f,
                paper_step_ms: paper_ms,
                paper_flips_per_ns: paper_f,
            });
        }
        print_table(
            &format!("Table 6 ({}): conv-variant weak scaling", s.label),
            &["topology", "cores", "step ms", "flips/ns", "paper ms", "paper f/ns", "dev"],
            &rows,
        );
    }
    write_json("table6", &json);
}
