//! **Table 6** — weak scaling of the conv-based implementation (appendix),
//! three packing densities, up to a full TPU v3 pod and beyond.
//!
//! Loose-packed \[224,224\]·128, dense-packed \[448,448\]·128 and
//! superdense-packed \[896,448\]·128 per core; the paper reports essentially
//! flat step times (≈41 / 164 / 332 ms) and linear throughput to 2048+
//! cores.
//!
//! The **model** sections replay those configurations through the
//! calibrated cost model. The **measured** section weak-scales for real: a
//! fixed 16×16 multispin window per logical core, topologies 2×2 → 45×45
//! (= 2025 cores, the paper's largest), every run on the cooperative
//! work-stealing scheduler. One host executes all the cores, so total
//! work grows with the pod; the scheduler's weak-scaling health is the
//! *aggregate* throughput staying flat as the task count grows 500×.

use std::time::Instant;

use tpu_ising_bench::{ms, pct_dev, print_table, quick_mode, run_metadata, write_json};
use tpu_ising_core::{run_multispin_pod_with_opts, MultiSpinPodConfig, MultiSpinPodRunOpts};
use tpu_ising_device::cost::{
    step_time, throughput_flips_per_ns, ExecutionMode, StepConfig, Variant,
};
use tpu_ising_device::mesh::{MeshConfig, MeshRuntime, Torus};
use tpu_ising_device::params::TpuV3Params;

/// (density label, per-core h, per-core w, rows: (topology, paper ms, paper flips/ns)).
struct Section {
    label: &'static str,
    h: usize,
    w: usize,
    rows: &'static [((usize, usize), f64, f64)],
}

const SECTIONS: [Section; 3] = [
    Section {
        label: "loose [224,224]x128",
        h: 224,
        w: 224,
        rows: &[
            ((2, 2), 40.78, 80.64),
            ((3, 3), 40.89, 180.93),
            ((4, 4), 40.91, 321.52),
            ((6, 6), 40.87, 724.05),
            ((8, 8), 41.06, 1281.47),
            ((11, 11), 41.06, 2422.60),
            ((16, 16), 41.10, 5120.02),
            ((23, 23), 41.16, 10566.16),
            ((32, 32), 41.15, 20456.20),
            ((45, 45), 41.46, 40456.29),
        ],
    },
    Section {
        label: "dense [448,448]x128",
        h: 448,
        w: 448,
        rows: &[
            ((2, 2), 164.08, 80.17),
            ((3, 3), 164.06, 180.39),
            ((4, 4), 164.14, 320.54),
            ((6, 6), 164.22, 720.85),
            ((8, 8), 164.34, 1280.59),
            ((11, 11), 164.36, 2420.88),
            ((16, 16), 164.39, 5120.83),
            ((23, 23), 164.45, 10577.86),
            ((32, 32), 164.57, 20460.92),
            ((45, 45), 164.75, 40418.07),
        ],
    },
    Section {
        label: "superdense [896,448]x128",
        h: 896,
        w: 448,
        rows: &[
            ((2, 4), 331.80, 158.57),
            ((4, 8), 332.08, 633.75),
            ((8, 16), 332.45, 2532.18),
            ((16, 32), 332.72, 10120.29),
            ((32, 64), 333.36, 40403.46),
        ],
    },
];

#[derive(serde::Serialize)]
struct Row {
    density: String,
    topology: String,
    cores: usize,
    model_step_ms: f64,
    model_flips_per_ns: f64,
    paper_step_ms: f64,
    paper_flips_per_ns: f64,
}

/// One measured row. `efficiency` is the aggregate throughput relative to
/// the 2×2 baseline: per-core work is fixed, so a lossless scheduler holds
/// it at 1.0 no matter how many logical cores the host multiplexes.
struct MeasuredRow {
    topology: String,
    cores: usize,
    global_lattice: String,
    sweep_ms: f64,
    aggregate_flips_per_ns: f64,
    efficiency: f64,
}

impl MeasuredRow {
    /// Hand-assembled, like every committed measurement artifact: the
    /// file must not depend on which serializer is linked.
    fn to_json(&self) -> String {
        format!(
            "{{\"topology\": \"{}\", \"cores\": {}, \"global_lattice\": \"{}\", \
             \"sweep_ms\": {:.3}, \"aggregate_flips_per_ns\": {:.4}, \"efficiency\": {:.3}}}",
            self.topology,
            self.cores,
            self.global_lattice,
            self.sweep_ms,
            self.aggregate_flips_per_ns,
            self.efficiency
        )
    }
}

/// Weak-scaling topologies with a fixed 32×32 multispin window per core,
/// matching the paper's table 6 core counts where the host can hold them
/// (45×45 = 2025 cores is the paper's full-pod-plus row).
const MEASURED: [(usize, usize); 6] = [(2, 2), (4, 4), (8, 8), (16, 16), (32, 32), (45, 45)];
const PER_CORE: usize = 32;

fn measure(nx: usize, ny: usize, sweeps: usize) -> (f64, f64) {
    let cfg = MultiSpinPodConfig {
        torus: Torus::new(nx, ny),
        per_core_h: PER_CORE,
        per_core_w: PER_CORE,
        beta: 0.6,
        seed: 99,
    };
    let opts = MultiSpinPodRunOpts {
        mesh: MeshConfig { runtime: MeshRuntime::coop(), ..MeshConfig::default() },
        ..MultiSpinPodRunOpts::default()
    };
    let _ = run_multispin_pod_with_opts(&cfg, 1, &opts).expect("warmup failed");
    let t0 = Instant::now();
    let _ = run_multispin_pod_with_opts(&cfg, sweeps, &opts).expect("measured run failed");
    let secs = t0.elapsed().as_secs_f64();
    let sweep_ms = secs * 1e3 / sweeps as f64;
    let flips_per_ns = (cfg.flips_per_sweep() * sweeps as u64) as f64 / (secs * 1e9);
    (sweep_ms, flips_per_ns)
}

fn main() {
    let p = TpuV3Params::v3();
    let mut json = Vec::new();
    for s in &SECTIONS {
        let mut rows = Vec::new();
        for &((tx, ty), paper_ms, paper_f) in s.rows {
            let cores = tx * ty;
            let cfg = StepConfig {
                per_core_h: s.h * 128,
                per_core_w: s.w * 128,
                dtype_bytes: 2,
                variant: Variant::Conv,
                mode: ExecutionMode::Distributed { cores },
            };
            let bd = step_time(&p, &cfg);
            let f = throughput_flips_per_ns(&p, &cfg);
            rows.push(vec![
                format!("[{tx},{ty}]"),
                cores.to_string(),
                ms(bd.total()),
                format!("{f:.1}"),
                format!("{paper_ms:.2}"),
                format!("{paper_f:.1}"),
                pct_dev(f, paper_f),
            ]);
            json.push(Row {
                density: s.label.into(),
                topology: format!("[{tx},{ty}]"),
                cores,
                model_step_ms: bd.total() * 1e3,
                model_flips_per_ns: f,
                paper_step_ms: paper_ms,
                paper_flips_per_ns: paper_f,
            });
        }
        print_table(
            &format!("Table 6 ({}): conv-variant weak scaling", s.label),
            &["topology", "cores", "step ms", "flips/ns", "paper ms", "paper f/ns", "dev"],
            &rows,
        );
    }

    // ---- measured: coop-scheduler weak scaling on this host ----

    let sweeps = if quick_mode() { 2 } else { 6 };
    let mut measured = Vec::new();
    let mut printable = Vec::new();
    let mut base = 0.0;
    for (i, &(nx, ny)) in MEASURED.iter().enumerate() {
        let (sweep_ms, flips) = measure(nx, ny, sweeps);
        if i == 0 {
            base = flips;
        }
        let eff = flips / base;
        printable.push(vec![
            format!("[{nx},{ny}]"),
            (nx * ny).to_string(),
            format!("{}x{}", nx * PER_CORE, ny * PER_CORE),
            format!("{sweep_ms:.2}"),
            format!("{flips:.3}"),
            format!("{eff:.2}"),
        ]);
        measured.push(MeasuredRow {
            topology: format!("[{nx},{ny}]"),
            cores: nx * ny,
            global_lattice: format!("{}x{}", nx * PER_CORE, ny * PER_CORE),
            sweep_ms,
            aggregate_flips_per_ns: flips,
            efficiency: eff,
        });
    }
    print_table(
        &format!(
            "Table 6 (measured): {PER_CORE}x{PER_CORE} multispin per core on the coop \
             scheduler, {sweeps} sweeps"
        ),
        &["topology", "cores", "global", "sweep ms", "agg flips/ns", "eff"],
        &printable,
    );
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\nmeasured on {host} worker thread(s): per-core work is fixed, so flat `eff` across \
         4 -> 2025 logical cores means the scheduler adds no per-task overhead as the pod \
         grows (the paper's flat step-time columns, host-scale)."
    );
    write_json("table6", &json);
    write_measured(&measured, sweeps, host);
}

/// Write the measured section as `results/table6_measured.json`,
/// hand-assembled so the committed artifact never depends on the linked
/// serializer (the model rows above still go through [`write_json`]).
fn write_measured(rows: &[MeasuredRow], sweeps: usize, host_threads: usize) {
    let md = run_metadata();
    let mut out = format!(
        "{{\n  {},\n  \"engine\": \"multispin\",\n  \"mesh_runtime\": \"coop\",\n  \
         \"per_core\": \"{PER_CORE}x{PER_CORE}\",\n  \"sweeps\": {sweeps},\n  \
         \"host_threads\": {host_threads},\n  \"rows\": [\n",
        md.to_json_fields()
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!("    {}{}\n", r.to_json(), sep));
    }
    out.push_str("  ]\n}\n");
    let path = tpu_ising_bench::results_dir().join("table6_measured.json");
    match std::fs::write(&path, &out) {
        Ok(()) => println!("[measured rows written to {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
