//! **Figure 8** — throughput vs problem size across implementations.
//!
//! Series: single-core TPU (compact, Table 1's sweep), multi-core compact
//! (Table 2), conv-variant pods at the three packing densities (Table 6),
//! and the published GPU/FPGA reference points the paper prints. The
//! DGX-2/2H curves in the paper come from reference \[25\] without printed
//! values; they are omitted rather than guessed (see EXPERIMENTS.md).

use tpu_ising_bench::{print_table, write_json};
use tpu_ising_device::cost::{throughput_flips_per_ns, ExecutionMode, StepConfig, Variant};
use tpu_ising_device::params::TpuV3Params;

#[derive(serde::Serialize)]
struct Point {
    series: String,
    lattice_side: u64,
    spins: f64,
    flips_per_ns: f64,
}

fn main() {
    let p = TpuV3Params::v3();
    let mut pts = Vec::new();

    // single-core compact sweep over Table 1 sizes
    for k in [20usize, 40, 80, 160, 320, 640] {
        let cfg = StepConfig {
            per_core_h: k * 128,
            per_core_w: k * 128,
            dtype_bytes: 2,
            variant: Variant::Compact,
            mode: ExecutionMode::SingleCore,
        };
        pts.push(Point {
            series: "TPU v3 single core (compact)".into(),
            lattice_side: (k * 128) as u64,
            spins: ((k * 128) as f64).powi(2),
            flips_per_ns: throughput_flips_per_ns(&p, &cfg),
        });
    }
    // compact pod weak scaling (Table 2 shapes)
    for n in [1usize, 2, 4, 8, 16] {
        let cores = n * n * 2;
        let cfg = StepConfig {
            per_core_h: 896 * 128,
            per_core_w: 448 * 128,
            dtype_bytes: 2,
            variant: Variant::Compact,
            mode: ExecutionMode::Distributed { cores },
        };
        pts.push(Point {
            series: "TPU v3 pod (compact)".into(),
            lattice_side: (512 * 128 * n) as u64,
            spins: cfg.total_spins(),
            flips_per_ns: throughput_flips_per_ns(&p, &cfg),
        });
    }
    // conv pods, three densities (Table 6 shapes)
    for &(label, h, w, topos) in &[
        (
            "TPU v3 pod (conv, loose)",
            224usize,
            224usize,
            &[(2usize, 2usize), (4, 4), (8, 8), (16, 16), (32, 32), (45, 45)][..],
        ),
        (
            "TPU v3 pod (conv, dense)",
            448,
            448,
            &[(2, 2), (4, 4), (8, 8), (16, 16), (32, 32), (45, 45)][..],
        ),
        (
            "TPU v3 pod (conv, superdense)",
            896,
            448,
            &[(2, 4), (4, 8), (8, 16), (16, 32), (32, 64)][..],
        ),
    ] {
        for &(tx, ty) in topos {
            let cfg = StepConfig {
                per_core_h: h * 128,
                per_core_w: w * 128,
                dtype_bytes: 2,
                variant: Variant::Conv,
                mode: ExecutionMode::Distributed { cores: tx * ty },
            };
            pts.push(Point {
                series: label.into(),
                lattice_side: (cfg.total_spins().sqrt()) as u64,
                spins: cfg.total_spins(),
                flips_per_ns: throughput_flips_per_ns(&p, &cfg),
            });
        }
    }
    // published references the paper prints
    for (series, side, f) in [
        (
            "GPU GT200 (Preis 2009)",
            10_000u64,
            tpu_ising_baseline::published::GPU_PREIS_2009_FLIPS_PER_NS,
        ),
        ("Tesla V100 (paper's port)", 81_920, tpu_ising_baseline::published::V100_FLIPS_PER_NS),
        (
            "64 GPUs + MPI (Block 2010)",
            800_000,
            tpu_ising_baseline::published::MULTI_GPU_64_FLIPS_PER_NS,
        ),
        ("FPGA (Ortega-Zamorano 2016)", 1_024, tpu_ising_baseline::published::FPGA_FLIPS_PER_NS),
    ] {
        pts.push(Point {
            series: series.into(),
            lattice_side: side,
            spins: (side as f64).powi(2),
            flips_per_ns: f,
        });
    }

    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|pt| {
            vec![
                pt.series.clone(),
                format!("{}", pt.lattice_side),
                format!("{:.3e}", pt.spins),
                format!("{:.2}", pt.flips_per_ns),
            ]
        })
        .collect();
    print_table(
        "Fig 8: throughput vs problem size (all series)",
        &["series", "lattice side", "spins", "flips/ns"],
        &rows,
    );
    println!("\nnote: DGX-2 / DGX-2H series of the paper's Fig. 8 are from [25] and not");
    println!("printed numerically in the paper; omitted here rather than fabricated.");
    write_json("fig8", &pts);
}
