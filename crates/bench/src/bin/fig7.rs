//! **Figure 7** — correctness of the conv-based (new) implementation.
//!
//! Same protocol as Fig. 4 but driving the appendix conv variant, which the
//! paper re-validates after the algorithm change (their runs: 512² and
//! 2048² lattices with 0.5–2M burn-in sweeps; ours are scaled down). Also
//! cross-checks the conv chain against the matmul-based compact chain at
//! identical site-keyed randomness — they must agree bit-for-bit, which is
//! a stronger statement than curve overlap.

use tpu_ising_bench::{init_progress, print_table, quick_mode, write_json};
use tpu_ising_core::{
    onsager, random_plane, run_chain_labeled, CompactIsing, ConvIsing, Randomness, Sweeper,
    T_CRITICAL,
};

#[derive(serde::Serialize)]
struct Point {
    lattice: usize,
    t_over_tc: f64,
    mean_abs_m: f64,
    err_abs_m: f64,
    binder: f64,
    onsager_m: f64,
}

fn main() {
    init_progress(); // --progress: heartbeat lines on stderr
    let quick = quick_mode();
    let sizes: &[usize] = if quick { &[32] } else { &[32, 64] };
    let temps: Vec<f64> = if quick {
        vec![0.5, 0.95, 1.0, 1.05, 1.5]
    } else {
        vec![0.5, 0.8, 0.9, 0.95, 1.0, 1.05, 1.1, 1.2, 1.5]
    };
    let (burn, samples) = if quick { (200, 400) } else { (500, 2000) };

    // Exact agreement with the compact implementation (site-keyed RNG).
    let init = random_plane::<f32>(99, 32, 32);
    let beta = 1.0 / T_CRITICAL;
    let mut conv = ConvIsing::new(init.clone(), beta, Randomness::site_keyed(7));
    let mut comp = CompactIsing::from_plane(&init, 8, beta, Randomness::site_keyed(7));
    for _ in 0..20 {
        conv.sweep();
        comp.sweep();
    }
    assert_eq!(conv.plane(), &comp.to_plane(), "conv and compact diverged");
    println!("conv == compact: 20 sweeps at Tc bit-identical under site-keyed RNG ✓");

    let mut points = Vec::new();
    for &l in sizes {
        for &tt in &temps {
            let t = tt * T_CRITICAL;
            let init = if tt < 1.0 {
                tpu_ising_core::cold_plane::<f32>(l, l)
            } else {
                random_plane::<f32>(4321 + l as u64, l, l)
            };
            let mut sim = ConvIsing::new(
                init,
                1.0 / t,
                Randomness::bulk(l as u64 * 13 + (tt * 100.0) as u64),
            );
            let label = format!("fig7 L={l} T/Tc={tt:.3}");
            let stats = run_chain_labeled(&mut sim, burn, samples, &label);
            points.push(Point {
                lattice: l,
                t_over_tc: tt,
                mean_abs_m: stats.mean_abs_m,
                err_abs_m: stats.err_abs_m,
                binder: stats.binder,
                onsager_m: onsager::magnetization(t),
            });
        }
        println!("  L = {l} done");
    }

    for &l in sizes {
        let rows: Vec<Vec<String>> = points
            .iter()
            .filter(|p| p.lattice == l)
            .map(|p| {
                vec![
                    format!("{:.3}", p.t_over_tc),
                    format!("{:.4}", p.mean_abs_m),
                    format!("{:.4}", p.err_abs_m),
                    format!("{:.4}", p.binder),
                    format!("{:.4}", p.onsager_m),
                ]
            })
            .collect();
        print_table(
            &format!("Fig 7, L = {l}: conv-variant physics"),
            &["T/Tc", "|m|", "err", "U4", "Onsager m"],
            &rows,
        );
    }
    write_json("fig7", &points);
}
