//! **Table 3** — percentage time breakdown of the computation.
//!
//! Two independent views of the same program: (a) the calibrated device
//! model's step assembly, and (b) the profiler-style trace produced by
//! walking the actual HLO graph of the compact update with the per-op cost
//! analyzer. The paper's profiler reports ~59.6 % MXU / 12 % VPU / 28.1 %
//! data formatting / ≤0.11 % collective permute, stable across scales.

use tpu_ising_bench::{print_table, write_json};
use tpu_ising_core::distributed::{run_pod, PodConfig, PodRng};
use tpu_ising_core::hlo_frontend::build_compact_color_step;
use tpu_ising_core::{run_multispin_pod, Color, KernelBackend, MultiSpinPodConfig, REPLICAS};
use tpu_ising_device::cost::{step_time, ExecutionMode, StepConfig, Variant};
use tpu_ising_device::mesh::Torus;
use tpu_ising_device::params::TpuV3Params;
use tpu_ising_hlo::graph::Dtype;
use tpu_ising_obs as obs;

/// Measure heap traffic so the per-sweep allocation figure is real.
#[global_allocator]
static ALLOC: obs::alloc::CountingAllocator = obs::alloc::CountingAllocator;

/// Paper rows: (cores, mxu %, vpu %, fmt %, cp %).
const PAPER: [(usize, f64, f64, f64, f64); 5] = [
    (2, 59.6, 12.0, 28.2, 0.024),
    (8, 59.6, 12.0, 28.1, 0.038),
    (32, 59.5, 11.9, 28.2, 0.063),
    (128, 59.5, 12.0, 28.1, 0.08),
    (512, 59.4, 12.0, 28.1, 0.11),
];

#[derive(serde::Serialize)]
struct Row {
    cores: usize,
    mxu_pct: f64,
    vpu_pct: f64,
    fmt_pct: f64,
    cp_pct: f64,
}

fn main() {
    let p = TpuV3Params::v3();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &(cores, pm, pv, pf, pc) in &PAPER {
        let cfg = StepConfig {
            per_core_h: 896 * 128,
            per_core_w: 448 * 128,
            dtype_bytes: 2,
            variant: Variant::Compact,
            mode: ExecutionMode::Distributed { cores },
        };
        let bd = step_time(&p, &cfg);
        let (mxu, vpu, fmt, cp) = bd.percentages();
        rows.push(vec![
            cores.to_string(),
            format!("{mxu:.1}"),
            format!("{vpu:.1}"),
            format!("{fmt:.1}"),
            format!("{cp:.3}"),
            format!("{pm}/{pv}/{pf}/{pc}"),
        ]);
        json.push(Row { cores, mxu_pct: mxu, vpu_pct: vpu, fmt_pct: fmt, cp_pct: cp });
    }
    print_table(
        "Table 3: time breakdown (device model), per-core [896x128, 448x128]",
        &["cores", "MXU %", "VPU %", "fmt %", "cp %", "paper (mxu/vpu/fmt/cp)"],
        &rows,
    );

    // Second view: walk the real HLO graph of one color update with the
    // per-op cost analyzer. The graph is fusion-optimized (rolled slices
    // are charged as materialized copies, element-wise chains fuse), so
    // its formatting share differs from the measured TF program — the
    // MXU-dominance and tiny cp share are the stable fingerprints.
    let built = build_compact_color_step(448, 224, 128, 0.4407, Color::Black, Dtype::Bf16);
    let trace = tpu_ising_hlo::cost::analyze(&built.graph, &built.outputs, 512);
    let b = trace.breakdown();
    let (mxu, vpu, fmt, cp) = b.percentages();
    println!(
        "\nHLO-graph trace view (one black half-sweep, [448,224,128,128] quarters, single-core graph):"
    );
    println!("  MXU {mxu:.1}%  VPU {vpu:.1}%  fmt {fmt:.1}%  collective-permute {cp:.3}%");
    println!(
        "  ({} spans recorded; modeled half-sweep {:.1} ms)",
        trace.len(),
        b.step_seconds() * 1e3
    );

    // Third view: *measured* spans from a real (CPU-thread) SPMD pod run.
    // The absolute shares differ from TPU hardware — CPU matmul vs channel
    // send is nothing like MXU vs ICI — but the span taxonomy is the same,
    // so the table exercises the whole measured pipeline end to end.
    obs::reset();
    obs::enable();
    let cfg = PodConfig {
        torus: Torus::new(2, 2),
        per_core_h: 32,
        per_core_w: 32,
        tile: 4,
        beta: 1.0 / tpu_ising_core::T_CRITICAL,
        seed: 7,
        rng: PodRng::BulkSplit,
        backend: KernelBackend::Band,
    };
    let sweeps = 10;
    let alloc0 = obs::alloc::allocated_bytes();
    let _ = run_pod::<f32>(&cfg, sweeps).expect("pod run failed");
    let alloc_per_sweep = (obs::alloc::allocated_bytes() - alloc0) / sweeps as u64;
    obs::disable();
    let snap = obs::snapshot();
    let mb = snap.breakdown();
    let (mmxu, mvpu, mfmt, mcp) = mb.percentages();
    println!("\nMeasured view (2x2-core SPMD threads, 64x64 lattice, 10 sweeps):");
    println!("  MXU {mmxu:.1}%  VPU {mvpu:.1}%  fmt {mfmt:.1}%  collective-permute {mcp:.3}%");
    println!(
        "  (communication fraction {:.1}% of kinded step time; {} spans on {} core tracks)",
        mb.comm_fraction() * 100.0,
        snap.spans.len(),
        snap.tracks.len()
    );
    let msnap = obs::metrics().snapshot();
    println!(
        "  kernel_flops {}  rng_draws {}  alloc_bytes/sweep {} ({} backend; includes mesh-runtime buffers)",
        msnap.counter("kernel_flops"),
        msnap.counter("rng_draws_total"),
        alloc_per_sweep,
        cfg.backend.name(),
    );
    let scalar_halo_bytes = msnap.counter("halo_bytes_total");

    // Fourth view: the same pod topology through the bit-packed multispin
    // engine. One u64 halo word carries all 64 replicas' boundary spins,
    // so per replica chain the wire traffic shrinks 32× against the scalar
    // f32 pod while the aggregate proposal count grows 64×.
    obs::reset();
    obs::metrics().reset(); // counters are cumulative across pod runs
    obs::enable();
    let ms_cfg = MultiSpinPodConfig {
        torus: Torus::new(2, 2),
        per_core_h: 32,
        per_core_w: 32,
        beta: 1.0 / tpu_ising_core::T_CRITICAL,
        seed: 7,
    };
    let _ = run_multispin_pod(&ms_cfg, sweeps).expect("multispin pod run failed");
    obs::disable();
    let msnap = obs::metrics().snapshot();
    let ms_halo_bytes = msnap.counter("halo_bytes_total");
    println!("\nMeasured view (same 2x2 pod, multispin engine, {REPLICAS} replicas/word):");
    println!(
        "  flip_proposals {}  halo_bytes {} for {REPLICAS} chains (scalar pod: {} for 1 chain \
         — {:.0}x less wire per chain)",
        msnap.counter("flip_proposals_total"),
        ms_halo_bytes,
        scalar_halo_bytes,
        scalar_halo_bytes as f64 / (ms_halo_bytes.max(1) as f64 / REPLICAS as f64),
    );

    write_json("table3", &json);
}
