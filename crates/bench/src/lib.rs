//! Shared plumbing for the per-table / per-figure benchmark binaries.
//!
//! Every binary regenerates one evaluation artifact of the paper: it
//! derives its rows from the calibrated device model (performance tables)
//! or from real MCMC runs (physics figures), prints a paper-style table
//! with the paper's published value alongside where one exists, and writes
//! machine-readable JSON under `results/`.

use std::fmt::Write as _;
use std::path::PathBuf;

/// True when quick mode is requested (smaller lattices / fewer sweeps for
/// the physics figures).
///
/// **Precedence** (single source of truth — every bench binary goes
/// through here):
///
/// 1. A `--quick` flag anywhere on the command line turns quick mode ON.
///    This includes positions after a bare `--` separator, so both
///    `cargo run --bin fig4 -- --quick` (cargo eats the `--`) and
///    harnesses that forward a verbatim `-- --quick` tail work.
/// 2. Otherwise `ISING_BENCH_QUICK=1` turns it ON.
/// 3. Otherwise quick mode is OFF.
pub fn quick_mode() -> bool {
    quick_mode_from(std::env::args().skip(1), std::env::var("ISING_BENCH_QUICK").ok())
}

/// Testable core of [`quick_mode`]: `args` are the command-line arguments
/// (program name excluded), `env` the value of `ISING_BENCH_QUICK` if set.
pub fn quick_mode_from<I>(args: I, env: Option<String>) -> bool
where
    I: IntoIterator<Item = String>,
{
    // scan every argument, including those after a bare `--` separator
    if args.into_iter().any(|a| a == "--quick") {
        return true;
    }
    env.as_deref() == Some("1")
}

/// Enable progress heartbeats when `--progress` is on the command line
/// (anywhere, like [`quick_mode`]'s flag). Returns whether it was enabled.
/// Heartbeat lines go to stderr, so tables on stdout stay clean.
pub fn init_progress() -> bool {
    let on = std::env::args().skip(1).any(|a| a == "--progress");
    if on {
        tpu_ising_obs::enable_progress(std::time::Duration::from_secs(2));
    }
    on
}

/// Pretty-print an aligned table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let mut line = String::new();
    for (h, w) in headers.iter().zip(widths.iter()) {
        let _ = write!(line, "{h:>w$}  ", w = w);
    }
    println!("{line}");
    println!("{}", "-".repeat(line.chars().count()));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(widths.iter()) {
            let _ = write!(line, "{cell:>w$}  ", w = w);
        }
        println!("{line}");
    }
}

/// Directory for machine-readable outputs (workspace `results/`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("ISING_RESULTS_DIR").unwrap_or_else(|_| {
        // workspace root, two levels above the bench crate at build time;
        // at run time prefer the current directory's results/.
        "results".to_string()
    });
    let p = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&p);
    p
}

/// Write a serializable result as pretty JSON to `results/<name>.json`.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("\n[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Write rows as CSV to `results/<name>.csv`.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let path = results_dir().join(format!("{name}.csv"));
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Provenance block stamped into committed benchmark artifacts so a
/// checked-in JSON answers "measured where, when, at which commit?".
#[derive(Clone, Debug)]
pub struct RunMetadata {
    /// ISO-8601 UTC timestamp. Taken from a `--timestamp <iso>` argument
    /// when given (reproducible builds pass one in), else derived from the
    /// system clock.
    pub timestamp: String,
    /// CPU model string from `/proc/cpuinfo`, or `"unknown"`.
    pub cpu_model: String,
    /// Git commit hash: `GIT_COMMIT` env, else `git rev-parse HEAD`,
    /// else `"unknown"`.
    pub commit: String,
    /// SIMD tier the run dispatched to (`scalar`/`sse2`/`avx2`/`avx512`),
    /// after any `TPU_ISING_SIMD` override — numbers from different tiers
    /// must never be compared as if they came from the same kernel.
    pub simd_isa: String,
    /// CPU feature flags the detector saw (e.g. `"sse2,avx2,avx512f"`),
    /// regardless of which tier was dispatched.
    pub cpu_features: String,
}

impl RunMetadata {
    /// The fields as a hand-assembled JSON fragment (no trailing comma),
    /// for binaries that build their JSON without a serializer.
    pub fn to_json_fields(&self) -> String {
        format!(
            "\"timestamp\": \"{}\", \"cpu_model\": \"{}\", \"commit\": \"{}\", \
             \"simd_isa\": \"{}\", \"cpu_features\": \"{}\"",
            json_escape(&self.timestamp),
            json_escape(&self.cpu_model),
            json_escape(&self.commit),
            json_escape(&self.simd_isa),
            json_escape(&self.cpu_features)
        )
    }
}

/// Escape a string for embedding in hand-assembled JSON.
pub fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Absolute single-core multi-spin floor per dispatched ISA tier, in
/// aggregate flips/ns. Floors sit at roughly 60 % of the figure measured
/// on the reference dev host (see EXPERIMENTS.md), so shared CI machines
/// pass with margin while a real regression — a silent scalar fallback,
/// broken tiling, a mis-dispatched tree — still trips the gate. Shared by
/// the `perfbase --gate-multispin` gate and the suite grid runner so both
/// enforce the same bar.
pub fn multispin_floor(isa: tpu_ising_rng::SimdIsa) -> f64 {
    // Reference host (Cascade Lake Xeon 2.10 GHz, single core, L = 256):
    // scalar 0.59, sse2 0.58, avx2 0.95, avx512 0.84 flips/ns. The
    // avx512 floor sits *below* avx2 on purpose — the all-`zmm` tree
    // pays the 512-bit frequency license on this core class, which is
    // why the default dispatch caps at avx2 (see `tpu_ising_rng::simd`).
    match isa {
        tpu_ising_rng::SimdIsa::Scalar => 0.35,
        tpu_ising_rng::SimdIsa::Sse2 => 0.35,
        tpu_ising_rng::SimdIsa::Avx2 => 0.55,
        tpu_ising_rng::SimdIsa::Avx512 => 0.50,
    }
}

/// Collect run provenance. See [`RunMetadata`] for the per-field sources.
pub fn run_metadata() -> RunMetadata {
    RunMetadata {
        timestamp: timestamp_arg(std::env::args().skip(1)).unwrap_or_else(system_utc_iso8601),
        cpu_model: cpu_model().unwrap_or_else(|| "unknown".to_string()),
        commit: commit_hash().unwrap_or_else(|| "unknown".to_string()),
        simd_isa: tpu_ising_rng::simd::isa().name().to_string(),
        cpu_features: tpu_ising_rng::cpu_features().summary(),
    }
}

/// Extract the value of a `--timestamp <iso>` argument pair, if present.
pub fn timestamp_arg<I>(args: I) -> Option<String>
where
    I: IntoIterator<Item = String>,
{
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--timestamp" {
            return it.next();
        }
    }
    None
}

fn cpu_model() -> Option<String> {
    let text = std::fs::read_to_string("/proc/cpuinfo").ok()?;
    text.lines()
        .find(|l| l.starts_with("model name"))
        .and_then(|l| l.split(':').nth(1))
        .map(|m| m.trim().to_string())
}

fn commit_hash() -> Option<String> {
    if let Ok(c) = std::env::var("GIT_COMMIT") {
        if !c.is_empty() {
            return Some(c);
        }
    }
    let out = std::process::Command::new("git").args(["rev-parse", "HEAD"]).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let hash = String::from_utf8_lossy(&out.stdout).trim().to_string();
    (!hash.is_empty()).then_some(hash)
}

/// Current UTC time as `YYYY-MM-DDTHH:MM:SSZ` from the system clock
/// (civil-from-days; no date crate in the tree).
fn system_utc_iso8601() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let (h, m, s) = ((secs / 3600) % 24, (secs / 60) % 60, secs % 60);
    // Howard Hinnant's civil_from_days, shifted so the era starts 0000-03-01.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { y + 1 } else { y };
    format!("{year:04}-{month:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
}

/// One point of the committed performance trajectory: which algorithm
/// delivered how many flips/ns at which commit, measured when.
#[derive(Clone, Debug, PartialEq)]
pub struct TrajectoryRow {
    pub commit: String,
    pub timestamp: String,
    pub algo: String,
    /// SIMD tier the measurement dispatched to (`"scalar"`..`"avx512"`),
    /// so trajectory regressions can be separated from ISA changes when
    /// the file accumulates rows from different hosts.
    pub isa: String,
    /// Logical cores the measurement ran across: 1 for the single-core
    /// kernel figures, the pod size for per-topology scaling rows (where
    /// `flips_per_ns` is the aggregate across the whole pod).
    pub cores: usize,
    pub flips_per_ns: f64,
}

impl TrajectoryRow {
    /// One hand-assembled JSON object (the trajectory file must not
    /// depend on which serializer is linked, like the other artifacts).
    /// Rows appended before the `cores` column existed survive as opaque
    /// lines; consumers treat a missing `cores` as 1.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"commit\": \"{}\", \"timestamp\": \"{}\", \"algo\": \"{}\", \
             \"isa\": \"{}\", \"cores\": {}, \"flips_per_ns\": {:.5}}}",
            json_escape(&self.commit),
            json_escape(&self.timestamp),
            json_escape(&self.algo),
            json_escape(&self.isa),
            self.cores,
            self.flips_per_ns
        )
    }
}

/// Append rows to a JSON-array trajectory file (read-modify-write),
/// creating it when missing. The file is kept in one-object-per-line
/// form so prior entries survive as opaque lines — no parser needed.
/// Returns the total number of rows after the append.
pub fn append_trajectory(
    path: &std::path::Path,
    new_rows: &[TrajectoryRow],
) -> std::io::Result<usize> {
    let mut entries: Vec<String> = Vec::new();
    match std::fs::read_to_string(path) {
        Ok(text) => {
            let t = text.trim();
            let interior = t.strip_prefix('[').and_then(|s| s.strip_suffix(']')).unwrap_or("");
            for line in interior.lines() {
                let line = line.trim().trim_end_matches(',');
                if !line.is_empty() {
                    entries.push(line.to_string());
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    entries.extend(new_rows.iter().map(TrajectoryRow::to_json));
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 < entries.len() { "," } else { "" };
        out.push_str("  ");
        out.push_str(e);
        out.push_str(sep);
        out.push('\n');
    }
    out.push_str("]\n");
    std::fs::write(path, out)?;
    Ok(entries.len())
}

/// Relative deviation helper for "paper vs model" columns.
pub fn pct_dev(model: f64, paper: f64) -> String {
    format!("{:+.1}%", (model / paper - 1.0) * 100.0)
}

/// Format seconds as milliseconds.
pub fn ms(seconds: f64) -> String {
    format!("{:.2}", seconds * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn quick_flag_anywhere_wins() {
        assert!(quick_mode_from(strings(&["--quick"]), None));
        assert!(quick_mode_from(strings(&["--bench", "--", "--quick"]), None));
        assert!(quick_mode_from(strings(&["--", "x", "--quick", "y"]), None));
        assert!(!quick_mode_from(strings(&["--", "notquick"]), None));
    }

    #[test]
    fn quick_env_is_fallback() {
        assert!(quick_mode_from(strings(&[]), Some("1".into())));
        assert!(!quick_mode_from(strings(&[]), Some("0".into())));
        assert!(!quick_mode_from(strings(&[]), Some("".into())));
        assert!(!quick_mode_from(strings(&[]), None));
        // flag still wins regardless of env
        assert!(quick_mode_from(strings(&["--quick"]), Some("0".into())));
    }

    #[test]
    fn timestamp_argument_is_extracted() {
        assert_eq!(
            timestamp_arg(strings(&["--timestamp", "2026-01-02T03:04:05Z"])),
            Some("2026-01-02T03:04:05Z".to_string())
        );
        assert_eq!(
            timestamp_arg(strings(&["--quick", "--timestamp", "t", "x"])),
            Some("t".to_string())
        );
        assert_eq!(timestamp_arg(strings(&["--timestamp"])), None);
        assert_eq!(timestamp_arg(strings(&["--quick"])), None);
    }

    #[test]
    fn system_clock_renders_as_iso8601() {
        let ts = system_utc_iso8601();
        // e.g. 2026-08-07T04:13:52Z — shape check, not a clock check
        assert_eq!(ts.len(), 20, "{ts}");
        assert_eq!(&ts[4..5], "-");
        assert_eq!(&ts[10..11], "T");
        assert!(ts.ends_with('Z'));
        let year: i32 = ts[..4].parse().unwrap();
        assert!((2020..2200).contains(&year), "{ts}");
    }

    #[test]
    fn metadata_json_fields_are_escaped() {
        let md = RunMetadata {
            timestamp: "t".into(),
            cpu_model: "Weird \"CPU\" \\ name".into(),
            commit: "abc".into(),
            simd_isa: "avx2".into(),
            cpu_features: "sse2,avx2".into(),
        };
        assert_eq!(
            md.to_json_fields(),
            "\"timestamp\": \"t\", \"cpu_model\": \"Weird \\\"CPU\\\" \\\\ name\", \
             \"commit\": \"abc\", \"simd_isa\": \"avx2\", \"cpu_features\": \"sse2,avx2\""
        );
    }

    #[test]
    fn trajectory_appends_and_creates() {
        let dir = std::env::temp_dir().join(format!("traj-test-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("BENCH_trajectory.json");
        let _ = std::fs::remove_file(&path);

        let row = |algo: &str, f: f64| TrajectoryRow {
            commit: "abc123".into(),
            timestamp: "2026-01-02T03:04:05Z".into(),
            algo: algo.into(),
            isa: "avx2".into(),
            cores: 1,
            flips_per_ns: f,
        };
        // creates the file
        assert_eq!(append_trajectory(&path, &[row("band", 0.25)]).unwrap(), 1);
        // appends without losing prior rows
        assert_eq!(
            append_trajectory(&path, &[row("multispin", 4.5), row("dense", 0.01)]).unwrap(),
            3
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("[\n"), "{text}");
        assert!(text.trim_end().ends_with(']'), "{text}");
        assert_eq!(text.matches("\"commit\": \"abc123\"").count(), 3, "{text}");
        assert_eq!(text.matches("\"algo\": \"band\"").count(), 1, "{text}");
        assert!(text.contains("\"flips_per_ns\": 4.50000"), "{text}");
        // every row line parses as a standalone JSON-ish object
        for line in text.lines().filter(|l| l.trim_start().starts_with('{')) {
            let l = line.trim().trim_end_matches(',');
            assert!(l.starts_with('{') && l.ends_with('}'), "{l}");
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn pct_dev_formats() {
        assert_eq!(pct_dev(110.0, 100.0), "+10.0%");
        assert_eq!(pct_dev(95.0, 100.0), "-5.0%");
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(0.5747), "574.70");
    }
}
