//! Shared plumbing for the per-table / per-figure benchmark binaries.
//!
//! Every binary regenerates one evaluation artifact of the paper: it
//! derives its rows from the calibrated device model (performance tables)
//! or from real MCMC runs (physics figures), prints a paper-style table
//! with the paper's published value alongside where one exists, and writes
//! machine-readable JSON under `results/`.

use std::fmt::Write as _;
use std::path::PathBuf;

/// True when quick mode is requested (smaller lattices / fewer sweeps for
/// the physics figures). Enabled by `--quick` or `ISING_BENCH_QUICK=1`.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("ISING_BENCH_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Pretty-print an aligned table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let mut line = String::new();
    for (h, w) in headers.iter().zip(widths.iter()) {
        let _ = write!(line, "{h:>w$}  ", w = w);
    }
    println!("{line}");
    println!("{}", "-".repeat(line.chars().count()));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(widths.iter()) {
            let _ = write!(line, "{cell:>w$}  ", w = w);
        }
        println!("{line}");
    }
}

/// Directory for machine-readable outputs (workspace `results/`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("ISING_RESULTS_DIR").unwrap_or_else(|_| {
        // workspace root, two levels above the bench crate at build time;
        // at run time prefer the current directory's results/.
        "results".to_string()
    });
    let p = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&p);
    p
}

/// Write a serializable result as pretty JSON to `results/<name>.json`.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("\n[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Write rows as CSV to `results/<name>.csv`.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let path = results_dir().join(format!("{name}.csv"));
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Relative deviation helper for "paper vs model" columns.
pub fn pct_dev(model: f64, paper: f64) -> String {
    format!("{:+.1}%", (model / paper - 1.0) * 100.0)
}

/// Format seconds as milliseconds.
pub fn ms(seconds: f64) -> String {
    format!("{:.2}", seconds * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_dev_formats() {
        assert_eq!(pct_dev(110.0, 100.0), "+10.0%");
        assert_eq!(pct_dev(95.0, 100.0), "-5.0%");
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(0.5747), "574.70");
    }
}
