//! Shared plumbing for the per-table / per-figure benchmark binaries.
//!
//! Every binary regenerates one evaluation artifact of the paper: it
//! derives its rows from the calibrated device model (performance tables)
//! or from real MCMC runs (physics figures), prints a paper-style table
//! with the paper's published value alongside where one exists, and writes
//! machine-readable JSON under `results/`.

use std::fmt::Write as _;
use std::path::PathBuf;

/// True when quick mode is requested (smaller lattices / fewer sweeps for
/// the physics figures).
///
/// **Precedence** (single source of truth — every bench binary goes
/// through here):
///
/// 1. A `--quick` flag anywhere on the command line turns quick mode ON.
///    This includes positions after a bare `--` separator, so both
///    `cargo run --bin fig4 -- --quick` (cargo eats the `--`) and
///    harnesses that forward a verbatim `-- --quick` tail work.
/// 2. Otherwise `ISING_BENCH_QUICK=1` turns it ON.
/// 3. Otherwise quick mode is OFF.
pub fn quick_mode() -> bool {
    quick_mode_from(std::env::args().skip(1), std::env::var("ISING_BENCH_QUICK").ok())
}

/// Testable core of [`quick_mode`]: `args` are the command-line arguments
/// (program name excluded), `env` the value of `ISING_BENCH_QUICK` if set.
pub fn quick_mode_from<I>(args: I, env: Option<String>) -> bool
where
    I: IntoIterator<Item = String>,
{
    // scan every argument, including those after a bare `--` separator
    if args.into_iter().any(|a| a == "--quick") {
        return true;
    }
    env.as_deref() == Some("1")
}

/// Enable progress heartbeats when `--progress` is on the command line
/// (anywhere, like [`quick_mode`]'s flag). Returns whether it was enabled.
/// Heartbeat lines go to stderr, so tables on stdout stay clean.
pub fn init_progress() -> bool {
    let on = std::env::args().skip(1).any(|a| a == "--progress");
    if on {
        tpu_ising_obs::enable_progress(std::time::Duration::from_secs(2));
    }
    on
}

/// Pretty-print an aligned table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let mut line = String::new();
    for (h, w) in headers.iter().zip(widths.iter()) {
        let _ = write!(line, "{h:>w$}  ", w = w);
    }
    println!("{line}");
    println!("{}", "-".repeat(line.chars().count()));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(widths.iter()) {
            let _ = write!(line, "{cell:>w$}  ", w = w);
        }
        println!("{line}");
    }
}

/// Directory for machine-readable outputs (workspace `results/`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("ISING_RESULTS_DIR").unwrap_or_else(|_| {
        // workspace root, two levels above the bench crate at build time;
        // at run time prefer the current directory's results/.
        "results".to_string()
    });
    let p = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&p);
    p
}

/// Write a serializable result as pretty JSON to `results/<name>.json`.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("\n[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Write rows as CSV to `results/<name>.csv`.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let path = results_dir().join(format!("{name}.csv"));
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Relative deviation helper for "paper vs model" columns.
pub fn pct_dev(model: f64, paper: f64) -> String {
    format!("{:+.1}%", (model / paper - 1.0) * 100.0)
}

/// Format seconds as milliseconds.
pub fn ms(seconds: f64) -> String {
    format!("{:.2}", seconds * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn quick_flag_anywhere_wins() {
        assert!(quick_mode_from(strings(&["--quick"]), None));
        assert!(quick_mode_from(strings(&["--bench", "--", "--quick"]), None));
        assert!(quick_mode_from(strings(&["--", "x", "--quick", "y"]), None));
        assert!(!quick_mode_from(strings(&["--", "notquick"]), None));
    }

    #[test]
    fn quick_env_is_fallback() {
        assert!(quick_mode_from(strings(&[]), Some("1".into())));
        assert!(!quick_mode_from(strings(&[]), Some("0".into())));
        assert!(!quick_mode_from(strings(&[]), Some("".into())));
        assert!(!quick_mode_from(strings(&[]), None));
        // flag still wins regardless of env
        assert!(quick_mode_from(strings(&["--quick"]), Some("0".into())));
    }

    #[test]
    fn pct_dev_formats() {
        assert_eq!(pct_dev(110.0, 100.0), "+10.0%");
        assert_eq!(pct_dev(95.0, 100.0), "-5.0%");
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(0.5747), "574.70");
    }
}
