//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! - naive (Algorithm 1) vs compact (Algorithm 2) vs conv — the paper's
//!   ~3× claim for compact over naive on TPU; on CPU the matmul detour
//!   dominates differently, so the interesting number is the *relative*
//!   order, reported by these benches;
//! - bulk Philox stream vs site-keyed randomness (the testing mode's cost);
//! - tile-size sensitivity of the compact sweep (the CPU analogue of the
//!   paper's HBM-tiling guidance);
//! - halo exchange on/off in the SPMD pod (communication share).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tpu_ising_core::distributed::{run_pod, PodConfig, PodRng};
use tpu_ising_core::{random_plane, CompactIsing, KernelBackend, Randomness, Sweeper};
use tpu_ising_device::mesh::Torus;

const L: usize = 128;
const BETA: f64 = 0.4406868;

fn bench_rng_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_rng_mode");
    g.throughput(Throughput::Elements((L * L) as u64));
    let init = random_plane::<f32>(1, L, L);
    g.bench_function("bulk_stream", |b| {
        let mut sim = CompactIsing::from_plane(&init, 16, BETA, Randomness::bulk(3));
        b.iter(|| sim.sweep());
    });
    g.bench_function("site_keyed", |b| {
        let mut sim = CompactIsing::from_plane(&init, 16, BETA, Randomness::site_keyed(3));
        b.iter(|| sim.sweep());
    });
    g.finish();
}

fn bench_tile_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_tile_size");
    g.throughput(Throughput::Elements((L * L) as u64));
    let init = random_plane::<f32>(1, L, L);
    for tile in [4usize, 8, 16, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(tile), &tile, |b, &tile| {
            let mut sim = CompactIsing::from_plane(&init, tile, BETA, Randomness::bulk(3));
            b.iter(|| sim.sweep());
        });
    }
    g.finish();
}

fn bench_pod_topologies(c: &mut Criterion) {
    // Same global lattice, split over 1 / 2 / 4 threads: the spread shows
    // the halo-exchange + thread overhead the mesh runtime adds.
    let mut g = c.benchmark_group("ablation_pod_topology");
    let global = 128usize;
    g.throughput(Throughput::Elements((global * global) as u64));
    g.sample_size(10);
    for (nx, ny) in [(1usize, 1usize), (1, 2), (2, 2)] {
        let label = format!("{nx}x{ny}");
        g.bench_with_input(BenchmarkId::from_parameter(label), &(nx, ny), |b, &(nx, ny)| {
            let cfg = PodConfig {
                torus: Torus::new(nx, ny),
                per_core_h: global / nx,
                per_core_w: global / ny,
                tile: 16,
                beta: BETA,
                seed: 5,
                rng: PodRng::BulkSplit,
                backend: KernelBackend::Band,
            };
            b.iter(|| run_pod::<f32>(&cfg, 2).expect("pod run failed"));
        });
    }
    g.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = bench_rng_modes, bench_tile_sizes, bench_pod_topologies
}
criterion_main!(ablations);
