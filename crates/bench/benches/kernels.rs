//! Criterion kernel benchmarks: wall-clock throughput of every functional
//! implementation on CPU, measured in spin-flips per second via
//! `Throughput::Elements`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tpu_ising_baseline::{GpuStyleIsing, MultiSpinIsing};
use tpu_ising_core::{random_plane, CompactIsing, ConvIsing, NaiveIsing, Randomness, Sweeper};
use tpu_ising_rng::PhiloxStream;
use tpu_ising_tensor::{band_kernel, BandKernel, KernelBackend, Tensor4};

const L: usize = 256;
const BETA: f64 = 0.4406868; // 1/Tc

fn bench_sweeps(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep");
    g.throughput(Throughput::Elements((L * L) as u64));

    let init = random_plane::<f32>(1, L, L);
    g.bench_function(BenchmarkId::new("compact_f32", L), |b| {
        let mut sim = CompactIsing::from_plane(&init, 32, BETA, Randomness::bulk(2));
        b.iter(|| sim.sweep());
    });
    g.bench_function(BenchmarkId::new("compact_f32_dense", L), |b| {
        let mut sim = CompactIsing::from_plane(&init, 32, BETA, Randomness::bulk(2))
            .with_backend(KernelBackend::Dense);
        b.iter(|| sim.sweep());
    });
    g.bench_function(BenchmarkId::new("compact_bf16", L), |b| {
        let init = random_plane::<tpu_ising_bf16::Bf16>(1, L, L);
        let mut sim = CompactIsing::from_plane(&init, 32, BETA, Randomness::bulk(2));
        b.iter(|| sim.sweep());
    });
    g.bench_function(BenchmarkId::new("naive_f32", L), |b| {
        let mut sim = NaiveIsing::from_plane(&init, 32, BETA, Randomness::bulk(2));
        b.iter(|| sim.sweep());
    });
    g.bench_function(BenchmarkId::new("conv_f32", L), |b| {
        let mut sim = ConvIsing::new(init.clone(), BETA, Randomness::bulk(2));
        b.iter(|| sim.sweep());
    });
    g.bench_function(BenchmarkId::new("gpu_style_f32", L), |b| {
        let mut sim = GpuStyleIsing::new(init.clone(), BETA, Randomness::bulk(2));
        b.iter(|| sim.sweep());
    });
    g.finish();

    // multi-spin coding advances 64 replicas at once
    let mut g = c.benchmark_group("sweep_multispin");
    g.throughput(Throughput::Elements((64 * L * L) as u64));
    g.bench_function(BenchmarkId::new("multispin_64_replicas", L), |b| {
        let mut sim = MultiSpinIsing::new(L, L, BETA, 3);
        b.iter(|| sim.sweep());
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    let n = 1 << 20;
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("philox_fill_uniform_f32_1m", |b| {
        let mut stream = PhiloxStream::from_seed(1);
        let mut buf = vec![0.0f32; n];
        b.iter(|| stream.fill_uniform(&mut buf));
    });
    g.bench_function("philox_fill_uniform_bf16_1m", |b| {
        let mut stream = PhiloxStream::from_seed(1);
        let mut buf = vec![tpu_ising_bf16::Bf16::ZERO; n];
        b.iter(|| stream.fill_uniform(&mut buf));
    });
    g.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("tensor");
    let shape = [8, 8, 64, 64];
    let t = Tensor4::<f32>::from_fn(shape, |b0, b1, r, cc| {
        ((b0 * 3 + b1 * 5 + r * 7 + cc) % 13) as f32 - 6.0
    });
    let k = band_kernel::<f32>(64);
    let macs = (8 * 8 * 64 * 64 * 64) as u64;
    g.throughput(Throughput::Elements(macs));
    g.bench_function("batched_matmul_right_8x8x64x64", |b| {
        b.iter(|| t.matmul_right(&k));
    });
    g.bench_function("batched_matmul_left_8x8x64x64", |b| {
        b.iter(|| t.matmul_left(&k));
    });
    // band-structured equivalents: same logical product, O(t²) work
    let mut out = Tensor4::<f32>::zeros(shape);
    g.bench_function("band_mul_right_8x8x64x64", |b| {
        b.iter(|| t.band_mul_right_into(BandKernel::Tridiag, &mut out));
    });
    g.bench_function("band_mul_left_8x8x64x64", |b| {
        b.iter(|| t.band_mul_left_into(BandKernel::Tridiag, &mut out));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sweeps, bench_rng, bench_matmul
}
criterion_main!(benches);
