//! Graph passes: DCE, constant folding, and element-wise fusion analysis.
//!
//! These are miniature versions of the XLA pipeline stages the paper's
//! program passes through between graph construction and TPU execution
//! (§2). They matter here for two reasons: the cost model uses fusion
//! groups to avoid charging HBM round-trips inside fused element-wise
//! chains, and the equivalence tests check that optimized graphs still
//! compute the same function.

use crate::graph::{Graph, Id, Literal, Op};
use std::collections::{BTreeSet, HashMap};

/// Dead-code elimination: rebuild the graph keeping only ops reachable
/// from `roots`. Returns the new graph and the remapping of old root ids.
pub fn dce(graph: &Graph, roots: &[Id]) -> (Graph, Vec<Id>) {
    // Mark.
    let mut live = BTreeSet::new();
    let mut stack: Vec<Id> = roots.to_vec();
    while let Some(id) = stack.pop() {
        if live.insert(id) {
            stack.extend(graph.operands(id));
        }
    }
    // Parameters always survive: removing one would renumber the caller's
    // argument list.
    for idx in 0..graph.len() {
        if matches!(graph.node(Id(idx)).op, Op::Parameter { .. }) {
            live.insert(Id(idx));
        }
    }
    // Sweep, preserving topological order.
    let mut out = Graph::new();
    let mut remap: HashMap<Id, Id> = HashMap::new();
    for idx in 0..graph.len() {
        let id = Id(idx);
        if !live.contains(&id) {
            continue;
        }
        let new_id = rebuild_op(&mut out, graph, id, &remap);
        remap.insert(id, new_id);
    }
    let new_roots = roots.iter().map(|r| remap[r]).collect();
    (out, new_roots)
}

fn rebuild_op(out: &mut Graph, graph: &Graph, id: Id, remap: &HashMap<Id, Id>) -> Id {
    let node = graph.node(id);
    let m = |i: &Id| remap[i];
    match &node.op {
        Op::Parameter { .. } => out.parameter(node.shape),
        Op::Constant(lit) => out.constant(lit.clone(), node.shape.dtype),
        Op::Add(a, b) => out.add(m(a), m(b)),
        Op::Sub(a, b) => out.sub(m(a), m(b)),
        Op::Mul(a, b) => out.mul(m(a), m(b)),
        Op::Neg(a) => out.neg(m(a)),
        Op::Exp(a) => out.exp(m(a)),
        Op::Lt(a, b) => out.lt(m(a), m(b)),
        Op::MulScalar(a, s) => out.mul_scalar(m(a), *s),
        Op::RngUniform => out.rng_uniform(node.shape),
        Op::MatmulRight(a, k) => out.matmul_right(m(a), m(k)),
        Op::MatmulLeft(k, a) => out.matmul_left(m(k), m(a)),
        Op::Edge(a, axis, side) => out.edge(m(a), *axis, *side),
        Op::AddEdge { input, edge, axis, side } => out.add_edge(m(input), m(edge), *axis, *side),
        Op::RollBatch(a, d0, d1) => out.roll_batch(m(a), *d0, *d1),
        Op::CollectivePermute(a, pairs) => out.collective_permute(m(a), pairs.clone()),
        Op::ConvPlus(a) => out.conv_plus(m(a)),
    }
}

/// Constant folding: evaluate element-wise ops and negation whose operands
/// are all constants, replacing them with literals. Returns the rewritten
/// graph and the remapped root ids.
pub fn const_fold(graph: &Graph, roots: &[Id]) -> (Graph, Vec<Id>) {
    let mut out = Graph::new();
    let mut remap: HashMap<Id, Id> = HashMap::new();
    // Track which new ids are constants (and their payloads).
    let mut consts: HashMap<Id, Literal> = HashMap::new();
    for idx in 0..graph.len() {
        let id = Id(idx);
        let node = graph.node(id);
        let operand_lits: Option<Vec<&Literal>> =
            graph.operands(id).iter().map(|o| consts.get(&remap[o])).collect();
        let folded: Option<Literal> = match (&node.op, operand_lits) {
            (Op::Add(..), Some(l)) => Some(zip_lit(l[0], l[1], |a, b| a + b)),
            (Op::Sub(..), Some(l)) => Some(zip_lit(l[0], l[1], |a, b| a - b)),
            (Op::Mul(..), Some(l)) => Some(zip_lit(l[0], l[1], |a, b| a * b)),
            (Op::Neg(..), Some(l)) => Some(map_lit(l[0], |a| -a)),
            (Op::Exp(..), Some(l)) => Some(map_lit(l[0], f32::exp)),
            (Op::MulScalar(_, s), Some(l)) => {
                let s = *s as f32;
                Some(map_lit(l[0], |a| a * s))
            }
            _ => None,
        };
        let new_id = if let Some(lit) = folded {
            let nid = out.constant(lit.clone(), node.shape.dtype);
            consts.insert(nid, lit);
            nid
        } else {
            let nid = rebuild_op(&mut out, graph, id, &remap);
            if let Op::Constant(lit) = &node.op {
                consts.insert(nid, lit.clone());
            }
            nid
        };
        remap.insert(id, new_id);
    }
    let new_roots = roots.iter().map(|r| remap[r]).collect();
    (out, new_roots)
}

fn zip_lit(a: &Literal, b: &Literal, f: impl Fn(f32, f32) -> f32) -> Literal {
    assert_eq!(a.dims, b.dims);
    Literal {
        dims: a.dims,
        data: a.data.iter().zip(b.data.iter()).map(|(&x, &y)| f(x, y)).collect(),
    }
}

fn map_lit(a: &Literal, f: impl Fn(f32) -> f32) -> Literal {
    Literal { dims: a.dims, data: a.data.iter().map(|&x| f(x)).collect() }
}

/// Element-wise fusion analysis: partition element-wise ops into maximal
/// chains where a producer's *only* consumer is the next op in the chain.
///
/// Fused chains execute as one VPU loop: intermediate results stay in
/// registers and pay no HBM traffic. The cost walker charges HBM for a
/// group's external inputs and final output only. Returns groups in
/// topological order; non-element-wise ops appear as singleton groups.
pub fn fusion_groups(graph: &Graph, roots: &[Id]) -> Vec<Vec<Id>> {
    // Count consumers of each id (roots count as external consumers).
    let mut uses = vec![0usize; graph.len()];
    for idx in 0..graph.len() {
        for op in graph.operands(Id(idx)) {
            uses[op.0] += 1;
        }
    }
    for r in roots {
        uses[r.0] += 1;
    }
    // Greedy chain building: op joins its single elementwise consumer.
    let mut group_of: Vec<Option<usize>> = vec![None; graph.len()];
    let mut groups: Vec<Vec<Id>> = Vec::new();
    for idx in 0..graph.len() {
        let id = Id(idx);
        // Try to join the group of a single elementwise producer that has
        // exactly one use (us).
        let mut joined = None;
        if graph.is_elementwise(id) {
            for op in graph.operands(id) {
                if graph.is_elementwise(op) && uses[op.0] == 1 {
                    joined = group_of[op.0];
                    break;
                }
            }
        }
        match joined {
            Some(gi) => {
                groups[gi].push(id);
                group_of[idx] = Some(gi);
            }
            None => {
                groups.push(vec![id]);
                group_of[idx] = Some(groups.len() - 1);
            }
        }
    }
    groups
}

/// Common-subexpression elimination: identical ops with identical
/// (remapped) operands collapse to one. `RngUniform` is stateful and never
/// merged — two draws are two different tensors.
pub fn cse(graph: &Graph, roots: &[Id]) -> (Graph, Vec<Id>) {
    let mut out = Graph::new();
    let mut remap: HashMap<Id, Id> = HashMap::new();
    let mut seen: HashMap<String, Id> = HashMap::new();
    for idx in 0..graph.len() {
        let id = Id(idx);
        let node = graph.node(id);
        let can_merge = !matches!(node.op, Op::RngUniform);
        // structural key: op debug form with operands rewritten to new ids
        let key = if can_merge {
            let mut key = format!("{:?}|{:?}", std::mem::discriminant(&node.op), node.shape);
            match &node.op {
                Op::Parameter { index } => key.push_str(&format!("p{index}")),
                Op::Constant(lit) => {
                    key.push_str(&format!("lit{:?}{:?}", lit.dims, lit.data));
                }
                Op::MulScalar(_, s) => key.push_str(&format!("s{s}")),
                Op::Edge(_, axis, side) => key.push_str(&format!("{axis:?}{side:?}")),
                Op::AddEdge { axis, side, .. } => key.push_str(&format!("{axis:?}{side:?}")),
                Op::RollBatch(_, d0, d1) => key.push_str(&format!("r{d0},{d1}")),
                Op::CollectivePermute(_, pairs) => key.push_str(&format!("{pairs:?}")),
                _ => {}
            }
            for op in graph.operands(id) {
                key.push_str(&format!(",%{}", remap[&op].0));
            }
            Some(key)
        } else {
            None
        };
        if let Some(k) = &key {
            if let Some(&existing) = seen.get(k) {
                remap.insert(id, existing);
                continue;
            }
        }
        let new_id = rebuild_op(&mut out, graph, id, &remap);
        remap.insert(id, new_id);
        if let Some(k) = key {
            seen.insert(k, new_id);
        }
    }
    let new_roots = roots.iter().map(|r| remap[r]).collect();
    (out, new_roots)
}

/// Algebraic simplification: local identities rewritten to cheaper forms.
///
/// Implemented rules (XLA's `AlgebraicSimplifier` implements hundreds;
/// these are the ones our graphs actually produce):
/// - `neg(neg(x)) → x`
/// - `mul_scalar(x, 1) → x`
/// - `mul_scalar(mul_scalar(x, a), b) → mul_scalar(x, a·b)`
/// - `add(x, 0-const) → x` (either side)
/// - `sub(x, 0-const) → x`
pub fn algebraic_simplify(graph: &Graph, roots: &[Id]) -> (Graph, Vec<Id>) {
    let mut out = Graph::new();
    let mut remap: HashMap<Id, Id> = HashMap::new();
    // track which new ids are known all-zero constants
    let mut zero_consts: std::collections::HashSet<Id> = Default::default();
    for idx in 0..graph.len() {
        let id = Id(idx);
        let node = graph.node(id);
        let alias: Option<Id> = match &node.op {
            Op::Neg(a) => {
                if let Op::Neg(inner) = &graph.node(*a).op {
                    Some(remap[inner])
                } else {
                    None
                }
            }
            Op::MulScalar(a, s) if *s == 1.0 => Some(remap[a]),
            Op::Add(a, b) => {
                if zero_consts.contains(&remap[b]) {
                    Some(remap[a])
                } else if zero_consts.contains(&remap[a]) {
                    Some(remap[b])
                } else {
                    None
                }
            }
            Op::Sub(a, b) if zero_consts.contains(&remap[b]) => Some(remap[a]),
            _ => None,
        };
        if let Some(alias) = alias {
            remap.insert(id, alias);
            continue;
        }
        // fold mul_scalar chains
        if let Op::MulScalar(a, s_outer) = &node.op {
            if let Op::MulScalar(inner, s_inner) = &graph.node(*a).op {
                let new_id = out.mul_scalar(remap[inner], s_inner * s_outer);
                remap.insert(id, new_id);
                continue;
            }
        }
        let new_id = rebuild_op(&mut out, graph, id, &remap);
        if let Op::Constant(lit) = &node.op {
            if lit.data.iter().all(|&x| x == 0.0) {
                zero_consts.insert(new_id);
            }
        }
        remap.insert(id, new_id);
    }
    let new_roots = roots.iter().map(|r| remap[r]).collect();
    (out, new_roots)
}

/// The standard optimization pipeline, in XLA's order: fold constants,
/// simplify algebra, merge duplicates, sweep dead code. Idempotent.
pub fn optimize(graph: &Graph, roots: &[Id]) -> (Graph, Vec<Id>) {
    let (g, r) = const_fold(graph, roots);
    let (g, r) = algebraic_simplify(&g, &r);
    let (g, r) = cse(&g, &r);
    dce(&g, &r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Dtype, Shape};
    use tpu_ising_rng::PhiloxStream;
    use tpu_ising_tensor::{band_kernel, Tensor4};

    fn shape() -> Shape {
        Shape::new([1, 1, 4, 4], Dtype::F32)
    }

    fn input() -> Tensor4<f32> {
        Tensor4::from_fn([1, 1, 4, 4], |_, _, r, c| (r * 4 + c) as f32 - 7.5)
    }

    #[test]
    fn dce_removes_dead_ops() {
        let mut g = Graph::new();
        let p = g.parameter(shape());
        let live = g.exp(p);
        let _dead1 = g.neg(p);
        let dead2 = g.neg(live);
        let _dead3 = g.exp(dead2);
        let (g2, roots) = dce(&g, &[live]);
        assert_eq!(g2.len(), 2); // parameter + exp
        let mut rng = PhiloxStream::from_seed(0);
        let out = crate::evaluate(&g2, &[input()], &mut rng, &roots);
        assert_eq!(out[0], input().map(f32::exp));
    }

    #[test]
    fn dce_keeps_all_parameters() {
        let mut g = Graph::new();
        let _unused = g.parameter(shape());
        let p = g.parameter(shape());
        let e = g.exp(p);
        let (g2, _) = dce(&g, &[e]);
        assert_eq!(g2.param_count(), 2);
    }

    #[test]
    fn dce_preserves_semantics_on_diamond() {
        let mut g = Graph::new();
        let p = g.parameter(shape());
        let a = g.neg(p);
        let b = g.exp(p);
        let c = g.add(a, b);
        let _dead = g.mul(a, b);
        let (g2, roots) = dce(&g, &[c]);
        let mut rng = PhiloxStream::from_seed(0);
        let out = crate::evaluate(&g2, &[input()], &mut rng, &roots);
        let expect = input().map(|x| -x + x.exp());
        assert_eq!(out[0], expect);
    }

    #[test]
    fn const_fold_evaluates_constant_subgraphs() {
        let mut g = Graph::new();
        let k = g.constant_mat(&band_kernel::<f32>(4), Dtype::F32);
        let nk = g.neg(k);
        let s = g.mul_scalar(nk, 2.0);
        let p = g.parameter(Shape::new([1, 1, 4, 4], Dtype::F32));
        let out_id = g.matmul_right(p, s);
        let (g2, roots) = const_fold(&g, &[out_id]);
        // neg and mul_scalar disappear into one folded literal
        let folded_consts = g2.nodes().iter().filter(|n| matches!(n.op, Op::Constant(_))).count();
        assert!(folded_consts >= 1);
        let n_elementwise = (0..g2.len()).filter(|&i| g2.is_elementwise(Id(i))).count();
        assert_eq!(n_elementwise, 0, "all elementwise ops folded away");
        // semantics preserved
        let mut rng = PhiloxStream::from_seed(0);
        let got = crate::evaluate(&g2, &[input()], &mut rng, &roots);
        let mut rng2 = PhiloxStream::from_seed(0);
        let expect = crate::evaluate(&g, &[input()], &mut rng2, &[out_id]);
        assert_eq!(got[0], expect[0]);
    }

    #[test]
    fn fusion_groups_chain_single_use_elementwise() {
        let mut g = Graph::new();
        let p = g.parameter(shape());
        let a = g.neg(p); // chain start
        let b = g.mul_scalar(a, 2.0); // fuses with a
        let c = g.exp(b); // fuses with b
        let groups = fusion_groups(&g, &[c]);
        // parameter singleton + one fused chain {a, b, c}
        assert_eq!(groups.len(), 2);
        let chain = groups.iter().find(|gr| gr.len() == 3).expect("fused chain");
        assert_eq!(chain, &vec![a, b, c]);
    }

    #[test]
    fn fusion_breaks_at_multi_use() {
        let mut g = Graph::new();
        let p = g.parameter(shape());
        let a = g.neg(p);
        let b = g.exp(a); // a has 2 uses → no fusion into b or c
        let c = g.mul_scalar(a, 3.0);
        let d = g.add(b, c);
        let groups = fusion_groups(&g, &[d]);
        // a cannot fuse with b (a multi-use); b/c single-use fuse into d?
        // d consumes b and c; d joins the first single-use elementwise
        // producer's group (b's).
        let ga = groups.iter().find(|gr| gr.contains(&a)).unwrap();
        assert_eq!(ga.len(), 1);
        assert!(groups.iter().any(|gr| gr.contains(&d) && gr.len() >= 2));
    }

    #[test]
    fn cse_merges_identical_subtrees() {
        let mut g = Graph::new();
        let p = g.parameter(shape());
        let k1 = g.constant_mat(&band_kernel::<f32>(4), Dtype::F32);
        let k2 = g.constant_mat(&band_kernel::<f32>(4), Dtype::F32); // duplicate
        let a = g.matmul_right(p, k1);
        let b = g.matmul_right(p, k2); // identical after const merge
        let s = g.add(a, b);
        let (g2, roots) = cse(&g, &[s]);
        // one constant, one matmul survive
        let consts = g2.nodes().iter().filter(|n| matches!(n.op, Op::Constant(_))).count();
        let matmuls = g2.nodes().iter().filter(|n| matches!(n.op, Op::MatmulRight(..))).count();
        assert_eq!(consts, 1);
        assert_eq!(matmuls, 1);
        // semantics preserved: add(a, a) == 2a
        let mut rng = PhiloxStream::from_seed(0);
        let got = crate::evaluate(&g2, &[input()], &mut rng, &roots);
        let kk = band_kernel::<f32>(4);
        let mm = input().matmul_right(&kk);
        let mut expect = mm.clone();
        expect.add_assign(&mm);
        assert_eq!(got[0], expect);
    }

    #[test]
    fn cse_never_merges_rng() {
        let mut g = Graph::new();
        let r1 = g.rng_uniform(shape());
        let r2 = g.rng_uniform(shape());
        let s = g.add(r1, r2);
        let (g2, _) = cse(&g, &[s]);
        let rngs = g2.nodes().iter().filter(|n| matches!(n.op, Op::RngUniform)).count();
        assert_eq!(rngs, 2, "independent draws must stay independent");
    }

    #[test]
    fn algebraic_simplify_rules() {
        let mut g = Graph::new();
        let p = g.parameter(shape());
        let nn = g.neg(p);
        let nnn = g.neg(nn); // → p
        let m1 = g.mul_scalar(nnn, 1.0); // → p
        let m2 = g.mul_scalar(m1, 3.0);
        let m3 = g.mul_scalar(m2, 2.0); // → mul_scalar(p, 6)
        let zero = g.constant(Literal { dims: [1, 1, 4, 4], data: vec![0.0; 16] }, Dtype::F32);
        let added = g.add(m3, zero); // → m3
        let subbed = g.sub(added, zero); // → m3
        let (g2, roots) = algebraic_simplify(&g, &[subbed]);
        // after DCE the graph should be parameter + one mul_scalar (+ the
        // zero constant which DCE can drop)
        let (g3, roots) = dce(&g2, &roots);
        let muls: Vec<f64> = g3
            .nodes()
            .iter()
            .filter_map(|n| match n.op {
                Op::MulScalar(_, s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(muls, vec![6.0], "chain folded to ×6: {g3:?}");
        assert_eq!(
            g3.nodes().iter().filter(|n| matches!(n.op, Op::Neg(_))).count(),
            0,
            "double negation eliminated"
        );
        // semantics
        let mut rng = PhiloxStream::from_seed(0);
        let got = crate::evaluate(&g3, &[input()], &mut rng, &roots);
        assert_eq!(got[0], input().map(|x| x * 6.0));
    }

    #[test]
    fn simplify_preserves_zero_addition_semantics_on_nonzero_consts() {
        let mut g = Graph::new();
        let p = g.parameter(shape());
        let ones = g.constant(Literal { dims: [1, 1, 4, 4], data: vec![1.0; 16] }, Dtype::F32);
        let added = g.add(p, ones); // must NOT be simplified away
        let (g2, roots) = algebraic_simplify(&g, &[added]);
        let mut rng = PhiloxStream::from_seed(0);
        let got = crate::evaluate(&g2, &[input()], &mut rng, &roots);
        assert_eq!(got[0], input().map(|x| x + 1.0));
    }

    #[test]
    fn optimize_pipeline_is_idempotent_and_semantics_preserving() {
        let mut g = Graph::new();
        let p = g.parameter(shape());
        let k = g.constant_mat(&band_kernel::<f32>(4), Dtype::F32);
        let k2 = g.constant_mat(&band_kernel::<f32>(4), Dtype::F32);
        let a = g.matmul_right(p, k);
        let b = g.matmul_right(p, k2);
        let s = g.add(a, b);
        let n = g.neg(s);
        let nn = g.neg(n);
        let out = g.mul_scalar(nn, 1.0);
        let _dead = g.exp(out);
        let roots = [out];
        let (g1, r1) = optimize(&g, &roots);
        let (g2, r2) = optimize(&g1, &r1);
        assert_eq!(g1.len(), g2.len(), "optimize must be idempotent");
        assert!(g1.len() < g.len());
        let mut s1 = PhiloxStream::from_seed(0);
        let mut s2 = PhiloxStream::from_seed(0);
        let before = crate::evaluate(&g, &[input()], &mut s1, &roots);
        let after = crate::evaluate(&g2, &[input()], &mut s2, &r2);
        assert_eq!(before, after);
    }

    #[test]
    fn fusion_never_crosses_matmul() {
        let mut g = Graph::new();
        let p = g.parameter(shape());
        let k = g.constant_mat(&band_kernel::<f32>(4), Dtype::F32);
        let mm = g.matmul_right(p, k);
        let e = g.exp(mm);
        let groups = fusion_groups(&g, &[e]);
        let gmm = groups.iter().find(|gr| gr.contains(&mm)).unwrap();
        assert_eq!(gmm.len(), 1, "matmul stays a singleton group");
    }
}
