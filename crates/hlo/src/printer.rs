//! Text dump of a graph in an HLO-like format, plus a structural verifier.
//!
//! XLA developers live in `--xla_dump_to` text dumps; this is the
//! equivalent for HLO-lite. The printer output is stable, diff-friendly
//! and used in golden tests; the verifier re-checks the structural
//! invariants the builder enforces (useful after hand-written pass code).

use crate::graph::{Dtype, Graph, Id, Op};
use tpu_ising_tensor::{Axis, Side};

fn dtype_str(d: Dtype) -> &'static str {
    match d {
        Dtype::F32 => "f32",
        Dtype::Bf16 => "bf16",
    }
}

fn axis_str(a: Axis) -> &'static str {
    match a {
        Axis::Row => "row",
        Axis::Col => "col",
    }
}

fn side_str(s: Side) -> &'static str {
    match s {
        Side::First => "first",
        Side::Last => "last",
    }
}

/// Render one op as a line: `%3 = f32[2,2,8,8] add(%1, %2)`.
pub fn print_op(graph: &Graph, id: Id) -> String {
    let node = graph.node(id);
    let d = node.shape.dims;
    let shape = format!("{}[{},{},{},{}]", dtype_str(node.shape.dtype), d[0], d[1], d[2], d[3]);
    let body = match &node.op {
        Op::Parameter { index } => format!("parameter({index})"),
        Op::Constant(lit) => {
            // constants print a content fingerprint, not the payload
            let sum: f64 = lit.data.iter().map(|&x| x as f64).sum();
            format!("constant(/*elements={} sum={sum}*/)", lit.data.len())
        }
        Op::Add(a, b) => format!("add(%{}, %{})", a.0, b.0),
        Op::Sub(a, b) => format!("subtract(%{}, %{})", a.0, b.0),
        Op::Mul(a, b) => format!("multiply(%{}, %{})", a.0, b.0),
        Op::Neg(a) => format!("negate(%{})", a.0),
        Op::Exp(a) => format!("exponential(%{})", a.0),
        Op::Lt(a, b) => format!("compare(%{}, %{}), direction=LT", a.0, b.0),
        Op::MulScalar(a, s) => format!("multiply(%{}, constant({s}))", a.0),
        Op::RngUniform => "rng-uniform(0, 1)".to_string(),
        Op::MatmulRight(a, k) => format!("dot(%{}, %{}), rhs_is_kernel", a.0, k.0),
        Op::MatmulLeft(k, a) => format!("dot(%{}, %{}), lhs_is_kernel", k.0, a.0),
        Op::Edge(a, axis, side) => {
            format!("slice(%{}), axis={}, side={}", a.0, axis_str(*axis), side_str(*side))
        }
        Op::AddEdge { input, edge, axis, side } => format!(
            "dynamic-update-add(%{}, %{}), axis={}, side={}",
            input.0,
            edge.0,
            axis_str(*axis),
            side_str(*side)
        ),
        Op::RollBatch(a, d0, d1) => format!("roll(%{}), batch_shifts=[{d0},{d1}]", a.0),
        Op::ConvPlus(a) => format!("convolution(%{}), kernel=plus3x3, padding=torus", a.0),
        Op::CollectivePermute(a, pairs) => {
            let pairs: Vec<String> = pairs.iter().map(|(s, d)| format!("{{{s},{d}}}")).collect();
            format!("collective-permute(%{}), source_target_pairs={{{}}}", a.0, pairs.join(","))
        }
    };
    format!("%{} = {shape} {body}", id.0)
}

/// Render the whole graph, one op per line, with root annotations.
pub fn print_graph(graph: &Graph, roots: &[Id]) -> String {
    let mut out = String::new();
    out.push_str(&format!("HloModule ising_step, entry_parameters={}\n", graph.param_count()));
    for idx in 0..graph.len() {
        let id = Id(idx);
        out.push_str("  ");
        out.push_str(&print_op(graph, id));
        if roots.contains(&id) {
            out.push_str("  // ROOT");
        }
        out.push('\n');
    }
    out
}

/// Structural-verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError(pub String);

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HLO verification failed: {}", self.0)
    }
}

impl std::error::Error for VerifyError {}

/// Verify structural invariants: topological operand order, dense
/// parameter indices, shape consistency of every op against re-inferred
/// shapes, and literal payload sizes.
pub fn verify(graph: &Graph) -> Result<(), VerifyError> {
    let mut param_indices = Vec::new();
    for idx in 0..graph.len() {
        let id = Id(idx);
        let node = graph.node(id);
        for op in graph.operands(id) {
            if op.0 >= idx {
                return Err(VerifyError(format!(
                    "op %{idx} references %{} (not topologically ordered)",
                    op.0
                )));
            }
        }
        match &node.op {
            Op::Parameter { index } => param_indices.push(*index),
            Op::Constant(lit) if lit.data.len() != node.shape.elements() => {
                return Err(VerifyError(format!(
                    "constant %{idx} payload {} != shape elements {}",
                    lit.data.len(),
                    node.shape.elements()
                )));
            }
            Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) | Op::Lt(a, b)
                if (graph.shape(*a) != graph.shape(*b) || graph.shape(*a) != node.shape) =>
            {
                return Err(VerifyError(format!("elementwise op %{idx} shape mismatch")));
            }
            Op::MatmulRight(a, k) => {
                let (sa, sk) = (graph.shape(*a), graph.shape(*k));
                if sa.dims[3] != sk.dims[2]
                    || node.shape.dims != [sa.dims[0], sa.dims[1], sa.dims[2], sk.dims[3]]
                {
                    return Err(VerifyError(format!("matmul_right %{idx} shape mismatch")));
                }
            }
            Op::MatmulLeft(k, a) => {
                let (sa, sk) = (graph.shape(*a), graph.shape(*k));
                if sk.dims[3] != sa.dims[2]
                    || node.shape.dims != [sa.dims[0], sa.dims[1], sk.dims[2], sa.dims[3]]
                {
                    return Err(VerifyError(format!("matmul_left %{idx} shape mismatch")));
                }
            }
            _ => {}
        }
    }
    param_indices.sort_unstable();
    for (want, got) in param_indices.iter().enumerate() {
        if want != *got {
            return Err(VerifyError(format!(
                "parameter indices not dense: expected {want}, found {got}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Literal, Shape};
    use tpu_ising_tensor::band_kernel;

    fn sample_graph() -> (Graph, Vec<Id>) {
        let mut g = Graph::new();
        let p = g.parameter(Shape::new([1, 1, 4, 4], Dtype::F32));
        let k = g.constant_mat(&band_kernel::<f32>(4), Dtype::F32);
        let mm = g.matmul_right(p, k);
        let e = g.exp(mm);
        (g, vec![e])
    }

    #[test]
    fn printer_emits_one_line_per_op() {
        let (g, roots) = sample_graph();
        let text = print_graph(&g, &roots);
        assert_eq!(text.lines().count(), 1 + g.len());
        assert!(text.contains("HloModule"));
        assert!(text.contains("%0 = f32[1,1,4,4] parameter(0)"));
        assert!(text.contains("dot(%0, %1)"));
        assert!(text.contains("// ROOT"));
    }

    #[test]
    fn printer_is_deterministic() {
        let (g, roots) = sample_graph();
        assert_eq!(print_graph(&g, &roots), print_graph(&g, &roots));
    }

    #[test]
    fn verifier_accepts_builder_output() {
        let (g, _) = sample_graph();
        assert!(verify(&g).is_ok());
    }

    #[test]
    fn verifier_accepts_the_full_ising_graph() {
        // (the core crate builds it; here a moderately rich graph suffices)
        let mut g = Graph::new();
        let shape = Shape::new([2, 2, 4, 4], Dtype::Bf16);
        let p = g.parameter(shape);
        let q = g.parameter(shape);
        let r = g.rng_uniform(shape);
        let s = g.add(p, q);
        let n = g.mul_scalar(s, -0.5);
        let e = g.exp(n);
        let lt = g.lt(r, e);
        let rolled = g.roll_batch(lt, 1, -1);
        let edge = g.edge(rolled, Axis::Row, Side::Last);
        let _comp = g.add_edge(lt, edge, Axis::Row, Side::First);
        assert!(verify(&g).is_ok());
    }

    #[test]
    fn verifier_rejects_corrupt_literal() {
        let mut g = Graph::new();
        // bypass the builder's checks by constructing a bad literal via
        // the public constant() API is impossible (it asserts), so verify
        // catches the same class on a hand-built graph: simulate by
        // checking the error type is constructible and display works.
        let err = VerifyError("test".into());
        assert!(err.to_string().contains("test"));
        let lit = Literal { dims: [1, 1, 2, 2], data: vec![0.0; 4] };
        let _ = g.constant(lit, Dtype::F32);
        assert!(verify(&g).is_ok());
    }
}
