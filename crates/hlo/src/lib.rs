//! HLO-lite: a miniature of the XLA High Level Optimizer IR.
//!
//! The paper's program is not hand-written TPU code — it is a TensorFlow
//! graph that XLA compiles (graph → HLO → passes → device code, §2 Fig. 2).
//! This crate reproduces that software shape at small scale:
//!
//! - [`Graph`]: an SSA op graph with shape inference at construction,
//!   covering exactly the op vocabulary the Ising step needs (batched
//!   matmul with a fixed kernel, edge slice/compensate, roll, element-wise
//!   math, RNG, collective-permute).
//! - [`passes`]: dead-code elimination, constant folding, and element-wise
//!   fusion analysis — the cost model uses fusion groups to discount HBM
//!   round-trips for fused producers/consumers, mirroring why the real
//!   XLA's fused element-wise chains don't pay per-op memory traffic.
//! - [`interp`]: an interpreter executing the graph on [`Tensor4`] values
//!   at either precision, drawing RNG from a Philox stream.
//! - [`cost`]: a per-op walker that converts the graph into modeled device
//!   time spans ([`tpu_ising_device::Trace`]) — the profiler view of
//!   Table 3 built from the program itself.
//!
//! `tpu-ising-core` builds the checkerboard update step as one of these
//! graphs and the equivalence tests check the interpreted graph makes
//! bit-identical flip decisions with the direct implementation.

pub mod cost;
pub mod graph;
pub mod interp;
pub mod passes;
pub mod printer;

pub use graph::{Dtype, Graph, Id, Literal, Op, Shape};
pub use interp::evaluate;

pub use tpu_ising_tensor::{Axis, Side, Tensor4};
