//! Graph interpreter over [`Tensor4`] values.

use crate::graph::{Graph, Id, Op};
use tpu_ising_bf16::Scalar;
use tpu_ising_rng::{PhiloxStream, RandomUniform};
use tpu_ising_tensor::Tensor4;

/// Execute `graph`, feeding `params` (in parameter-index order) and drawing
/// RNG from `stream`, and return the values of `outputs`.
///
/// The whole graph executes at precision `S` — the graph's `Dtype`
/// annotations drive the cost model, while the interpreter's arithmetic
/// precision is picked by the caller's type parameter (the paper's "same
/// graph, either dtype" workflow). `CollectivePermute` is evaluated as
/// identity: the single-process interpreter models one core, which in a
/// full-shift permute both sends and receives its own grid.
pub fn evaluate<S: Scalar + RandomUniform>(
    graph: &Graph,
    params: &[Tensor4<S>],
    stream: &mut PhiloxStream,
    outputs: &[Id],
) -> Vec<Tensor4<S>> {
    let mut values: Vec<Option<Tensor4<S>>> = vec![None; graph.len()];
    for idx in 0..graph.len() {
        let id = Id(idx);
        let node = graph.node(id);
        let get = |i: Id, values: &Vec<Option<Tensor4<S>>>| -> Tensor4<S> {
            values[i.0].clone().expect("topological order violated")
        };
        let v: Tensor4<S> = match &node.op {
            Op::Parameter { index } => {
                let p = params.get(*index).unwrap_or_else(|| panic!("missing parameter {index}"));
                assert_eq!(p.shape(), node.shape.dims, "parameter {index} shape mismatch");
                p.clone()
            }
            Op::Constant(lit) => {
                let data: Vec<S> = lit.data.iter().map(|&x| S::from_f32(x)).collect();
                Tensor4::from_vec(lit.dims, data)
            }
            Op::Add(a, b) => get(*a, &values).zip_map(&get(*b, &values), |x, y| x + y),
            Op::Sub(a, b) => get(*a, &values).zip_map(&get(*b, &values), |x, y| x - y),
            Op::Mul(a, b) => get(*a, &values).zip_map(&get(*b, &values), |x, y| x * y),
            Op::Neg(a) => get(*a, &values).map(|x| -x),
            Op::Exp(a) => get(*a, &values).map(|x| x.exp()),
            Op::Lt(a, b) => get(*a, &values).zip_map(&get(*b, &values), |x, y| {
                if x < y {
                    S::one()
                } else {
                    S::zero()
                }
            }),
            Op::MulScalar(a, s) => {
                let s = S::from_f32(*s as f32);
                get(*a, &values).map(|x| x * s)
            }
            Op::RngUniform => {
                let n = node.shape.elements();
                let mut data = vec![S::zero(); n];
                stream.fill_uniform(&mut data);
                Tensor4::from_vec(node.shape.dims, data)
            }
            Op::MatmulRight(a, k) => {
                let kt = get(*k, &values);
                let [_, _, r, c] = kt.shape();
                let km = tpu_ising_tensor::Mat::from_vec(r, c, kt.data().to_vec());
                get(*a, &values).matmul_right(&km)
            }
            Op::MatmulLeft(k, a) => {
                let kt = get(*k, &values);
                let [_, _, r, c] = kt.shape();
                let km = tpu_ising_tensor::Mat::from_vec(r, c, kt.data().to_vec());
                get(*a, &values).matmul_left(&km)
            }
            Op::Edge(a, axis, side) => get(*a, &values).edge(*axis, *side),
            Op::AddEdge { input, edge, axis, side } => {
                let mut t = get(*input, &values);
                t.add_edge_assign(*axis, *side, &get(*edge, &values));
                t
            }
            Op::RollBatch(a, d0, d1) => get(*a, &values).roll_batch(*d0, *d1),
            Op::CollectivePermute(a, _) => get(*a, &values),
            Op::ConvPlus(a) => {
                // whole-lattice plus-kernel conv with torus wrap: stitch the
                // tiles into the logical plane, convolve, re-tile.
                let t = get(*a, &values);
                let tile = t.shape()[2];
                let plane = tpu_ising_tensor::Plane::from_tiles(&t);
                plane.neighbor_sum_periodic().to_tiles(tile)
            }
        };
        assert_eq!(v.shape(), node.shape.dims, "op {idx} produced wrong shape");
        values[idx] = Some(v);
    }
    outputs.iter().map(|o| values[o.0].clone().expect("output not computed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Dtype, Shape};
    use tpu_ising_bf16::Bf16;
    use tpu_ising_tensor::{band_kernel, Axis, Side};

    fn shape() -> Shape {
        Shape::new([1, 2, 4, 4], Dtype::F32)
    }

    fn input() -> Tensor4<f32> {
        Tensor4::from_fn([1, 2, 4, 4], |b0, b1, r, c| {
            ((b0 * 7 + b1 * 5 + r * 3 + c) % 11) as f32 - 5.0
        })
    }

    #[test]
    fn elementwise_pipeline() {
        let mut g = Graph::new();
        let p = g.parameter(shape());
        let n = g.neg(p);
        let s = g.mul_scalar(n, 0.5);
        let e = g.exp(s);
        let mut rng = PhiloxStream::from_seed(0);
        let out = evaluate(&g, &[input()], &mut rng, &[e]);
        let expect = input().map(|x| (-x * 0.5).exp());
        assert_eq!(out[0], expect);
    }

    #[test]
    fn matmul_matches_tensor_op() {
        let mut g = Graph::new();
        let p = g.parameter(shape());
        let k = g.constant_mat(&band_kernel::<f32>(4), Dtype::F32);
        let right = g.matmul_right(p, k);
        let left = g.matmul_left(k, p);
        let sum = g.add(right, left);
        let mut rng = PhiloxStream::from_seed(0);
        let out = evaluate(&g, &[input()], &mut rng, &[sum]);
        let kk = band_kernel::<f32>(4);
        let mut expect = input().matmul_right(&kk);
        expect.add_assign(&input().matmul_left(&kk));
        assert_eq!(out[0], expect);
    }

    #[test]
    fn edge_and_roll_ops() {
        let mut g = Graph::new();
        let p = g.parameter(shape());
        let rolled = g.roll_batch(p, 0, 1);
        let e = g.edge(rolled, Axis::Col, Side::Last);
        let comp = g.add_edge(p, e, Axis::Col, Side::First);
        let mut rng = PhiloxStream::from_seed(0);
        let out = evaluate(&g, &[input()], &mut rng, &[comp]);
        let mut expect = input();
        let rolled = input().roll_batch(0, 1);
        let edge = rolled.edge(Axis::Col, Side::Last);
        expect.add_edge_assign(Axis::Col, Side::First, &edge);
        assert_eq!(out[0], expect);
    }

    #[test]
    fn rng_uniform_matches_stream_order() {
        let mut g = Graph::new();
        let r = g.rng_uniform(shape());
        let mut rng = PhiloxStream::from_seed(99);
        let out = evaluate::<f32>(&g, &[], &mut rng, &[r]);
        let mut rng2 = PhiloxStream::from_seed(99);
        let expect = tpu_ising_rng::uniform_vec::<f32>(&mut rng2, 32);
        assert_eq!(out[0].data(), &expect[..]);
    }

    #[test]
    fn lt_produces_indicator() {
        let mut g = Graph::new();
        let a = g.parameter(shape());
        let b = g.parameter(shape());
        let lt = g.lt(a, b);
        let mut rng = PhiloxStream::from_seed(0);
        let x = input();
        let y = input().map(|v| v + 1.0);
        let out = evaluate(&g, &[x.clone(), y], &mut rng, &[lt]);
        assert!(out[0].data().iter().all(|&v| v == 1.0));
        let out2 = evaluate(&g, &[x.clone(), x], &mut rng, &[lt]);
        assert!(out2[0].data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn collective_permute_is_identity_single_process() {
        let mut g = Graph::new();
        let p = g.parameter(shape());
        let cp = g.collective_permute(p, vec![(0, 0)]);
        let mut rng = PhiloxStream::from_seed(0);
        let out = evaluate(&g, &[input()], &mut rng, &[cp]);
        assert_eq!(out[0], input());
    }

    #[test]
    fn bf16_execution_rounds() {
        let mut g = Graph::new();
        let p = g.parameter(Shape::new([1, 1, 1, 4], Dtype::Bf16));
        let s = g.mul_scalar(p, 1.0);
        let mut rng = PhiloxStream::from_seed(0);
        let x = Tensor4::<Bf16>::from_fn([1, 1, 1, 4], |_, _, _, c| Bf16::from_f32(c as f32));
        let out = evaluate(&g, std::slice::from_ref(&x), &mut rng, &[s]);
        assert_eq!(out[0], x);
    }

    #[test]
    fn multiple_outputs() {
        let mut g = Graph::new();
        let p = g.parameter(shape());
        let n = g.neg(p);
        let e = g.exp(p);
        let mut rng = PhiloxStream::from_seed(0);
        let out = evaluate(&g, &[input()], &mut rng, &[n, e, p]);
        assert_eq!(out.len(), 3);
        assert_eq!(out[2], input());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_parameter_shape_panics() {
        let mut g = Graph::new();
        let p = g.parameter(shape());
        let mut rng = PhiloxStream::from_seed(0);
        let bad = Tensor4::<f32>::zeros([1, 1, 4, 4]);
        let _ = evaluate(&g, &[bad], &mut rng, &[p]);
    }
}
