//! Op definitions, shapes, and the shape-inferring graph builder.

use tpu_ising_tensor::{Axis, Mat, Side};

/// Element type of a tensor in the graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dtype {
    /// 32-bit IEEE float.
    F32,
    /// bfloat16.
    Bf16,
}

impl Dtype {
    /// Storage bytes per element.
    pub fn bytes(self) -> usize {
        match self {
            Dtype::F32 => 4,
            Dtype::Bf16 => 2,
        }
    }
}

/// A rank-4 tensor shape plus element type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shape {
    /// Dimensions `[b0, b1, r, c]`.
    pub dims: [usize; 4],
    /// Element type.
    pub dtype: Dtype,
}

impl Shape {
    /// Construct a shape.
    pub fn new(dims: [usize; 4], dtype: Dtype) -> Shape {
        Shape { dims, dtype }
    }

    /// Number of elements.
    pub fn elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// Storage bytes.
    pub fn bytes(&self) -> usize {
        self.elements() * self.dtype.bytes()
    }
}

/// A handle to an op in a [`Graph`] (SSA value id).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Id(pub usize);

/// A constant tensor payload, stored at f32 and cast to the graph dtype at
/// execution (exact for the ±1/0/1 band-kernel values we embed).
#[derive(Clone, Debug, PartialEq)]
pub struct Literal {
    /// Dimensions `[b0, b1, r, c]`.
    pub dims: [usize; 4],
    /// Row-major data.
    pub data: Vec<f32>,
}

/// The op vocabulary — the subset of HLO the Ising step exercises.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Graph input, fed at execution time.
    Parameter {
        /// Position in the argument list.
        index: usize,
    },
    /// Embedded constant tensor (the band kernels).
    Constant(Literal),
    /// Element-wise addition.
    Add(Id, Id),
    /// Element-wise subtraction.
    Sub(Id, Id),
    /// Element-wise multiplication.
    Mul(Id, Id),
    /// Element-wise negation.
    Neg(Id),
    /// Element-wise exponential.
    Exp(Id),
    /// Element-wise `lhs < rhs`, producing 0.0/1.0 at the graph dtype.
    Lt(Id, Id),
    /// Multiply every element by a host scalar (e.g. `−2β`).
    MulScalar(Id, f64),
    /// `tf.random_uniform`: uniforms in `[0, 1)` at the graph dtype.
    RngUniform,
    /// Batched `A · K` where `K` is a `[1, 1, t, t2]` operand applied to
    /// each sub-lattice of `A`.
    MatmulRight(Id, Id),
    /// Batched `K · A`.
    MatmulLeft(Id, Id),
    /// Slice the boundary plane of each sub-lattice.
    Edge(Id, Axis, Side),
    /// Add an edge tensor onto the boundary plane (Algorithm 1 lines 3–6).
    AddEdge {
        /// The tensor whose boundary is compensated.
        input: Id,
        /// The edge tensor (shape `[m, n, 1, c]` or `[m, n, r, 1]`).
        edge: Id,
        /// Boundary axis.
        axis: Axis,
        /// Boundary side.
        side: Side,
    },
    /// Torus roll of the sub-lattice grid (batch dims) by `(d0, d1)`.
    RollBatch(Id, isize, isize),
    /// XLA `CollectivePermute` over a source→destination pair list. The
    /// single-process interpreter treats it as identity (one core both
    /// sends and receives its own grid); the cost walker charges the mesh
    /// model.
    CollectivePermute(Id, Vec<(usize, usize)>),
    /// `tf.nn.conv2d` with the plus-shaped nearest-neighbor kernel over the
    /// *whole tiled lattice* with torus wrap — the appendix
    /// implementation's workhorse ("tf.nn.convol2D is used, instead of
    /// batch multiplication").
    ConvPlus(Id),
}

/// One node: an op plus its inferred output shape.
#[derive(Clone, Debug)]
pub struct Node {
    /// The operation.
    pub op: Op,
    /// Inferred output shape.
    pub shape: Shape,
}

/// An SSA op graph with shape inference at insertion time.
///
/// Ids index into insertion order, which is also a topological order
/// (ops only reference earlier ids).
#[derive(Clone, Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    n_params: usize,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of parameters added so far.
    pub fn param_count(&self) -> usize {
        self.n_params
    }

    /// The node behind an id.
    pub fn node(&self, id: Id) -> &Node {
        &self.nodes[id.0]
    }

    /// The inferred shape of an id.
    pub fn shape(&self, id: Id) -> Shape {
        self.nodes[id.0].shape
    }

    /// All nodes in topological (insertion) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    fn push(&mut self, op: Op, shape: Shape) -> Id {
        self.nodes.push(Node { op, shape });
        Id(self.nodes.len() - 1)
    }

    fn expect_same(&self, a: Id, b: Id, what: &str) -> Shape {
        let (sa, sb) = (self.shape(a), self.shape(b));
        assert_eq!(sa, sb, "{what}: operand shapes differ ({sa:?} vs {sb:?})");
        sa
    }

    /// Add a parameter of the given shape.
    pub fn parameter(&mut self, shape: Shape) -> Id {
        let index = self.n_params;
        self.n_params += 1;
        self.push(Op::Parameter { index }, shape)
    }

    /// Embed a constant from a rank-2 matrix as a `[1, 1, r, c]` operand.
    pub fn constant_mat(&mut self, m: &Mat<f32>, dtype: Dtype) -> Id {
        let lit = Literal { dims: [1, 1, m.rows(), m.cols()], data: m.data().to_vec() };
        let shape = Shape::new(lit.dims, dtype);
        self.push(Op::Constant(lit), shape)
    }

    /// Embed an arbitrary constant literal.
    pub fn constant(&mut self, lit: Literal, dtype: Dtype) -> Id {
        let shape = Shape::new(lit.dims, dtype);
        assert_eq!(lit.data.len(), shape.elements(), "literal length mismatch");
        self.push(Op::Constant(lit), shape)
    }

    /// Element-wise `a + b`.
    pub fn add(&mut self, a: Id, b: Id) -> Id {
        let s = self.expect_same(a, b, "add");
        self.push(Op::Add(a, b), s)
    }

    /// Element-wise `a - b`.
    pub fn sub(&mut self, a: Id, b: Id) -> Id {
        let s = self.expect_same(a, b, "sub");
        self.push(Op::Sub(a, b), s)
    }

    /// Element-wise `a * b`.
    pub fn mul(&mut self, a: Id, b: Id) -> Id {
        let s = self.expect_same(a, b, "mul");
        self.push(Op::Mul(a, b), s)
    }

    /// Element-wise `-a`.
    pub fn neg(&mut self, a: Id) -> Id {
        let s = self.shape(a);
        self.push(Op::Neg(a), s)
    }

    /// Element-wise `exp(a)`.
    pub fn exp(&mut self, a: Id) -> Id {
        let s = self.shape(a);
        self.push(Op::Exp(a), s)
    }

    /// Element-wise `a < b` as 0.0 / 1.0.
    pub fn lt(&mut self, a: Id, b: Id) -> Id {
        let s = self.expect_same(a, b, "lt");
        self.push(Op::Lt(a, b), s)
    }

    /// `a * scalar`.
    pub fn mul_scalar(&mut self, a: Id, scalar: f64) -> Id {
        let s = self.shape(a);
        self.push(Op::MulScalar(a, scalar), s)
    }

    /// A tensor of uniforms in `[0, 1)`.
    pub fn rng_uniform(&mut self, shape: Shape) -> Id {
        self.push(Op::RngUniform, shape)
    }

    /// Batched `a · k` (k is `[1, 1, t, t2]`, `t` must equal `a`'s last dim).
    pub fn matmul_right(&mut self, a: Id, k: Id) -> Id {
        let sa = self.shape(a);
        let sk = self.shape(k);
        assert_eq!(sa.dtype, sk.dtype, "matmul dtype mismatch");
        assert_eq!(sk.dims[0], 1, "kernel must be [1,1,t,t2]");
        assert_eq!(sk.dims[1], 1, "kernel must be [1,1,t,t2]");
        assert_eq!(sa.dims[3], sk.dims[2], "matmul_right inner dimension");
        let dims = [sa.dims[0], sa.dims[1], sa.dims[2], sk.dims[3]];
        self.push(Op::MatmulRight(a, k), Shape::new(dims, sa.dtype))
    }

    /// Batched `k · a`.
    pub fn matmul_left(&mut self, k: Id, a: Id) -> Id {
        let sa = self.shape(a);
        let sk = self.shape(k);
        assert_eq!(sa.dtype, sk.dtype, "matmul dtype mismatch");
        assert_eq!(sk.dims[0], 1, "kernel must be [1,1,t2,t]");
        assert_eq!(sk.dims[1], 1, "kernel must be [1,1,t2,t]");
        assert_eq!(sk.dims[3], sa.dims[2], "matmul_left inner dimension");
        let dims = [sa.dims[0], sa.dims[1], sk.dims[2], sa.dims[3]];
        self.push(Op::MatmulLeft(k, a), Shape::new(dims, sa.dtype))
    }

    /// Boundary-plane slice.
    pub fn edge(&mut self, a: Id, axis: Axis, side: Side) -> Id {
        let s = self.shape(a);
        let dims = match axis {
            Axis::Row => [s.dims[0], s.dims[1], 1, s.dims[3]],
            Axis::Col => [s.dims[0], s.dims[1], s.dims[2], 1],
        };
        self.push(Op::Edge(a, axis, side), Shape::new(dims, s.dtype))
    }

    /// Boundary-plane compensation.
    pub fn add_edge(&mut self, input: Id, edge: Id, axis: Axis, side: Side) -> Id {
        let s = self.shape(input);
        let se = self.shape(edge);
        let expect = match axis {
            Axis::Row => [s.dims[0], s.dims[1], 1, s.dims[3]],
            Axis::Col => [s.dims[0], s.dims[1], s.dims[2], 1],
        };
        assert_eq!(se.dims, expect, "add_edge: edge shape mismatch");
        assert_eq!(se.dtype, s.dtype, "add_edge dtype mismatch");
        self.push(Op::AddEdge { input, edge, axis, side }, s)
    }

    /// Torus roll of the batch grid.
    pub fn roll_batch(&mut self, a: Id, d0: isize, d1: isize) -> Id {
        let s = self.shape(a);
        self.push(Op::RollBatch(a, d0, d1), s)
    }

    /// Collective permute across cores.
    pub fn collective_permute(&mut self, a: Id, pairs: Vec<(usize, usize)>) -> Id {
        let s = self.shape(a);
        self.push(Op::CollectivePermute(a, pairs), s)
    }

    /// Plus-kernel convolution over the whole tiled lattice (torus wrap).
    /// Requires square tiles.
    pub fn conv_plus(&mut self, a: Id) -> Id {
        let s = self.shape(a);
        assert_eq!(s.dims[2], s.dims[3], "conv_plus needs square tiles");
        self.push(Op::ConvPlus(a), s)
    }

    /// The ids an op consumes.
    pub fn operands(&self, id: Id) -> Vec<Id> {
        match &self.node(id).op {
            Op::Parameter { .. } | Op::Constant(_) | Op::RngUniform => vec![],
            Op::Neg(a)
            | Op::Exp(a)
            | Op::MulScalar(a, _)
            | Op::Edge(a, _, _)
            | Op::RollBatch(a, _, _)
            | Op::CollectivePermute(a, _)
            | Op::ConvPlus(a) => vec![*a],
            Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) | Op::Lt(a, b) => vec![*a, *b],
            Op::MatmulRight(a, k) => vec![*a, *k],
            Op::MatmulLeft(k, a) => vec![*k, *a],
            Op::AddEdge { input, edge, .. } => vec![*input, *edge],
        }
    }

    /// `true` if the op is element-wise (fusable).
    pub fn is_elementwise(&self, id: Id) -> bool {
        matches!(
            self.node(id).op,
            Op::Add(..)
                | Op::Sub(..)
                | Op::Mul(..)
                | Op::Neg(..)
                | Op::Exp(..)
                | Op::Lt(..)
                | Op::MulScalar(..)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_ising_tensor::band_kernel;

    fn lattice_shape() -> Shape {
        Shape::new([2, 3, 8, 8], Dtype::F32)
    }

    #[test]
    fn shapes_infer_through_elementwise() {
        let mut g = Graph::new();
        let p = g.parameter(lattice_shape());
        let q = g.parameter(lattice_shape());
        let s = g.add(p, q);
        let e = g.exp(s);
        assert_eq!(g.shape(e), lattice_shape());
        assert_eq!(g.param_count(), 2);
    }

    #[test]
    fn matmul_right_shape() {
        let mut g = Graph::new();
        let p = g.parameter(lattice_shape());
        let k = g.constant_mat(&band_kernel::<f32>(8), Dtype::F32);
        let o = g.matmul_right(p, k);
        assert_eq!(g.shape(o).dims, [2, 3, 8, 8]);
    }

    #[test]
    fn matmul_left_shape_with_rect_kernel() {
        let mut g = Graph::new();
        let p = g.parameter(Shape::new([1, 1, 4, 6], Dtype::F32));
        let k = g.constant(Literal { dims: [1, 1, 5, 4], data: vec![0.0; 20] }, Dtype::F32);
        let o = g.matmul_left(k, p);
        assert_eq!(g.shape(o).dims, [1, 1, 5, 6]);
    }

    #[test]
    fn edge_shapes() {
        let mut g = Graph::new();
        let p = g.parameter(lattice_shape());
        let er = g.edge(p, Axis::Row, Side::First);
        let ec = g.edge(p, Axis::Col, Side::Last);
        assert_eq!(g.shape(er).dims, [2, 3, 1, 8]);
        assert_eq!(g.shape(ec).dims, [2, 3, 8, 1]);
    }

    #[test]
    fn add_edge_requires_matching_edge_shape() {
        let mut g = Graph::new();
        let p = g.parameter(lattice_shape());
        let e = g.edge(p, Axis::Row, Side::First);
        let o = g.add_edge(p, e, Axis::Row, Side::Last);
        assert_eq!(g.shape(o), lattice_shape());
    }

    #[test]
    #[should_panic(expected = "edge shape mismatch")]
    fn add_edge_axis_mismatch_panics() {
        let mut g = Graph::new();
        let p = g.parameter(lattice_shape());
        let e = g.edge(p, Axis::Row, Side::First);
        let _ = g.add_edge(p, e, Axis::Col, Side::First);
    }

    #[test]
    #[should_panic(expected = "operand shapes differ")]
    fn mismatched_add_panics() {
        let mut g = Graph::new();
        let p = g.parameter(lattice_shape());
        let q = g.parameter(Shape::new([2, 3, 8, 9], Dtype::F32));
        let _ = g.add(p, q);
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn mismatched_matmul_panics() {
        let mut g = Graph::new();
        let p = g.parameter(lattice_shape());
        let k = g.constant(Literal { dims: [1, 1, 7, 7], data: vec![0.0; 49] }, Dtype::F32);
        let _ = g.matmul_right(p, k);
    }

    #[test]
    fn operands_enumeration() {
        let mut g = Graph::new();
        let p = g.parameter(lattice_shape());
        let q = g.parameter(lattice_shape());
        let s = g.add(p, q);
        let n = g.neg(s);
        assert_eq!(g.operands(p), vec![]);
        assert_eq!(g.operands(s), vec![p, q]);
        assert_eq!(g.operands(n), vec![s]);
    }

    #[test]
    fn elementwise_classification() {
        let mut g = Graph::new();
        let p = g.parameter(lattice_shape());
        let k = g.constant_mat(&band_kernel::<f32>(8), Dtype::F32);
        let mm = g.matmul_right(p, k);
        let e = g.exp(mm);
        assert!(!g.is_elementwise(p));
        assert!(!g.is_elementwise(mm));
        assert!(g.is_elementwise(e));
    }

    #[test]
    fn ids_are_topologically_ordered() {
        let mut g = Graph::new();
        let p = g.parameter(lattice_shape());
        let e = g.exp(p);
        let n = g.neg(e);
        for id in [p, e, n] {
            for op in g.operands(id) {
                assert!(op < id);
            }
        }
    }
}
