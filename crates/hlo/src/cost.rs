//! Per-op cost analysis: the modeled profiler view of a graph.
//!
//! Walks a graph and charges each op to the hardware unit that executes it
//! (MXU / VPU / formatting / interconnect) using the calibrated sustained
//! rates from [`tpu_ising_device::calib`]. Element-wise chains identified
//! by [`crate::passes::fusion_groups`] are charged as single fused loops.
//! The result is a [`Trace`] — the same structure the benchmark harness
//! aggregates into the paper's Table 3.

use crate::graph::{Graph, Id, Op};
use crate::passes::fusion_groups;
use tpu_ising_device::calib;
use tpu_ising_device::cost::collective_permute_time;
use tpu_ising_device::trace::{SpanKind, Trace};

/// Relative VPU weight of one element of each element-wise op.
fn ew_weight(op: &Op) -> f64 {
    match op {
        // Transcendentals run through the extended vector unit.
        Op::Exp(_) => 4.0,
        _ => 1.0,
    }
}

/// Walk `graph` (with `roots` as the live outputs) on a mesh of `cores`
/// cores and record one modeled span per op (or per fused group) into a
/// fresh [`Trace`].
pub fn analyze(graph: &Graph, roots: &[Id], cores: usize) -> Trace {
    let trace = Trace::new();
    let groups = fusion_groups(graph, roots);
    for group in &groups {
        let head = group[0];
        let node = graph.node(head);
        if group.len() > 1 || graph.is_elementwise(head) {
            // A fused element-wise loop: VPU time is the sum of weighted
            // element counts; HBM traffic (not modeled per-op here) would
            // be inputs + final output only.
            let elems: f64 = group
                .iter()
                .map(|id| graph.shape(*id).elements() as f64 * ew_weight(&graph.node(*id).op))
                .sum();
            let label = if group.len() > 1 {
                format!("fusion[{}ops]@{}", group.len(), head.0)
            } else {
                format!("elementwise@{}", head.0)
            };
            trace.record(SpanKind::Vpu, label, elems / calib::VPU_SUSTAINED_ELEMS);
            continue;
        }
        match &node.op {
            Op::Parameter { .. } | Op::Constant(_) => {
                // Materialized before the step; no device time.
            }
            Op::RngUniform => {
                let elems = node.shape.elements() as f64;
                trace.record(
                    SpanKind::Vpu,
                    format!("rng-uniform@{}", head.0),
                    elems * calib::RNG_OPS_PER_UNIFORM / calib::VPU_SUSTAINED_ELEMS,
                );
            }
            Op::ConvPlus(a) => {
                // XLA lowers the conv to patch dot-products on the MXU:
                // 3x3 kernel => 9 MACs per output element (zeros included;
                // the systolic array cannot skip them).
                let mut macs = node.shape.elements() as f64 * 9.0;
                if graph.shape(*a).dtype.bytes() == 4 {
                    macs *= calib::MXU_F32_PASSES;
                }
                trace.record(
                    SpanKind::Mxu,
                    format!("conv-plus@{}", head.0),
                    macs / calib::MXU_SUSTAINED_MACS,
                );
            }
            Op::MatmulRight(a, k) | Op::MatmulLeft(k, a) => {
                let sa = graph.shape(*a);
                let sk = graph.shape(*k);
                // Output elements × contraction length.
                let out_elems = node.shape.elements() as f64;
                let kdim = match node.op {
                    Op::MatmulRight(..) => sk.dims[2],
                    _ => sk.dims[3],
                } as f64;
                let mut macs = out_elems * kdim;
                if sa.dtype.bytes() == 4 {
                    macs *= calib::MXU_F32_PASSES;
                }
                trace.record(
                    SpanKind::Mxu,
                    format!("matmul@{}", head.0),
                    macs / calib::MXU_SUSTAINED_MACS,
                );
            }
            Op::Edge(..) | Op::AddEdge { .. } | Op::RollBatch(..) => {
                // Data formatting: bytes read + written.
                let out_bytes = node.shape.bytes() as f64;
                let in_bytes: f64 =
                    graph.operands(head).iter().map(|o| graph.shape(*o).bytes() as f64).sum();
                trace.record(
                    SpanKind::Format,
                    format!("format@{}", head.0),
                    (out_bytes + in_bytes) / calib::FMT_RATE_BYTES,
                );
            }
            Op::CollectivePermute(a, _) => {
                let bytes = graph.shape(*a).bytes() as f64;
                trace.record(
                    SpanKind::CollectivePermute,
                    format!("collective-permute@{}", head.0),
                    collective_permute_time(cores, bytes),
                );
            }
            // Element-wise ops were handled by the fusion branch above.
            _ => unreachable!("unhandled op in cost walker"),
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Dtype, Shape};
    use tpu_ising_tensor::{band_kernel, Axis, Side};

    fn big_shape() -> Shape {
        Shape::new([8, 8, 128, 128], Dtype::Bf16)
    }

    #[test]
    fn matmul_dominates_a_matmul_heavy_graph() {
        let mut g = Graph::new();
        let p = g.parameter(big_shape());
        let k = g.constant_mat(&band_kernel::<f32>(128), Dtype::Bf16);
        let a = g.matmul_right(p, k);
        let b = g.matmul_left(k, p);
        let s = g.add(a, b);
        let t = analyze(&g, &[s], 1);
        let bd = t.breakdown();
        assert!(bd.mxu > bd.vpu);
        assert!(bd.mxu > bd.format);
        // two matmuls of 8·8·128·128·128 MACs each
        let macs = 2.0 * (8 * 8 * 128 * 128 * 128) as f64;
        let expect = macs / calib::MXU_SUSTAINED_MACS;
        assert!((bd.mxu - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn f32_matmul_charges_extra_passes() {
        let mk = |dtype| {
            let mut g = Graph::new();
            let p = g.parameter(Shape::new([1, 1, 128, 128], dtype));
            let k = g.constant_mat(&band_kernel::<f32>(128), dtype);
            let a = g.matmul_right(p, k);
            analyze(&g, &[a], 1).breakdown().mxu
        };
        let bf = mk(Dtype::Bf16);
        let f32t = mk(Dtype::F32);
        assert!((f32t / bf - calib::MXU_F32_PASSES).abs() < 1e-9);
    }

    #[test]
    fn fused_chain_is_one_span() {
        let mut g = Graph::new();
        let p = g.parameter(big_shape());
        let a = g.neg(p);
        let b = g.mul_scalar(a, 2.0);
        let c = g.exp(b);
        let t = analyze(&g, &[c], 1);
        assert_eq!(t.len(), 1, "one fused span, parameters free");
        let bd = t.breakdown();
        let elems = big_shape().elements() as f64;
        let expect = elems * (1.0 + 1.0 + 4.0) / calib::VPU_SUSTAINED_ELEMS;
        assert!((bd.vpu - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn rng_charges_vpu() {
        let mut g = Graph::new();
        let r = g.rng_uniform(big_shape());
        let t = analyze(&g, &[r], 1);
        let bd = t.breakdown();
        let expect =
            big_shape().elements() as f64 * calib::RNG_OPS_PER_UNIFORM / calib::VPU_SUSTAINED_ELEMS;
        assert!((bd.vpu - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn edges_charge_formatting_and_cp_charges_network() {
        let mut g = Graph::new();
        let p = g.parameter(big_shape());
        let e = g.edge(p, Axis::Row, Side::First);
        let cp = g.collective_permute(e, vec![(0, 1), (1, 0)]);
        let comp = g.add_edge(p, cp, Axis::Row, Side::Last);
        let t = analyze(&g, &[comp], 32);
        let bd = t.breakdown();
        assert!(bd.format > 0.0);
        assert!(bd.collective_permute > 0.0);
        assert_eq!(bd.mxu, 0.0);
        // cp time matches the device model for the edge payload on 32 cores
        let edge_bytes = (8 * 8 * 128 * 2) as f64;
        let expect = collective_permute_time(32, edge_bytes);
        assert!((bd.collective_permute - expect).abs() < 1e-12);
    }

    #[test]
    fn parameters_and_constants_are_free() {
        let mut g = Graph::new();
        let _p = g.parameter(big_shape());
        let _k = g.constant_mat(&band_kernel::<f32>(128), Dtype::Bf16);
        let t = analyze(&g, &[], 1);
        assert!(t.is_empty());
    }
}
