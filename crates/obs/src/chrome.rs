//! Chrome trace-event JSON export — load the file in `chrome://tracing`
//! or <https://ui.perfetto.dev> to get the measured analogue of the
//! paper's Fig. 6 trace-viewer timeline, one named row per SPMD core.
//!
//! Format reference: the Trace Event Format's complete (`"ph":"X"`)
//! events with `ts`/`dur` in microseconds, plus `"M"` metadata records
//! naming the process and threads.

use crate::json::{escape, micros};
use crate::span::TraceSnapshot;

/// Render a snapshot as a Chrome trace-event JSON document.
///
/// Tracks become threads of a single process `process_name`; each span
/// becomes one complete event with its [`SpanKind`](crate::SpanKind) as
/// the category and its nesting depth in `args`.
pub fn chrome_trace_json(snapshot: &TraceSnapshot, process_name: &str) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[\n");
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(process_name)
    ));
    for (tid, track) in snapshot.tracks.iter().enumerate() {
        out.push_str(&format!(
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(track)
        ));
    }
    for s in &snapshot.spans {
        let cat = match s.kind {
            Some(k) => format!("{k:?}"),
            None => "span".to_string(),
        };
        out.push_str(&format!(
            ",\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\
             \"ts\":{},\"dur\":{},\"args\":{{\"depth\":{}}}}}",
            escape(&s.name),
            escape(&cat),
            s.track,
            micros(s.start_us),
            micros(s.dur_us),
            s.depth
        ));
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"");
    if snapshot.dropped > 0 {
        out.push_str(&format!(",\"otherData\":{{\"dropped_spans\":\"{}\"}}", snapshot.dropped));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanEvent;
    use crate::SpanKind;

    fn sample_snapshot() -> TraceSnapshot {
        TraceSnapshot {
            spans: vec![
                SpanEvent {
                    track: 0,
                    name: "halo_exchange".into(),
                    kind: None,
                    start_us: 0.0,
                    dur_us: 12.5,
                    depth: 0,
                },
                SpanEvent {
                    track: 0,
                    name: "collective_permute".into(),
                    kind: Some(SpanKind::CollectivePermute),
                    start_us: 1.0,
                    dur_us: 10.0,
                    depth: 1,
                },
                SpanEvent {
                    track: 1,
                    name: "neighbor_sums".into(),
                    kind: Some(SpanKind::Mxu),
                    start_us: 2.25,
                    dur_us: 100.125,
                    depth: 0,
                },
            ],
            tracks: vec!["core-0 (0,0)".to_string(), "core-1 (0,1)".to_string()],
            dropped: 0,
        }
    }

    #[test]
    fn one_metadata_record_per_track_and_one_event_per_span() {
        let json = chrome_trace_json(&sample_snapshot(), "tpu-ising pod");
        assert_eq!(json.matches("\"thread_name\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
        assert!(json.contains("\"cat\":\"CollectivePermute\""));
        assert!(json.contains("\"cat\":\"Mxu\""));
        assert!(json.contains("\"cat\":\"span\""));
        assert!(json.contains("\"ts\":2.250,\"dur\":100.125"));
        assert!(json.contains("core-0 (0,0)"));
        // minimal well-formedness: balanced braces/brackets
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn dropped_spans_are_reported_not_silent() {
        let mut snap = sample_snapshot();
        snap.dropped = 7;
        let json = chrome_trace_json(&snap, "p");
        assert!(json.contains("\"dropped_spans\":\"7\""));
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let json = chrome_trace_json(&TraceSnapshot::default(), "empty");
        assert!(json.contains("\"traceEvents\":["));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
