//! A byte-counting global allocator for allocation-budget instrumentation.
//!
//! The fused band-backend sweep claims *zero heap allocations in steady
//! state*; this module makes that claim measurable rather than aspirational.
//! A binary opts in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: tpu_ising_obs::alloc::CountingAllocator = CountingAllocator;
//! ```
//!
//! after which [`allocated_bytes`] returns the cumulative bytes handed out
//! by the allocator (allocations and the growth portion of reallocations;
//! frees are *not* subtracted — the counter measures allocation traffic,
//! not live bytes). Sweepers sample it around a sweep to report the
//! `alloc_bytes_per_sweep` gauge, and `perfbase` uses the per-sweep delta
//! directly. Without the opt-in the counter simply stays zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

/// Cumulative bytes allocated since process start (0 unless a binary
/// installed [`CountingAllocator`] as its global allocator).
#[inline]
pub fn allocated_bytes() -> u64 {
    ALLOCATED.load(Ordering::Relaxed)
}

/// Whether a [`CountingAllocator`] is actually counting. Any Rust process
/// allocates during startup, so a zero counter after `main` begins means
/// the allocator was never installed.
#[inline]
pub fn is_counting() -> bool {
    allocated_bytes() > 0
}

/// The system allocator wrapped with a relaxed atomic byte counter.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && new_size > layout.size() {
            ALLOCATED.fetch_add((new_size - layout.size()) as u64, Ordering::Relaxed);
        }
        p
    }
}
