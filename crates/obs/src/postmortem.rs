//! Postmortem timeline assembly: merge the JSONL bundles the flight
//! recorder dumped across cores, restarts and chaos sessions into one
//! totally ordered story.
//!
//! Bundles overlap on purpose — every dump writes each ring's full
//! contents, so a drill that crashes twice dumps the early events twice.
//! The merger de-duplicates on the globally monotonic sequence number,
//! then sorts by it, which reconstructs the exact interleaving of kill →
//! retry escalation → restart → vault fallback regardless of which file
//! each event came from. Output is a human-readable table and a Chrome
//! trace-event document with one track per core per generation.

use crate::json::{escape, micros};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One event parsed back out of a bundle line: the fixed envelope plus
/// the kind-specific fields as raw `(name, value)` pairs.
#[derive(Clone, Debug, PartialEq)]
pub struct TimelineEvent {
    /// Run id stamped at record time.
    pub run_id: u64,
    /// Restart generation.
    pub gen: u32,
    /// Recording core ([`u32::MAX`](crate::recorder::HOST_CORE) = host).
    pub core: u32,
    /// Sweep index the recording thread had announced.
    pub sweep: u64,
    /// Global sequence number — the merge/ordering key.
    pub seq: u64,
    /// Microseconds since the recorder epoch.
    pub t_us: f64,
    /// Event kind name, e.g. `"retry_extended"`.
    pub kind: String,
    /// Kind-specific fields, in emission order.
    pub fields: Vec<(String, u64)>,
}

impl TimelineEvent {
    /// `true` for driver-side events.
    pub fn is_host(&self) -> bool {
        self.core == u32::MAX
    }

    /// A kind-specific field by name.
    pub fn field(&self, name: &str) -> Option<u64> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// Pull `"key":<value>` out of one of our own JSONL lines. The emitter
/// is deterministic (no spaces, no reordering), so a targeted scan is
/// exact without a general JSON parser.
fn raw_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Parse one bundle line; `None` for blank or foreign lines.
pub fn parse_event_line(line: &str) -> Option<TimelineEvent> {
    let line = line.trim();
    if !line.starts_with('{') || !line.contains("\"kind\":\"") {
        return None;
    }
    let kind = raw_value(line, "kind")?.trim_matches('"').to_string();
    let mut ev = TimelineEvent {
        run_id: raw_value(line, "run_id")?.parse().ok()?,
        gen: raw_value(line, "gen")?.parse().ok()?,
        core: raw_value(line, "core")?.parse().ok()?,
        sweep: raw_value(line, "sweep")?.parse().ok()?,
        seq: raw_value(line, "seq")?.parse().ok()?,
        t_us: raw_value(line, "t_us")?.parse().ok()?,
        kind,
        fields: Vec::new(),
    };
    // Everything after the envelope is kind-specific. The emitter never
    // puts a comma inside a value (kind names are bare identifiers), so a
    // comma split recovers the `"name":value` pairs exactly.
    const ENVELOPE: [&str; 7] = ["run_id", "gen", "core", "sweep", "seq", "t_us", "kind"];
    for piece in line.trim_start_matches('{').trim_end_matches('}').split(',') {
        let Some((name, value)) = piece.split_once(':') else { continue };
        let name = name.trim().trim_matches('"');
        if ENVELOPE.contains(&name) || ev.fields.iter().any(|(n, _)| n == name) {
            continue;
        }
        if let Ok(v) = value.trim().parse() {
            ev.fields.push((name.to_string(), v));
        }
    }
    Some(ev)
}

/// Merge every `postmortem-*.jsonl` bundle in `dir` into one seq-ordered,
/// de-duplicated timeline. Returns the events and the bundle paths read.
pub fn merge_dir(dir: &Path) -> std::io::Result<(Vec<TimelineEvent>, Vec<PathBuf>)> {
    let mut bundles: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            name.starts_with("postmortem-") && name.ends_with(".jsonl")
        })
        .collect();
    bundles.sort();
    let mut by_seq: BTreeMap<u64, TimelineEvent> = BTreeMap::new();
    for path in &bundles {
        let body = std::fs::read_to_string(path)?;
        for line in body.lines() {
            if let Some(ev) = parse_event_line(line) {
                by_seq.entry(ev.seq).or_insert(ev);
            }
        }
    }
    Ok((by_seq.into_values().collect(), bundles))
}

fn core_label(core: u32) -> String {
    if core == u32::MAX {
        "host".to_string()
    } else {
        format!("core-{core}")
    }
}

/// Render a merged timeline as an aligned human-readable table.
pub fn render_table(events: &[TimelineEvent]) -> String {
    let mut out = String::from("   seq        t_us  gen  core    sweep  event\n");
    for e in events {
        let detail = e.fields.iter().map(|(n, v)| format!("{n}={v}")).collect::<Vec<_>>().join(" ");
        out.push_str(&format!(
            "{:>6}  {:>10}  {:>3}  {:<6}  {:>5}  {}{}{}\n",
            e.seq,
            micros(e.t_us),
            e.gen,
            core_label(e.core),
            e.sweep,
            e.kind,
            if detail.is_empty() { "" } else { " " },
            detail
        ));
    }
    out
}

/// Export a merged timeline as a Chrome trace-event document with one
/// instant-event track per `(core, generation)` pair, so the trace
/// viewer shows each core's life across every restart as its own row.
pub fn chrome_timeline_json(events: &[TimelineEvent], process_name: &str) -> String {
    // stable track order: generation-major, host last within a generation
    let mut tracks: Vec<(u32, u32)> = events.iter().map(|e| (e.gen, e.core)).collect();
    tracks.sort_unstable();
    tracks.dedup();
    let tid_of = |gen: u32, core: u32| -> usize {
        tracks.iter().position(|&(g, c)| g == gen && c == core).unwrap_or(0)
    };
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[\n");
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(process_name)
    ));
    for (tid, &(gen, core)) in tracks.iter().enumerate() {
        out.push_str(&format!(
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"{} gen{gen}\"}}}}",
            escape(&core_label(core))
        ));
    }
    for e in events {
        let mut args = format!("\"seq\":{},\"sweep\":{}", e.seq, e.sweep);
        for (n, v) in &e.fields {
            args.push_str(&format!(",\"{}\":{v}", escape(n)));
        }
        out.push_str(&format!(
            ",\n{{\"name\":\"{}\",\"cat\":\"flightrec\",\"ph\":\"i\",\"s\":\"t\",\
             \"pid\":0,\"tid\":{},\"ts\":{},\"args\":{{{args}}}}}",
            escape(&e.kind),
            tid_of(e.gen, e.core),
            micros(e.t_us)
        ));
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Event, EventKind};

    fn line(seq: u64, gen: u32, core: u32, kind: EventKind) -> String {
        Event { run_id: 1, core, gen, sweep: seq * 10, seq, t_us: seq as f64, kind }.to_json_line()
    }

    #[test]
    fn lines_round_trip_through_the_parser() {
        let src = line(5, 1, 3, EventKind::RetryExtended { collective: 8, attempt: 2 });
        let ev = parse_event_line(&src).expect("parse");
        assert_eq!((ev.run_id, ev.gen, ev.core, ev.sweep, ev.seq), (1, 1, 3, 50, 5));
        assert_eq!(ev.kind, "retry_extended");
        assert_eq!(ev.fields, vec![("collective".to_string(), 8), ("attempt".to_string(), 2)]);
        assert_eq!(ev.field("attempt"), Some(2));
        assert!(parse_event_line("").is_none());
        assert!(parse_event_line("not json").is_none());
    }

    #[test]
    fn merge_dedups_on_seq_and_orders() {
        let dir = std::env::temp_dir().join(format!("tpuising-pm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // two overlapping bundles, as successive dumps produce
        std::fs::write(
            dir.join("postmortem-gen000-000-a.jsonl"),
            format!(
                "{}\n{}\n",
                line(0, 0, 0, EventKind::SweepBoundary),
                line(1, 0, 0, EventKind::KillInjected { collective: 4 })
            ),
        )
        .unwrap();
        std::fs::write(
            dir.join("postmortem-gen001-001-b.jsonl"),
            format!(
                "{}\n{}\n{}\n",
                line(1, 0, 0, EventKind::KillInjected { collective: 4 }),
                line(2, 1, u32::MAX, EventKind::PodRestart { restarts: 1 }),
                line(3, 1, 0, EventKind::SweepBoundary)
            ),
        )
        .unwrap();
        std::fs::write(dir.join("unrelated.txt"), "ignored\n").unwrap();
        let (events, bundles) = merge_dir(&dir).expect("merge");
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(bundles.len(), 2);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert!(events[2].is_host());
        let table = render_table(&events);
        assert!(table.contains("kill_injected collective=4"), "{table}");
        assert!(table.contains("pod_restart restarts=1"), "{table}");
    }

    #[test]
    fn chrome_export_has_one_track_per_core_per_generation() {
        let events: Vec<TimelineEvent> = [
            line(0, 0, 0, EventKind::SweepBoundary),
            line(1, 0, 1, EventKind::SweepBoundary),
            line(2, 1, 0, EventKind::SweepBoundary),
            line(3, 1, u32::MAX, EventKind::PodRestart { restarts: 1 }),
        ]
        .iter()
        .map(|l| parse_event_line(l).unwrap())
        .collect();
        let json = chrome_timeline_json(&events, "postmortem");
        assert_eq!(json.matches("\"thread_name\"").count(), 4);
        assert!(json.contains("\"name\":\"core-0 gen0\""));
        assert!(json.contains("\"name\":\"core-0 gen1\""));
        assert!(json.contains("\"name\":\"host gen1\""));
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 4);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
