//! Runtime observability for the workspace: **measured** span timelines,
//! a global metrics registry, Chrome trace-event export, and progress
//! heartbeats.
//!
//! The paper's performance story (Table 3's hardware-unit breakdown, the
//! Fig. 6 trace-viewer timeline, the <0.15 % communication claim of §5.2)
//! comes from the TPU profiler. [`tpu-ising-device`]'s `Trace` *models*
//! those numbers from the cost walker; this crate *measures* them: every
//! hot path records wall-clock spans tagged with the same [`SpanKind`]
//! taxonomy, so modeled and measured breakdowns print side by side.
//!
//! Design rules:
//!
//! - **Off by default, near-zero cost when off.** [`span!`] is a relaxed
//!   atomic load when tracing is disabled; metric hot-path extras (flip
//!   counting, RNG-draw counting) are gated on [`is_metrics`].
//! - **One track per thread.** SPMD core threads call [`register_track`]
//!   so the exported timeline has one named row per modeled TensorCore —
//!   the measured analogue of the paper's per-core trace viewer.
//! - **No double counting.** Aggregation into a [`TraceBreakdown`] only
//!   sums spans that carry a [`SpanKind`]; wrapper spans (e.g. the
//!   `halo_exchange` span around the four mesh collectives) are recorded
//!   kind-less so the timeline shows the nesting but the breakdown counts
//!   each wall-clock interval once.
//! - **Bounded memory.** The recorder stops at a configurable span
//!   capacity and reports how many spans were dropped rather than
//!   truncating silently.

//!
//! PR 6 adds the *fault-surviving* layer: a [`recorder`] flight recorder
//! (per-core ring buffers of typed events that get dumped to postmortem
//! bundles on faults), a [`telemetry`] sink flushing metrics snapshots
//! to disk as JSONL + Prometheus text, and a [`postmortem`] merger that
//! reassembles bundles from every core and restart generation into one
//! ordered timeline.

pub mod alloc;
pub mod chrome;
pub mod heartbeat;
pub mod json;
pub mod metrics;
pub mod postmortem;
pub mod recorder;
pub mod span;
pub mod telemetry;

pub use chrome::chrome_trace_json;
pub use heartbeat::{disable_progress, enable_progress, progress_interval, Heartbeat};
pub use metrics::{metrics, Counter, Gauge, HistogramSummary, Metrics, MetricsSnapshot};
pub use recorder::{record, EventKind, PostmortemGuard, RecorderSnapshot};
pub use span::{
    disable, enable, enable_metrics, enable_tracing, is_metrics, is_tracing, register_track, reset,
    set_span_capacity, snapshot, SpanEvent, SpanGuard, TraceSnapshot,
};
pub use telemetry::{TelemetryHandle, TelemetrySink};

/// Every thread-local observability binding of one logical core's task:
/// flight-recorder ring + sweep stamp and span track + depth. Cooperative
/// schedulers swap the whole bundle around each poll so a worker thread
/// records on behalf of whichever logical core it is currently running.
#[derive(Clone, Copy, Debug, Default)]
pub struct TaskObs {
    recorder: recorder::TaskContext,
    track: span::TrackContext,
}

/// Install `next` as this thread's observability bindings and return the
/// previous ones. `TaskObs::default()` is the unbound (host) state.
pub fn swap_task_obs(next: TaskObs) -> TaskObs {
    TaskObs {
        recorder: recorder::swap_task_context(next.recorder),
        track: span::swap_track_context(next.track),
    }
}

/// The hardware-unit classes the TPU profiler groups ops into — shared by
/// the *modeled* spans of `tpu-ising-device`'s cost walker and the
/// *measured* spans this crate records, so both aggregate into the same
/// [`TraceBreakdown`] (the Table-3 shape).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize)]
pub enum SpanKind {
    /// Matrix-unit work (matmul, conv).
    Mxu,
    /// Vector-unit work (RNG, element-wise math).
    Vpu,
    /// Data formatting: reshape, slice, transpose, concat, pad, copy.
    Format,
    /// Inter-core collectives.
    CollectivePermute,
    /// Host-side / infeed work (not part of the step time).
    Host,
}

/// Aggregated per-class totals, in seconds and percent — the shape of the
/// paper's Table 3. Produced both by the modeled `Trace::breakdown` in
/// `tpu-ising-device` and by [`TraceSnapshot::breakdown`] over measured
/// spans.
#[derive(Clone, Debug, Default, serde::Serialize)]
pub struct TraceBreakdown {
    /// MXU seconds.
    pub mxu: f64,
    /// VPU seconds.
    pub vpu: f64,
    /// Data-formatting seconds.
    pub format: f64,
    /// Collective-permute seconds.
    pub collective_permute: f64,
    /// Host seconds (excluded from percentages, as the profiler excludes
    /// host work from device step time).
    pub host: f64,
}

impl TraceBreakdown {
    /// Device step time (host excluded).
    pub fn step_seconds(&self) -> f64 {
        self.mxu + self.vpu + self.format + self.collective_permute
    }

    /// Percentage shares `(mxu, vpu, format, cp)` of the device step.
    pub fn percentages(&self) -> (f64, f64, f64, f64) {
        let t = self.step_seconds();
        if t == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            self.mxu / t * 100.0,
            self.vpu / t * 100.0,
            self.format / t * 100.0,
            self.collective_permute / t * 100.0,
        )
    }

    /// Add `seconds` to the accumulator of `kind`.
    pub fn add(&mut self, kind: SpanKind, seconds: f64) {
        match kind {
            SpanKind::Mxu => self.mxu += seconds,
            SpanKind::Vpu => self.vpu += seconds,
            SpanKind::Format => self.format += seconds,
            SpanKind::CollectivePermute => self.collective_permute += seconds,
            SpanKind::Host => self.host += seconds,
        }
    }

    /// The communication fraction `cp / step` in `[0, 1]` — the measured
    /// analogue of the paper's §5.2 "<0.15 % of the total time" claim.
    pub fn comm_fraction(&self) -> f64 {
        let t = self.step_seconds();
        if t == 0.0 {
            0.0
        } else {
            self.collective_permute / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_adds_and_percentages() {
        let mut b = TraceBreakdown::default();
        b.add(SpanKind::Mxu, 0.6);
        b.add(SpanKind::Vpu, 0.2);
        b.add(SpanKind::Format, 0.1);
        b.add(SpanKind::CollectivePermute, 0.1);
        b.add(SpanKind::Host, 5.0);
        assert!((b.step_seconds() - 1.0).abs() < 1e-12);
        let (mxu, vpu, fmt, cp) = b.percentages();
        assert!((mxu - 60.0).abs() < 1e-9);
        assert!((vpu - 20.0).abs() < 1e-9);
        assert!((fmt - 10.0).abs() < 1e-9);
        assert!((cp - 10.0).abs() < 1e-9);
        assert!((b.comm_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_is_safe() {
        let b = TraceBreakdown::default();
        assert_eq!(b.percentages(), (0.0, 0.0, 0.0, 0.0));
        assert_eq!(b.comm_fraction(), 0.0);
    }
}
