//! The span recorder: wall-clock timed scopes with thread-local nesting,
//! one timeline track per registered thread.

use crate::{SpanKind, TraceBreakdown};
use std::borrow::Cow;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default recorder capacity; past it spans are counted as dropped.
const DEFAULT_CAPACITY: usize = 1 << 20;

static TRACING: AtomicBool = AtomicBool::new(false);
static METRICS: AtomicBool = AtomicBool::new(false);

thread_local! {
    static TRACK: Cell<Option<u32>> = const { Cell::new(None) };
    static DEPTH: Cell<u16> = const { Cell::new(0) };
}

/// One completed, measured span.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Timeline track (index into [`TraceSnapshot::tracks`]).
    pub track: u32,
    /// Span label, e.g. `"compact_halfsweep"`.
    pub name: Cow<'static, str>,
    /// Hardware-unit class for breakdown aggregation; `None` for wrapper
    /// spans that only shape the timeline.
    pub kind: Option<SpanKind>,
    /// Start, microseconds since the recorder epoch.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Nesting depth within the track at record time (0 = top level).
    pub depth: u16,
}

struct Inner {
    epoch: Instant,
    spans: Vec<SpanEvent>,
    tracks: Vec<String>,
    dropped: u64,
    capacity: usize,
}

fn recorder() -> &'static Mutex<Inner> {
    static RECORDER: OnceLock<Mutex<Inner>> = OnceLock::new();
    RECORDER.get_or_init(|| {
        Mutex::new(Inner {
            epoch: Instant::now(),
            spans: Vec::new(),
            tracks: Vec::new(),
            dropped: 0,
            capacity: DEFAULT_CAPACITY,
        })
    })
}

fn lock() -> std::sync::MutexGuard<'static, Inner> {
    recorder().lock().unwrap_or_else(|e| e.into_inner())
}

/// Enable span recording (re-arms the epoch if the recorder is empty).
pub fn enable_tracing() {
    drop(lock()); // make sure the epoch exists before the first span
    TRACING.store(true, Ordering::Relaxed);
}

/// Enable metric hot-path extras (flip counting, RNG-draw counting).
pub fn enable_metrics() {
    METRICS.store(true, Ordering::Relaxed);
}

/// Enable both tracing and metrics.
pub fn enable() {
    enable_tracing();
    enable_metrics();
}

/// Disable both tracing and metrics (recorded spans are kept).
pub fn disable() {
    TRACING.store(false, Ordering::Relaxed);
    METRICS.store(false, Ordering::Relaxed);
}

/// Is span recording on? (One relaxed load — the whole cost of a
/// [`span!`](crate::span!) call site when tracing is off.)
#[inline]
pub fn is_tracing() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Are metric hot-path extras on?
#[inline]
pub fn is_metrics() -> bool {
    METRICS.load(Ordering::Relaxed)
}

/// Discard all recorded spans and tracks and re-arm the epoch. Threads
/// that registered tracks before the reset keep recording onto fresh
/// auto-registered tracks unless they re-register.
pub fn reset() {
    let mut inner = lock();
    inner.spans.clear();
    inner.tracks.clear();
    inner.dropped = 0;
    inner.epoch = Instant::now();
    drop(inner);
    TRACK.with(|t| t.set(None));
}

/// Cap the number of retained spans; further spans count as dropped.
pub fn set_span_capacity(capacity: usize) {
    lock().capacity = capacity;
}

/// Name this thread's timeline track (e.g. `"core-3 (1,1)"`). Subsequent
/// spans from this thread land on the new track. Returns the track id.
pub fn register_track(name: impl Into<String>) -> u32 {
    let mut inner = lock();
    let id = inner.tracks.len() as u32;
    inner.tracks.push(name.into());
    drop(inner);
    TRACK.with(|t| t.set(Some(id)));
    id
}

/// The span-recorder bindings of one logical core's task: its timeline
/// track and nesting depth. Swapped per poll by cooperative schedulers so
/// spans from interleaved tasks keep their own tracks and depth counters
/// (see [`swap_track_context`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct TrackContext {
    track: Option<u32>,
    depth: u16,
}

/// Install `next` as this thread's span bindings and return the previous
/// ones. `TrackContext::default()` is the unbound state (auto-registered
/// track, depth 0).
pub fn swap_track_context(next: TrackContext) -> TrackContext {
    let prev = TrackContext { track: TRACK.with(|t| t.get()), depth: DEPTH.with(|d| d.get()) };
    TRACK.with(|t| t.set(next.track));
    DEPTH.with(|d| d.set(next.depth));
    prev
}

fn current_track(inner: &mut Inner) -> u32 {
    TRACK.with(|t| match t.get() {
        Some(id) => id,
        None => {
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{}", inner.tracks.len()));
            let id = inner.tracks.len() as u32;
            inner.tracks.push(name);
            t.set(Some(id));
            id
        }
    })
}

struct ActiveSpan {
    name: Cow<'static, str>,
    kind: Option<SpanKind>,
    start: Instant,
    depth: u16,
}

/// RAII guard recording one span from construction to drop. Bind it
/// (`let _g = span!(..)`) or the span closes immediately.
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// Start a span; a no-op (and no allocation) when tracing is off.
    pub fn begin(name: impl Into<Cow<'static, str>>, kind: Option<SpanKind>) -> SpanGuard {
        if !is_tracing() {
            return SpanGuard(None);
        }
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v.saturating_add(1));
            v
        });
        SpanGuard(Some(ActiveSpan { name: name.into(), kind, start: Instant::now(), depth }))
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(s) = self.0.take() {
            let dur = s.start.elapsed();
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            let mut inner = lock();
            let track = current_track(&mut inner);
            if inner.spans.len() >= inner.capacity {
                inner.dropped += 1;
                return;
            }
            let start_us = s.start.saturating_duration_since(inner.epoch).as_secs_f64() * 1e6;
            inner.spans.push(SpanEvent {
                track,
                name: s.name,
                kind: s.kind,
                start_us,
                dur_us: dur.as_secs_f64() * 1e6,
                depth: s.depth,
            });
        }
    }
}

/// Start a measured span for the enclosing scope.
///
/// ```
/// use tpu_ising_obs as obs;
/// obs::enable_tracing();
/// {
///     let _g = obs::span!("compact_halfsweep");
///     let _inner = obs::span!("neighbor_sums", obs::SpanKind::Mxu);
/// }
/// assert!(obs::snapshot().spans.len() >= 2);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::begin($name, ::core::option::Option::None)
    };
    ($name:expr, $kind:expr) => {
        $crate::SpanGuard::begin($name, ::core::option::Option::Some($kind))
    };
}

/// An owned snapshot of the recorder: spans, track names, drop count.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// All recorded spans, in record-completion order.
    pub spans: Vec<SpanEvent>,
    /// Track names; `SpanEvent::track` indexes this.
    pub tracks: Vec<String>,
    /// Spans discarded after the capacity was reached.
    pub dropped: u64,
}

/// Snapshot the global recorder (spans are cloned, not drained).
pub fn snapshot() -> TraceSnapshot {
    let inner = lock();
    TraceSnapshot {
        spans: inner.spans.clone(),
        tracks: inner.tracks.clone(),
        dropped: inner.dropped,
    }
}

impl TraceSnapshot {
    /// Aggregate *kinded* spans into the Table-3 breakdown. Wrapper spans
    /// (`kind == None`) are skipped, so nested timelines count each
    /// wall-clock interval once.
    pub fn breakdown(&self) -> TraceBreakdown {
        let mut b = TraceBreakdown::default();
        for s in &self.spans {
            if let Some(k) = s.kind {
                b.add(k, s.dur_us * 1e-6);
            }
        }
        b
    }

    /// Per-track breakdowns, `(track name, breakdown)`, in track order —
    /// one entry per SPMD core for a pod run.
    pub fn per_track_breakdown(&self) -> Vec<(String, TraceBreakdown)> {
        let mut out: Vec<(String, TraceBreakdown)> =
            self.tracks.iter().map(|n| (n.clone(), TraceBreakdown::default())).collect();
        for s in &self.spans {
            if let (Some(k), Some(entry)) = (s.kind, out.get_mut(s.track as usize)) {
                entry.1.add(k, s.dur_us * 1e-6);
            }
        }
        out
    }

    /// Total seconds a named span accounts for (all tracks).
    pub fn seconds_of(&self, name: &str) -> f64 {
        self.spans.iter().filter(|s| s.name == name).map(|s| s.dur_us * 1e-6).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is global; tests that touch it serialize on this lock
    // and reset before use.
    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _x = exclusive();
        disable();
        reset();
        {
            let _g = crate::span!("quiet");
        }
        assert!(snapshot().spans.is_empty());
    }

    #[test]
    fn spans_nest_and_carry_kind() {
        let _x = exclusive();
        reset();
        enable_tracing();
        register_track("test-track");
        {
            let _outer = crate::span!("outer");
            let _inner = crate::span!("inner", SpanKind::Mxu);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        disable();
        let snap = snapshot();
        assert_eq!(snap.tracks, vec!["test-track".to_string()]);
        // inner drops first
        assert_eq!(snap.spans.len(), 2);
        let inner = &snap.spans[0];
        let outer = &snap.spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.kind, Some(SpanKind::Mxu));
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.depth, 0);
        assert!(outer.kind.is_none());
        assert!(outer.dur_us >= inner.dur_us);
        assert!(inner.dur_us >= 2_000.0, "slept 2 ms, got {} µs", inner.dur_us);
        // breakdown counts only the kinded span
        let b = snap.breakdown();
        assert!(b.mxu > 0.0);
        assert_eq!(b.vpu + b.format + b.collective_permute + b.host, 0.0);
        reset();
    }

    #[test]
    fn capacity_caps_and_counts_drops() {
        let _x = exclusive();
        reset();
        set_span_capacity(3);
        enable_tracing();
        for _ in 0..5 {
            let _g = crate::span!("s");
        }
        disable();
        let snap = snapshot();
        assert_eq!(snap.spans.len(), 3);
        assert_eq!(snap.dropped, 2);
        set_span_capacity(super::DEFAULT_CAPACITY);
        reset();
    }

    #[test]
    fn threads_get_own_tracks() {
        let _x = exclusive();
        reset();
        enable_tracing();
        std::thread::scope(|s| {
            for i in 0..3 {
                s.spawn(move || {
                    register_track(format!("core-{i}"));
                    let _g = crate::span!("work", SpanKind::Vpu);
                });
            }
        });
        disable();
        let snap = snapshot();
        assert_eq!(snap.tracks.len(), 3);
        assert_eq!(snap.spans.len(), 3);
        let mut tracks: Vec<u32> = snap.spans.iter().map(|s| s.track).collect();
        tracks.sort_unstable();
        assert_eq!(tracks, vec![0, 1, 2]);
        for (_, b) in snap.per_track_breakdown() {
            assert!(b.vpu > 0.0);
        }
        reset();
    }
}
