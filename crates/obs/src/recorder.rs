//! The flight recorder: per-core fixed-capacity ring buffers of typed
//! fault and progress events that *survive* crashes.
//!
//! Spans and metrics (PR 1) only describe runs that finish cleanly; every
//! kill, retry, restart and vault fallback added since discards its
//! in-flight story. The recorder keeps the last N events per core in a
//! pre-allocated ring — recording is a couple of atomic ops plus a short
//! mutex and **zero heap allocation** in steady state (the counting
//! allocator proves it) — and dumps the rings to a postmortem JSONL
//! bundle on a mesh error, a pod restart, or a panic.
//!
//! Every event carries a fixed envelope: the `run_id`, the recording
//! core's rank ([`HOST_CORE`] for driver-side events), the sweep index
//! the thread last announced via [`set_sweep`], the **restart
//! generation** (bumped by the resilient drivers on every restart and by
//! the chaos harness on every session), a globally monotonic sequence
//! number and a microsecond timestamp. The sequence number is the merge
//! key: bundles dumped at different times can be concatenated, sorted and
//! de-duplicated into one totally ordered timeline (see
//! [`postmortem`](crate::postmortem)).

use std::cell::Cell;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Default per-ring capacity (events kept per core before overwriting).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// The pseudo-rank host/driver events are recorded under.
pub const HOST_CORE: u32 = u32::MAX;

static RECORDING: AtomicBool = AtomicBool::new(false);
static RUN_ID: AtomicU64 = AtomicU64::new(0);
static GENERATION: AtomicU32 = AtomicU32::new(0);
static SEQ: AtomicU64 = AtomicU64::new(0);
static DUMPS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static RING: Cell<Option<usize>> = const { Cell::new(None) };
    static SWEEP: Cell<u64> = const { Cell::new(0) };
}

/// One typed flight-recorder event payload. Every variant is `Copy` and
/// carries only scalars so recording never touches the heap.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// A sweep finished (the sweep index lives in the envelope).
    SweepBoundary,
    /// This core sent its half of collective `collective` to `peer`.
    CollectiveSend { collective: u64, peer: u32 },
    /// This core received its half of collective `collective` from `peer`.
    CollectiveRecv { collective: u64, peer: u32 },
    /// Tier-1 recovery: the receive deadline of `collective` was extended
    /// (extension number `attempt`, 1-based).
    RetryExtended { collective: u64, attempt: u32 },
    /// The packet arrived inside an extended deadline after `extensions`
    /// tier-1 extensions.
    RetryRecovered { collective: u64, extensions: u32 },
    /// Tier-1 budget exhausted; the error escalates to the restart tier.
    RetryExhausted { collective: u64 },
    /// The fault plan killed this core at `collective`.
    KillInjected { collective: u64 },
    /// The fault plan dropped this core's packet to `peer`.
    DropInjected { collective: u64, peer: u32 },
    /// The driver observed a mesh error whose root cause is core `root`.
    MeshFault { root: u32 },
    /// The resilient driver is restarting the pod (restart number
    /// `restarts`, 1-based).
    PodRestart { restarts: u64 },
    /// A complete pod checkpoint row was assembled at the envelope sweep.
    CheckpointRecorded,
    /// The vault persisted a generation at `sweep` (`bytes` on disk).
    VaultWrite { sweep: u64, bytes: u64 },
    /// A generation failed verification and was quarantined.
    VaultQuarantine,
    /// The newest generation was unusable; the scan fell back to the
    /// older generation at `sweep`.
    VaultFallback { sweep: u64 },
    /// Retention pruning removed `removed` old generations.
    VaultPrune { removed: u64 },
    /// The chaos harness corrupted the newest vault generation in session
    /// `session` (`mode`: 0 truncate, 1 bit-flip, 2 torn header).
    ChaosInjected { session: u64, mode: u32 },
    /// A chaos session began.
    SessionStart { session: u64 },
    /// A core thread unwound (recorded by the postmortem drop guard).
    CorePanic,
    /// The integrity scrubber found the lattice digest changed between
    /// sweeps: silent data corruption (`expect`/`found` are CRC-32s).
    ScrubMismatch { expect: u64, found: u64 },
    /// A halo payload failed its wire checksum on receive.
    HaloChecksumFail { collective: u64, expect: u64, found: u64 },
    /// The liveness watchdog declared this core stalled at `collective`
    /// after `stalled_ms` without progress (virtual ms on the coop
    /// runtime).
    WatchdogStall { collective: u64, stalled_ms: u64 },
    /// The resilient driver exhausted a core's restart budget and remapped
    /// the pod onto a smaller survivor torus.
    DegradedContinue { from_cores: u64, to_cores: u64 },
}

impl EventKind {
    /// Stable snake_case name used as the JSONL `kind` field.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SweepBoundary => "sweep_boundary",
            EventKind::CollectiveSend { .. } => "collective_send",
            EventKind::CollectiveRecv { .. } => "collective_recv",
            EventKind::RetryExtended { .. } => "retry_extended",
            EventKind::RetryRecovered { .. } => "retry_recovered",
            EventKind::RetryExhausted { .. } => "retry_exhausted",
            EventKind::KillInjected { .. } => "kill_injected",
            EventKind::DropInjected { .. } => "drop_injected",
            EventKind::MeshFault { .. } => "mesh_fault",
            EventKind::PodRestart { .. } => "pod_restart",
            EventKind::CheckpointRecorded => "checkpoint_recorded",
            EventKind::VaultWrite { .. } => "vault_write",
            EventKind::VaultQuarantine => "vault_quarantine",
            EventKind::VaultFallback { .. } => "vault_fallback",
            EventKind::VaultPrune { .. } => "vault_prune",
            EventKind::ChaosInjected { .. } => "chaos_injected",
            EventKind::SessionStart { .. } => "session_start",
            EventKind::CorePanic => "core_panic",
            EventKind::ScrubMismatch { .. } => "scrub_mismatch",
            EventKind::HaloChecksumFail { .. } => "halo_checksum_fail",
            EventKind::WatchdogStall { .. } => "watchdog_stall",
            EventKind::DegradedContinue { .. } => "degraded_continue",
        }
    }

    /// Kind-specific fields as `(name, value)` pairs, in emission order.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        match *self {
            EventKind::SweepBoundary
            | EventKind::CheckpointRecorded
            | EventKind::VaultQuarantine
            | EventKind::CorePanic => Vec::new(),
            EventKind::CollectiveSend { collective, peer }
            | EventKind::CollectiveRecv { collective, peer }
            | EventKind::DropInjected { collective, peer } => {
                vec![("collective", collective), ("peer", peer as u64)]
            }
            EventKind::RetryExtended { collective, attempt } => {
                vec![("collective", collective), ("attempt", attempt as u64)]
            }
            EventKind::RetryRecovered { collective, extensions } => {
                vec![("collective", collective), ("extensions", extensions as u64)]
            }
            EventKind::RetryExhausted { collective } | EventKind::KillInjected { collective } => {
                vec![("collective", collective)]
            }
            EventKind::MeshFault { root } => vec![("root", root as u64)],
            EventKind::PodRestart { restarts } => vec![("restarts", restarts)],
            EventKind::VaultWrite { sweep, bytes } => {
                vec![("vault_sweep", sweep), ("bytes", bytes)]
            }
            EventKind::VaultFallback { sweep } => vec![("vault_sweep", sweep)],
            EventKind::VaultPrune { removed } => vec![("removed", removed)],
            EventKind::ChaosInjected { session, mode } => {
                vec![("session", session), ("mode", mode as u64)]
            }
            EventKind::SessionStart { session } => vec![("session", session)],
            EventKind::ScrubMismatch { expect, found } => {
                vec![("expect", expect), ("found", found)]
            }
            EventKind::HaloChecksumFail { collective, expect, found } => {
                vec![("collective", collective), ("expect", expect), ("found", found)]
            }
            EventKind::WatchdogStall { collective, stalled_ms } => {
                vec![("collective", collective), ("stalled_ms", stalled_ms)]
            }
            EventKind::DegradedContinue { from_cores, to_cores } => {
                vec![("from_cores", from_cores), ("to_cores", to_cores)]
            }
        }
    }
}

/// One recorded event: the fixed envelope plus the typed payload.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The run this event belongs to (set via [`set_run_id`]).
    pub run_id: u64,
    /// Recording core rank; [`HOST_CORE`] for driver-side events.
    pub core: u32,
    /// Restart generation at record time.
    pub gen: u32,
    /// Sweep index the recording thread last announced.
    pub sweep: u64,
    /// Globally monotonic sequence number — the merge/ordering key.
    pub seq: u64,
    /// Microseconds since the recorder epoch.
    pub t_us: f64,
    /// The typed payload.
    pub kind: EventKind,
}

impl Event {
    /// One deterministic JSONL line (hand-rolled; no serializer).
    pub fn to_json_line(&self) -> String {
        let mut out = format!(
            "{{\"run_id\":{},\"gen\":{},\"core\":{},\"sweep\":{},\"seq\":{},\
             \"t_us\":{},\"kind\":\"{}\"",
            self.run_id,
            self.gen,
            self.core,
            self.sweep,
            self.seq,
            crate::json::micros(self.t_us),
            self.kind.name()
        );
        for (k, v) in self.kind.fields() {
            out.push_str(&format!(",\"{k}\":{v}"));
        }
        out.push('}');
        out
    }
}

struct RingInner {
    core: u32,
    buf: Vec<Event>,
    head: usize,
    overwritten: u64,
}

impl RingInner {
    fn push(&mut self, e: Event) {
        let cap = self.buf.capacity();
        if cap == 0 {
            self.overwritten += 1;
        } else if self.buf.len() < cap {
            self.buf.push(e);
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % cap;
            self.overwritten += 1;
        }
    }

    /// Events in record order (oldest first).
    fn ordered(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

struct Registry {
    epoch: Instant,
    rings: Vec<RingInner>,
    capacity: usize,
    postmortem_dir: Option<PathBuf>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            epoch: Instant::now(),
            rings: Vec::new(),
            capacity: DEFAULT_RING_CAPACITY,
            postmortem_dir: None,
        })
    })
}

fn lock() -> MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

fn ring_index(reg: &mut Registry, core: u32) -> usize {
    match reg.rings.iter().position(|r| r.core == core) {
        Some(i) => i,
        None => {
            let cap = reg.capacity;
            reg.rings.push(RingInner {
                core,
                buf: Vec::with_capacity(cap),
                head: 0,
                overwritten: 0,
            });
            reg.rings.len() - 1
        }
    }
}

/// Arm the recorder. Pre-registers the host ring so driver-side events
/// never allocate on the record path.
pub fn enable_recording() {
    let mut reg = lock();
    ring_index(&mut reg, HOST_CORE);
    drop(reg);
    RECORDING.store(true, Ordering::Relaxed);
}

/// Disarm the recorder (recorded events are kept for dumping).
pub fn disable_recording() {
    RECORDING.store(false, Ordering::Relaxed);
}

/// Is the recorder armed? (One relaxed load — the whole cost of a
/// [`record`] call site when recording is off.)
#[inline]
pub fn is_recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Drop every ring, re-arm the epoch and zero the sequence counter,
/// generation and run id. Threads keep their ring bindings cleared.
pub fn reset() {
    let mut reg = lock();
    reg.rings.clear();
    reg.epoch = Instant::now();
    reg.postmortem_dir = None;
    drop(reg);
    SEQ.store(0, Ordering::Relaxed);
    DUMPS.store(0, Ordering::Relaxed);
    GENERATION.store(0, Ordering::Relaxed);
    RUN_ID.store(0, Ordering::Relaxed);
    RING.with(|r| r.set(None));
    SWEEP.with(|s| s.set(0));
}

/// Capacity for rings registered *after* this call (existing rings keep
/// their pre-allocated buffers).
pub fn set_ring_capacity(capacity: usize) {
    lock().capacity = capacity;
}

/// Stamp subsequent events with this run id.
pub fn set_run_id(id: u64) {
    RUN_ID.store(id, Ordering::Relaxed);
}

/// The current run id.
pub fn run_id() -> u64 {
    RUN_ID.load(Ordering::Relaxed)
}

/// The current restart generation.
pub fn generation() -> u32 {
    GENERATION.load(Ordering::Relaxed)
}

/// Increment the restart generation (drivers call this on every pod
/// restart; the chaos harness on every new session). Returns the new
/// generation.
pub fn bump_generation() -> u32 {
    GENERATION.fetch_add(1, Ordering::Relaxed) + 1
}

/// Bind this thread to core `core`'s ring, creating (and pre-allocating)
/// it on first registration. Re-registering after a restart reuses the
/// existing ring — events from different generations share it and are
/// told apart by their `gen` stamp.
pub fn register_core(core: u32) {
    let mut reg = lock();
    let idx = ring_index(&mut reg, core);
    drop(reg);
    RING.with(|r| r.set(Some(idx)));
}

/// Announce the sweep this thread is working on; stamped into every
/// subsequent event from this thread.
#[inline]
pub fn set_sweep(sweep: u64) {
    SWEEP.with(|s| s.set(sweep));
}

/// The recorder bindings of one logical core's task: which ring this
/// thread records onto and the sweep stamp. A cooperative scheduler that
/// multiplexes many logical cores over few worker threads swaps this
/// around every poll so events keep landing on the right core's ring
/// (see [`swap_task_context`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct TaskContext {
    ring: Option<usize>,
    sweep: u64,
}

/// Install `next` as this thread's recorder bindings and return the
/// previous ones. `TaskContext::default()` is the unbound state (events
/// fall through to the host ring, sweep 0).
pub fn swap_task_context(next: TaskContext) -> TaskContext {
    let prev = TaskContext { ring: RING.with(|r| r.get()), sweep: SWEEP.with(|s| s.get()) };
    RING.with(|r| r.set(next.ring));
    SWEEP.with(|s| s.set(next.sweep));
    prev
}

/// Record one event onto this thread's ring (the host ring when the
/// thread never called [`register_core`]). A no-op when recording is off;
/// when on, the steady-state cost is the envelope stamp plus a ring slot
/// write — no heap allocation.
pub fn record(kind: EventKind) {
    if !is_recording() {
        return;
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let sweep = SWEEP.with(|s| s.get());
    let mut reg = lock();
    let idx = match RING.with(|r| r.get()) {
        Some(i) if i < reg.rings.len() => i,
        _ => {
            let i = ring_index(&mut reg, HOST_CORE);
            RING.with(|r| r.set(Some(i)));
            i
        }
    };
    let t_us = Instant::now().saturating_duration_since(reg.epoch).as_secs_f64() * 1e6;
    let e = Event {
        run_id: RUN_ID.load(Ordering::Relaxed),
        core: reg.rings[idx].core,
        gen: GENERATION.load(Ordering::Relaxed),
        sweep,
        seq,
        t_us,
        kind,
    };
    reg.rings[idx].push(e);
}

/// An owned snapshot of every ring, merged and seq-ordered.
#[derive(Clone, Debug, Default)]
pub struct RecorderSnapshot {
    /// All retained events, ordered by sequence number.
    pub events: Vec<Event>,
    /// Events overwritten ring-wide (flight-recorder semantics keep the
    /// newest; this counts how many old ones rolled off).
    pub overwritten: u64,
    /// Number of registered rings (cores plus the host ring).
    pub rings: usize,
}

impl RecorderSnapshot {
    /// The whole snapshot as JSONL (one event per line, seq-ordered).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }
}

/// Snapshot every ring (events are cloned, not drained).
pub fn snapshot() -> RecorderSnapshot {
    let reg = lock();
    let mut events: Vec<Event> = Vec::new();
    let mut overwritten = 0;
    for r in &reg.rings {
        events.extend(r.ordered());
        overwritten += r.overwritten;
    }
    events.sort_by_key(|e| e.seq);
    RecorderSnapshot { events, overwritten, rings: reg.rings.len() }
}

/// Direct the postmortem dumps of [`dump_postmortem`] (and the drop
/// guard) into `dir`. `None` disables dumping.
pub fn set_postmortem_dir(dir: Option<PathBuf>) {
    lock().postmortem_dir = dir;
}

/// The currently configured postmortem directory.
pub fn postmortem_dir() -> Option<PathBuf> {
    lock().postmortem_dir.clone()
}

/// Dump every ring to a fresh JSONL bundle in the configured postmortem
/// directory, named `postmortem-gen<G>-<N>-<reason>.jsonl`. Returns the
/// path, or `None` when no directory is configured or the write failed
/// (dumping is best-effort: a postmortem must never turn a recoverable
/// fault into a crash).
pub fn dump_postmortem(reason: &str) -> Option<PathBuf> {
    let dir = postmortem_dir()?;
    dump_postmortem_to(&dir, reason).ok()
}

/// Dump every ring to a fresh JSONL bundle in `dir` (explicit-directory
/// variant used by tests and the CLI).
pub fn dump_postmortem_to(dir: &Path, reason: &str) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let n = DUMPS.fetch_add(1, Ordering::Relaxed);
    let safe: String =
        reason.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '-' }).collect();
    let path = dir.join(format!("postmortem-gen{:03}-{n:03}-{safe}.jsonl", generation()));
    let snap = snapshot();
    let mut f = std::fs::File::create(&path)?;
    f.write_all(snap.to_jsonl().as_bytes())?;
    f.sync_all()?;
    Ok(path)
}

/// RAII guard that records a [`EventKind::CorePanic`] event and dumps a
/// postmortem bundle if the owning thread unwinds. Construct it at the
/// top of a core body; on a clean return the drop is a no-op.
pub struct PostmortemGuard {
    reason: &'static str,
}

impl PostmortemGuard {
    /// Arm a guard labelled `reason` (used in the bundle file name).
    pub fn arm(reason: &'static str) -> PostmortemGuard {
        PostmortemGuard { reason }
    }
}

impl Drop for PostmortemGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            record(EventKind::CorePanic);
            let _ = dump_postmortem(self.reason);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is global; tests serialize on this gate and reset.
    fn exclusive() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _x = exclusive();
        reset();
        disable_recording();
        record(EventKind::SweepBoundary);
        assert!(snapshot().events.is_empty());
    }

    #[test]
    fn events_carry_envelope_and_merge_in_seq_order() {
        let _x = exclusive();
        reset();
        enable_recording();
        set_run_id(42);
        register_core(0);
        set_sweep(7);
        record(EventKind::SweepBoundary);
        record(EventKind::CollectiveSend { collective: 3, peer: 1 });
        GENERATION.store(2, Ordering::Relaxed);
        record(EventKind::KillInjected { collective: 4 });
        disable_recording();
        let snap = snapshot();
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.rings, 2); // host + core 0
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        for e in &snap.events {
            assert_eq!(e.run_id, 42);
            assert_eq!(e.core, 0);
            assert_eq!(e.sweep, 7);
        }
        assert_eq!(snap.events[0].gen, 0);
        assert_eq!(snap.events[2].gen, 2);
        assert_eq!(snap.events[2].kind, EventKind::KillInjected { collective: 4 });
        reset();
    }

    #[test]
    fn ring_overwrites_oldest_and_counts() {
        let _x = exclusive();
        reset();
        set_ring_capacity(4);
        enable_recording();
        register_core(5);
        for i in 0..10u64 {
            record(EventKind::CollectiveSend { collective: i, peer: 0 });
        }
        disable_recording();
        let snap = snapshot();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.overwritten, 6);
        // the *newest* four survive
        let kept: Vec<u64> = snap
            .events
            .iter()
            .map(|e| match e.kind {
                EventKind::CollectiveSend { collective, .. } => collective,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
        set_ring_capacity(DEFAULT_RING_CAPACITY);
        reset();
    }

    #[test]
    fn unbound_thread_lands_on_host_ring() {
        let _x = exclusive();
        reset();
        enable_recording();
        record(EventKind::VaultPrune { removed: 2 });
        disable_recording();
        let snap = snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].core, HOST_CORE);
        reset();
    }

    #[test]
    fn json_lines_are_deterministic() {
        let e = Event {
            run_id: 9,
            core: 3,
            gen: 1,
            sweep: 20,
            seq: 55,
            t_us: 12.3456,
            kind: EventKind::RetryExtended { collective: 8, attempt: 2 },
        };
        assert_eq!(
            e.to_json_line(),
            "{\"run_id\":9,\"gen\":1,\"core\":3,\"sweep\":20,\"seq\":55,\
             \"t_us\":12.346,\"kind\":\"retry_extended\",\"collective\":8,\"attempt\":2}"
        );
    }

    #[test]
    fn dump_writes_bundle_with_generation_in_name() {
        let _x = exclusive();
        reset();
        enable_recording();
        register_core(1);
        record(EventKind::SweepBoundary);
        let dir = std::env::temp_dir().join(format!("tpuising-rec-{}", std::process::id()));
        let path = dump_postmortem_to(&dir, "unit test").expect("dump");
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        assert!(name.starts_with("postmortem-gen000-"), "{name}");
        assert!(name.ends_with("-unit-test.jsonl"), "{name}");
        let body = std::fs::read_to_string(&path).expect("read bundle");
        assert!(body.lines().any(|l| l.contains("\"kind\":\"sweep_boundary\"")));
        std::fs::remove_dir_all(&dir).ok();
        disable_recording();
        reset();
    }

    #[test]
    fn guard_is_silent_on_clean_return() {
        let _x = exclusive();
        reset();
        enable_recording();
        {
            let _g = PostmortemGuard::arm("clean");
        }
        assert!(snapshot().events.is_empty());
        disable_recording();
        reset();
    }
}
