//! Tiny hand-rolled JSON emission helpers.
//!
//! The exporters write JSON by hand instead of going through serde so the
//! output byte stream is fully deterministic (golden-testable) and the
//! crate stays near dependency-free.

/// Escape a string for embedding inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (JSON has no NaN/∞; they become 0).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Format microseconds with fixed three-decimal (nanosecond) precision —
/// the resolution Chrome's trace viewer displays.
pub fn micros(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.000".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nfeed\ttab"), "line\\nfeed\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("σ̂01·K̂"), "σ̂01·K̂");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(f64::INFINITY), "0");
        assert_eq!(micros(12.3456), "12.346");
        assert_eq!(micros(f64::NAN), "0.000");
    }
}
