//! Tiny hand-rolled JSON emission helpers.
//!
//! The exporters write JSON by hand instead of going through serde so the
//! output byte stream is fully deterministic (golden-testable) and the
//! crate stays near dependency-free.

/// Escape a string for embedding inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Invert [`escape`]: decode a JSON string body (the part between the
/// double quotes) back to the original text. Returns `None` on malformed
/// escapes, so bundle parsers can reject a corrupt line instead of
/// misreading it.
pub fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'b' => out.push('\u{8}'),
            'f' => out.push('\u{c}'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Format an `f64` as a JSON number (JSON has no NaN/∞; they become 0).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Format microseconds with fixed three-decimal (nanosecond) precision —
/// the resolution Chrome's trace viewer displays.
pub fn micros(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.000".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nfeed\ttab"), "line\\nfeed\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("σ̂01·K̂"), "σ̂01·K̂");
    }

    #[test]
    fn escape_round_trips_span_and_event_names() {
        // every name an exporter might emit must decode back bit-exact
        let names = [
            "halo_exchange",
            "core-3 (1,1)",
            "a\"quoted\"name",
            "back\\slash",
            "line\nfeed\ttab\rret",
            "ctrl\u{1}\u{1f}chars",
            "σ̂01·K̂ unicode",
            "",
        ];
        for name in names {
            let escaped = escape(name);
            assert_eq!(unescape(&escaped).as_deref(), Some(name), "escaped form: {escaped}");
        }
    }

    #[test]
    fn escape_round_trips_every_ascii_char() {
        // exhaustive over the range where escaping decisions are made:
        // every ASCII char, alone and sandwiched between ordinary text
        for code in 0u32..0x80 {
            let c = char::from_u32(code).unwrap();
            for s in [c.to_string(), format!("a{c}b"), format!("{c}{c}")] {
                let escaped = escape(&s);
                assert_eq!(
                    unescape(&escaped).as_deref(),
                    Some(s.as_str()),
                    "char U+{code:04X}, escaped form: {escaped:?}"
                );
            }
        }
    }

    #[test]
    fn unescape_rejects_malformed_input() {
        assert_eq!(unescape("trailing\\"), None);
        assert_eq!(unescape("\\q"), None);
        assert_eq!(unescape("\\u12"), None);
        assert_eq!(unescape("\\ud800"), None); // lone surrogate
        assert_eq!(unescape("\\u0041"), Some("A".to_string()));
        assert_eq!(unescape("\\/slash"), Some("/slash".to_string()));
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(f64::INFINITY), "0");
        assert_eq!(micros(12.3456), "12.346");
        assert_eq!(micros(f64::NAN), "0.000");
    }
}
