//! A global metrics registry: named counters, gauges and histograms with
//! a deterministic JSON/text snapshot.
//!
//! Handles are cheap `Arc` clones; hot paths fetch a handle once and
//! `inc`/`observe` lock-free (counters, gauges) or under a short mutex
//! (histograms).

use crate::json::{escape, num};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Samples kept per histogram for percentile estimation; beyond it only
/// count/sum/min/max keep updating (the snapshot reports the truncation).
const HISTOGRAM_SAMPLE_CAP: usize = 65_536;

/// A monotonically increasing counter.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn inc(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Default)]
struct HistInner {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    samples: Vec<f64>,
}

/// A histogram of `f64` observations with percentile estimation.
#[derive(Clone, Default)]
pub struct Histogram(Arc<Mutex<HistInner>>);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let mut h = self.0.lock().unwrap_or_else(|e| e.into_inner());
        if h.count == 0 {
            h.min = v;
            h.max = v;
        } else {
            h.min = h.min.min(v);
            h.max = h.max.max(v);
        }
        h.count += 1;
        h.sum += v;
        if h.samples.len() < HISTOGRAM_SAMPLE_CAP {
            h.samples.push(v);
        }
    }

    /// Summarize for reporting.
    pub fn summary(&self) -> HistogramSummary {
        let h = self.0.lock().unwrap_or_else(|e| e.into_inner());
        let mut sorted = h.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pct = |q: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            sorted[idx.min(sorted.len() - 1)]
        };
        HistogramSummary {
            count: h.count,
            sum: h.sum,
            min: if h.count == 0 { 0.0 } else { h.min },
            max: if h.count == 0 { 0.0 } else { h.max },
            mean: if h.count == 0 { 0.0 } else { h.sum / h.count as f64 },
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            truncated: h.count > h.samples.len() as u64,
        }
    }
}

/// Point-in-time summary of one histogram.
#[derive(Clone, Debug, Default, serde::Serialize)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank on the retained samples).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// `true` when percentiles only cover the first
    /// [`HISTOGRAM_SAMPLE_CAP`] samples.
    pub truncated: bool,
}

/// The registry: named metric families, created on first touch.
#[derive(Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// The global registry.
pub fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(Metrics::default)
}

impl Metrics {
    /// Fetch (or create) a counter handle.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        m.entry(name.to_string()).or_default().clone()
    }

    /// Fetch (or create) a gauge handle.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        m.entry(name.to_string()).or_default().clone()
    }

    /// Fetch (or create) a histogram handle.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        m.entry(name.to_string()).or_default().clone()
    }

    /// Drop every registered metric. Handles taken before the reset keep
    /// working but detach from future snapshots.
    pub fn reset(&self) {
        self.counters.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.gauges.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.histograms.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// A deterministic (name-sorted) snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.summary()))
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// Point-in-time values of every registered metric, name-sorted.
#[derive(Clone, Debug, Default, serde::Serialize)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Counter value by name, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Hand-rolled, deterministic JSON rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", escape(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(name), num(*v)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\
                 \"p50\":{},\"p90\":{},\"p99\":{},\"truncated\":{}}}",
                escape(name),
                h.count,
                num(h.sum),
                num(h.min),
                num(h.max),
                num(h.mean),
                num(h.p50),
                num(h.p90),
                num(h.p99),
                h.truncated
            ));
        }
        out.push_str("}}");
        out
    }

    /// Aligned plain-text rendering for a stdout/stderr summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let w = self.counters.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<w$}  {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            let w = self.gauges.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<w$}  {v:.6}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            let w = self.histograms.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<w$}  n={} mean={:.4} p50={:.4} p90={:.4} p99={:.4} \
                     min={:.4} max={:.4}{}\n",
                    h.count,
                    h.mean,
                    h.p50,
                    h.p90,
                    h.p99,
                    h.min,
                    h.max,
                    if h.truncated { " (percentiles truncated)" } else { "" }
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let m = Metrics::default();
        let c = m.counter("sweeps_total");
        c.inc(3);
        m.counter("sweeps_total").inc(2); // same family
        let g = m.gauge("acceptance_ratio");
        g.set(0.25);
        let snap = m.snapshot();
        assert_eq!(snap.counter("sweeps_total"), 5);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauges, vec![("acceptance_ratio".to_string(), 0.25)]);
    }

    #[test]
    fn histogram_percentiles_nearest_rank() {
        let m = Metrics::default();
        let h = m.histogram("sweep_us");
        for v in 1..=100 {
            h.observe(v as f64);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        // nearest-rank on 100 samples: index round(99*q)
        assert_eq!(s.p50, 51.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p99, 99.0);
        assert!(!s.truncated);
    }

    #[test]
    fn histogram_edge_cases() {
        let m = Metrics::default();
        let h = m.histogram("empty");
        let s = h.summary();
        assert_eq!((s.count, s.p50, s.min, s.max), (0, 0.0, 0.0, 0.0));
        let h1 = m.histogram("single");
        h1.observe(7.5);
        let s1 = h1.summary();
        assert_eq!((s1.p50, s1.p90, s1.p99), (7.5, 7.5, 7.5));
        assert_eq!(s1.mean, 7.5);
    }

    #[test]
    fn snapshot_is_sorted_and_json_is_deterministic() {
        let m = Metrics::default();
        m.counter("zeta").inc(1);
        m.counter("alpha").inc(2);
        m.gauge("mid").set(1.5);
        let snap = m.snapshot();
        assert_eq!(snap.counters[0].0, "alpha");
        assert_eq!(snap.counters[1].0, "zeta");
        assert_eq!(
            snap.to_json(),
            "{\"counters\":{\"alpha\":2,\"zeta\":1},\"gauges\":{\"mid\":1.5},\
             \"histograms\":{}}"
        );
        assert!(snap.render().contains("alpha"));
    }

    #[test]
    fn reset_clears_families() {
        let m = Metrics::default();
        m.counter("a").inc(1);
        m.reset();
        assert!(m.snapshot().counters.is_empty());
    }
}
