//! A global metrics registry: named counters, gauges and histograms with
//! a deterministic JSON/text snapshot.
//!
//! Handles are cheap `Arc` clones; every hot-path update — `inc`, `set`
//! and `observe` alike — is lock-free. Histograms bucket observations
//! into a fixed logarithmic grid ([`HISTOGRAM_SUBBUCKETS`] sub-buckets
//! per power of two), so `observe` is a handful of relaxed atomic ops
//! and percentiles are exact to the bucket's ~±1 % relative width.

use crate::json::{escape, num};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Log-bucket resolution: sub-buckets per power of two. At 32 the bucket
/// relative width is `2^(1/32) ≈ 2.2 %`, so a midpoint representative is
/// within ~1.1 % of any sample in the bucket.
pub const HISTOGRAM_SUBBUCKETS: u32 = 32;

/// Smallest bucketed exponent: values below `2^-32` (≈2.3e-10) land in
/// the underflow bucket.
const HIST_MIN_EXP: i32 = -32;

/// Largest bucketed exponent: values at or above `2^32` (≈4.3e9) land in
/// the overflow bucket.
const HIST_MAX_EXP: i32 = 32;

/// Bucket count: the log grid plus one underflow and one overflow slot.
const HIST_BUCKETS: usize =
    (HIST_MAX_EXP - HIST_MIN_EXP) as usize * HISTOGRAM_SUBBUCKETS as usize + 2;

/// A monotonically increasing counter.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn inc(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

struct HistInner {
    /// `f64` bits of the running sum, CAS-accumulated.
    sum_bits: AtomicU64,
    /// `f64` bits of the running minimum (starts at `+∞`).
    min_bits: AtomicU64,
    /// `f64` bits of the running maximum (starts at `-∞`).
    max_bits: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Default for HistInner {
    fn default() -> HistInner {
        HistInner {
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Bucket index on the log grid; 0 is underflow (≤ 0, NaN, or smaller
/// than `2^HIST_MIN_EXP`), `HIST_BUCKETS - 1` is overflow.
fn bucket_index(v: f64) -> usize {
    if !v.is_finite() || v <= 0.0 {
        return if v == f64::INFINITY { HIST_BUCKETS - 1 } else { 0 };
    }
    let l = v.log2();
    if l < HIST_MIN_EXP as f64 {
        0
    } else if l >= HIST_MAX_EXP as f64 {
        HIST_BUCKETS - 1
    } else {
        let idx = 1 + ((l - HIST_MIN_EXP as f64) * HISTOGRAM_SUBBUCKETS as f64) as usize;
        idx.min(HIST_BUCKETS - 2)
    }
}

/// Geometric midpoint of bucket `idx`; `±∞` for the saturation buckets
/// (the summary clamps representatives to the exact observed min/max).
fn bucket_rep(idx: usize) -> f64 {
    if idx == 0 {
        f64::NEG_INFINITY
    } else if idx == HIST_BUCKETS - 1 {
        f64::INFINITY
    } else {
        let exp = HIST_MIN_EXP as f64 + ((idx - 1) as f64 + 0.5) / HISTOGRAM_SUBBUCKETS as f64;
        exp.exp2()
    }
}

/// A lock-free histogram of `f64` observations on a fixed log-bucket
/// grid. `observe` is hot-path safe: a few relaxed atomic ops, no mutex,
/// no allocation.
#[derive(Clone, Default)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        let h = &*self.0;
        h.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        let mut cur = h.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match h.sum_bits.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let mut cur = h.min_bits.load(Ordering::Relaxed);
        while v < f64::from_bits(cur) {
            match h.min_bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let mut cur = h.max_bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match h.max_bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Summarize for reporting. Percentiles are nearest-rank over the
    /// bucket counts, reported as the bucket's geometric midpoint clamped
    /// to the exact observed `[min, max]` — within ~1.1 % of the true
    /// sample percentile, and exact when all samples share one bucket.
    pub fn summary(&self) -> HistogramSummary {
        let h = &*self.0;
        let counts: Vec<u64> = h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return HistogramSummary::default();
        }
        let sum = f64::from_bits(h.sum_bits.load(Ordering::Relaxed));
        let min = f64::from_bits(h.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(h.max_bits.load(Ordering::Relaxed));
        let pct = |q: f64| -> f64 {
            let rank = ((total - 1) as f64 * q).round() as u64; // 0-based nearest rank
            let mut cum = 0u64;
            for (idx, &c) in counts.iter().enumerate() {
                cum += c;
                if cum > rank {
                    return bucket_rep(idx).clamp(min, max);
                }
            }
            max
        };
        HistogramSummary {
            count: total,
            sum,
            min,
            max,
            mean: sum / total as f64,
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            truncated: counts[0] + counts[HIST_BUCKETS - 1] > 0,
        }
    }
}

/// Point-in-time summary of one histogram.
#[derive(Clone, Debug, Default, serde::Serialize)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank over the log buckets, ~±1 % relative).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// `true` when observations landed outside the bucketed range
    /// (non-positive, below `2^-32` or at/above `2^32`); their
    /// percentile contribution saturates to the observed min/max.
    pub truncated: bool,
}

/// The registry: named metric families, created on first touch.
#[derive(Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// The global registry.
pub fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(Metrics::default)
}

impl Metrics {
    /// Fetch (or create) a counter handle.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        m.entry(name.to_string()).or_default().clone()
    }

    /// Fetch (or create) a gauge handle.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        m.entry(name.to_string()).or_default().clone()
    }

    /// Fetch (or create) a histogram handle.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        m.entry(name.to_string()).or_default().clone()
    }

    /// Drop every registered metric. Handles taken before the reset keep
    /// working but detach from future snapshots.
    pub fn reset(&self) {
        self.counters.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.gauges.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.histograms.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// A deterministic (name-sorted) snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.summary()))
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// Point-in-time values of every registered metric, name-sorted.
#[derive(Clone, Debug, Default, serde::Serialize)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Counter value by name, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Hand-rolled, deterministic JSON rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", escape(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(name), num(*v)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\
                 \"p50\":{},\"p90\":{},\"p99\":{},\"truncated\":{}}}",
                escape(name),
                h.count,
                num(h.sum),
                num(h.min),
                num(h.max),
                num(h.mean),
                num(h.p50),
                num(h.p90),
                num(h.p99),
                h.truncated
            ));
        }
        out.push_str("}}");
        out
    }

    /// Aligned plain-text rendering for a stdout/stderr summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let w = self.counters.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<w$}  {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            let w = self.gauges.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<w$}  {v:.6}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            let w = self.histograms.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<w$}  n={} mean={:.4} p50={:.4} p90={:.4} p99={:.4} \
                     min={:.4} max={:.4}{}\n",
                    h.count,
                    h.mean,
                    h.p50,
                    h.p90,
                    h.p99,
                    h.min,
                    h.max,
                    if h.truncated { " (percentiles truncated)" } else { "" }
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let m = Metrics::default();
        let c = m.counter("sweeps_total");
        c.inc(3);
        m.counter("sweeps_total").inc(2); // same family
        let g = m.gauge("acceptance_ratio");
        g.set(0.25);
        let snap = m.snapshot();
        assert_eq!(snap.counter("sweeps_total"), 5);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauges, vec![("acceptance_ratio".to_string(), 0.25)]);
    }

    #[test]
    fn histogram_percentiles_within_bucket_tolerance() {
        let m = Metrics::default();
        let h = m.histogram("sweep_us");
        for v in 1..=100 {
            h.observe(v as f64);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        // log-bucket nearest rank: within one bucket's relative width of
        // the exact sample percentiles (51 / 90 / 99)
        for (got, want) in [(s.p50, 51.0), (s.p90, 90.0), (s.p99, 99.0)] {
            assert!((got - want).abs() / want < 0.03, "got {got}, want ≈{want}");
        }
        assert!(!s.truncated);
    }

    #[test]
    fn histogram_edge_cases() {
        let m = Metrics::default();
        let h = m.histogram("empty");
        let s = h.summary();
        assert_eq!((s.count, s.p50, s.min, s.max), (0, 0.0, 0.0, 0.0));
        // a single observation is exact: the representative clamps to the
        // observed min == max
        let h1 = m.histogram("single");
        h1.observe(7.5);
        let s1 = h1.summary();
        assert_eq!((s1.p50, s1.p90, s1.p99), (7.5, 7.5, 7.5));
        assert_eq!(s1.mean, 7.5);
        // out-of-range observations saturate and are flagged
        let h2 = m.histogram("saturating");
        h2.observe(0.0);
        h2.observe(1e300);
        let s2 = h2.summary();
        assert!(s2.truncated);
        assert_eq!(s2.min, 0.0);
        assert_eq!(s2.max, 1e300);
        assert!(s2.p50 >= s2.min && s2.p50 <= s2.max);
    }

    #[test]
    fn histogram_is_safe_under_concurrent_observers() {
        let m = Metrics::default();
        let h = m.histogram("contended");
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        h.observe((t * 1000 + i) as f64 + 1.0);
                    }
                });
            }
        });
        let s = h.summary();
        assert_eq!(s.count, 4000);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4000.0);
        // CAS-accumulated sum is exact regardless of interleaving
        assert!((s.sum - (4000.0 * 4001.0 / 2.0)).abs() < 1e-6, "sum {}", s.sum);
        assert!((s.p50 - 2000.0).abs() / 2000.0 < 0.03, "p50 {}", s.p50);
    }

    #[test]
    fn snapshot_is_sorted_and_json_is_deterministic() {
        let m = Metrics::default();
        m.counter("zeta").inc(1);
        m.counter("alpha").inc(2);
        m.gauge("mid").set(1.5);
        let snap = m.snapshot();
        assert_eq!(snap.counters[0].0, "alpha");
        assert_eq!(snap.counters[1].0, "zeta");
        assert_eq!(
            snap.to_json(),
            "{\"counters\":{\"alpha\":2,\"zeta\":1},\"gauges\":{\"mid\":1.5},\
             \"histograms\":{}}"
        );
        assert!(snap.render().contains("alpha"));
    }

    #[test]
    fn reset_clears_families() {
        let m = Metrics::default();
        m.counter("a").inc(1);
        m.reset();
        assert!(m.snapshot().counters.is_empty());
    }
}
