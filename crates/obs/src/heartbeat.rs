//! Progress heartbeats for long chains: sweeps done / rate / ETA on
//! stderr, throttled to a global interval.
//!
//! Off by default; enable with [`enable_progress`] (the bench binaries
//! and the CLI wire this to `--progress`). A disabled [`Heartbeat`] only
//! counts ticks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

static PROGRESS_EVERY_MS: AtomicU64 = AtomicU64::new(0);

/// Print progress lines at most every `every` (0 disables).
pub fn enable_progress(every: Duration) {
    PROGRESS_EVERY_MS.store(every.as_millis() as u64, Ordering::Relaxed);
}

/// Turn progress lines off.
pub fn disable_progress() {
    PROGRESS_EVERY_MS.store(0, Ordering::Relaxed);
}

/// The configured interval, if progress is enabled.
pub fn progress_interval() -> Option<Duration> {
    match PROGRESS_EVERY_MS.load(Ordering::Relaxed) {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    }
}

/// Format a second count as a compact human ETA (`"43s"`, `"2m 05s"`,
/// `"1h 13m"`, `"3d 07h"`).
pub fn fmt_eta(seconds: f64) -> String {
    if !seconds.is_finite() || seconds < 0.0 {
        return "?".to_string();
    }
    let s = seconds.round() as u64;
    if s < 60 {
        format!("{s}s")
    } else if s < 3600 {
        format!("{}m {:02}s", s / 60, s % 60)
    } else if s < 86_400 {
        format!("{}h {:02}m", s / 3600, (s % 3600) / 60)
    } else {
        format!("{}d {:02}h", s / 86_400, (s % 86_400) / 3600)
    }
}

/// Tracks progress through a known number of sweeps and prints a
/// throttled heartbeat line to stderr.
pub struct Heartbeat {
    label: String,
    total: u64,
    done: u64,
    flips_per_sweep: f64,
    started: Instant,
    last_print: Instant,
    every: Option<Duration>,
}

impl Heartbeat {
    /// Start tracking `total` sweeps under `label`. Captures the global
    /// progress interval at construction.
    pub fn new(label: impl Into<String>, total: u64) -> Heartbeat {
        let now = Instant::now();
        Heartbeat {
            label: label.into(),
            total,
            done: 0,
            flips_per_sweep: 0.0,
            started: now,
            last_print: now,
            every: progress_interval(),
        }
    }

    /// Declare how many spin updates one sweep attempts (sites ×
    /// replicas); the status line then reports throughput in flips/ns —
    /// the accounting unit of Romero et al. — alongside sweeps/s.
    pub fn with_flips_per_sweep(mut self, flips: f64) -> Heartbeat {
        self.flips_per_sweep = flips;
        self
    }

    /// Sweeps completed so far.
    pub fn done(&self) -> u64 {
        self.done
    }

    /// One line describing the current state (what [`tick`](Self::tick)
    /// prints). Includes the flip throughput when
    /// [`with_flips_per_sweep`](Self::with_flips_per_sweep) was set, and
    /// the restart generation whenever the run has restarted.
    pub fn status_line(&self) -> String {
        self.status_line_at(crate::recorder::generation())
    }

    /// [`status_line`](Self::status_line) with an explicit restart
    /// generation (the public entry point reads the flight recorder's).
    pub fn status_line_at(&self, generation: u32) -> String {
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let rate = self.done as f64 / elapsed;
        let eta = if rate > 0.0 && self.total >= self.done {
            fmt_eta((self.total - self.done) as f64 / rate)
        } else {
            "?".to_string()
        };
        let pct = if self.total > 0 { self.done as f64 / self.total as f64 * 100.0 } else { 100.0 };
        let flips = if self.flips_per_sweep > 0.0 {
            format!(" · {:.3} flips/ns", rate * self.flips_per_sweep * 1e-9)
        } else {
            String::new()
        };
        let gen = if generation > 0 { format!(" · gen {generation}") } else { String::new() };
        format!(
            "[{}] {}/{} sweeps ({pct:.1}%) · {rate:.0} sweeps/s{flips}{gen} · ETA {eta}",
            self.label, self.done, self.total
        )
    }

    /// Count one completed sweep; prints when the interval elapsed.
    #[inline]
    pub fn tick(&mut self) {
        self.done += 1;
        let Some(every) = self.every else { return };
        if self.last_print.elapsed() >= every {
            self.last_print = Instant::now();
            eprintln!("{}", self.status_line());
        }
    }

    /// Print a final summary line (only when progress is enabled).
    pub fn finish(&self) {
        if self.every.is_some() {
            let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
            eprintln!(
                "[{}] done: {} sweeps in {} ({:.0} sweeps/s)",
                self.label,
                self.done,
                fmt_eta(elapsed),
                self.done as f64 / elapsed
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The progress interval is a process-wide global; serialize the tests
    // that touch it.
    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn eta_formats() {
        assert_eq!(fmt_eta(0.4), "0s");
        assert_eq!(fmt_eta(43.0), "43s");
        assert_eq!(fmt_eta(125.0), "2m 05s");
        assert_eq!(fmt_eta(3661.0), "1h 01m");
        // ≥ 24 h used to render as an hour count like "26h 03m"; days now
        // get their own unit
        assert_eq!(fmt_eta(86_400.0), "1d 00h");
        assert_eq!(fmt_eta(93_784.0), "1d 02h");
        assert_eq!(fmt_eta(3.0 * 86_400.0 + 7.5 * 3600.0), "3d 07h");
        assert_eq!(fmt_eta(f64::NAN), "?");
        assert_eq!(fmt_eta(-1.0), "?");
    }

    #[test]
    fn status_line_reports_flips_and_generation() {
        let _x = exclusive();
        disable_progress();
        let mut hb = Heartbeat::new("ms", 100).with_flips_per_sweep(1024.0 * 1024.0 * 64.0);
        for _ in 0..10 {
            hb.tick();
        }
        let line = hb.status_line_at(0);
        assert!(line.contains("flips/ns"), "{line}");
        assert!(!line.contains("gen"), "{line}");
        let line = hb.status_line_at(3);
        assert!(line.contains(" · gen 3 · "), "{line}");
        // without a flip declaration the field stays out
        let plain = Heartbeat::new("plain", 10);
        assert!(!plain.status_line_at(0).contains("flips/ns"));
    }

    #[test]
    fn disabled_heartbeat_only_counts() {
        let _x = exclusive();
        disable_progress();
        let mut hb = Heartbeat::new("test", 10);
        for _ in 0..10 {
            hb.tick();
        }
        assert_eq!(hb.done(), 10);
        let line = hb.status_line();
        assert!(line.contains("[test] 10/10 sweeps (100.0%)"), "{line}");
    }

    #[test]
    fn status_line_midway() {
        let _x = exclusive();
        disable_progress();
        let mut hb = Heartbeat::new("fig4 L=64", 200);
        for _ in 0..50 {
            hb.tick();
        }
        let line = hb.status_line();
        assert!(line.contains("50/200 sweeps (25.0%)"), "{line}");
        assert!(line.contains("ETA"), "{line}");
    }

    #[test]
    fn interval_globals_roundtrip() {
        let _x = exclusive();
        enable_progress(Duration::from_secs(2));
        assert_eq!(progress_interval(), Some(Duration::from_secs(2)));
        disable_progress();
        assert_eq!(progress_interval(), None);
    }
}
