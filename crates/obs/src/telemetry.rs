//! The telemetry sink: periodic metrics-snapshot flushes to disk, in
//! both JSONL (one snapshot per line, machine-diffable) and Prometheus
//! text exposition format (point-in-time, scrapeable).
//!
//! A [`TelemetrySink`] owns a directory and a flush interval. Each flush
//! appends one line to `metrics.jsonl` and rewrites `metrics.prom`
//! atomically (temp + rename), so a crash mid-run still leaves every
//! completed snapshot on disk — the metrics-side complement of the
//! flight recorder's postmortem bundles. [`TelemetrySink::start`] runs
//! the flushes on a background thread until the returned handle is
//! stopped (or dropped), which takes a final flush.

use crate::metrics::{metrics, MetricsSnapshot};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Periodically persists metrics snapshots into one directory.
pub struct TelemetrySink {
    dir: PathBuf,
    every: Duration,
    started: Instant,
    last_flush: Instant,
    flushes: u64,
}

impl TelemetrySink {
    /// Create the sink (and its directory). `every` is the flush
    /// interval honored by [`maybe_flush`](Self::maybe_flush) and the
    /// background thread of [`start`](Self::start).
    pub fn new(dir: impl Into<PathBuf>, every: Duration) -> std::io::Result<TelemetrySink> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let now = Instant::now();
        Ok(TelemetrySink { dir, every, started: now, last_flush: now, flushes: 0 })
    }

    /// The sink's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Flushes taken so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Flush now: append one JSONL snapshot line and atomically rewrite
    /// the Prometheus text file.
    pub fn flush(&mut self) -> std::io::Result<()> {
        let snap = metrics().snapshot();
        let elapsed = self.started.elapsed().as_secs_f64();
        let line = format!(
            "{{\"flush\":{},\"elapsed_s\":{},\"metrics\":{}}}\n",
            self.flushes,
            crate::json::num(elapsed),
            snap.to_json()
        );
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join("metrics.jsonl"))?;
        f.write_all(line.as_bytes())?;
        let prom = self.dir.join("metrics.prom");
        let tmp = self.dir.join(".metrics.prom.tmp");
        std::fs::write(&tmp, snap.to_prometheus())?;
        std::fs::rename(&tmp, &prom)?;
        self.flushes += 1;
        self.last_flush = Instant::now();
        Ok(())
    }

    /// Flush if the interval has elapsed since the last flush. Returns
    /// whether a flush was taken.
    pub fn maybe_flush(&mut self) -> std::io::Result<bool> {
        if self.last_flush.elapsed() >= self.every {
            self.flush()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Move the sink onto a background thread that flushes every
    /// interval until the handle is stopped (or dropped). Flush errors
    /// are swallowed: telemetry must never take down the run it watches.
    pub fn start(self) -> TelemetryHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let mut sink = self;
        let join = std::thread::spawn(move || {
            // sleep in short slices so stop() returns promptly even for
            // long flush intervals
            let slice = sink.every.min(Duration::from_millis(20)).max(Duration::from_millis(1));
            while !flag.load(Ordering::Relaxed) {
                std::thread::sleep(slice);
                let _ = sink.maybe_flush();
            }
            let _ = sink.flush(); // final snapshot on the way out
            sink
        });
        TelemetryHandle { stop, join: Some(join) }
    }
}

/// Handle to a background [`TelemetrySink`]; stopping (or dropping) it
/// takes a final flush and joins the thread.
pub struct TelemetryHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<TelemetrySink>>,
}

impl TelemetryHandle {
    /// Stop the background thread, take the final flush, and return the
    /// sink (e.g. to inspect [`TelemetrySink::flushes`]).
    pub fn stop(mut self) -> Option<TelemetrySink> {
        self.stop.store(true, Ordering::Relaxed);
        self.join.take().and_then(|j| j.join().ok())
    }
}

impl Drop for TelemetryHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

impl MetricsSnapshot {
    /// Render in the Prometheus text exposition format: counters and
    /// gauges as single samples, histograms as summaries with
    /// p50/p90/p99 quantiles plus `_sum`/`_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", crate::json::num(*v)));
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                out.push_str(&format!("{n}{{quantile=\"{q}\"}} {}\n", crate::json::num(v)));
            }
            out.push_str(&format!("{n}_sum {}\n", crate::json::num(h.sum)));
            out.push_str(&format!("{n}_count {}\n", h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn tmpdir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tpuising-tel-{tag}-{}", std::process::id()))
    }

    #[test]
    fn prometheus_rendering_is_wellformed() {
        let m = Metrics::default();
        m.counter("vault_writes_total").inc(3);
        m.gauge("acceptance_ratio").set(0.25);
        let h = m.histogram("sweep seconds"); // space must be sanitized
        h.observe(2.0);
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("# TYPE vault_writes_total counter\nvault_writes_total 3\n"));
        assert!(text.contains("# TYPE acceptance_ratio gauge\nacceptance_ratio 0.25\n"));
        assert!(text.contains("# TYPE sweep_seconds summary\n"));
        assert!(text.contains("sweep_seconds{quantile=\"0.5\"} 2\n"));
        assert!(text.contains("sweep_seconds_count 1\n"));
        // exposition format: every non-comment line is `name[{labels}] value`
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "bad sample line: {line}");
        }
    }

    #[test]
    fn flush_appends_jsonl_and_rewrites_prom() {
        let dir = tmpdir("flush");
        std::fs::remove_dir_all(&dir).ok();
        let mut sink = TelemetrySink::new(&dir, Duration::from_secs(3600)).expect("sink");
        sink.flush().expect("flush 1");
        sink.flush().expect("flush 2");
        assert_eq!(sink.flushes(), 2);
        let jsonl = std::fs::read_to_string(dir.join("metrics.jsonl")).expect("jsonl");
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.lines().next().unwrap().starts_with("{\"flush\":0,"));
        assert!(jsonl.lines().nth(1).unwrap().starts_with("{\"flush\":1,"));
        for line in jsonl.lines() {
            assert!(line.contains("\"metrics\":{\"counters\":{"), "{line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
        assert!(dir.join("metrics.prom").exists());
        // interval far in the future: maybe_flush declines
        assert!(!sink.maybe_flush().expect("maybe"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn background_handle_takes_final_flush_on_stop() {
        let dir = tmpdir("bg");
        std::fs::remove_dir_all(&dir).ok();
        let sink = TelemetrySink::new(&dir, Duration::from_millis(5)).expect("sink");
        let handle = sink.start();
        std::thread::sleep(Duration::from_millis(30));
        let sink = handle.stop().expect("join");
        assert!(sink.flushes() >= 1, "expected at least the final flush");
        let jsonl = std::fs::read_to_string(dir.join("metrics.jsonl")).expect("jsonl");
        assert_eq!(jsonl.lines().count() as u64, sink.flushes());
        std::fs::remove_dir_all(&dir).ok();
    }
}
