//! A CPU re-implementation of the Preis et al. CUDA checkerboard kernel.
//!
//! The 2009 GPU implementation assigns one thread per same-color site,
//! groups threads into blocks covering lattice strips, and replaces the
//! per-site `exp` with a 10-entry lookup table indexed by `(σ, nn)` — GPUs
//! of that era paid dearly for transcendentals. This port keeps that
//! structure: rayon parallelism over row strips plays the role of the
//! thread blocks, and the acceptance table is precomputed per β.
//!
//! It is the *functional* baseline: with site-keyed randomness it makes
//! bit-identical flip decisions with every TPU-mapped implementation in
//! `tpu-ising-core`, and it is the fastest plain-CPU sampler in the
//! workspace for large lattices (no matmul detour).

use rayon::prelude::*;
use tpu_ising_core::{Color, Randomness, Sweeper};
use tpu_ising_rng::{PhiloxStream, SiteRng};
use tpu_ising_tensor::Plane;

/// Lookup-table checkerboard Metropolis sampler (GPU-kernel style).
pub struct GpuStyleIsing {
    plane: Plane<f32>,
    beta: f64,
    /// Acceptance probability indexed by `(σ·nn + 4) / 2 ∈ 0..=4`.
    accept: [f32; 5],
    rng: GpuRng,
    sweep_index: u64,
}

/// The two randomness modes, mirroring `tpu_ising_core::Randomness` but
/// with per-row stream splitting (a GPU grid draws per-thread randoms; we
/// split a Philox stream per row so rows can run in parallel).
enum GpuRng {
    RowSplit { root: PhiloxStream },
    SiteKeyed(SiteRng),
}

impl GpuStyleIsing {
    /// Wrap an initial configuration.
    pub fn new(plane: Plane<f32>, beta: f64, rng: Randomness) -> Self {
        let rng = match rng {
            Randomness::Bulk(stream) => GpuRng::RowSplit { root: stream },
            Randomness::SiteKeyed(site) => GpuRng::SiteKeyed(site),
        };
        let mut s = GpuStyleIsing { plane, beta, accept: [0.0; 5], rng, sweep_index: 0 };
        s.rebuild_table();
        s
    }

    fn rebuild_table(&mut self) {
        // accept[k] = exp(−2β·σnn) for σnn = 2k−4, computed exactly the way
        // the per-site implementations compute it so site-keyed equivalence
        // is bitwise.
        let m2b = (-2.0 * self.beta) as f32;
        for k in 0..5 {
            let snn = (2 * k as i32 - 4) as f32;
            self.accept[k] = (snn * m2b).exp();
        }
    }

    /// The configuration.
    pub fn plane(&self) -> &Plane<f32> {
        &self.plane
    }

    /// Inverse temperature.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Change β (rebuilds the acceptance table, as the CUDA kernel re-
    /// uploads its constant memory).
    pub fn set_beta(&mut self, beta: f64) {
        self.beta = beta;
        self.rebuild_table();
    }

    /// Update all sites of one color in parallel row strips.
    pub fn update_color(&mut self, color: Color) {
        let (h, w) = (self.plane.height(), self.plane.width());
        let accept = self.accept;
        let sweep = self.sweep_index;
        let color_parity = color.tag() as usize;

        // Per-row uniforms: either a split stream per row (production) or
        // the site-keyed field (equivalence testing).
        let site_rng = match &self.rng {
            GpuRng::SiteKeyed(s) => Some(*s),
            GpuRng::RowSplit { .. } => None,
        };
        let row_streams: Option<Vec<PhiloxStream>> = match &self.rng {
            GpuRng::RowSplit { root } => Some(
                (0..h)
                    .map(|r| {
                        root.split(sweep * 2 * h as u64 + color.tag() as u64 * h as u64 + r as u64)
                    })
                    .collect(),
            ),
            GpuRng::SiteKeyed(_) => None,
        };

        // Read the old plane immutably; produce the new rows in parallel.
        let src = &self.plane;
        let new_rows: Vec<Vec<f32>> = (0..h)
            .into_par_iter()
            .map(|r| {
                let mut stream = row_streams.as_ref().map(|v| v[r].clone());
                let up = if r == 0 { h - 1 } else { r - 1 };
                let down = if r + 1 == h { 0 } else { r + 1 };
                let mut row = Vec::with_capacity(w);
                for c in 0..w {
                    let s = src.get(r, c);
                    if (r + c) % 2 != color_parity {
                        row.push(s);
                        continue;
                    }
                    let left = if c == 0 { w - 1 } else { c - 1 };
                    let right = if c + 1 == w { 0 } else { c + 1 };
                    let nn =
                        src.get(up, c) + src.get(down, c) + src.get(r, left) + src.get(r, right);
                    // σ·nn ∈ {−4,−2,0,2,4} → table index
                    let k = ((s * nn) as i32 + 4) / 2;
                    let u: f32 = match (&mut stream, &site_rng) {
                        (Some(st), _) => st.uniform(),
                        (None, Some(site)) => site.uniform(sweep, color.tag(), r as u32, c as u32),
                        _ => unreachable!(),
                    };
                    row.push(if u < accept[k as usize] { -s } else { s });
                }
                row
            })
            .collect();
        self.plane = Plane::from_fn(h, w, |r, c| new_rows[r][c]);
    }
}

impl Sweeper for GpuStyleIsing {
    fn sweep(&mut self) {
        self.update_color(Color::Black);
        self.update_color(Color::White);
        self.sweep_index += 1;
    }

    fn sites(&self) -> usize {
        self.plane.height() * self.plane.width()
    }

    fn magnetization_sum(&self) -> f64 {
        self.plane.sum_f64()
    }

    fn energy_sum(&self) -> f64 {
        tpu_ising_core::observables::energy_sum(&self.plane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_ising_core::lattice::{cold_plane, random_plane};
    use tpu_ising_core::reference::ReferenceIsing;

    #[test]
    fn lookup_table_values_are_metropolis() {
        let g = GpuStyleIsing::new(cold_plane(4, 4), 0.37, Randomness::bulk(0));
        for k in 0..5 {
            let snn = (2 * k as i32 - 4) as f32;
            let expect = (snn * (-2.0 * 0.37) as f32).exp();
            assert_eq!(g.accept[k], expect);
        }
        // σnn ≤ 0 entries are ≥ 1 (always accepted)
        assert!(g.accept[0] >= 1.0 && g.accept[1] >= 1.0 && g.accept[2] == 1.0);
    }

    #[test]
    fn matches_reference_exactly_with_site_keyed_rng() {
        let beta = 0.44;
        let init = random_plane::<f32>(17, 12, 12);
        let mut refer = ReferenceIsing::new(init.clone(), beta, Randomness::site_keyed(5));
        let mut gpu = GpuStyleIsing::new(init, beta, Randomness::site_keyed(5));
        for step in 0..8 {
            refer.sweep();
            gpu.sweep();
            assert_eq!(gpu.plane(), refer.plane(), "diverged at sweep {step}");
        }
    }

    #[test]
    fn matches_compact_tpu_mapping_exactly() {
        use tpu_ising_core::CompactIsing;
        let beta = 1.0 / tpu_ising_core::T_CRITICAL;
        let init = random_plane::<f32>(23, 16, 16);
        let mut gpu = GpuStyleIsing::new(init.clone(), beta, Randomness::site_keyed(88));
        let mut tpu = CompactIsing::from_plane(&init, 4, beta, Randomness::site_keyed(88));
        for _ in 0..6 {
            gpu.sweep();
            tpu.sweep();
        }
        assert_eq!(gpu.plane(), &tpu.to_plane());
    }

    #[test]
    fn orders_at_low_temperature() {
        let mut g = GpuStyleIsing::new(cold_plane(32, 32), 1.0, Randomness::bulk(9));
        for _ in 0..30 {
            g.sweep();
        }
        assert!(g.magnetization_sum() / 1024.0 > 0.9);
    }

    #[test]
    fn row_split_streams_are_reproducible() {
        let init = random_plane::<f32>(3, 16, 16);
        let mut a = GpuStyleIsing::new(init.clone(), 0.5, Randomness::bulk(42));
        let mut b = GpuStyleIsing::new(init, 0.5, Randomness::bulk(42));
        for _ in 0..5 {
            a.sweep();
            b.sweep();
        }
        assert_eq!(a.plane(), b.plane());
    }
}
