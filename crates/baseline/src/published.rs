//! Published baseline throughputs the paper quotes (flips per nanosecond).
//!
//! These are measurements from other groups' hardware; the paper reprints
//! them in Table 1 / Table 2 for context and so do our regenerated tables.
//! Only numbers printed in the paper itself are carried — the DGX-2/2H
//! curves of Fig. 8 come from reference \[25\] without printed values, so we
//! omit them (see EXPERIMENTS.md).

/// Preis et al. 2009 single-GPU checkerboard (GT200-class) — Table 1.
pub const GPU_PREIS_2009_FLIPS_PER_NS: f64 = 7.9774;

/// The paper's own CUDA port measured on a Tesla V100 — Table 1.
pub const V100_FLIPS_PER_NS: f64 = 11.3704;

/// Tesla V100 PCIe max power, used for the energy estimate — §4.2.1.
pub const V100_POWER_W: f64 = 250.0;

/// Block et al. 2010 multi-GPU (64 GPUs over MPI) on an 800 000² lattice —
/// Table 2.
pub const MULTI_GPU_64_FLIPS_PER_NS: f64 = 206.0;

/// Block et al. multi-GPU step time on the 800 000² lattice, ms — Table 2.
pub const MULTI_GPU_64_STEP_MS: f64 = 3000.0;

/// FPGA implementation of Ortega-Zamorano et al. \[20\] — Table 1.
pub const FPGA_FLIPS_PER_NS: f64 = 614.4;

/// The paper's best single-TPU-core plateau (Table 1, for reference in
/// cross-checks).
pub const TPU_V3_SINGLE_CORE_PLATEAU: f64 = 12.9056;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn papers_headline_claims_hold() {
        // "outperforms the best published benchmarks ... by 60% in
        // single-core" — vs Preis et al. GPU.
        let gain = TPU_V3_SINGLE_CORE_PLATEAU / GPU_PREIS_2009_FLIPS_PER_NS;
        assert!(gain > 1.6, "single-core gain {gain}");
        // "~10% gain" vs V100
        let v100_gain = TPU_V3_SINGLE_CORE_PLATEAU / V100_FLIPS_PER_NS;
        assert!((1.08..1.20).contains(&v100_gain), "v100 gain {v100_gain}");
        // "250% in multi-core": per-core 11.4337 vs 3.2188 per GPU
        let per_core_tpu = 11.4337;
        let per_gpu = MULTI_GPU_64_FLIPS_PER_NS / 64.0;
        let multi_gain = per_core_tpu / per_gpu;
        assert!((3.4..3.7).contains(&multi_gain), "multi gain {multi_gain}");
    }
}
