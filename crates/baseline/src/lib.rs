//! The baselines the paper benchmarks against (Table 1, Table 2, Fig. 8).
//!
//! Three pieces:
//!
//! - [`GpuStyleIsing`]: a functional re-implementation of the Preis et al.
//!   CUDA checkerboard kernel \[23\] on CPU threads — block-decomposed,
//!   lookup-table acceptance (GPUs avoid per-site `exp`), one thread-block
//!   per lattice strip. Validates the baseline's *physics* and serves as
//!   the fast CPU sampler for large functional runs.
//! - [`MultiSpinIsing`]: bit-packed multi-spin coding in the spirit of
//!   Block et al. \[3\]: 64 replicas simulated in parallel, one bit each, the
//!   Metropolis accept evaluated with bitwise full-adders and bit-sliced
//!   Bernoulli masks.
//! - [`published`]: the externally measured throughput constants the paper
//!   quotes for its competitor systems, carried verbatim into our
//!   regenerated tables exactly as the paper carries them.

pub mod gpu_style;
pub mod multispin;
pub mod published;

pub use gpu_style::GpuStyleIsing;
pub use multispin::MultiSpinIsing;
