//! Bit-packed multi-spin coding (Block et al. 2010 style).
//!
//! 64 *independent replicas* of the lattice are simulated simultaneously:
//! spin `(r, c)` of replica `k` is bit `k` of word `(r, c)` (spin up = 1).
//! One Metropolis color-update then costs a handful of bitwise ops per
//! word instead of per spin:
//!
//! - neighbor alignment indicators by XNOR,
//! - the alignment count by a bitwise full-adder tree,
//! - the temperature-dependent accepts by *bit-sliced Bernoulli masks*: a
//!   mask whose bits are independently 1 with probability `p`, built by
//!   comparing the binary expansion of `p` against bit-planes of random
//!   words (24 bits of resolution, the same as an f32-derived uniform).
//!
//! This is the technique behind the 206 flips/ns multi-GPU number the
//! paper compares against; on a CPU it delivers tens of flips per ns
//! because every instruction advances 64 Markov chains at once. Unlike
//! Block et al.'s original (which reused one random number across the
//! spins packed in a word), the bit-sliced masks here give every replica
//! an independent acceptance draw, so each replica is an *exact*
//! Metropolis chain.
//!
//! The mask machinery (`expand`, `bernoulli_mask`, `BERNOULLI_BITS`) lives
//! in [`tpu_ising_rng::bitsliced`], shared with the production multi-spin
//! engine in `tpu-ising-core`; this module remains the minimal reference
//! form (sequential pre-drawn masks, allocating color updates).

use rayon::prelude::*;
use tpu_ising_core::Color;
use tpu_ising_rng::bitsliced::{bernoulli_mask, expand, BERNOULLI_BITS};
use tpu_ising_rng::PhiloxStream;

/// 64 replicas of a periodic Ising lattice, one bit per replica.
pub struct MultiSpinIsing {
    /// Row-major words; bit k = spin of replica k (1 = up).
    words: Vec<u64>,
    height: usize,
    width: usize,
    beta: f64,
    rng: PhiloxStream,
    /// Binary expansions (MSB-first) of the two nontrivial acceptance
    /// probabilities: `p4 = e^{−8β}` (σ·nn = 4) and `p2 = e^{−4β}`.
    p4_bits: [bool; BERNOULLI_BITS as usize],
    p2_bits: [bool; BERNOULLI_BITS as usize],
}

impl MultiSpinIsing {
    /// `height × width` lattice, 64 replicas, all started hot with
    /// i.i.d. spins from the seed.
    pub fn new(height: usize, width: usize, beta: f64, seed: u64) -> Self {
        assert!(
            height.is_multiple_of(2) && width.is_multiple_of(2),
            "checkerboard needs even dimensions on a torus"
        );
        let mut rng = PhiloxStream::from_seed(seed);
        let words = (0..height * width).map(|_| rng.next_u64()).collect();
        let mut s = MultiSpinIsing {
            words,
            height,
            width,
            beta,
            rng,
            p4_bits: [false; BERNOULLI_BITS as usize],
            p2_bits: [false; BERNOULLI_BITS as usize],
        };
        s.rebuild_tables();
        s
    }

    fn rebuild_tables(&mut self) {
        self.p4_bits = expand((-8.0 * self.beta).exp());
        self.p2_bits = expand((-4.0 * self.beta).exp());
    }

    /// Lattice height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Lattice width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Inverse temperature.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Change β.
    pub fn set_beta(&mut self, beta: f64) {
        self.beta = beta;
        self.rebuild_tables();
    }

    /// Spin of `(replica, row, col)` as ±1.
    pub fn spin(&self, replica: usize, r: usize, c: usize) -> i8 {
        debug_assert!(replica < 64);
        if (self.words[r * self.width + c] >> replica) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Per-replica magnetization sums `Σσ` (length 64).
    pub fn magnetizations(&self) -> [f64; 64] {
        let mut ups = [0u64; 64];
        for &w in &self.words {
            for (k, u) in ups.iter_mut().enumerate() {
                *u += (w >> k) & 1;
            }
        }
        let n = (self.height * self.width) as f64;
        let mut m = [0.0f64; 64];
        for k in 0..64 {
            m[k] = 2.0 * ups[k] as f64 - n;
        }
        m
    }

    /// Update all sites of one color across all replicas.
    pub fn update_color(&mut self, color: Color) {
        let (h, w) = (self.height, self.width);
        let parity = color.tag() as usize;
        // Pre-draw the Bernoulli masks for every color site (sequential
        // stream; the bit-plane loop is the expensive part and is still
        // ~50 words per site-word = <1 word per replica-spin).
        let n_color_sites = h * w / 2;
        let mut masks = Vec::with_capacity(n_color_sites);
        for _ in 0..n_color_sites {
            let m4 = bernoulli_mask(&self.p4_bits, &mut self.rng);
            let m2 = bernoulli_mask(&self.p2_bits, &mut self.rng);
            masks.push((m4, m2));
        }
        let src = &self.words;
        let masks = &masks;
        let new_words: Vec<u64> = (0..h)
            .into_par_iter()
            .flat_map_iter(|r| {
                let up = if r == 0 { h - 1 } else { r - 1 };
                let down = if r + 1 == h { 0 } else { r + 1 };
                (0..w).map(move |c| {
                    let s = src[r * w + c];
                    if (r + c) % 2 != parity {
                        return s;
                    }
                    let left = if c == 0 { w - 1 } else { c - 1 };
                    let right = if c + 1 == w { 0 } else { c + 1 };
                    // alignment indicators
                    let x1 = !(s ^ src[up * w + c]);
                    let x2 = !(s ^ src[down * w + c]);
                    let x3 = !(s ^ src[r * w + left]);
                    let x4 = !(s ^ src[r * w + right]);
                    // full-adder tree: count = x1+x2+x3+x4 as (c2, c1, c0)
                    let (s0a, c0a) = (x1 ^ x2, x1 & x2);
                    let (s0b, c0b) = (x3 ^ x4, x3 & x4);
                    let s0 = s0a ^ s0b; // ones bit
                    let c1 = s0a & s0b;
                    let s1 = c0a ^ c0b ^ c1; // twos bit
                    let c2 = (c0a & c0b) | (c1 & (c0a ^ c0b)); // fours bit
                                                               // aligned==4 ⇒ σ·nn = 4; aligned==3 ⇒ σ·nn = 2;
                                                               // aligned ≤ 2 ⇒ σ·nn ≤ 0 ⇒ always accept.
                    let exactly4 = c2;
                    let exactly3 = s1 & s0;
                    // per-site color index for the pre-drawn masks: count
                    // color sites before (r, c) in raster order
                    let color_idx = (r * w + c) / 2; // exact for even widths
                    let (m4, m2) = masks[color_idx];
                    let accept = (!exactly4 & !exactly3) | (exactly4 & m4) | (exactly3 & m2);
                    s ^ accept
                })
            })
            .collect();
        self.words = new_words;
    }

    /// One full sweep (black + white) of all replicas.
    pub fn sweep(&mut self) {
        self.update_color(Color::Black);
        self.update_color(Color::White);
    }

    /// Replica-spins updated per sweep (for throughput accounting):
    /// `64 · height · width`.
    pub fn flips_per_sweep(&self) -> u64 {
        64 * (self.height * self.width) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests of `expand` / `bernoulli_mask` themselves live with the shared
    // implementation in `tpu_ising_rng::bitsliced`; here we only cover the
    // packed sweeper built on top of them.

    #[test]
    fn frozen_at_low_temperature_from_cold() {
        let mut ms = MultiSpinIsing::new(8, 8, 10.0, 1);
        // force all replicas cold
        ms.words.iter_mut().for_each(|w| *w = !0);
        for _ in 0..5 {
            ms.sweep();
        }
        assert!(ms.words.iter().all(|&w| w == !0), "flips at β=10 from ground state");
    }

    #[test]
    fn beta_zero_flips_everything() {
        let mut ms = MultiSpinIsing::new(6, 6, 0.0, 2);
        let before = ms.words.clone();
        ms.update_color(Color::Black);
        for r in 0..6 {
            for c in 0..6 {
                let idx = r * 6 + c;
                if (r + c) % 2 == 0 {
                    assert_eq!(ms.words[idx], !before[idx], "black site must flip");
                } else {
                    assert_eq!(ms.words[idx], before[idx], "white site must not");
                }
            }
        }
    }

    #[test]
    fn replicas_decorrelate() {
        // After some sweeps at high temperature, replicas differ.
        let mut ms = MultiSpinIsing::new(8, 8, 0.2, 5);
        for _ in 0..10 {
            ms.sweep();
        }
        let m = ms.magnetizations();
        let distinct = m.iter().map(|&x| x as i64).collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 4, "replicas look identical");
    }

    #[test]
    fn low_temperature_orders_all_replicas() {
        let mut ms = MultiSpinIsing::new(16, 16, 0.7, 11);
        for _ in 0..200 {
            ms.sweep();
        }
        let n = 256.0;
        let mean_abs: f64 = ms.magnetizations().iter().map(|m| m.abs() / n).sum::<f64>() / 64.0;
        assert!(mean_abs > 0.8, "⟨|m|⟩ = {mean_abs}");
    }

    #[test]
    fn adder_counts_correctly() {
        // exhaustive check of the 4-input bitwise adder on one bit lane
        for bits in 0..16u32 {
            let x: Vec<u64> = (0..4).map(|i| ((bits >> i) & 1) as u64).collect();
            let (s0a, c0a) = (x[0] ^ x[1], x[0] & x[1]);
            let (s0b, c0b) = (x[2] ^ x[3], x[2] & x[3]);
            let s0 = s0a ^ s0b;
            let c1 = s0a & s0b;
            let s1 = c0a ^ c0b ^ c1;
            let c2 = (c0a & c0b) | (c1 & (c0a ^ c0b));
            let count = bits.count_ones() as u64;
            assert_eq!(c2 * 4 + s1 * 2 + s0, count, "bits {bits:04b}");
        }
    }
}
