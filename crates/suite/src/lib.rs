//! Umbrella crate: hosts the workspace-root `examples/` binaries and the
//! cross-crate integration tests in `tests/`. It re-exports the public
//! surface of the workspace so examples read like downstream user code,
//! and hosts the [`grid`] capability-grid suite runner (`suite_grid` bin).

pub mod grid;

pub use tpu_ising_baseline as baseline;
pub use tpu_ising_bf16 as bf16;
pub use tpu_ising_core as ising;
pub use tpu_ising_device as device;
pub use tpu_ising_hlo as hlo;
pub use tpu_ising_rng as rng;
pub use tpu_ising_tensor as tensor;
