//! Capability-grid suite runner.
//!
//! Enumerates the full deployment matrix the workspace claims to support —
//! every registered [`Algo`] × lattice size × deployment shape — and
//! actually runs each supported cell, recording wall time, aggregate
//! spin-flip throughput and a pass/fail status per row. The enumeration is
//! **capability-driven**: a cell only appears when the engine's
//! [`EngineCaps`](tpu_ising_core::engine::EngineCaps) say it is supported
//! (Wolff has no mesh support, so it only gets single-core rows), so the
//! grid is simultaneously a regression suite and a living statement of
//! what works where.
//!
//! Deployments per mesh-capable algorithm:
//!
//! * `single`     — one engine, one core, timed sweeps.
//! * `pod`        — 2×2 SPMD mesh, fault-free.
//! * `resilient`  — 2×2 mesh with a deterministic mid-run core kill; the
//!   run must survive via checkpoint/restart.
//! * `vaulted`    — as `pod`, with every snapshot persisted through a
//!   durable CRC-checked [`Vault`] (needs a real JSON serializer).
//! * `chaos`      — the seeded crash/corrupt/resume drill; the surviving
//!   run must be bit-exact with an uninterrupted reference.
//!
//! Multispin single-core rows are additionally gated against the same
//! per-ISA absolute flips/ns floors CI enforces through
//! `perfbase --gate-multispin` ([`multispin_floor`]), so the committed
//! `results/SUITE_grid.json` doubles as a throughput acceptance artifact.

use std::path::{Path, PathBuf};
use std::time::Instant;

use tpu_ising_bench::{json_escape, multispin_floor, results_dir, run_metadata, RunMetadata};
use tpu_ising_core::chaos::{run_chaos_engine, run_chaos_multispin, ChaosPlan, ChaosReport};
use tpu_ising_core::distributed::{
    run_pod_engine_resilient, run_pod_engine_vaulted, PodConfig, PodRng, ResilienceOpts,
};
use tpu_ising_core::engine::{
    build_engine, with_scalar_engine, Algo, Dtype, EngineSpec, ScalarEngineVisitor,
    ScalarMeshEngine,
};
use tpu_ising_core::multispin::{
    run_multispin_pod_resilient, run_multispin_pod_vaulted, MultiSpinPodConfig,
};
use tpu_ising_core::vault::Vault;
use tpu_ising_core::{KernelBackend, Scalar, T_CRITICAL};
use tpu_ising_device::mesh::{FaultPlan, RetryPolicy, Torus};
use tpu_ising_rng::RandomUniform;

/// Temperature every grid cell runs at: slightly below critical, the
/// regime the paper benchmarks (ordered phase, non-trivial acceptance).
const T_OVER_TC: f64 = 0.95;

/// One measured (or skipped) cell of the capability grid.
#[derive(Clone, Debug)]
pub struct GridRow {
    /// Algorithm name (`naive`/`compact`/`conv`/`multispin`/`wolff`).
    pub scenario: &'static str,
    /// Global lattice side (pods split this across a 2×2 torus).
    pub size: usize,
    /// Neighbor-sum backend label (`band`, `avx2`, `sequential`, …).
    pub backend: String,
    /// Lattice precision (`f32` or `packed`).
    pub dtype: &'static str,
    /// Deployment shape (`single`/`pod`/`resilient`/`vaulted`/`chaos`).
    pub deployment: &'static str,
    /// `ok`, `skip` (unsupported in this build, with the reason in
    /// `detail`), or `fail`.
    pub status: &'static str,
    /// Human-readable annotation (fault survival, skip reason, error).
    pub detail: String,
    /// Wall-clock for the measured phase, in milliseconds.
    pub wall_ms: f64,
    /// Aggregate spin-flip throughput (0 when not meaningful, e.g. the
    /// chaos drill which times a whole crash/resume loop).
    pub flips_per_ns: f64,
}

/// Grid scale knobs. `quick` is the CI shape; the full grid is what the
/// committed artifact is generated from.
#[derive(Clone, Debug)]
pub struct GridOptions {
    /// Smaller lattices and fewer sweeps (CI quick mode).
    pub quick: bool,
    /// Global lattice sides to run. Empty → defaults per mode.
    pub sizes: Vec<usize>,
}

impl GridOptions {
    /// The lattice sides this run will use.
    pub fn effective_sizes(&self) -> Vec<usize> {
        if !self.sizes.is_empty() {
            self.sizes.clone()
        } else if self.quick {
            vec![32]
        } else {
            vec![64, 128]
        }
    }

    fn single_sweeps(&self) -> usize {
        if self.quick {
            40
        } else {
            150
        }
    }

    fn pod_sweeps(&self) -> usize {
        if self.quick {
            16
        } else {
            40
        }
    }
}

/// True when a real JSON serializer is linked. The offline dev harness
/// stubs `serde_json`, which disables the vault/chaos deployments (their
/// checkpoints must round-trip through JSON on disk); those cells then
/// report `skip` with this reason rather than failing.
pub fn serde_is_real() -> bool {
    serde_json::to_string(&7u32).map(|s| s == "7").unwrap_or(false)
}

fn beta() -> f64 {
    1.0 / (T_OVER_TC * T_CRITICAL)
}

fn scalar_pod_cfg(size: usize) -> PodConfig {
    let per = size / 2;
    PodConfig {
        torus: Torus::new(2, 2),
        per_core_h: per,
        per_core_w: per,
        tile: (per / 4).clamp(1, 16),
        beta: beta(),
        seed: 7,
        rng: PodRng::SiteKeyed,
        backend: KernelBackend::Band,
    }
}

fn multispin_pod_cfg(size: usize) -> MultiSpinPodConfig {
    MultiSpinPodConfig {
        torus: Torus::new(2, 2),
        per_core_h: size / 2,
        per_core_w: size / 2,
        beta: beta(),
        seed: 7,
    }
}

/// Fault-free / faulted resilience knobs shared by the pod deployments.
/// The recv timeout is short so a killed core is detected in milliseconds
/// rather than the CLI's operator-friendly 30 s default.
fn grid_opts(faults: FaultPlan, max_restarts: usize) -> ResilienceOpts {
    ResilienceOpts {
        checkpoint_every: 8,
        max_restarts,
        recv_timeout: std::time::Duration::from_millis(500),
        faults,
        retry: RetryPolicy { max_retries: 2, backoff: std::time::Duration::from_millis(10) },
        ..ResilienceOpts::default()
    }
}

/// The scalar pod probe: one generic body for the `pod`, `resilient` and
/// `vaulted` deployments, instantiated per algorithm by
/// [`with_scalar_engine`]. Returns the restart count on success.
struct ScalarPodProbe<'a> {
    cfg: &'a PodConfig,
    sweeps: usize,
    opts: &'a ResilienceOpts,
    vault: Option<&'a Vault>,
}

impl ScalarEngineVisitor for ScalarPodProbe<'_> {
    type Out = Result<usize, String>;
    fn visit<S, E>(self) -> Self::Out
    where
        S: Scalar + RandomUniform + 'static,
        E: ScalarMeshEngine<S> + Send + 'static,
    {
        let run = match self.vault {
            Some(v) => run_pod_engine_vaulted::<S, E>(self.cfg, self.sweeps, self.opts, None, v),
            None => run_pod_engine_resilient::<S, E>(self.cfg, self.sweeps, self.opts, None),
        };
        run.map(|r| r.restarts).map_err(|e| e.to_string())
    }
}

/// The scalar chaos probe: runs the full crash/corrupt/resume drill.
struct ScalarChaosProbe<'a> {
    cfg: &'a PodConfig,
    sweeps: usize,
    plan: &'a ChaosPlan,
    vault_dir: &'a Path,
}

impl ScalarEngineVisitor for ScalarChaosProbe<'_> {
    type Out = Result<ChaosReport, String>;
    fn visit<S, E>(self) -> Self::Out
    where
        S: Scalar + RandomUniform + 'static,
        E: ScalarMeshEngine<S> + Send + 'static,
    {
        run_chaos_engine::<S, E>(self.cfg, self.sweeps, 2, self.plan, self.vault_dir, 3)
            .map_err(|e| e.to_string())
    }
}

/// Time `sweeps` sweeps of a freshly built engine (after a short warmup).
fn single_row(algo: Algo, size: usize, sweeps: usize) -> GridRow {
    let spec = EngineSpec {
        algo,
        dtype: if algo.caps().replicas > 1 { Dtype::Packed } else { Dtype::F32 },
        height: size,
        width: size,
        tile: (size / 4).clamp(2, 16),
        beta: beta(),
        seed: 7,
        cold: true,
        backend: KernelBackend::Band,
    };
    let mut engine = match build_engine(&spec) {
        Ok(e) => e,
        Err(e) => {
            return GridRow {
                scenario: algo.name(),
                size,
                backend: "-".into(),
                dtype: spec.dtype.name(),
                deployment: "single",
                status: "fail",
                detail: e,
                wall_ms: 0.0,
                flips_per_ns: 0.0,
            }
        }
    };
    let desc = engine.descriptor();
    for _ in 0..3 {
        engine.sweep();
    }
    let flips = engine.flips_per_sweep() as f64 * sweeps as f64;
    let t0 = Instant::now();
    for _ in 0..sweeps {
        engine.sweep();
    }
    let wall = t0.elapsed().as_secs_f64();
    let flips_per_ns = flips / (wall * 1e9);

    // The multispin single-core cell carries the same absolute per-ISA
    // throughput bar as `perfbase --gate-multispin`. Only enforced in
    // release builds — a debug build measures the compiler, not the
    // kernel.
    let mut status = "ok";
    let mut detail = String::new();
    if desc.algo.caps().replicas > 1 {
        let isa = tpu_ising_rng::simd::isa();
        let floor = multispin_floor(isa);
        if cfg!(debug_assertions) {
            detail = format!("debug build: per-ISA floor {floor:.2} not enforced");
        } else if flips_per_ns < floor {
            status = "fail";
            detail =
                format!("below the {} floor: {flips_per_ns:.3} < {floor:.2} flips/ns", isa.name());
        } else {
            detail = format!("clears the {} floor {floor:.2} flips/ns", isa.name());
        }
    }
    GridRow {
        scenario: algo.name(),
        size,
        backend: desc.backend.name().to_string(),
        dtype: desc.dtype.name(),
        deployment: "single",
        status,
        detail,
        wall_ms: wall * 1e3,
        flips_per_ns,
    }
}

fn skip_row(
    algo: Algo,
    size: usize,
    backend: &str,
    dtype: &'static str,
    deployment: &'static str,
    why: &str,
) -> GridRow {
    GridRow {
        scenario: algo.name(),
        size,
        backend: backend.to_string(),
        dtype,
        deployment,
        status: "skip",
        detail: why.to_string(),
        wall_ms: 0.0,
        flips_per_ns: 0.0,
    }
}

/// Run the full capability grid and return its rows.
pub fn run_grid(opts: &GridOptions) -> Vec<GridRow> {
    let serde_ok = serde_is_real();
    let vault_base =
        std::env::temp_dir().join(format!("tpu-ising-suite-grid-{}", std::process::id()));
    let mut rows = Vec::new();
    for &size in &opts.effective_sizes() {
        for algo in Algo::ALL {
            let caps = algo.caps();
            rows.push(single_row(algo, size, opts.single_sweeps()));
            if !caps.mesh {
                continue;
            }
            let packed = caps.replicas > 1;
            let backend_label = if packed {
                tpu_ising_rng::simd::isa().name().to_string()
            } else {
                "band".to_string()
            };
            let dtype_label: &'static str = if packed { "packed" } else { "f32" };
            let sweeps = opts.pod_sweeps();

            // pod (fault-free) and resilient (deterministic mid-run kill).
            for (deployment, faults, max_restarts) in [
                ("pod", FaultPlan::new(), 0usize),
                ("resilient", FaultPlan::new().kill(3, 20), 2usize),
            ] {
                let ropts = grid_opts(faults, max_restarts);
                let t0 = Instant::now();
                let outcome = if packed {
                    run_multispin_pod_resilient(&multispin_pod_cfg(size), sweeps, &ropts, None)
                        .map(|r| r.restarts)
                        .map_err(|e| e.to_string())
                } else {
                    let cfg = scalar_pod_cfg(size);
                    with_scalar_engine(
                        algo,
                        Dtype::F32,
                        ScalarPodProbe { cfg: &cfg, sweeps, opts: &ropts, vault: None },
                    )
                    .unwrap_or_else(Err)
                };
                let wall = t0.elapsed().as_secs_f64();
                let flips = if packed {
                    multispin_pod_cfg(size).flips_per_sweep() as f64 * sweeps as f64
                } else {
                    (size * size * sweeps) as f64
                };
                rows.push(match outcome {
                    Ok(restarts) => GridRow {
                        scenario: algo.name(),
                        size,
                        backend: backend_label.clone(),
                        dtype: dtype_label,
                        deployment,
                        status: "ok",
                        detail: if deployment == "resilient" {
                            format!("survived core kill with {restarts} restart(s)")
                        } else {
                            String::new()
                        },
                        wall_ms: wall * 1e3,
                        flips_per_ns: flips / (wall * 1e9),
                    },
                    Err(e) => GridRow {
                        scenario: algo.name(),
                        size,
                        backend: backend_label.clone(),
                        dtype: dtype_label,
                        deployment,
                        status: "fail",
                        detail: e,
                        wall_ms: wall * 1e3,
                        flips_per_ns: 0.0,
                    },
                });
            }

            // vaulted: every snapshot persisted through the durable vault.
            if !serde_ok {
                rows.push(skip_row(
                    algo,
                    size,
                    &backend_label,
                    dtype_label,
                    "vaulted",
                    "stub serializer in the offline harness (runs on CI)",
                ));
            } else {
                let dir = vault_base.join(format!("vault-{}-{size}", algo.name()));
                let _ = std::fs::create_dir_all(&dir);
                let row = match Vault::new(&dir, "suite", 3) {
                    Err(e) => GridRow {
                        scenario: algo.name(),
                        size,
                        backend: backend_label.clone(),
                        dtype: dtype_label,
                        deployment: "vaulted",
                        status: "fail",
                        detail: e.to_string(),
                        wall_ms: 0.0,
                        flips_per_ns: 0.0,
                    },
                    Ok(vault) => {
                        let ropts = grid_opts(FaultPlan::new(), 0);
                        let t0 = Instant::now();
                        let outcome = if packed {
                            run_multispin_pod_vaulted(
                                &multispin_pod_cfg(size),
                                sweeps,
                                &ropts,
                                None,
                                &vault,
                            )
                            .map(|r| r.restarts)
                            .map_err(|e| e.to_string())
                        } else {
                            let cfg = scalar_pod_cfg(size);
                            with_scalar_engine(
                                algo,
                                Dtype::F32,
                                ScalarPodProbe {
                                    cfg: &cfg,
                                    sweeps,
                                    opts: &ropts,
                                    vault: Some(&vault),
                                },
                            )
                            .unwrap_or_else(Err)
                        };
                        let wall = t0.elapsed().as_secs_f64();
                        let generations = vault.generations().len();
                        match outcome {
                            Ok(_) => GridRow {
                                scenario: algo.name(),
                                size,
                                backend: backend_label.clone(),
                                dtype: dtype_label,
                                deployment: "vaulted",
                                status: "ok",
                                detail: format!("{generations} vault generation(s) on disk"),
                                wall_ms: wall * 1e3,
                                flips_per_ns: 0.0,
                            },
                            Err(e) => GridRow {
                                scenario: algo.name(),
                                size,
                                backend: backend_label.clone(),
                                dtype: dtype_label,
                                deployment: "vaulted",
                                status: "fail",
                                detail: e,
                                wall_ms: wall * 1e3,
                                flips_per_ns: 0.0,
                            },
                        }
                    }
                };
                rows.push(row);
                let _ = std::fs::remove_dir_all(&dir);
            }

            // chaos: seeded crash/corrupt/resume loop, bit-exactness check.
            if !caps.checkpoint {
                continue;
            }
            if !serde_ok {
                rows.push(skip_row(
                    algo,
                    size,
                    &backend_label,
                    dtype_label,
                    "chaos",
                    "stub serializer in the offline harness (runs on CI)",
                ));
                continue;
            }
            let chaos_sweeps = 8;
            let plan = ChaosPlan::generate(1, 2, 4, chaos_sweeps as u64 * 8);
            let dir = vault_base.join(format!("chaos-{}-{size}", algo.name()));
            let _ = std::fs::create_dir_all(&dir);
            let t0 = Instant::now();
            let outcome = if packed {
                run_chaos_multispin(&multispin_pod_cfg(size), chaos_sweeps, 2, &plan, &dir, 3)
                    .map_err(|e| e.to_string())
            } else {
                let cfg = scalar_pod_cfg(size);
                with_scalar_engine(
                    algo,
                    Dtype::F32,
                    ScalarChaosProbe {
                        cfg: &cfg,
                        sweeps: chaos_sweeps,
                        plan: &plan,
                        vault_dir: &dir,
                    },
                )
                .unwrap_or_else(Err)
            };
            let wall = t0.elapsed().as_secs_f64();
            let _ = std::fs::remove_dir_all(&dir);
            rows.push(match outcome {
                Ok(report) if report.bit_exact => GridRow {
                    scenario: algo.name(),
                    size,
                    backend: backend_label.clone(),
                    dtype: dtype_label,
                    deployment: "chaos",
                    status: "ok",
                    detail: format!(
                        "bit-exact after {} session(s), {} crash(es), {} corruption(s)",
                        report.sessions, report.crashes, report.corruptions
                    ),
                    wall_ms: wall * 1e3,
                    flips_per_ns: 0.0,
                },
                Ok(_) => GridRow {
                    scenario: algo.name(),
                    size,
                    backend: backend_label.clone(),
                    dtype: dtype_label,
                    deployment: "chaos",
                    status: "fail",
                    detail: "chaos run diverged from the uninterrupted reference".into(),
                    wall_ms: wall * 1e3,
                    flips_per_ns: 0.0,
                },
                Err(e) => GridRow {
                    scenario: algo.name(),
                    size,
                    backend: backend_label.clone(),
                    dtype: dtype_label,
                    deployment: "chaos",
                    status: "fail",
                    detail: e,
                    wall_ms: wall * 1e3,
                    flips_per_ns: 0.0,
                },
            });
        }
    }
    let _ = std::fs::remove_dir_all(&vault_base);
    rows
}

/// p-th percentile (nearest-rank on the sorted values); 0 for empty input.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
    v[idx.min(v.len() - 1)]
}

/// Per-deployment p50/p90 of wall time and throughput over the `ok` rows.
pub struct DeploymentSummary {
    /// Deployment label this summary aggregates.
    pub deployment: &'static str,
    /// Total rows enumerated for the deployment.
    pub rows: usize,
    /// Rows with status `ok`.
    pub ok: usize,
    /// Median wall time of ok rows, ms.
    pub wall_ms_p50: f64,
    /// 90th-percentile wall time of ok rows, ms.
    pub wall_ms_p90: f64,
    /// Median aggregate throughput of ok rows with a meaningful figure.
    pub flips_per_ns_p50: f64,
    /// 90th percentile of the same.
    pub flips_per_ns_p90: f64,
}

/// Aggregate the rows into one summary per deployment (stable order).
pub fn summarize(rows: &[GridRow]) -> Vec<DeploymentSummary> {
    ["single", "pod", "resilient", "vaulted", "chaos"]
        .into_iter()
        .filter_map(|dep| {
            let all: Vec<&GridRow> = rows.iter().filter(|r| r.deployment == dep).collect();
            if all.is_empty() {
                return None;
            }
            let ok: Vec<&GridRow> = all.iter().filter(|r| r.status == "ok").copied().collect();
            let walls: Vec<f64> = ok.iter().map(|r| r.wall_ms).collect();
            let flips: Vec<f64> = ok.iter().map(|r| r.flips_per_ns).filter(|&f| f > 0.0).collect();
            Some(DeploymentSummary {
                deployment: dep,
                rows: all.len(),
                ok: ok.len(),
                wall_ms_p50: percentile(&walls, 50.0),
                wall_ms_p90: percentile(&walls, 90.0),
                flips_per_ns_p50: percentile(&flips, 50.0),
                flips_per_ns_p90: percentile(&flips, 90.0),
            })
        })
        .collect()
}

fn row_json(r: &GridRow) -> String {
    format!(
        "{{\"scenario\": \"{}\", \"size\": {}, \"backend\": \"{}\", \"dtype\": \"{}\", \
         \"deployment\": \"{}\", \"status\": \"{}\", \"detail\": \"{}\", \
         \"wall_ms\": {:.3}, \"flips_per_ns\": {:.5}}}",
        r.scenario,
        r.size,
        json_escape(&r.backend),
        r.dtype,
        r.deployment,
        r.status,
        json_escape(&r.detail),
        r.wall_ms,
        r.flips_per_ns
    )
}

/// Assemble the whole artifact as JSON by hand (the suite must work with
/// the offline serde stub, where `serde_json::to_string` is unavailable).
pub fn grid_json(meta: &RunMetadata, mode: &str, rows: &[GridRow]) -> String {
    let summaries: Vec<String> = summarize(rows)
        .iter()
        .map(|s| {
            format!(
                "    {{\"deployment\": \"{}\", \"rows\": {}, \"ok\": {}, \
                 \"wall_ms_p50\": {:.3}, \"wall_ms_p90\": {:.3}, \
                 \"flips_per_ns_p50\": {:.5}, \"flips_per_ns_p90\": {:.5}}}",
                s.deployment,
                s.rows,
                s.ok,
                s.wall_ms_p50,
                s.wall_ms_p90,
                s.flips_per_ns_p50,
                s.flips_per_ns_p90
            )
        })
        .collect();
    let body: Vec<String> = rows.iter().map(|r| format!("    {}", row_json(r))).collect();
    format!(
        "{{\n  \"suite\": \"capability-grid\",\n  \"mode\": \"{mode}\",\n  {},\n  \
         \"rows\": [\n{}\n  ],\n  \"summary\": [\n{}\n  ]\n}}\n",
        meta.to_json_fields(),
        body.join(",\n"),
        summaries.join(",\n")
    )
}

/// Write `results/SUITE_grid.json` + `.csv`; returns the JSON path.
pub fn write_grid(mode: &str, rows: &[GridRow]) -> std::io::Result<PathBuf> {
    let meta = run_metadata();
    let json = grid_json(&meta, mode, rows);
    let dir = results_dir();
    let json_path = dir.join("SUITE_grid.json");
    std::fs::write(&json_path, json)?;
    let mut csv =
        String::from("scenario,size,backend,dtype,deployment,status,wall_ms,flips_per_ns,detail\n");
    for r in rows {
        csv.push_str(&format!(
            "{},{},{},{},{},{},{:.3},{:.5},{}\n",
            r.scenario,
            r.size,
            r.backend,
            r.dtype,
            r.deployment,
            r.status,
            r.wall_ms,
            r.flips_per_ns,
            r.detail.replace(',', ";")
        ));
    }
    std::fs::write(dir.join("SUITE_grid.csv"), csv)?;
    Ok(json_path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 50.0), 3.0); // idx round(0.5*3)=2
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn grid_enumerates_capability_cells_only() {
        // Tiny grid: every algo gets a single row; wolff gets *only* a
        // single row (no mesh); mesh algos get pod + resilient (+ vaulted
        // / chaos as run or skip depending on the serializer).
        let opts = GridOptions { quick: true, sizes: vec![16] };
        let rows = run_grid(&opts);
        let singles: Vec<&GridRow> = rows.iter().filter(|r| r.deployment == "single").collect();
        assert_eq!(singles.len(), Algo::ALL.len());
        assert!(rows.iter().all(|r| r.scenario != "wolff" || r.deployment == "single"));
        for algo in ["naive", "compact", "conv", "multispin"] {
            for dep in ["pod", "resilient", "vaulted", "chaos"] {
                assert!(
                    rows.iter().any(|r| r.scenario == algo && r.deployment == dep),
                    "missing {algo}/{dep} row"
                );
            }
        }
        // Single + pod + resilient must actually run everywhere.
        for r in &rows {
            if matches!(r.deployment, "single" | "pod" | "resilient") {
                // A debug-build multispin single row may still miss the
                // floor only in release; status stays ok in tests.
                assert_ne!(
                    r.status, "fail",
                    "{}/{} failed: {}",
                    r.scenario, r.deployment, r.detail
                );
            }
        }
        let json = grid_json(&run_metadata(), "quick", &rows);
        assert!(json.contains("\"suite\": \"capability-grid\""));
        assert!(json.contains("\"deployment\": \"single\""));
    }
}
