//! `suite_grid` — run the capability-grid suite and write
//! `results/SUITE_grid.json` + `.csv`.
//!
//! ```text
//! cargo run --release -p tpu-ising-suite --bin suite_grid            # full grid
//! cargo run --release -p tpu-ising-suite --bin suite_grid -- --quick # CI shape
//! cargo run --release -p tpu-ising-suite --bin suite_grid -- --quick --check
//! ```
//!
//! `--check` turns the grid into a gate: any row whose status is not `ok`
//! (a failed run, a multispin row below its per-ISA flips/ns floor, or a
//! skipped cell) exits non-zero. CI runs `--quick --check`, where a real
//! serializer is linked and every enumerated cell must pass; the committed
//! artifact is regenerated locally with the full grid, where
//! vault-dependent cells may honestly report `skip` under the offline
//! serde stub.

use tpu_ising_bench::print_table;
use tpu_ising_suite::grid::{run_grid, summarize, write_grid, GridOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let mut sizes = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--sizes" {
            if let Some(list) = it.next() {
                sizes = list.split(',').filter_map(|s| s.trim().parse::<usize>().ok()).collect();
            }
        }
    }
    let opts = GridOptions { quick, sizes };
    let mode = if quick { "quick" } else { "full" };
    println!(
        "capability grid: sizes {:?}, {} mode{}",
        opts.effective_sizes(),
        mode,
        if check { ", --check gate on" } else { "" }
    );

    let rows = run_grid(&opts);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                r.size.to_string(),
                r.backend.clone(),
                r.dtype.to_string(),
                r.deployment.to_string(),
                r.status.to_string(),
                if r.wall_ms > 0.0 { format!("{:.1}", r.wall_ms) } else { "-".into() },
                if r.flips_per_ns > 0.0 { format!("{:.3}", r.flips_per_ns) } else { "-".into() },
                r.detail.clone(),
            ]
        })
        .collect();
    print_table(
        "capability grid",
        &[
            "scenario",
            "size",
            "backend",
            "dtype",
            "deployment",
            "status",
            "wall ms",
            "flips/ns",
            "detail",
        ],
        &table,
    );

    let summary: Vec<Vec<String>> = summarize(&rows)
        .iter()
        .map(|s| {
            vec![
                s.deployment.to_string(),
                format!("{}/{}", s.ok, s.rows),
                format!("{:.1}", s.wall_ms_p50),
                format!("{:.1}", s.wall_ms_p90),
                format!("{:.3}", s.flips_per_ns_p50),
                format!("{:.3}", s.flips_per_ns_p90),
            ]
        })
        .collect();
    print_table(
        "per-deployment summary (ok rows)",
        &["deployment", "ok", "wall p50 ms", "wall p90 ms", "flips/ns p50", "flips/ns p90"],
        &summary,
    );

    match write_grid(mode, &rows) {
        Ok(path) => println!("\n[results written to {} (+ .csv)]", path.display()),
        Err(e) => {
            eprintln!("error: could not write results: {e}");
            std::process::exit(1);
        }
    }

    if check {
        let bad: Vec<&_> = rows.iter().filter(|r| r.status != "ok").collect();
        if !bad.is_empty() {
            eprintln!("\nsuite-grid gate FAILED: {} row(s) not ok", bad.len());
            for r in &bad {
                eprintln!(
                    "  {}/{} size {} [{}]: {}",
                    r.scenario, r.deployment, r.size, r.status, r.detail
                );
            }
            std::process::exit(1);
        }
        println!("\nsuite-grid gate passed: every enumerated cell is ok");
    }
}
