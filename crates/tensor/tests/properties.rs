//! Property-based tests of the tensor algebra invariants the Ising
//! kernels rely on.

use proptest::prelude::*;
use tpu_ising_tensor::{
    band_kernel, bidiag_kernel, Axis, BandKernel, Bf16, Mat, Plane, Side, Tensor4,
};

const BAND_KINDS: [BandKernel; 3] = [BandKernel::Bidiag, BandKernel::BidiagT, BandKernel::Tridiag];

/// Strategy: a small random rank-4 tensor with integer-valued entries
/// (exact at every precision).
fn tensor_strategy() -> impl Strategy<Value = Tensor4<f32>> {
    (1usize..4, 1usize..4, 1usize..6, 1usize..6).prop_flat_map(|(m, n, r, c)| {
        proptest::collection::vec(-8i32..=8, m * n * r * c).prop_map(move |vals| {
            Tensor4::from_vec([m, n, r, c], vals.into_iter().map(|v| v as f32).collect())
        })
    })
}

/// Strategy: a random square plane with even side (checkerboard-valid).
fn plane_strategy() -> impl Strategy<Value = Plane<f32>> {
    (1usize..5, 1usize..5).prop_flat_map(|(h2, w2)| {
        let (h, w) = (2 * h2, 2 * w2);
        proptest::collection::vec(prop_oneof![Just(-1.0f32), Just(1.0f32)], h * w)
            .prop_map(move |vals| Plane::from_fn(h, w, |r, c| vals[r * w + c]))
    })
}

proptest! {
    #[test]
    fn matmul_right_is_linear(t in tensor_strategy()) {
        // (A + A)·K == A·K + A·K
        let c = t.shape()[3];
        let k = band_kernel::<f32>(c);
        let mut doubled = t.clone();
        doubled.add_assign(&t);
        let lhs = doubled.matmul_right(&k);
        let mut rhs = t.matmul_right(&k);
        let once = rhs.clone();
        rhs.add_assign(&once);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn matmul_with_identity_is_identity(t in tensor_strategy()) {
        let c = t.shape()[3];
        let r = t.shape()[2];
        let idc = Mat::<f32>::from_fn(c, c, |i, j| if i == j { 1.0 } else { 0.0 });
        let idr = Mat::<f32>::from_fn(r, r, |i, j| if i == j { 1.0 } else { 0.0 });
        prop_assert_eq!(t.matmul_right(&idc), t.clone());
        prop_assert_eq!(t.matmul_left(&idr), t.clone());
    }

    #[test]
    fn roll_composition_and_inverse(t in tensor_strategy(), d0 in -3isize..=3, d1 in -3isize..=3) {
        // rolling there and back is the identity
        prop_assert_eq!(t.roll_batch(d0, d1).roll_batch(-d0, -d1), t.clone());
        // composition = sum of shifts
        prop_assert_eq!(
            t.roll_batch(d0, 0).roll_batch(0, d1),
            t.roll_batch(d0, d1)
        );
    }

    #[test]
    fn roll_by_period_is_identity(t in tensor_strategy()) {
        let [m, n, _, _] = t.shape();
        prop_assert_eq!(t.roll_batch(m as isize, 0), t.clone());
        prop_assert_eq!(t.roll_batch(0, -(n as isize)), t.clone());
    }

    #[test]
    fn edge_of_add_edge_adds_exactly_once(t in tensor_strategy()) {
        // adding an edge then reading it back gives original edge + added
        let e = t.edge(Axis::Row, Side::First);
        let mut t2 = t.clone();
        t2.add_edge_assign(Axis::Row, Side::First, &e);
        let read_back = t2.edge(Axis::Row, Side::First);
        let expect = e.zip_map(&e, |a, b| a + b);
        prop_assert_eq!(read_back, expect);
        // the rest of the tensor is untouched
        if t.shape()[2] > 1 {
            prop_assert_eq!(t2.edge(Axis::Row, Side::Last), t.edge(Axis::Row, Side::Last));
        }
    }

    #[test]
    fn sum_is_invariant_under_rolls(t in tensor_strategy(), d0 in -2isize..=2, d1 in -2isize..=2) {
        prop_assert!((t.sum_f64() - t.roll_batch(d0, d1).sum_f64()).abs() < 1e-9);
    }

    #[test]
    fn tiles_roundtrip_any_divisor(p in plane_strategy()) {
        // tile by 2 always divides our even-sided planes
        let t = p.to_tiles(2);
        prop_assert_eq!(Plane::from_tiles(&t), p);
    }

    #[test]
    fn deinterleave_partitions_all_sites(p in plane_strategy()) {
        let parts = p.deinterleave();
        let total: f64 = parts.iter().map(|q| q.sum_f64()).sum();
        prop_assert!((total - p.sum_f64()).abs() < 1e-9);
        prop_assert_eq!(Plane::interleave(&parts), p);
    }

    #[test]
    fn neighbor_sum_total_is_four_times_magnetization(p in plane_strategy()) {
        // Σᵢ nn(i) counts every spin exactly 4 times (each spin is the
        // neighbor of its 4 neighbors).
        let nn = p.neighbor_sum_periodic();
        prop_assert!((nn.sum_f64() - 4.0 * p.sum_f64()).abs() < 1e-9);
    }

    #[test]
    fn bf16_matmul_on_spin_values_is_exact(p in plane_strategy()) {
        // Band-kernel neighbor sums of ±1 spins are small integers — exact
        // in bf16 — so bf16 and f32 matmuls agree bit-for-bit on them.
        let t32 = p.to_tiles(2);
        let tb: Tensor4<Bf16> = t32.cast();
        let k32 = band_kernel::<f32>(2);
        let kb = bidiag_kernel::<Bf16>(2);
        let k32b = bidiag_kernel::<f32>(2);
        let f = t32.matmul_right(&k32b);
        let b = tb.matmul_right(&kb);
        prop_assert_eq!(b.cast::<f32>(), f);
        let _ = k32;
    }

    #[test]
    fn band_products_bit_equal_dense_f32(t in tensor_strategy()) {
        // every band kind, right and left, plain and accumulating — all
        // must reproduce the dense matmul bit-for-bit
        let [_, _, r, c] = t.shape();
        for kind in BAND_KINDS {
            let mut out = Tensor4::zeros(t.shape());
            t.band_mul_right_into(kind, &mut out);
            prop_assert_eq!(&out, &t.matmul_right(&kind.to_mat::<f32>(c)));

            let mut out = Tensor4::zeros(t.shape());
            t.band_mul_left_into(kind, &mut out);
            prop_assert_eq!(&out, &t.matmul_left(&kind.to_mat::<f32>(r)));

            let mut acc = t.clone();
            t.band_mul_right_acc(kind, &mut acc);
            let mut dense = t.clone();
            dense.add_assign(&t.matmul_right(&kind.to_mat::<f32>(c)));
            prop_assert_eq!(&acc, &dense);

            let mut acc = t.clone();
            t.band_mul_left_acc(kind, &mut acc);
            let mut dense = t.clone();
            dense.add_assign(&t.matmul_left(&kind.to_mat::<f32>(r)));
            prop_assert_eq!(&acc, &dense);
        }
    }

    #[test]
    fn band_products_bit_equal_dense_bf16(t in tensor_strategy()) {
        let tb: Tensor4<Bf16> = t.cast();
        let [_, _, r, c] = tb.shape();
        for kind in BAND_KINDS {
            let mut out = Tensor4::zeros(tb.shape());
            tb.band_mul_right_into(kind, &mut out);
            prop_assert_eq!(&out, &tb.matmul_right(&kind.to_mat::<Bf16>(c)));

            let mut out = Tensor4::zeros(tb.shape());
            tb.band_mul_left_into(kind, &mut out);
            prop_assert_eq!(&out, &tb.matmul_left(&kind.to_mat::<Bf16>(r)));
        }
    }
}
