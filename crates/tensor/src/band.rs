//! Band-specialized products for the fixed kernels `K` and `K̂`.
//!
//! The paper multiplies sub-lattices by dense 128×128 kernels because the
//! MXU makes those free; on a CPU the dense triple loop is O(t³) per tile
//! even though `K` is tridiagonal (sub/super diagonal) and `K̂` is upper
//! bidiagonal (main + super diagonal). The [`BandKernel`] products below
//! walk only the nonzero diagonals — O(t²) per tile — and write into
//! caller-provided buffers so the hot loop allocates nothing.
//!
//! **Bit-equality contract.** Each output element accumulates its (at most
//! two) contributions in f32 in ascending source-index order and rounds
//! once with `Scalar::from_f32` — exactly what [`Tensor4::matmul_right`] /
//! [`Tensor4::matmul_left`] produce for these kernels, because the skipped
//! kernel entries are exact zeros and adding `±0·x` to a non-negative-zero
//! f32 accumulator never changes its bits. The `_acc` variants round the
//! product first and then add at storage precision, mirroring
//! `matmul → add_assign`. The equality tests in `tests/properties.rs` and
//! the sweeper tests in `tpu-ising-core` pin this for f32 and bf16.

use crate::{band_kernel, bidiag_kernel, Mat, Tensor4};
use rayon::prelude::*;
use tpu_ising_bf16::Scalar;

/// Which neighbor-sum compute path a sweeper uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelBackend {
    /// Dense batched matmuls — the reference implementation, shaped like
    /// what the TPU MXU actually executes.
    Dense,
    /// Band-structured O(t²) kernels with a fused, zero-allocation update
    /// — the fast path on CPU. Bit-identical to `Dense`.
    #[default]
    Band,
}

impl KernelBackend {
    /// The CLI/bench spelling of this backend.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Dense => "dense",
            KernelBackend::Band => "band",
        }
    }
}

impl std::str::FromStr for KernelBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense" => Ok(KernelBackend::Dense),
            "band" => Ok(KernelBackend::Band),
            other => Err(format!("unknown kernel backend '{other}' (use 'dense' or 'band')")),
        }
    }
}

/// The band structure of one of the paper's fixed kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BandKernel {
    /// `K̂` — ones on the main and super-diagonals ([`bidiag_kernel`]).
    Bidiag,
    /// `K̂ᵀ` — ones on the main and sub-diagonals.
    BidiagT,
    /// `K` — ones on the sub- and super-diagonals ([`band_kernel`]).
    Tridiag,
}

impl BandKernel {
    /// Materialize the dense `t × t` kernel (reference path and tests).
    pub fn to_mat<S: Scalar>(self, t: usize) -> Mat<S> {
        match self {
            BandKernel::Bidiag => bidiag_kernel(t),
            BandKernel::BidiagT => bidiag_kernel::<S>(t).transpose(),
            BandKernel::Tridiag => band_kernel(t),
        }
    }

    /// Source-index offsets of the two nonzero diagonals, in ascending
    /// order (the dense matmul's accumulation order over `kk`).
    ///
    /// For a right product `A·M` the entry `out[i, j]` sums
    /// `A[i, j + d]` over these offsets `d` (in range); for a left product
    /// `M·A` it sums `A[i + d, j]`.
    #[inline]
    fn offsets(self) -> (isize, isize) {
        match self {
            BandKernel::Bidiag => (-1, 0),
            BandKernel::BidiagT => (0, 1),
            BandKernel::Tridiag => (-1, 1),
        }
    }

    /// Offsets for a *left* product `M·A` (rows of `M` instead of columns),
    /// which flips the structure: `(M·A)[i, j] = Σ_d A[i + d, j]` over the
    /// transposed kernel's offsets.
    #[inline]
    fn offsets_left(self) -> (isize, isize) {
        match self {
            // K̂ rows have ones at (i, i) and (i, i+1)
            BandKernel::Bidiag => (0, 1),
            // K̂ᵀ rows have ones at (i, i−1) and (i, i)
            BandKernel::BidiagT => (-1, 0),
            BandKernel::Tridiag => (-1, 1),
        }
    }
}

impl<S: Scalar> Tensor4<S> {
    /// `out = self · M` for a square band kernel `M` of side `c`, walking
    /// only the nonzero diagonals (O(t²) per tile). Bit-identical to
    /// [`matmul_right`](Self::matmul_right) with the dense kernel.
    pub fn band_mul_right_into(&self, kernel: BandKernel, out: &mut Tensor4<S>) {
        self.band_right(kernel, out, false);
    }

    /// `out = out + self · M` with the product rounded to storage precision
    /// before the add — bit-identical to `add_assign(matmul_right(..))`.
    pub fn band_mul_right_acc(&self, kernel: BandKernel, out: &mut Tensor4<S>) {
        self.band_right(kernel, out, true);
    }

    /// `out = M · self` for a square band kernel `M` of side `r`.
    /// Bit-identical to [`matmul_left`](Self::matmul_left).
    pub fn band_mul_left_into(&self, kernel: BandKernel, out: &mut Tensor4<S>) {
        self.band_left(kernel, out, false);
    }

    /// `out = out + M · self`, product rounded before the add —
    /// bit-identical to `add_assign(matmul_left(..))`.
    pub fn band_mul_left_acc(&self, kernel: BandKernel, out: &mut Tensor4<S>) {
        self.band_left(kernel, out, true);
    }

    fn band_right(&self, kernel: BandKernel, out: &mut Tensor4<S>, acc: bool) {
        let [m, n, r, c] = self.shape();
        assert_eq!(
            out.shape(),
            [m, n, r, c],
            "band_mul_right shape mismatch: input is [{m}, {n}, {r}, {c}], output is {:?}",
            out.shape()
        );
        let (d0, d1) = kernel.offsets();
        out.data_mut().par_chunks_mut(c).zip(self.data().par_chunks(c)).for_each(|(orow, arow)| {
            for (j, o) in orow.iter_mut().enumerate() {
                // f32 accumulation over the in-range diagonals, in
                // ascending source order — the dense matmul's order.
                let mut a = 0.0f32;
                let j0 = j as isize + d0;
                if (0..c as isize).contains(&j0) {
                    a += arow[j0 as usize].to_f32();
                }
                let j1 = j as isize + d1;
                if (0..c as isize).contains(&j1) {
                    a += arow[j1 as usize].to_f32();
                }
                let v = S::from_f32(a);
                *o = if acc { *o + v } else { v };
            }
        });
    }

    fn band_left(&self, kernel: BandKernel, out: &mut Tensor4<S>, acc: bool) {
        let [m, n, r, c] = self.shape();
        assert_eq!(
            out.shape(),
            [m, n, r, c],
            "band_mul_left shape mismatch: input is [{m}, {n}, {r}, {c}], output is {:?}",
            out.shape()
        );
        let (d0, d1) = kernel.offsets_left();
        let data = self.data();
        out.data_mut().par_chunks_mut(c).enumerate().for_each(|(g, orow)| {
            let (tile, i) = (g / r, g % r);
            let base = tile * r * c;
            let row = |ri: isize| -> Option<&[S]> {
                (0..r as isize).contains(&ri).then(|| {
                    let start = base + ri as usize * c;
                    &data[start..start + c]
                })
            };
            let (r0, r1) = (row(i as isize + d0), row(i as isize + d1));
            for (j, o) in orow.iter_mut().enumerate() {
                let mut a = 0.0f32;
                if let Some(src) = r0 {
                    a += src[j].to_f32();
                }
                if let Some(src) = r1 {
                    a += src[j].to_f32();
                }
                let v = S::from_f32(a);
                *o = if acc { *o + v } else { v };
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_ising_bf16::Bf16;

    const KINDS: [BandKernel; 3] = [BandKernel::Bidiag, BandKernel::BidiagT, BandKernel::Tridiag];

    fn spins(shape: [usize; 4]) -> Tensor4<f32> {
        let mut k = 0u32;
        Tensor4::from_fn(shape, |_, _, _, _| {
            k = k.wrapping_mul(1664525).wrapping_add(1013904223);
            if k & 4 == 0 {
                1.0
            } else {
                -1.0
            }
        })
    }

    #[test]
    fn band_right_matches_dense_matmul() {
        for shape in [[1, 1, 5, 5], [2, 3, 4, 4], [3, 1, 7, 7]] {
            let a = spins(shape);
            let t = shape[3];
            for kind in KINDS {
                let dense = a.matmul_right(&kind.to_mat::<f32>(t));
                let mut out = Tensor4::zeros(shape);
                a.band_mul_right_into(kind, &mut out);
                assert_eq!(out, dense, "{kind:?} {shape:?}");
            }
        }
    }

    #[test]
    fn band_left_matches_dense_matmul() {
        for shape in [[1, 1, 5, 5], [2, 3, 4, 4], [3, 1, 7, 7]] {
            let a = spins(shape);
            let t = shape[2];
            for kind in KINDS {
                let dense = a.matmul_left(&kind.to_mat::<f32>(t));
                let mut out = Tensor4::zeros(shape);
                a.band_mul_left_into(kind, &mut out);
                assert_eq!(out, dense, "{kind:?} {shape:?}");
            }
        }
    }

    #[test]
    fn acc_variants_match_matmul_plus_add_assign() {
        let shape = [2, 2, 6, 6];
        let a = spins(shape);
        let b = spins(shape).map(|v| v * 2.0);
        for kind in KINDS {
            let mut dense = b.clone();
            dense.add_assign(&a.matmul_right(&kind.to_mat::<f32>(6)));
            let mut band = b.clone();
            a.band_mul_right_acc(kind, &mut band);
            assert_eq!(band, dense, "right acc {kind:?}");

            let mut dense = b.clone();
            dense.add_assign(&a.matmul_left(&kind.to_mat::<f32>(6)));
            let mut band = b.clone();
            a.band_mul_left_acc(kind, &mut band);
            assert_eq!(band, dense, "left acc {kind:?}");
        }
    }

    #[test]
    fn bf16_band_products_match_dense() {
        let a: Tensor4<Bf16> = spins([2, 2, 5, 5]).cast();
        for kind in KINDS {
            let mut out = Tensor4::zeros([2, 2, 5, 5]);
            a.band_mul_right_into(kind, &mut out);
            assert_eq!(out, a.matmul_right(&kind.to_mat::<Bf16>(5)), "right {kind:?}");
            let mut out = Tensor4::zeros([2, 2, 5, 5]);
            a.band_mul_left_into(kind, &mut out);
            assert_eq!(out, a.matmul_left(&kind.to_mat::<Bf16>(5)), "left {kind:?}");
        }
    }

    #[test]
    fn backend_parses_and_names_roundtrip() {
        for b in [KernelBackend::Dense, KernelBackend::Band] {
            assert_eq!(b.name().parse::<KernelBackend>(), Ok(b));
        }
        assert!("mxu".parse::<KernelBackend>().is_err());
        assert_eq!(KernelBackend::default(), KernelBackend::Band);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn band_right_shape_mismatch_panics() {
        let a = Tensor4::<f32>::zeros([1, 1, 4, 4]);
        let mut out = Tensor4::<f32>::zeros([1, 1, 4, 5]);
        a.band_mul_right_into(BandKernel::Bidiag, &mut out);
    }
}
