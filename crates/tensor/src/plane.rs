//! Rank-2 full-lattice planes and the tiled-grid ↔ plane conversions.

use crate::{Axis, Side, Tensor4};
use rayon::prelude::*;
use tpu_ising_bf16::Scalar;

/// A dense 2-D plane (`height × width`) with torus topology helpers.
///
/// The paper's supergrid `[m, n, t, t]` is a *layout* of a logical
/// `(m·t) × (n·t)` plane; `Plane` is that logical view. Reference
/// implementations and the conv-based variant (paper appendix) operate
/// here, and [`Plane::to_tiles`] / [`Plane::from_tiles`] prove the layouts
/// agree.
#[derive(Clone, Debug, PartialEq)]
pub struct Plane<S> {
    height: usize,
    width: usize,
    data: Vec<S>,
}

impl<S: Scalar> Plane<S> {
    /// A plane of zeros.
    pub fn zeros(height: usize, width: usize) -> Plane<S> {
        Plane { height, width, data: vec![S::zero(); height * width] }
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(height: usize, width: usize, mut f: impl FnMut(usize, usize) -> S) -> Plane<S> {
        let mut data = Vec::with_capacity(height * width);
        for r in 0..height {
            for c in 0..width {
                data.push(f(r, c));
            }
        }
        Plane { height, width, data }
    }

    /// Plane height (rows).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Plane width (columns).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Raw data, row-major.
    #[inline]
    pub fn data(&self) -> &[S] {
        &self.data
    }

    /// Mutable raw data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> S {
        debug_assert!(r < self.height && c < self.width);
        self.data[r * self.width + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: S) {
        debug_assert!(r < self.height && c < self.width);
        self.data[r * self.width + c] = v;
    }

    /// Element access with torus wrap-around on both coordinates.
    #[inline]
    pub fn get_wrap(&self, r: isize, c: isize) -> S {
        let rr = r.rem_euclid(self.height as isize) as usize;
        let cc = c.rem_euclid(self.width as isize) as usize;
        self.get(rr, cc)
    }

    /// Sum of the four nearest neighbors of every site, with periodic
    /// boundary — the "plus"-kernel convolution `tf.nn.conv2d` computes in
    /// the paper's appendix implementation. Parallel over rows.
    pub fn neighbor_sum_periodic(&self) -> Plane<S> {
        let mut out = Plane::zeros(self.height, self.width);
        self.neighbor_sum_periodic_into(&mut out);
        out
    }

    /// [`neighbor_sum_periodic`](Self::neighbor_sum_periodic) into a
    /// caller-provided plane (zero allocations in steady state).
    pub fn neighbor_sum_periodic_into(&self, out: &mut Plane<S>) {
        let (h, w) = (self.height, self.width);
        assert_eq!((out.height, out.width), (h, w), "neighbor_sum_periodic_into shape mismatch");
        out.data.par_chunks_mut(w).enumerate().for_each(|(r, row)| {
            let up = if r == 0 { h - 1 } else { r - 1 };
            let down = if r + 1 == h { 0 } else { r + 1 };
            for (c, out) in row.iter_mut().enumerate() {
                let left = if c == 0 { w - 1 } else { c - 1 };
                let right = if c + 1 == w { 0 } else { c + 1 };
                // f32 accumulation, rounded once — MXU/conv contract.
                let acc = self.get(up, c).to_f32()
                    + self.get(down, c).to_f32()
                    + self.get(r, left).to_f32()
                    + self.get(r, right).to_f32();
                *out = S::from_f32(acc);
            }
        });
    }

    /// Reorganize into an `[m, n, t, t]` grid of tiles. Panics unless both
    /// dimensions are divisible by `t`.
    pub fn to_tiles(&self, t: usize) -> Tensor4<S> {
        assert!(
            self.height.is_multiple_of(t) && self.width.is_multiple_of(t),
            "plane {}×{} not divisible into {t}×{t} tiles",
            self.height,
            self.width
        );
        let (m, n) = (self.height / t, self.width / t);
        Tensor4::from_fn([m, n, t, t], |b0, b1, r, c| self.get(b0 * t + r, b1 * t + c))
    }

    /// Inverse of [`to_tiles`](Self::to_tiles).
    pub fn from_tiles(tiles: &Tensor4<S>) -> Plane<S> {
        let [m, n, t, t2] = tiles.shape();
        assert_eq!(t, t2, "tiles must be square");
        Plane::from_fn(m * t, n * t, |r, c| tiles.get(r / t, c / t, r % t, c % t))
    }

    /// Deinterleave into the four compact sub-planes of Algorithm 2:
    /// `(σ̂00, σ̂01, σ̂10, σ̂11)` where `σ̂ab = σ[a::2, b::2]`.
    /// Panics unless both dimensions are even.
    pub fn deinterleave(&self) -> [Plane<S>; 4] {
        assert!(
            self.height.is_multiple_of(2) && self.width.is_multiple_of(2),
            "deinterleave needs even dimensions"
        );
        let (h2, w2) = (self.height / 2, self.width / 2);
        let mk = |a: usize, b: usize| Plane::from_fn(h2, w2, |r, c| self.get(2 * r + a, 2 * c + b));
        [mk(0, 0), mk(0, 1), mk(1, 0), mk(1, 1)]
    }

    /// Inverse of [`deinterleave`](Self::deinterleave).
    pub fn interleave(parts: &[Plane<S>; 4]) -> Plane<S> {
        let (h2, w2) = (parts[0].height, parts[0].width);
        for p in parts.iter() {
            assert_eq!((p.height, p.width), (h2, w2), "compact planes must agree");
        }
        Plane::from_fn(2 * h2, 2 * w2, |r, c| parts[(r % 2) * 2 + (c % 2)].get(r / 2, c / 2))
    }

    /// One full boundary row/column of the plane (used as the halo another
    /// core receives in the distributed runner).
    pub fn boundary(&self, axis: Axis, side: Side) -> Vec<S> {
        match axis {
            Axis::Row => {
                let r = match side {
                    Side::First => 0,
                    Side::Last => self.height - 1,
                };
                (0..self.width).map(|c| self.get(r, c)).collect()
            }
            Axis::Col => {
                let c = match side {
                    Side::First => 0,
                    Side::Last => self.width - 1,
                };
                (0..self.height).map(|r| self.get(r, c)).collect()
            }
        }
    }

    /// Sum of all elements in f64.
    pub fn sum_f64(&self) -> f64 {
        self.data.par_iter().map(|v| v.to_f32() as f64).sum()
    }

    /// Convert element-wise to another precision.
    pub fn cast<T: Scalar>(&self) -> Plane<T> {
        Plane {
            height: self.height,
            width: self.width,
            data: self.data.iter().map(|v| T::from_f32(v.to_f32())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(h: usize, w: usize) -> Plane<f32> {
        Plane::from_fn(h, w, |r, c| (r * w + c) as f32)
    }

    #[test]
    fn wrap_indexing() {
        let p = seq(3, 4);
        assert_eq!(p.get_wrap(-1, 0), p.get(2, 0));
        assert_eq!(p.get_wrap(3, 1), p.get(0, 1));
        assert_eq!(p.get_wrap(0, -1), p.get(0, 3));
        assert_eq!(p.get_wrap(0, 4), p.get(0, 0));
        assert_eq!(p.get_wrap(-4, -5), p.get(2, 3));
    }

    #[test]
    fn neighbor_sum_matches_bruteforce() {
        let p = Plane::from_fn(5, 7, |r, c| ((r * 31 + c * 17) % 13) as f32 - 6.0);
        let nn = p.neighbor_sum_periodic();
        for r in 0..5 {
            for c in 0..7 {
                let e = p.get_wrap(r as isize - 1, c as isize)
                    + p.get_wrap(r as isize + 1, c as isize)
                    + p.get_wrap(r as isize, c as isize - 1)
                    + p.get_wrap(r as isize, c as isize + 1);
                assert_eq!(nn.get(r, c), e, "({r},{c})");
            }
        }
    }

    #[test]
    fn neighbor_sum_on_uniform_plane_is_four() {
        let p = Plane::from_fn(8, 8, |_, _| 1.0f32);
        let nn = p.neighbor_sum_periodic();
        assert!(nn.data().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn tiles_roundtrip() {
        let p = seq(6, 8);
        let t = p.to_tiles(2);
        assert_eq!(t.shape(), [3, 4, 2, 2]);
        assert_eq!(Plane::from_tiles(&t), p);
    }

    #[test]
    fn tile_contents_are_blocks() {
        let p = seq(4, 4);
        let t = p.to_tiles(2);
        // tile (1,1) holds rows 2..4, cols 2..4
        assert_eq!(t.get(1, 1, 0, 0), p.get(2, 2));
        assert_eq!(t.get(1, 1, 1, 1), p.get(3, 3));
    }

    #[test]
    fn deinterleave_roundtrip() {
        let p = seq(6, 10);
        let parts = p.deinterleave();
        assert_eq!(parts[0].height(), 3);
        assert_eq!(parts[0].width(), 5);
        assert_eq!(Plane::interleave(&parts), p);
    }

    #[test]
    fn deinterleave_parity_contents() {
        let p = seq(4, 4);
        let [s00, s01, s10, s11] = p.deinterleave();
        assert_eq!(s00.get(0, 0), p.get(0, 0));
        assert_eq!(s01.get(0, 0), p.get(0, 1));
        assert_eq!(s10.get(0, 0), p.get(1, 0));
        assert_eq!(s11.get(1, 1), p.get(3, 3));
    }

    #[test]
    fn boundary_extraction() {
        let p = seq(3, 4);
        assert_eq!(p.boundary(Axis::Row, Side::First), vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(p.boundary(Axis::Row, Side::Last), vec![8.0, 9.0, 10.0, 11.0]);
        assert_eq!(p.boundary(Axis::Col, Side::First), vec![0.0, 4.0, 8.0]);
        assert_eq!(p.boundary(Axis::Col, Side::Last), vec![3.0, 7.0, 11.0]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_tiling_panics() {
        let _ = seq(5, 4).to_tiles(2);
    }
}
