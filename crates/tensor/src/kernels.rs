//! The fixed band kernels from the paper's Section 3.2.

use crate::Mat;
use tpu_ising_bf16::Scalar;

/// The tridiagonal-without-diagonal kernel `K` of Algorithm 1:
/// ones on the sub- and super-diagonals.
///
/// For a sub-lattice `σ`, `σ·K` sums each site's left+right neighbors and
/// `K·σ` sums its up+down neighbors (interior sites; boundaries need halo
/// compensation).
pub fn band_kernel<S: Scalar>(t: usize) -> Mat<S> {
    Mat::from_fn(t, t, |r, c| if r + 1 == c || c + 1 == r { S::one() } else { S::zero() })
}

/// The upper-bidiagonal kernel `K̂` of Algorithm 2:
/// ones on the main and super-diagonals.
///
/// Acting on the four deinterleaved compact sub-lattices, `K̂` and `K̂ᵀ`
/// produce the nearest-neighbor sums without ever touching the fixed-color
/// spins (the factor-3 win over the masked Algorithm 1).
pub fn bidiag_kernel<S: Scalar>(t: usize) -> Mat<S> {
    Mat::from_fn(t, t, |r, c| if r == c || r + 1 == c { S::one() } else { S::zero() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_kernel_structure() {
        let k = band_kernel::<f32>(5);
        for r in 0..5 {
            for c in 0..5 {
                let expect = if usize::abs_diff(r, c) == 1 { 1.0 } else { 0.0 };
                assert_eq!(k.get(r, c), expect, "K[{r},{c}]");
            }
        }
    }

    #[test]
    fn band_kernel_is_symmetric() {
        let k = band_kernel::<f32>(8);
        assert_eq!(k.transpose(), k);
    }

    #[test]
    fn band_kernel_right_product_sums_horizontal_neighbors() {
        // row vector v·K: out[j] = v[j-1] + v[j+1]
        let t = 6;
        let v = Mat::from_vec(1, t, (0..t).map(|i| (i * i) as f32).collect());
        let out = v.matmul(&band_kernel::<f32>(t));
        for j in 0..t {
            let mut expect = 0.0;
            if j > 0 {
                expect += v.get(0, j - 1);
            }
            if j + 1 < t {
                expect += v.get(0, j + 1);
            }
            assert_eq!(out.get(0, j), expect, "col {j}");
        }
    }

    #[test]
    fn bidiag_kernel_structure() {
        let k = bidiag_kernel::<f32>(5);
        for r in 0..5 {
            for c in 0..5 {
                let expect = if r == c || r + 1 == c { 1.0 } else { 0.0 };
                assert_eq!(k.get(r, c), expect, "K̂[{r},{c}]");
            }
        }
    }

    #[test]
    fn bidiag_right_product_shifts_and_adds() {
        // v·K̂: out[j] = v[j] + v[j-1]  (self + left neighbor)
        let t = 6;
        let v = Mat::from_vec(1, t, (1..=t).map(|i| i as f32).collect());
        let out = v.matmul(&bidiag_kernel::<f32>(t));
        for j in 0..t {
            let mut expect = v.get(0, j);
            if j > 0 {
                expect += v.get(0, j - 1);
            }
            assert_eq!(out.get(0, j), expect, "col {j}");
        }
    }

    #[test]
    fn bidiag_transpose_product_shifts_other_way() {
        // v·K̂ᵀ: out[j] = v[j] + v[j+1]  (self + right neighbor)
        let t = 6;
        let v = Mat::from_vec(1, t, (1..=t).map(|i| i as f32).collect());
        let out = v.matmul(&bidiag_kernel::<f32>(t).transpose());
        for j in 0..t {
            let mut expect = v.get(0, j);
            if j + 1 < t {
                expect += v.get(0, j + 1);
            }
            assert_eq!(out.get(0, j), expect, "col {j}");
        }
    }
}
