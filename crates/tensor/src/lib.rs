//! A small tensor library shaped like the slice of XLA the paper uses.
//!
//! The paper represents the spin lattice as a grid of 128×128 sub-lattices —
//! a rank-4 tensor `[m, n, 128, 128]` — because TPU HBM tiles arrays in
//! (8, 128) blocks and the MXU multiplies 128×128 operands. Everything the
//! update step needs is a handful of ops:
//!
//! - batched matrix multiplication of each sub-lattice with a fixed band
//!   kernel (`σ·K`, `K·σ`, and the `K̂`/`K̂ᵀ` variants of Algorithm 2),
//! - slicing boundary rows/columns and adding halos from neighboring
//!   sub-lattices (with torus wrap-around),
//! - element-wise `exp`, multiply, compare-and-select,
//! - reductions for observables.
//!
//! [`Tensor4`] implements exactly those, generic over the [`Scalar`]
//! precision, with MXU-faithful arithmetic: matmul inputs at storage
//! precision, accumulation in f32 (`Scalar::mul_acc_f32`). Batches run in
//! parallel with rayon. [`Plane`] is the rank-2 view used by the conv-based
//! variant from the paper's appendix and by reference implementations.

mod band;
mod kernels;
mod mat;
mod plane;
mod tensor4;
mod tiling;

pub use band::{BandKernel, KernelBackend};
pub use kernels::{band_kernel, bidiag_kernel};
pub use mat::Mat;
pub use plane::Plane;
pub use tensor4::{Axis, Side, Tensor4};
pub use tiling::{padded_dim, padded_shape, tile_waste_ratio, TPU_TILE};

pub use tpu_ising_bf16::{Bf16, Scalar};
