//! Rank-4 tensors `[m, n, r, c]`: an `m × n` grid of `r × c` sub-lattices.

use crate::Mat;
use rayon::prelude::*;
use tpu_ising_bf16::Scalar;

/// Spatial axis within a sub-lattice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Axis {
    /// The third tensor dimension (sub-lattice rows).
    Row,
    /// The fourth tensor dimension (sub-lattice columns).
    Col,
}

/// Which side of an axis an edge lives on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Index 0 (north for `Axis::Row`, west for `Axis::Col`).
    First,
    /// Index `len-1` (south / east).
    Last,
}

/// A dense rank-4 tensor at precision `S`, laid out row-major as
/// `[batch0, batch1, row, col]` — the shape the paper uses for the
/// checkerboard supergrid.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor4<S> {
    shape: [usize; 4],
    data: Vec<S>,
}

impl<S: Scalar> Tensor4<S> {
    /// A tensor of zeros.
    pub fn zeros(shape: [usize; 4]) -> Tensor4<S> {
        Tensor4 { shape, data: vec![S::zero(); shape.iter().product()] }
    }

    /// Build from a function of `(b0, b1, r, c)`.
    pub fn from_fn(
        shape: [usize; 4],
        mut f: impl FnMut(usize, usize, usize, usize) -> S,
    ) -> Tensor4<S> {
        let mut data = Vec::with_capacity(shape.iter().product());
        for b0 in 0..shape[0] {
            for b1 in 0..shape[1] {
                for r in 0..shape[2] {
                    for c in 0..shape[3] {
                        data.push(f(b0, b1, r, c));
                    }
                }
            }
        }
        Tensor4 { shape, data }
    }

    /// Build from a row-major data vector. Panics on length mismatch.
    pub fn from_vec(shape: [usize; 4], data: Vec<S>) -> Tensor4<S> {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "Tensor4::from_vec length mismatch"
        );
        Tensor4 { shape, data }
    }

    /// The shape `[m, n, r, c]`.
    #[inline]
    pub fn shape(&self) -> [usize; 4] {
        self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data, row-major.
    #[inline]
    pub fn data(&self) -> &[S] {
        &self.data
    }

    /// Mutable raw data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [S] {
        &mut self.data
    }

    #[inline]
    fn idx(&self, b0: usize, b1: usize, r: usize, c: usize) -> usize {
        debug_assert!(
            b0 < self.shape[0] && b1 < self.shape[1] && r < self.shape[2] && c < self.shape[3]
        );
        ((b0 * self.shape[1] + b1) * self.shape[2] + r) * self.shape[3] + c
    }

    /// Element access.
    #[inline]
    pub fn get(&self, b0: usize, b1: usize, r: usize, c: usize) -> S {
        self.data[self.idx(b0, b1, r, c)]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, b0: usize, b1: usize, r: usize, c: usize, v: S) {
        let i = self.idx(b0, b1, r, c);
        self.data[i] = v;
    }

    /// One sub-lattice as a contiguous row-major slice.
    #[inline]
    pub fn batch(&self, b0: usize, b1: usize) -> &[S] {
        let stride = self.shape[2] * self.shape[3];
        let start = (b0 * self.shape[1] + b1) * stride;
        &self.data[start..start + stride]
    }

    /// Batched matmul: for every sub-lattice `A`, compute `A · k`.
    ///
    /// `k` must be `[c, c2]`. Inputs multiply at storage precision and
    /// accumulate in f32 — the MXU contract.
    pub fn matmul_right(&self, k: &Mat<S>) -> Tensor4<S> {
        let [m, n, r, c] = self.shape;
        assert_eq!(
            k.rows(),
            c,
            "matmul_right inner-dimension mismatch: tiles are {r}×{c}, kernel is {}×{}",
            k.rows(),
            k.cols()
        );
        let c2 = k.cols();
        let mut out = Tensor4::zeros([m, n, r, c2]);
        let in_stride = r * c;
        let out_stride = r * c2;
        out.data.par_chunks_mut(out_stride).zip(self.data.par_chunks(in_stride)).for_each(
            |(ob, ib)| {
                for i in 0..r {
                    for j in 0..c2 {
                        let mut acc = 0.0f32;
                        for kk in 0..c {
                            acc = ib[i * c + kk].mul_acc_f32(k.get(kk, j), acc);
                        }
                        ob[i * c2 + j] = S::from_f32(acc);
                    }
                }
            },
        );
        out
    }

    /// Batched matmul: for every sub-lattice `A`, compute `k · A`.
    ///
    /// `k` must be `[r2, r]`.
    pub fn matmul_left(&self, k: &Mat<S>) -> Tensor4<S> {
        let [m, n, r, c] = self.shape;
        assert_eq!(
            k.cols(),
            r,
            "matmul_left inner-dimension mismatch: kernel is {}×{}, tiles are {r}×{c}",
            k.rows(),
            k.cols()
        );
        let r2 = k.rows();
        let mut out = Tensor4::zeros([m, n, r2, c]);
        let in_stride = r * c;
        let out_stride = r2 * c;
        out.data.par_chunks_mut(out_stride).zip(self.data.par_chunks(in_stride)).for_each(
            |(ob, ib)| {
                for i in 0..r2 {
                    for j in 0..c {
                        let mut acc = 0.0f32;
                        for kk in 0..r {
                            acc = k.get(i, kk).mul_acc_f32(ib[kk * c + j], acc);
                        }
                        ob[i * c + j] = S::from_f32(acc);
                    }
                }
            },
        );
        out
    }

    /// Element-wise map into a new tensor (parallel).
    pub fn map<T: Scalar>(&self, f: impl Fn(S) -> T + Sync) -> Tensor4<T> {
        Tensor4 { shape: self.shape, data: self.data.par_iter().map(|&v| f(v)).collect() }
    }

    /// Element-wise map in place (parallel).
    pub fn map_inplace(&mut self, f: impl Fn(S) -> S + Sync) {
        self.data.par_iter_mut().for_each(|v| *v = f(*v));
    }

    /// Element-wise combination of two same-shaped tensors (parallel).
    pub fn zip_map<T: Scalar, U: Scalar>(
        &self,
        other: &Tensor4<T>,
        f: impl Fn(S, T) -> U + Sync,
    ) -> Tensor4<U> {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        Tensor4 {
            shape: self.shape,
            data: self.data.par_iter().zip(other.data.par_iter()).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Element-wise add-assign (parallel).
    pub fn add_assign(&mut self, other: &Tensor4<S>) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        self.data.par_iter_mut().zip(other.data.par_iter()).for_each(|(a, &b)| *a = *a + b);
    }

    /// Sum of all elements, accumulated in f64 (observable-grade precision).
    pub fn sum_f64(&self) -> f64 {
        self.data.par_iter().map(|v| v.to_f32() as f64).sum()
    }

    /// The boundary plane of each sub-lattice on `(axis, side)`.
    ///
    /// Shape `[m, n, 1, c]` for `Axis::Row` or `[m, n, r, 1]` for
    /// `Axis::Col` — the tensors the paper slices out to compensate
    /// sub-lattice boundaries (Algorithm 1 lines 3–6).
    pub fn edge(&self, axis: Axis, side: Side) -> Tensor4<S> {
        let [m, n, r, c] = self.shape;
        match axis {
            Axis::Row => {
                let row = match side {
                    Side::First => 0,
                    Side::Last => r - 1,
                };
                Tensor4::from_fn([m, n, 1, c], |b0, b1, _, j| self.get(b0, b1, row, j))
            }
            Axis::Col => {
                let col = match side {
                    Side::First => 0,
                    Side::Last => c - 1,
                };
                Tensor4::from_fn([m, n, r, 1], |b0, b1, i, _| self.get(b0, b1, i, col))
            }
        }
    }

    /// Add `other` (an edge tensor from [`edge`](Self::edge)) onto the
    /// boundary plane at `(axis, side)`.
    pub fn add_edge_assign(&mut self, axis: Axis, side: Side, other: &Tensor4<S>) {
        let [m, n, r, c] = self.shape;
        match axis {
            Axis::Row => {
                assert_eq!(other.shape, [m, n, 1, c], "edge shape mismatch");
                let row = match side {
                    Side::First => 0,
                    Side::Last => r - 1,
                };
                for b0 in 0..m {
                    for b1 in 0..n {
                        for j in 0..c {
                            let v = self.get(b0, b1, row, j) + other.get(b0, b1, 0, j);
                            self.set(b0, b1, row, j, v);
                        }
                    }
                }
            }
            Axis::Col => {
                assert_eq!(other.shape, [m, n, r, 1], "edge shape mismatch");
                let col = match side {
                    Side::First => 0,
                    Side::Last => c - 1,
                };
                for b0 in 0..m {
                    for b1 in 0..n {
                        for i in 0..r {
                            let v = self.get(b0, b1, i, col) + other.get(b0, b1, i, 0);
                            self.set(b0, b1, i, col, v);
                        }
                    }
                }
            }
        }
    }

    /// Write the `(axis, side)` edge of `self.roll_batch(d0, d1)` into a
    /// caller-provided edge tensor, without materializing the rolled
    /// tensor — the zero-allocation form of the boundary-compensation
    /// slices (`roll_batch(..).edge(..)`) the sweepers take every
    /// half-sweep.
    pub fn rolled_edge_into(
        &self,
        d0: isize,
        d1: isize,
        axis: Axis,
        side: Side,
        out: &mut Tensor4<S>,
    ) {
        let [m, n, r, c] = self.shape;
        let md = |i: usize, d: isize, len: usize| -> usize {
            (((i as isize - d).rem_euclid(len as isize)) as usize).min(len - 1)
        };
        match axis {
            Axis::Row => {
                assert_eq!(out.shape, [m, n, 1, c], "rolled_edge_into: row edge shape mismatch");
                let row = match side {
                    Side::First => 0,
                    Side::Last => r - 1,
                };
                for b0 in 0..m {
                    for b1 in 0..n {
                        let (s0, s1) = (md(b0, d0, m), md(b1, d1, n));
                        for j in 0..c {
                            out.set(b0, b1, 0, j, self.get(s0, s1, row, j));
                        }
                    }
                }
            }
            Axis::Col => {
                assert_eq!(out.shape, [m, n, r, 1], "rolled_edge_into: col edge shape mismatch");
                let col = match side {
                    Side::First => 0,
                    Side::Last => c - 1,
                };
                for b0 in 0..m {
                    for b1 in 0..n {
                        let (s0, s1) = (md(b0, d0, m), md(b1, d1, n));
                        for i in 0..r {
                            out.set(b0, b1, i, 0, self.get(s0, s1, i, col));
                        }
                    }
                }
            }
        }
    }

    /// Roll the *grid of sub-lattices* by `(d0, d1)` with torus wrap:
    /// `out[b0, b1] = self[(b0 - d0) mod m, (b1 - d1) mod n]`.
    ///
    /// This is the single-core analogue of fetching a neighboring core's
    /// sub-lattice: `roll_batch(1, 0)` puts each sub-lattice's northern
    /// neighbor at its own grid position.
    pub fn roll_batch(&self, d0: isize, d1: isize) -> Tensor4<S> {
        let [m, n, r, c] = self.shape;
        let md = |i: usize, d: isize, len: usize| -> usize {
            (((i as isize - d).rem_euclid(len as isize)) as usize).min(len - 1)
        };
        Tensor4::from_fn([m, n, r, c], |b0, b1, i, j| self.get(md(b0, d0, m), md(b1, d1, n), i, j))
    }

    /// Convert element-wise to another precision.
    pub fn cast<T: Scalar>(&self) -> Tensor4<T> {
        self.map(|v| T::from_f32(v.to_f32()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band_kernel;

    fn seq(shape: [usize; 4]) -> Tensor4<f32> {
        let mut k = 0.0;
        Tensor4::from_fn(shape, |_, _, _, _| {
            k += 1.0;
            k
        })
    }

    #[test]
    fn indexing_is_row_major() {
        let t = seq([2, 3, 4, 5]);
        assert_eq!(t.get(0, 0, 0, 0), 1.0);
        assert_eq!(t.get(0, 0, 0, 4), 5.0);
        assert_eq!(t.get(0, 0, 1, 0), 6.0);
        assert_eq!(t.get(0, 1, 0, 0), 21.0);
        assert_eq!(t.get(1, 0, 0, 0), 61.0);
    }

    #[test]
    fn batch_slice_matches_gets() {
        let t = seq([2, 2, 3, 3]);
        let b = t.batch(1, 0);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(b[r * 3 + c], t.get(1, 0, r, c));
            }
        }
    }

    #[test]
    fn matmul_right_matches_per_batch_mat() {
        let t = seq([2, 2, 4, 4]);
        let k = band_kernel::<f32>(4);
        let out = t.matmul_right(&k);
        for b0 in 0..2 {
            for b1 in 0..2 {
                let a = Mat::from_vec(4, 4, t.batch(b0, b1).to_vec());
                let expect = a.matmul(&k);
                for r in 0..4 {
                    for c in 0..4 {
                        assert_eq!(out.get(b0, b1, r, c), expect.get(r, c));
                    }
                }
            }
        }
    }

    #[test]
    fn matmul_left_matches_per_batch_mat() {
        let t = seq([2, 2, 4, 4]);
        let k = band_kernel::<f32>(4);
        let out = t.matmul_left(&k);
        for b0 in 0..2 {
            for b1 in 0..2 {
                let a = Mat::from_vec(4, 4, t.batch(b0, b1).to_vec());
                let expect = k.matmul(&a);
                for r in 0..4 {
                    for c in 0..4 {
                        assert_eq!(out.get(b0, b1, r, c), expect.get(r, c));
                    }
                }
            }
        }
    }

    #[test]
    fn matmul_with_rectangular_kernel() {
        let t = seq([1, 1, 3, 4]);
        let k = Mat::<f32>::from_fn(4, 2, |r, c| (r + c) as f32);
        let out = t.matmul_right(&k);
        assert_eq!(out.shape(), [1, 1, 3, 2]);
        let a = Mat::from_vec(3, 4, t.batch(0, 0).to_vec());
        let e = a.matmul(&k);
        for r in 0..3 {
            for c in 0..2 {
                assert_eq!(out.get(0, 0, r, c), e.get(r, c));
            }
        }
    }

    #[test]
    fn edges_pick_boundary_planes() {
        let t = seq([2, 2, 3, 4]);
        let north = t.edge(Axis::Row, Side::First);
        let south = t.edge(Axis::Row, Side::Last);
        let west = t.edge(Axis::Col, Side::First);
        let east = t.edge(Axis::Col, Side::Last);
        assert_eq!(north.shape(), [2, 2, 1, 4]);
        assert_eq!(west.shape(), [2, 2, 3, 1]);
        for b0 in 0..2 {
            for b1 in 0..2 {
                for j in 0..4 {
                    assert_eq!(north.get(b0, b1, 0, j), t.get(b0, b1, 0, j));
                    assert_eq!(south.get(b0, b1, 0, j), t.get(b0, b1, 2, j));
                }
                for i in 0..3 {
                    assert_eq!(west.get(b0, b1, i, 0), t.get(b0, b1, i, 0));
                    assert_eq!(east.get(b0, b1, i, 0), t.get(b0, b1, i, 3));
                }
            }
        }
    }

    #[test]
    fn add_edge_assign_touches_only_boundary() {
        let mut t = Tensor4::<f32>::zeros([1, 1, 3, 3]);
        let e = Tensor4::from_fn([1, 1, 1, 3], |_, _, _, j| (j + 1) as f32);
        t.add_edge_assign(Axis::Row, Side::First, &e);
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == 0 { (c + 1) as f32 } else { 0.0 };
                assert_eq!(t.get(0, 0, r, c), expect);
            }
        }
    }

    #[test]
    fn roll_batch_wraps_torus() {
        let t = Tensor4::<f32>::from_fn([3, 2, 1, 1], |b0, b1, _, _| (b0 * 2 + b1) as f32);
        let r = t.roll_batch(1, 0);
        // out[0] = in[-1 mod 3] = in[2]
        assert_eq!(r.get(0, 0, 0, 0), t.get(2, 0, 0, 0));
        assert_eq!(r.get(1, 1, 0, 0), t.get(0, 1, 0, 0));
        let r2 = t.roll_batch(0, -1);
        // out[b1=0] = in[(0+1) mod 2] = in[1]
        assert_eq!(r2.get(0, 0, 0, 0), t.get(0, 1, 0, 0));
    }

    #[test]
    fn roll_batch_identity_and_full_cycle() {
        let t = seq([3, 4, 2, 2]);
        assert_eq!(t.roll_batch(0, 0), t);
        assert_eq!(t.roll_batch(3, 0), t);
        assert_eq!(t.roll_batch(0, 4), t);
        assert_eq!(t.roll_batch(-3, 4), t);
    }

    #[test]
    fn zip_map_and_sum() {
        let a = seq([1, 1, 2, 2]); // 1 2 3 4
        let b = a.map(|v| v * 10.0);
        let c = a.zip_map(&b, |x, y| x + y);
        assert_eq!(c.sum_f64(), (1.0 + 2.0 + 3.0 + 4.0) * 11.0);
    }

    #[test]
    fn add_assign_elementwise() {
        let a = seq([1, 2, 2, 2]);
        let mut b = a.clone();
        b.add_assign(&a);
        assert_eq!(b.sum_f64(), 2.0 * a.sum_f64());
    }

    #[test]
    fn cast_preserves_spins() {
        use tpu_ising_bf16::Bf16;
        let a = Tensor4::<f32>::from_fn([2, 2, 4, 4], |b0, b1, r, c| {
            if (b0 + b1 + r + c) % 2 == 0 {
                1.0
            } else {
                -1.0
            }
        });
        let b: Tensor4<Bf16> = a.cast();
        let c: Tensor4<f32> = b.cast();
        assert_eq!(a, c);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_map_shape_mismatch_panics() {
        let a = Tensor4::<f32>::zeros([1, 1, 2, 2]);
        let b = Tensor4::<f32>::zeros([1, 1, 2, 3]);
        let _ = a.zip_map(&b, |x, _| x);
    }
}
