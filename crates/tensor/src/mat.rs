//! Dense 2-D matrices, used for the fixed band kernels `K` and `K̂`.

use tpu_ising_bf16::Scalar;

/// A dense row-major matrix at precision `S`.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat<S> {
    rows: usize,
    cols: usize,
    data: Vec<S>,
}

impl<S: Scalar> Mat<S> {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Mat<S> {
        Mat { rows, cols, data: vec![S::zero(); rows * cols] }
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> S) -> Mat<S> {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Mat { rows, cols, data }
    }

    /// Build from a row-major data vector. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<S>) -> Mat<S> {
        assert_eq!(data.len(), rows * cols, "Mat::from_vec length mismatch");
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> S {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: S) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[S] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Raw data, row-major.
    #[inline]
    pub fn data(&self) -> &[S] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat<S> {
        Mat::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Dense matmul `self · rhs` with MXU semantics (f32 accumulation).
    ///
    /// Used by tests and by the HLO interpreter for non-batched products;
    /// the hot path is [`crate::Tensor4`]'s batched version.
    pub fn matmul(&self, rhs: &Mat<S>) -> Mat<S> {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul inner-dimension mismatch: lhs is {}×{}, rhs is {}×{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                let mut acc = 0.0f32;
                for k in 0..self.cols {
                    acc = self.get(i, k).mul_acc_f32(rhs.get(k, j), acc);
                }
                out.set(i, j, S::from_f32(acc));
            }
        }
        out
    }

    /// Convert element-wise to another precision.
    pub fn cast<T: Scalar>(&self) -> Mat<T> {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| T::from_f32(v.to_f32())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_ising_bf16::Bf16;

    #[test]
    fn identity_matmul() {
        let id = Mat::<f32>::from_fn(4, 4, |r, c| if r == c { 1.0 } else { 0.0 });
        let a = Mat::<f32>::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(id.matmul(&a), a);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn known_product() {
        let a = Mat::from_vec(2, 3, vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Mat::from_vec(3, 2, vec![7.0f32, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::<f32>::from_fn(3, 5, |r, c| (r * 7 + c * 3) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_dims() {
        let a = Mat::<f32>::zeros(3, 5);
        let t = a.transpose();
        assert_eq!((t.rows(), t.cols()), (5, 3));
    }

    #[test]
    fn bf16_matmul_accumulates_in_f32() {
        // A row of 300 ones dotted with a column of ones: bf16 accumulation
        // would saturate at 256, f32 accumulation is exact (then rounds the
        // final 300 to bf16 300 exactly — 300 = 256 + 44? 300 needs 9 bits:
        // 100101100b; bf16 stores 8 significand bits, so 300 rounds to 300?
        // 300 = 1.171875 × 2^8; mantissa 0.171875·128 = 22 exactly → exact.)
        let a = Mat::<Bf16>::from_fn(1, 300, |_, _| Bf16::ONE);
        let b = Mat::<Bf16>::from_fn(300, 1, |_, _| Bf16::ONE);
        let c = a.matmul(&b);
        assert_eq!(c.get(0, 0).to_f32(), 300.0);
    }

    #[test]
    fn cast_roundtrip_on_spin_values() {
        let a = Mat::<f32>::from_fn(4, 4, |r, c| if (r + c) % 2 == 0 { 1.0 } else { -1.0 });
        let b: Mat<Bf16> = a.cast();
        let c: Mat<f32> = b.cast();
        assert_eq!(a, c);
    }

    #[test]
    #[should_panic(expected = "inner-dimension mismatch")]
    fn mismatched_matmul_panics() {
        let a = Mat::<f32>::zeros(2, 3);
        let b = Mat::<f32>::zeros(4, 2);
        let _ = a.matmul(&b);
    }
}
