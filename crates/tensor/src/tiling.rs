//! TPU HBM tiling rules (performance guide, paper Section 2).
//!
//! Arrays on TPU are tiled in two dimensions: the second-to-last dimension
//! pads to a multiple of 8 and the last to a multiple of 128. Shapes that
//! ignore this waste HBM and data-formatting time — the paper calls this
//! out as "programs that operate on array sizes undividable by 8 will have
//! sub-optimal performance". The device cost model uses these helpers to
//! charge a layout penalty for unaligned shapes.

/// The (sublane, lane) tile of TPU v3 HBM layout.
pub const TPU_TILE: (usize, usize) = (8, 128);

/// Round `dim` up to a multiple of `to`.
#[inline]
pub fn padded_dim(dim: usize, to: usize) -> usize {
    if dim == 0 {
        return 0;
    }
    dim.div_ceil(to) * to
}

/// The physical (padded) shape a logical rank-4 shape occupies in HBM.
pub fn padded_shape(shape: [usize; 4]) -> [usize; 4] {
    [shape[0], shape[1], padded_dim(shape[2], TPU_TILE.0), padded_dim(shape[3], TPU_TILE.1)]
}

/// Fraction of HBM bytes wasted by tile padding: `physical/logical − 1`.
/// Zero for well-chosen shapes like the paper's `128·k` lattices.
pub fn tile_waste_ratio(shape: [usize; 4]) -> f64 {
    let logical: usize = shape.iter().product();
    if logical == 0 {
        return 0.0;
    }
    let physical: usize = padded_shape(shape).iter().product();
    physical as f64 / logical as f64 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_rounds_up() {
        assert_eq!(padded_dim(1, 8), 8);
        assert_eq!(padded_dim(8, 8), 8);
        assert_eq!(padded_dim(9, 8), 16);
        assert_eq!(padded_dim(127, 128), 128);
        assert_eq!(padded_dim(128, 128), 128);
        assert_eq!(padded_dim(129, 128), 256);
        assert_eq!(padded_dim(0, 128), 0);
    }

    #[test]
    fn aligned_shapes_waste_nothing() {
        assert_eq!(tile_waste_ratio([4, 4, 128, 128]), 0.0);
        assert_eq!(tile_waste_ratio([1, 1, 8, 128]), 0.0);
        // the paper's per-core shape: [m, n, 896·… ] dims are 128-multiples
        assert_eq!(tile_waste_ratio([7, 3, 896, 384]), 0.0);
    }

    #[test]
    fn misaligned_shapes_charge_padding() {
        // [1,1,4,64] pads to [1,1,8,128]: 4x the storage.
        assert_eq!(tile_waste_ratio([1, 1, 4, 64]), 3.0);
        // [1,1,12,130] pads to [1,1,16,256]
        let w = tile_waste_ratio([1, 1, 12, 130]);
        let expect = (16.0 * 256.0) / (12.0 * 130.0) - 1.0;
        assert!((w - expect).abs() < 1e-12);
    }

    #[test]
    fn padded_shape_touches_only_last_two_dims() {
        assert_eq!(padded_shape([3, 5, 9, 200]), [3, 5, 16, 256]);
    }
}
