//! Observables, exact Onsager references, and measurement accumulation.

use tpu_ising_bf16::Scalar;
use tpu_ising_tensor::Plane;

/// `Σ_⟨ij⟩ σᵢσⱼ`-based energy sum: returns `H(σ) = −Σ_bonds σᵢσⱼ`
/// (J = 1, no field). Each site's neighbor sum counts each bond twice,
/// hence the ½.
pub fn energy_sum<S: Scalar>(plane: &Plane<S>) -> f64 {
    let nn = plane.neighbor_sum_periodic();
    let mut acc = 0.0f64;
    for (s, n) in plane.data().iter().zip(nn.data().iter()) {
        acc += (s.to_f32() * n.to_f32()) as f64;
    }
    -acc / 2.0
}

/// The Binder cumulant `U₄ = 1 − ⟨m⁴⟩ / (3⟨m²⟩²)`.
///
/// `U₄ → 2/3` deep in the ordered phase (m concentrates at ±m₀) and
/// `U₄ → 0` deep in the disordered phase (m Gaussian); curves for
/// different lattice sizes cross at `Tc` (paper Fig. 4).
pub fn binder_cumulant(mean_m2: f64, mean_m4: f64) -> f64 {
    if mean_m2 == 0.0 {
        return 0.0;
    }
    1.0 - mean_m4 / (3.0 * mean_m2 * mean_m2)
}

/// Exact 2-D Ising results (Onsager / Yang), used as quantitative oracles.
pub mod onsager {
    use crate::T_CRITICAL;

    /// Spontaneous magnetization `m(T) = (1 − sinh(2/T)⁻⁴)^{1/8}` for
    /// `T < Tc`, 0 above (Yang 1952).
    pub fn magnetization(t: f64) -> f64 {
        if t >= T_CRITICAL {
            return 0.0;
        }
        let s = (2.0 / t).sinh();
        (1.0 - s.powi(-4)).powf(0.125)
    }

    /// Complete elliptic integral of the first kind `K(k)` via the
    /// arithmetic–geometric mean (`K(k) = π / (2·AGM(1, √(1−k²)))`).
    pub fn elliptic_k(k: f64) -> f64 {
        assert!((0.0..1.0).contains(&k), "K(k) needs 0 ≤ k < 1");
        let mut a = 1.0f64;
        let mut b = (1.0 - k * k).sqrt();
        for _ in 0..64 {
            if (a - b).abs() < 1e-15 * a {
                break;
            }
            let an = 0.5 * (a + b);
            b = (a * b).sqrt();
            a = an;
        }
        std::f64::consts::PI / (2.0 * a)
    }

    /// Exact internal energy per site,
    /// `u(T) = −coth(2β)·[1 + (2/π)·(2·tanh²(2β) − 1)·K(k)]` with
    /// `k = 2·sinh(2β)/cosh²(2β)` (Onsager 1944).
    pub fn energy_per_site(t: f64) -> f64 {
        let beta = 1.0 / t;
        let x = 2.0 * beta;
        let coth = 1.0 / x.tanh();
        let k = 2.0 * x.sinh() / (x.cosh() * x.cosh());
        // k → 1 exactly at Tc; clamp for the integrable log singularity.
        let k = k.min(1.0 - 1e-12);
        let kk = elliptic_k(k);
        let two_tanh2_m1 = 2.0 * x.tanh() * x.tanh() - 1.0;
        -coth * (1.0 + 2.0 / std::f64::consts::PI * two_tanh2_m1 * kk)
    }
}

/// Streaming accumulator of per-sample magnetization and energy, with
/// binning error estimates.
///
/// MCMC samples are autocorrelated, so the naive standard error is
/// optimistic; binning groups consecutive samples and uses the variance of
/// bin means (standard practice; Binder & Heermann).
#[derive(Clone, Debug, Default)]
pub struct Accumulator {
    m_abs: Vec<f64>,
    m2: Vec<f64>,
    m4: Vec<f64>,
    e: Vec<f64>,
    e2: Vec<f64>,
}

/// Summary statistics produced by [`Accumulator::finalize`].
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct Stats {
    /// Number of samples.
    pub samples: usize,
    /// `⟨|m|⟩` per site.
    pub mean_abs_m: f64,
    /// Binning standard error of `⟨|m|⟩`.
    pub err_abs_m: f64,
    /// `⟨m²⟩` per site.
    pub mean_m2: f64,
    /// `⟨m⁴⟩` per site.
    pub mean_m4: f64,
    /// Binder cumulant `U₄`.
    pub binder: f64,
    /// `⟨E⟩` per site.
    pub mean_energy: f64,
    /// Binning standard error of `⟨E⟩`.
    pub err_energy: f64,
    /// Magnetization fluctuation per site, `⟨m²⟩ − ⟨|m|⟩²` (multiply by
    /// `β·N` for the susceptibility χ — see [`Stats::susceptibility`]).
    pub var_m: f64,
    /// Energy fluctuation per site, `⟨e²⟩ − ⟨e⟩²` (multiply by `β²·N` for
    /// the specific heat — see [`Stats::specific_heat`]).
    pub var_e: f64,
}

impl Stats {
    /// Magnetic susceptibility per site from fluctuation–dissipation:
    /// `χ = β·N·(⟨m²⟩ − ⟨|m|⟩²)` (the `|m|`-based estimator standard for
    /// finite lattices). Peaks near `Tc`, diverging as `L^{γ/ν}`.
    pub fn susceptibility(&self, beta: f64, sites: usize) -> f64 {
        beta * sites as f64 * self.var_m
    }

    /// Specific heat per site: `c = β²·N·(⟨e²⟩ − ⟨e⟩²)`.
    pub fn specific_heat(&self, beta: f64, sites: usize) -> f64 {
        beta * beta * sites as f64 * self.var_e
    }
}

impl Accumulator {
    /// A fresh accumulator.
    pub fn new() -> Accumulator {
        Accumulator::default()
    }

    /// Record one sample: magnetization per site and energy per site.
    pub fn push(&mut self, m_per_site: f64, e_per_site: f64) {
        self.m_abs.push(m_per_site.abs());
        self.m2.push(m_per_site * m_per_site);
        self.m4.push(m_per_site.powi(4));
        self.e.push(e_per_site);
        self.e2.push(e_per_site * e_per_site);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.m_abs.len()
    }

    /// `true` if no samples are recorded.
    pub fn is_empty(&self) -> bool {
        self.m_abs.is_empty()
    }

    /// Compute summary statistics.
    pub fn finalize(&self) -> Stats {
        let n = self.m_abs.len().max(1) as f64;
        let mean = |v: &[f64]| v.iter().sum::<f64>() / n;
        let mean_abs_m = mean(&self.m_abs);
        let mean_m2 = mean(&self.m2);
        let mean_m4 = mean(&self.m4);
        let mean_energy = mean(&self.e);
        let mean_e2 = mean(&self.e2);
        Stats {
            samples: self.m_abs.len(),
            mean_abs_m,
            err_abs_m: binned_error(&self.m_abs),
            mean_m2,
            mean_m4,
            binder: binder_cumulant(mean_m2, mean_m4),
            mean_energy,
            err_energy: binned_error(&self.e),
            var_m: (mean_m2 - mean_abs_m * mean_abs_m).max(0.0),
            var_e: (mean_e2 - mean_energy * mean_energy).max(0.0),
        }
    }
}

/// Standard error of the mean via binning (≤32 bins).
pub fn binned_error(samples: &[f64]) -> f64 {
    let n = samples.len();
    if n < 4 {
        return f64::NAN;
    }
    let n_bins = 32.min(n / 2);
    let bin_len = n / n_bins;
    let used = n_bins * bin_len;
    let bins: Vec<f64> = (0..n_bins)
        .map(|b| samples[b * bin_len..(b + 1) * bin_len].iter().sum::<f64>() / bin_len as f64)
        .collect();
    let _ = used;
    let mean = bins.iter().sum::<f64>() / n_bins as f64;
    let var = bins.iter().map(|b| (b - mean) * (b - mean)).sum::<f64>() / (n_bins - 1) as f64;
    (var / n_bins as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::T_CRITICAL;

    #[test]
    fn energy_of_ground_state() {
        // All-up lattice: every site has nn = 4, H = −2N (2 bonds/site).
        let p = crate::lattice::cold_plane::<f32>(6, 6);
        assert_eq!(energy_sum(&p), -72.0);
    }

    #[test]
    fn energy_of_striped_state() {
        // Alternating full rows: vertical bonds all −1, horizontal all +1
        // ⇒ H = −(N − N) = 0.
        let p = Plane::<f32>::from_fn(6, 6, |r, _| if r % 2 == 0 { 1.0 } else { -1.0 });
        assert_eq!(energy_sum(&p), 0.0);
    }

    #[test]
    fn energy_of_checkerboard_state() {
        // Perfect antiferromagnet: all bonds −1 ⇒ H = +2N.
        let p = Plane::<f32>::from_fn(6, 6, |r, c| if (r + c) % 2 == 0 { 1.0 } else { -1.0 });
        assert_eq!(energy_sum(&p), 72.0);
    }

    #[test]
    fn binder_limits() {
        // ordered: m = ±1 always → ⟨m²⟩=1, ⟨m⁴⟩=1 → U₄ = 2/3
        assert!((binder_cumulant(1.0, 1.0) - 2.0 / 3.0).abs() < 1e-12);
        // disordered Gaussian: ⟨m⁴⟩ = 3⟨m²⟩² → U₄ = 0
        assert!(binder_cumulant(0.1, 3.0 * 0.01).abs() < 1e-12);
    }

    #[test]
    fn onsager_magnetization_curve() {
        assert_eq!(onsager::magnetization(T_CRITICAL), 0.0);
        assert_eq!(onsager::magnetization(3.0), 0.0);
        // T → 0: fully ordered
        assert!((onsager::magnetization(0.5) - 1.0).abs() < 1e-6);
        // known value at T = 2.0: s = sinh(2/T) = sinh(1), m = (1−s⁻⁴)^{1/8}
        let s = 1.0f64.sinh();
        let expect = (1.0 - s.powi(-4)).powf(0.125);
        assert!((onsager::magnetization(2.0) - expect).abs() < 1e-12);
        // monotone decreasing in T
        let mut prev = 1.0;
        for i in 1..100 {
            let t = 0.5 + (T_CRITICAL - 0.5) * i as f64 / 100.0;
            let m = onsager::magnetization(t);
            assert!(m <= prev + 1e-12);
            prev = m;
        }
    }

    #[test]
    fn elliptic_k_known_values() {
        // K(0) = π/2
        assert!((onsager::elliptic_k(0.0) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        // K(1/√2) ≈ 1.8540746773
        assert!(
            (onsager::elliptic_k(std::f64::consts::FRAC_1_SQRT_2) - 1.854_074_677_3).abs() < 1e-9
        );
    }

    #[test]
    fn onsager_energy_limits_and_critical_value() {
        // T → 0: u → −2 (ground state)
        assert!((onsager::energy_per_site(0.1) + 2.0).abs() < 1e-6);
        // T → ∞: u → 0
        assert!(onsager::energy_per_site(1000.0).abs() < 0.01);
        // at Tc: u = −√2 (known exact value)
        let u = onsager::energy_per_site(T_CRITICAL);
        assert!((u + std::f64::consts::SQRT_2).abs() < 1e-3, "u(Tc) = {u}");
        // monotone increasing in T
        let mut prev = -2.0;
        for i in 1..60 {
            let t = 0.2 + i as f64 * 0.1;
            let u = onsager::energy_per_site(t);
            assert!(u >= prev - 1e-9, "dip at T={t}");
            prev = u;
        }
    }

    #[test]
    fn accumulator_statistics() {
        let mut acc = Accumulator::new();
        // alternating ±0.5 magnetization, constant energy
        for i in 0..100 {
            let m = if i % 2 == 0 { 0.5 } else { -0.5 };
            acc.push(m, -1.5);
        }
        let s = acc.finalize();
        assert_eq!(s.samples, 100);
        assert!((s.mean_abs_m - 0.5).abs() < 1e-12);
        assert!((s.mean_m2 - 0.25).abs() < 1e-12);
        assert!((s.mean_m4 - 0.0625).abs() < 1e-12);
        assert!((s.binder - (1.0 - 0.0625 / (3.0 * 0.0625))).abs() < 1e-12);
        assert!((s.mean_energy + 1.5).abs() < 1e-12);
        assert!(s.err_energy < 1e-12); // constant series has zero error
                                       // fluctuations: |m| constant ⇒ var_m = ⟨m²⟩ − ⟨|m|⟩² = 0; energy
                                       // constant ⇒ var_e = 0
        assert!(s.var_m.abs() < 1e-12);
        assert!(s.var_e.abs() < 1e-12);
        assert_eq!(s.susceptibility(0.5, 100), 0.0);
        assert_eq!(s.specific_heat(0.5, 100), 0.0);
    }

    #[test]
    fn susceptibility_tracks_fluctuations() {
        let mut acc = Accumulator::new();
        // half the samples at m=0, half at m=±1 → ⟨|m|⟩ = .5, ⟨m²⟩ = .5
        for i in 0..400 {
            let m = match i % 4 {
                0 => 1.0,
                1 => 0.0,
                2 => -1.0,
                _ => 0.0,
            };
            acc.push(m, -1.0 - (i % 2) as f64); // energy alternates −1, −2
        }
        let s = acc.finalize();
        assert!((s.var_m - 0.25).abs() < 1e-12);
        assert!((s.susceptibility(2.0, 10) - 2.0 * 10.0 * 0.25).abs() < 1e-12);
        assert!((s.var_e - 0.25).abs() < 1e-12);
        assert!((s.specific_heat(2.0, 10) - 4.0 * 10.0 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn binned_error_scales_with_noise() {
        // deterministic pseudo-noise
        let noisy: Vec<f64> =
            (0..1024).map(|i| ((i * 2654435761u64 as usize) % 1000) as f64).collect();
        let flat = vec![5.0; 1024];
        assert!(binned_error(&noisy) > binned_error(&flat));
        assert!(binned_error(&[1.0, 2.0]).is_nan());
    }
}
