//! Deterministic chaos harness: seeded random fault schedules plus vault
//! corruption, with a driver that proves killed-corrupted-resumed runs
//! stay bit-exact with uninterrupted ones.
//!
//! The paper's production runs (§6: 10⁶–8·10⁶ sweeps on up to 2048 cores)
//! live long enough that every failure mode fires eventually: preempted
//! cores, lost packets, slow links, and torn checkpoint writes. The
//! subsystems that absorb those faults — the tiered mesh retries, the
//! restart loop, and the durable [`Vault`] — are each tested in isolation;
//! this module composes them under *randomized but reproducible* schedules:
//!
//! - A [`ChaosPlan`] is generated from a single `u64` seed via Philox, so a
//!   failing schedule is reproduced exactly by its seed — no flaky CI.
//! - Each chaos *session* runs the pod with a scheduled kill (and possibly
//!   a packet drop or a transient delay), dies, optionally has its newest
//!   vault generation corrupted (truncation, bit-flip, torn header), and
//!   resumes from whatever the vault still holds.
//! - The final session runs fault-free to completion, and the driver
//!   compares the full magnetization history against an uninterrupted
//!   reference run. Under site-keyed RNG the histories must be
//!   **bit-identical**, no matter what the schedule did.

use crate::compact::CompactIsing;
use crate::distributed::{
    run_pod_engine_resilient, run_pod_engine_vaulted, PodCheckpoint, PodConfig, PodError,
    ResilienceOpts, POD_VAULT_KIND,
};
use crate::engine::ScalarMeshEngine;
use crate::multispin::{
    run_multispin_pod_resilient, run_multispin_pod_vaulted, MultiSpinPodCheckpoint,
    MultiSpinPodConfig, MULTISPIN_VAULT_KIND,
};
use crate::vault::{Vault, VaultError};
use std::marker::PhantomData;
use std::path::Path;
use std::time::Duration;
use tpu_ising_bf16::Scalar;
use tpu_ising_device::mesh::{FaultPlan, MeshError, MeshRuntime, RetryPolicy};
use tpu_ising_obs as obs;
use tpu_ising_rng::{PhiloxStream, RandomUniform};

/// One vault-corruption action, applied to the newest on-disk generation
/// between a crashed session and the resume that follows it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VaultCorruption {
    /// Truncate the file to `permille`/1000 of its length — a torn write.
    Truncate {
        /// Fraction of the file kept, in thousandths.
        permille: u16,
    },
    /// Flip bit `bit` of the byte at `permille`/1000 of the file length.
    BitFlip {
        /// Offset as a fraction of the file length, in thousandths.
        permille: u16,
        /// Which bit of that byte to flip (0–7).
        bit: u8,
    },
    /// Cut the file inside the envelope header — the worst torn write.
    TornHeader,
}

/// The faults one chaos session injects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionFaults {
    /// Every `(core, at_collective)` kill this session schedules — one
    /// for the classic drill, a whole pod slice for mass preemption,
    /// possibly none for pure-integrity sessions.
    pub kills: Vec<(usize, u64)>,
    /// Optionally drop the packet `(from, to)` at a collective.
    pub drop: Option<(usize, usize, u64)>,
    /// Optionally delay a core's send (microseconds) at a collective —
    /// sized to be absorbed by tier-1 collective retries.
    pub delay: Option<(usize, u64, u64)>,
    /// Silent lattice corruption `(core, at_sweep, word, bit)` — only
    /// the armed scrubber can catch it.
    pub sdc: Option<(usize, u64, u32, u8)>,
    /// Halo wire corruption `(core, at_collective, bit)` — only the
    /// armed wire checksum can catch it.
    pub halo: Option<(usize, u64, u8)>,
    /// Wedge `(core, at_collective)` — only the armed watchdog turns
    /// the hang into a typed stall.
    pub wedge: Option<(usize, u64)>,
    /// Optionally corrupt the newest vault generation after the crash.
    pub corrupt: Option<VaultCorruption>,
}

impl SessionFaults {
    /// A session with no faults at all, for literal construction.
    pub fn none() -> SessionFaults {
        SessionFaults {
            kills: Vec::new(),
            drop: None,
            delay: None,
            sdc: None,
            halo: None,
            wedge: None,
            corrupt: None,
        }
    }

    /// Every kill this session schedules, primary first.
    pub fn kills(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.kills.iter().copied()
    }
}

/// A reproducible chaos schedule: everything is a pure function of `seed`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The seed the schedule was generated from.
    pub seed: u64,
    /// One entry per chaos session; a final fault-free session follows.
    pub sessions: Vec<SessionFaults>,
}

impl ChaosPlan {
    /// Generate a `sessions`-session schedule for a `cores`-core pod whose
    /// run issues about `collective_span` collectives per attempt. Same
    /// seed ⇒ same plan, bit for bit.
    pub fn generate(seed: u64, sessions: usize, cores: usize, collective_span: u64) -> ChaosPlan {
        assert!(cores > 0 && collective_span > 0, "plan needs a non-empty pod and span");
        let mut rng = PhiloxStream::from_seed(seed ^ 0xC4A0_5C4A_05C4_A05C);
        let mut plan = Vec::with_capacity(sessions);
        for _ in 0..sessions {
            let kill_core = (rng.next_u64() % cores as u64) as usize;
            let kill_at = rng.next_u64() % collective_span;
            let drop = if rng.next_u64().is_multiple_of(3) {
                let from = (rng.next_u64() % cores as u64) as usize;
                let to = (rng.next_u64() % cores as u64) as usize;
                let at = rng.next_u64() % collective_span;
                (from != to).then_some((from, to, at))
            } else {
                None
            };
            let delay = if rng.next_u64().is_multiple_of(2) {
                let core = (rng.next_u64() % cores as u64) as usize;
                let at = rng.next_u64() % collective_span;
                // ≤ 150 ms: absorbable by the driver's retry budget.
                let micros = rng.next_u64() % 150_000;
                Some((core, at, micros))
            } else {
                None
            };
            let corrupt = match rng.next_u64() % 4 {
                0 => Some(VaultCorruption::Truncate { permille: (rng.next_u64() % 1000) as u16 }),
                1 => Some(VaultCorruption::BitFlip {
                    permille: (rng.next_u64() % 1000) as u16,
                    bit: (rng.next_u64() % 8) as u8,
                }),
                2 => Some(VaultCorruption::TornHeader),
                _ => None,
            };
            plan.push(SessionFaults {
                kills: vec![(kill_core, kill_at)],
                drop,
                delay,
                corrupt,
                ..SessionFaults::none()
            });
        }
        ChaosPlan { seed, sessions: plan }
    }

    /// A mass-preemption schedule: every session kills exactly
    /// `⌈kill_fraction · cores⌉` *distinct* cores at independent
    /// collective offsets — the paper-scale drill where a maintenance
    /// event takes a slice of a 1024-core pod at once (a fraction of 0
    /// schedules kill-less sessions). Same seed ⇒ same plan.
    pub fn generate_mass_kill(
        seed: u64,
        sessions: usize,
        cores: usize,
        collective_span: u64,
        kill_fraction: f64,
    ) -> ChaosPlan {
        assert!(cores > 0 && collective_span > 0, "plan needs a non-empty pod and span");
        assert!((0.0..=1.0).contains(&kill_fraction), "kill fraction must be within [0, 1]");
        let victims = ((cores as f64 * kill_fraction).ceil() as usize).min(cores);
        let mut rng = PhiloxStream::from_seed(seed ^ 0x9D2C_5680_9D2C_5680);
        let mut plan = Vec::with_capacity(sessions);
        for _ in 0..sessions {
            // Distinct victims via seeded rejection; bounded because the
            // victim count never exceeds the core count.
            let mut kills: Vec<(usize, u64)> = Vec::with_capacity(victims);
            while kills.len() < victims {
                let core = (rng.next_u64() % cores as u64) as usize;
                if kills.iter().any(|&(c, _)| c == core) {
                    continue;
                }
                let at = rng.next_u64() % collective_span;
                kills.push((core, at));
            }
            plan.push(SessionFaults {
                kills,
                corrupt: match rng.next_u64() % 3 {
                    0 => {
                        Some(VaultCorruption::Truncate { permille: (rng.next_u64() % 1000) as u16 })
                    }
                    1 => Some(VaultCorruption::TornHeader),
                    _ => None,
                },
                ..SessionFaults::none()
            });
        }
        ChaosPlan { seed, sessions: plan }
    }

    /// An integrity drill: session `i` injects one silent fault —
    /// rotating lattice bit-flip, halo wire corruption, core wedge — at a
    /// seeded core and time. No loud kills: with the scrubber and
    /// watchdog armed every session must crash with a *typed* error and
    /// recover; disarmed, the corruptions poison the run silently (the
    /// divergence half of the drill). Same seed ⇒ same plan.
    pub fn generate_integrity(seed: u64, sessions: usize, cores: usize, sweeps: u64) -> ChaosPlan {
        assert!(cores > 0 && sweeps > 0, "plan needs a non-empty pod and span");
        // Four shifts per half-sweep, two colors.
        let collective_span = sweeps * 8;
        let mut rng = PhiloxStream::from_seed(seed ^ 0x1B56_C4E9_1B56_C4E9);
        let mut plan = Vec::with_capacity(sessions);
        for i in 0..sessions {
            let core = (rng.next_u64() % cores as u64) as usize;
            let mut s = SessionFaults::none();
            match i % 3 {
                0 => {
                    let at_sweep = 1 + rng.next_u64() % sweeps;
                    s.sdc =
                        Some((core, at_sweep, rng.next_u64() as u32, (rng.next_u64() % 64) as u8));
                }
                1 => {
                    let at = rng.next_u64() % collective_span;
                    s.halo = Some((core, at, (rng.next_u64() % 64) as u8));
                }
                _ => {
                    s.wedge = Some((core, rng.next_u64() % collective_span));
                }
            }
            plan.push(s);
        }
        ChaosPlan { seed, sessions: plan }
    }

    /// The [`FaultPlan`] of one session (all faults on attempt 0: sessions
    /// run with a zero restart budget, so every crash ends the session).
    pub fn fault_plan(&self, session: usize) -> FaultPlan {
        let s = &self.sessions[session];
        let mut plan = FaultPlan::new();
        for (core, at) in s.kills() {
            plan = plan.kill(core, at);
        }
        if let Some((from, to, at)) = s.drop {
            plan = plan.drop_packet(from, to, at);
        }
        if let Some((core, at, micros)) = s.delay {
            plan = plan.delay(core, at, Duration::from_micros(micros));
        }
        if let Some((core, at_sweep, word, bit)) = s.sdc {
            plan = plan.flip_lattice_bit(core, at_sweep, word, bit);
        }
        if let Some((core, at, bit)) = s.halo {
            plan = plan.corrupt_halo(core, at, bit);
        }
        if let Some((core, at)) = s.wedge {
            plan = plan.wedge(core, at);
        }
        plan
    }
}

/// The flight-recorder `mode` code of a [`VaultCorruption`] (the
/// `chaos_injected` event's numeric payload).
pub fn corruption_mode(c: VaultCorruption) -> u32 {
    match c {
        VaultCorruption::Truncate { .. } => 0,
        VaultCorruption::BitFlip { .. } => 1,
        VaultCorruption::TornHeader => 2,
    }
}

/// Apply one corruption to `path` in place (a deliberately *non-atomic*
/// write — this simulates exactly the torn state the vault must survive).
pub fn apply_corruption(path: &Path, c: VaultCorruption) -> std::io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    match c {
        VaultCorruption::Truncate { permille } => {
            let keep = bytes.len() * usize::from(permille.min(999)) / 1000;
            bytes.truncate(keep);
        }
        VaultCorruption::BitFlip { permille, bit } => {
            if !bytes.is_empty() {
                let at = (bytes.len() - 1) * usize::from(permille.min(999)) / 1000;
                bytes[at] ^= 1u8 << (bit % 8);
            }
        }
        VaultCorruption::TornHeader => {
            bytes.truncate(bytes.len().min(10));
        }
    }
    std::fs::write(path, &bytes)
}

/// What a chaos run did and whether it converged.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Sessions actually run (including the final fault-free one).
    pub sessions: usize,
    /// Sessions ended by an injected crash.
    pub crashes: usize,
    /// Vault corruptions applied.
    pub corruptions: usize,
    /// Corrupt generations the vault quarantined on reload.
    pub quarantined: usize,
    /// Resumes that found *no* valid generation and restarted from scratch.
    pub from_scratch: usize,
    /// Injected corruptions the scrubber caught as typed
    /// [`MeshError::Corrupt`] (lattice digest or halo checksum).
    pub scrub_detected: usize,
    /// Wedges the watchdog converted into typed [`MeshError::Stalled`].
    pub stalls_detected: usize,
    /// Final sweep reached.
    pub final_sweep: u64,
    /// `true` iff the chaos run's full magnetization history is
    /// bit-identical to the uninterrupted reference run.
    pub bit_exact: bool,
}

/// Which integrity layers a chaos run arms. `Default` is fully disarmed —
/// the divergence half of the SDC drill.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntegrityKnobs {
    /// Scrubber cadence in sweeps (`None`: disarmed). Arms both lattice
    /// digests and halo wire checksums.
    pub scrub_every: Option<u64>,
    /// Watchdog deadline (`None`: disarmed).
    pub watchdog_timeout: Option<Duration>,
}

impl IntegrityKnobs {
    /// Fully armed at drill settings: scrub every sweep, a short
    /// watchdog — every injection is caught at its first opportunity.
    pub fn armed() -> IntegrityKnobs {
        IntegrityKnobs { scrub_every: Some(1), watchdog_timeout: Some(Duration::from_millis(50)) }
    }
}

/// The session-level resilience knobs shared by both drivers: a zero
/// restart budget (each crash ends the session and goes through the vault)
/// and a retry policy sized to absorb the plan's transient delays.
fn session_opts(
    checkpoint_every: usize,
    faults: FaultPlan,
    runtime: MeshRuntime,
    knobs: IntegrityKnobs,
) -> ResilienceOpts {
    ResilienceOpts {
        checkpoint_every,
        max_restarts: 0,
        recv_timeout: Duration::from_millis(200),
        faults,
        retry: RetryPolicy { max_retries: 2, backoff: Duration::from_millis(50) },
        runtime,
        scrub_every: knobs.scrub_every,
        watchdog_timeout: knobs.watchdog_timeout,
        degraded_min_cores: None,
    }
}

fn vault_resume_err(e: VaultError) -> PodError {
    PodError::Resume(format!("vault reload during chaos: {e}"))
}

/// One deployment family the chaos driver can exercise. This is the
/// session-level sibling of [`crate::distributed`]'s restart family: where
/// that trait binds a single resilient *attempt*, this one binds whole
/// vault-backed *sessions*, so the crash → corrupt → quarantine → resume
/// loop is written once and every engine plugs into it.
trait ChaosFamily {
    /// The pod-level checkpoint resumed between sessions.
    type Ckpt;
    /// The observable history compared bit-for-bit against the reference.
    type History: PartialEq;

    /// The vault envelope `kind` tag this family's checkpoints carry.
    const VAULT_KIND: &'static str;
    /// The vault namespace this family's chaos generations live under.
    const VAULT_NAMESPACE: &'static str;

    /// An uninterrupted run's history — the bit-exactness oracle.
    fn reference(&self, opts: &ResilienceOpts) -> Result<Self::History, PodError>;

    /// One vault-backed session: the full history (spanning sweep 1 to the
    /// final sweep, across resumes) and the final sweep index.
    fn vaulted(
        &self,
        opts: &ResilienceOpts,
        resume: Option<Self::Ckpt>,
        vault: &Vault,
    ) -> Result<(Self::History, u64), PodError>;

    /// Decode a vault payload back into a resumable checkpoint.
    fn ckpt_from_json(json: &str) -> Result<Self::Ckpt, PodError>;
}

/// The shared chaos session loop: an uninterrupted reference run, then the
/// planned crash/corrupt/resume sessions through a vault in `vault_dir`,
/// then (if no session ran to completion) a fault-free session. The report
/// says whether the chaos history matches the reference bit for bit.
fn run_chaos_family<F: ChaosFamily>(
    family: &F,
    checkpoint_every: usize,
    plan: &ChaosPlan,
    vault_dir: &Path,
    keep: usize,
    runtime: MeshRuntime,
    knobs: IntegrityKnobs,
) -> Result<ChaosReport, PodError> {
    let reference =
        family.reference(&session_opts(checkpoint_every, FaultPlan::new(), runtime, knobs))?;
    let vault = Vault::new(vault_dir, F::VAULT_NAMESPACE, keep).map_err(vault_resume_err)?;
    let mut report = ChaosReport::default();
    let mut latest: Option<F::Ckpt> = None;
    let mut done = None;
    for (i, session) in plan.sessions.iter().enumerate() {
        report.sessions += 1;
        if i > 0 {
            // Each resume is a new restart generation in the recorder.
            obs::recorder::bump_generation();
        }
        obs::record(obs::EventKind::SessionStart { session: i as u64 });
        let opts = session_opts(checkpoint_every, plan.fault_plan(i), runtime, knobs);
        match family.vaulted(&opts, latest.take(), &vault) {
            Ok(run) => {
                // The scheduled kill landed beyond the end of the run —
                // the session simply finished.
                done = Some(run);
                break;
            }
            Err(PodError::RestartsExhausted { last: e, .. }) | Err(PodError::Mesh(e)) => {
                report.crashes += 1;
                match e {
                    MeshError::Corrupt { .. } => report.scrub_detected += 1,
                    MeshError::Stalled { .. } => report.stalls_detected += 1,
                    _ => {}
                }
                if let Some(c) = session.corrupt {
                    if let Some(newest) = vault.generations().first() {
                        apply_corruption(&newest.path, c).map_err(|e| {
                            PodError::Resume(format!("corruption injection failed: {e}"))
                        })?;
                        obs::record(obs::EventKind::ChaosInjected {
                            session: i as u64,
                            mode: corruption_mode(c),
                        });
                        report.corruptions += 1;
                    }
                }
                match vault.load_latest(F::VAULT_KIND) {
                    Ok(loaded) => {
                        report.quarantined += loaded.quarantined.len();
                        latest = Some(F::ckpt_from_json(&loaded.payload)?);
                    }
                    Err(VaultError::NoValidGeneration { quarantined, .. }) => {
                        report.quarantined += quarantined.len();
                        report.from_scratch += 1;
                        latest = None;
                    }
                    Err(e) => return Err(vault_resume_err(e)),
                }
            }
            Err(other) => return Err(other),
        }
    }
    let (history, final_sweep) = match done {
        Some(run) => run,
        None => {
            report.sessions += 1;
            obs::recorder::bump_generation();
            obs::record(obs::EventKind::SessionStart { session: plan.sessions.len() as u64 });
            family.vaulted(
                &session_opts(checkpoint_every, FaultPlan::new(), runtime, knobs),
                latest,
                &vault,
            )?
        }
    };
    report.final_sweep = final_sweep;
    report.bit_exact = history == reference;
    Ok(report)
}

/// The chaos bindings of any scalar mesh engine (compact, naive, conv).
struct ScalarChaosFamily<'a, S, E> {
    cfg: &'a PodConfig,
    sweeps: usize,
    _engine: PhantomData<fn() -> (S, E)>,
}

impl<S, E> ChaosFamily for ScalarChaosFamily<'_, S, E>
where
    S: Scalar + RandomUniform + 'static,
    E: ScalarMeshEngine<S> + 'static,
{
    type Ckpt = PodCheckpoint;
    type History = Vec<f64>;
    const VAULT_KIND: &'static str = POD_VAULT_KIND;
    const VAULT_NAMESPACE: &'static str = "chaos-pod";

    fn reference(&self, opts: &ResilienceOpts) -> Result<Vec<f64>, PodError> {
        Ok(run_pod_engine_resilient::<S, E>(self.cfg, self.sweeps, opts, None)?
            .result
            .magnetization_sums)
    }

    fn vaulted(
        &self,
        opts: &ResilienceOpts,
        resume: Option<PodCheckpoint>,
        vault: &Vault,
    ) -> Result<(Vec<f64>, u64), PodError> {
        let run = run_pod_engine_vaulted::<S, E>(self.cfg, self.sweeps, opts, resume, vault)?;
        Ok((run.result.magnetization_sums, run.final_checkpoint.sweep_index))
    }

    fn ckpt_from_json(json: &str) -> Result<PodCheckpoint, PodError> {
        PodCheckpoint::from_json(json)
    }
}

/// The chaos bindings of the bit-packed multispin engine.
struct MultiSpinChaosFamily<'a> {
    cfg: &'a MultiSpinPodConfig,
    sweeps: usize,
}

impl ChaosFamily for MultiSpinChaosFamily<'_> {
    type Ckpt = MultiSpinPodCheckpoint;
    type History = Vec<[f64; crate::multispin::REPLICAS]>;
    const VAULT_KIND: &'static str = MULTISPIN_VAULT_KIND;
    const VAULT_NAMESPACE: &'static str = "chaos-multispin";

    fn reference(&self, opts: &ResilienceOpts) -> Result<Self::History, PodError> {
        Ok(run_multispin_pod_resilient(self.cfg, self.sweeps, opts, None)?
            .result
            .replica_magnetizations)
    }

    fn vaulted(
        &self,
        opts: &ResilienceOpts,
        resume: Option<MultiSpinPodCheckpoint>,
        vault: &Vault,
    ) -> Result<(Self::History, u64), PodError> {
        let run = run_multispin_pod_vaulted(self.cfg, self.sweeps, opts, resume, vault)?;
        Ok((run.result.replica_magnetizations, run.final_checkpoint.sweep_index))
    }

    fn ckpt_from_json(json: &str) -> Result<MultiSpinPodCheckpoint, PodError> {
        MultiSpinPodCheckpoint::from_json(json)
    }
}

/// Run the chaos drill for any scalar mesh engine: an uninterrupted
/// reference run, then the planned crash/corrupt/resume sessions through a
/// vault in `vault_dir`, then a fault-free session to completion. The
/// returned report says whether the two magnetization histories match bit
/// for bit.
pub fn run_chaos_engine<S, E>(
    cfg: &PodConfig,
    sweeps: usize,
    checkpoint_every: usize,
    plan: &ChaosPlan,
    vault_dir: &Path,
    keep: usize,
) -> Result<ChaosReport, PodError>
where
    S: Scalar + RandomUniform + 'static,
    E: ScalarMeshEngine<S> + 'static,
{
    run_chaos_engine_rt::<S, E>(
        cfg,
        sweeps,
        checkpoint_every,
        plan,
        vault_dir,
        keep,
        MeshRuntime::Threads,
        IntegrityKnobs::default(),
    )
}

/// [`run_chaos_engine`] on an explicit mesh runtime — the paper-scale
/// variant: with [`MeshRuntime::coop`] a 1024-core chaos drill (mass
/// preemption included) runs on a laptop-class host.
#[allow(clippy::too_many_arguments)]
pub fn run_chaos_engine_rt<S, E>(
    cfg: &PodConfig,
    sweeps: usize,
    checkpoint_every: usize,
    plan: &ChaosPlan,
    vault_dir: &Path,
    keep: usize,
    runtime: MeshRuntime,
    knobs: IntegrityKnobs,
) -> Result<ChaosReport, PodError>
where
    S: Scalar + RandomUniform + 'static,
    E: ScalarMeshEngine<S> + 'static,
{
    let family = ScalarChaosFamily::<S, E> { cfg, sweeps, _engine: PhantomData };
    run_chaos_family(&family, checkpoint_every, plan, vault_dir, keep, runtime, knobs)
}

/// [`run_chaos_engine`] at the paper's benchmark configuration: the
/// compact (Algorithm 2) engine in `f32`.
pub fn run_chaos_pod(
    cfg: &PodConfig,
    sweeps: usize,
    checkpoint_every: usize,
    plan: &ChaosPlan,
    vault_dir: &Path,
    keep: usize,
) -> Result<ChaosReport, PodError> {
    run_chaos_engine::<f32, CompactIsing<f32>>(cfg, sweeps, checkpoint_every, plan, vault_dir, keep)
}

/// The multispin analogue of [`run_chaos_pod`]: same schedule semantics,
/// packed checkpoints, per-replica magnetization histories compared.
pub fn run_chaos_multispin(
    cfg: &MultiSpinPodConfig,
    sweeps: usize,
    checkpoint_every: usize,
    plan: &ChaosPlan,
    vault_dir: &Path,
    keep: usize,
) -> Result<ChaosReport, PodError> {
    run_chaos_multispin_rt(
        cfg,
        sweeps,
        checkpoint_every,
        plan,
        vault_dir,
        keep,
        MeshRuntime::Threads,
        IntegrityKnobs::default(),
    )
}

/// [`run_chaos_multispin`] on an explicit mesh runtime.
#[allow(clippy::too_many_arguments)]
pub fn run_chaos_multispin_rt(
    cfg: &MultiSpinPodConfig,
    sweeps: usize,
    checkpoint_every: usize,
    plan: &ChaosPlan,
    vault_dir: &Path,
    keep: usize,
    runtime: MeshRuntime,
    knobs: IntegrityKnobs,
) -> Result<ChaosReport, PodError> {
    let family = MultiSpinChaosFamily { cfg, sweeps };
    run_chaos_family(&family, checkpoint_every, plan, vault_dir, keep, runtime, knobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::PodRng;
    use tpu_ising_device::mesh::Torus;
    use tpu_ising_tensor::KernelBackend;

    fn serde_is_real() -> bool {
        serde_json::to_string(&7u32).map(|s| s == "7").unwrap_or(false)
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tpu-ising-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    #[test]
    fn plans_are_reproducible_from_the_seed() {
        let a = ChaosPlan::generate(42, 6, 4, 64);
        let b = ChaosPlan::generate(42, 6, 4, 64);
        assert_eq!(a, b);
        let c = ChaosPlan::generate(43, 6, 4, 64);
        assert_ne!(a, c, "different seeds must give different schedules");
        assert_eq!(a.sessions.len(), 6);
        for s in &a.sessions {
            let (core, at) = s.kills[0];
            assert!(core < 4 && at < 64);
        }
    }

    #[test]
    fn fault_plan_includes_every_scheduled_fault() {
        let plan = ChaosPlan {
            seed: 0,
            sessions: vec![SessionFaults {
                kills: vec![(1, 5), (2, 7), (3, 9)],
                drop: Some((0, 2, 3)),
                delay: Some((3, 1, 1000)),
                ..SessionFaults::none()
            }],
        };
        let fp = plan.fault_plan(0);
        assert_eq!(fp.faults.len(), 5);
    }

    #[test]
    fn mass_kill_plans_hit_the_requested_fraction_of_distinct_cores() {
        let plan = ChaosPlan::generate_mass_kill(3, 4, 1024, 48, 0.01);
        assert_eq!(plan.sessions.len(), 4);
        for s in &plan.sessions {
            let kills: Vec<(usize, u64)> = s.kills().collect();
            // ⌈0.01 · 1024⌉ = 11 victims per session.
            assert_eq!(kills.len(), 11);
            for (i, &(core, at)) in kills.iter().enumerate() {
                assert!(core < 1024 && at < 48);
                assert!(kills[..i].iter().all(|&(c, _)| c != core), "duplicate victim {core}");
            }
        }
        // Reproducible from the seed, distinct across seeds.
        assert_eq!(plan, ChaosPlan::generate_mass_kill(3, 4, 1024, 48, 0.01));
        assert_ne!(plan, ChaosPlan::generate_mass_kill(4, 4, 1024, 48, 0.01));
    }

    #[test]
    fn corruption_kinds_mangle_files_as_described() {
        let dir = tmpdir("corrupt");
        let f = dir.join("x.bin");
        std::fs::write(&f, vec![0xAAu8; 100]).unwrap();
        apply_corruption(&f, VaultCorruption::Truncate { permille: 500 }).unwrap();
        assert_eq!(std::fs::read(&f).unwrap().len(), 50);
        apply_corruption(&f, VaultCorruption::BitFlip { permille: 0, bit: 0 }).unwrap();
        assert_eq!(std::fs::read(&f).unwrap()[0], 0xAB);
        apply_corruption(&f, VaultCorruption::TornHeader).unwrap();
        assert_eq!(std::fs::read(&f).unwrap().len(), 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scalar_chaos_run_is_bit_exact() {
        if !serde_is_real() {
            return; // vault payloads need a real serializer
        }
        let dir = tmpdir("scalar");
        let cfg = PodConfig {
            torus: Torus::new(2, 2),
            per_core_h: 8,
            per_core_w: 8,
            tile: 2,
            beta: 0.4,
            seed: 99,
            rng: PodRng::SiteKeyed,
            backend: KernelBackend::Band,
        };
        let plan = ChaosPlan::generate(7, 3, 4, 8 * 6);
        let report = run_chaos_pod(&cfg, 6, 2, &plan, &dir, 3).expect("chaos run");
        assert!(report.bit_exact, "chaos diverged: {report:?}");
        assert_eq!(report.final_sweep, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn naive_engine_chaos_run_is_bit_exact() {
        if !serde_is_real() {
            return;
        }
        let dir = tmpdir("naive");
        let cfg = PodConfig {
            torus: Torus::new(2, 2),
            per_core_h: 8,
            per_core_w: 8,
            tile: 2,
            beta: 0.4,
            seed: 99,
            rng: PodRng::SiteKeyed,
            backend: KernelBackend::Band,
        };
        let plan = ChaosPlan::generate(5, 3, 4, 8 * 6);
        let report =
            run_chaos_engine::<f32, crate::naive::NaiveIsing<f32>>(&cfg, 6, 2, &plan, &dir, 3)
                .expect("chaos run");
        assert!(report.bit_exact, "chaos diverged: {report:?}");
        assert_eq!(report.final_sweep, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn integrity_plans_rotate_injections_and_are_seed_deterministic() {
        let a = ChaosPlan::generate_integrity(9, 6, 4, 6);
        assert_eq!(a, ChaosPlan::generate_integrity(9, 6, 4, 6));
        assert_ne!(a, ChaosPlan::generate_integrity(10, 6, 4, 6));
        assert_eq!(a.sessions.len(), 6);
        for (i, s) in a.sessions.iter().enumerate() {
            assert!(s.kills.is_empty() && s.drop.is_none() && s.corrupt.is_none());
            match i % 3 {
                0 => {
                    let (core, at_sweep, _, bit) = s.sdc.expect("sdc session");
                    assert!(core < 4 && (1..=6).contains(&at_sweep) && bit < 64);
                }
                1 => {
                    let (core, at, bit) = s.halo.expect("halo session");
                    assert!(core < 4 && at < 48 && bit < 64);
                }
                _ => {
                    let (core, at) = s.wedge.expect("wedge session");
                    assert!(core < 4 && at < 48);
                }
            }
        }
    }

    fn integrity_pod() -> PodConfig {
        PodConfig {
            torus: Torus::new(2, 2),
            per_core_h: 8,
            per_core_w: 8,
            tile: 2,
            beta: 0.4,
            seed: 99,
            rng: PodRng::SiteKeyed,
            backend: KernelBackend::Band,
        }
    }

    /// One hand-placed injection of each silent kind: a lattice bit flip
    /// in sweep 2, a halo corruption at collective 10, a wedge at
    /// collective 5 — all guaranteed to fire within a 6-sweep run.
    fn integrity_plan() -> ChaosPlan {
        ChaosPlan {
            seed: 0,
            sessions: vec![
                SessionFaults { sdc: Some((1, 2, 5, 3)), ..SessionFaults::none() },
                SessionFaults { halo: Some((2, 10, 7)), ..SessionFaults::none() },
                SessionFaults { wedge: Some((3, 5)), ..SessionFaults::none() },
            ],
        }
    }

    #[test]
    fn armed_integrity_drill_detects_every_injection_and_recovers_bit_exact() {
        if !serde_is_real() {
            return;
        }
        let dir = tmpdir("integrity-armed");
        let report = run_chaos_engine_rt::<f32, CompactIsing<f32>>(
            &integrity_pod(),
            6,
            2,
            &integrity_plan(),
            &dir,
            3,
            MeshRuntime::Threads,
            IntegrityKnobs::armed(),
        )
        .expect("armed drill");
        assert_eq!(report.crashes, 3, "every injection must end its session: {report:?}");
        assert_eq!(report.scrub_detected, 2, "lattice flip + halo corruption: {report:?}");
        assert_eq!(report.stalls_detected, 1, "the wedge must become a typed stall: {report:?}");
        assert!(report.bit_exact, "armed drill diverged: {report:?}");
        assert_eq!(report.final_sweep, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disarmed_integrity_drill_diverges_silently() {
        if !serde_is_real() {
            return;
        }
        let dir = tmpdir("integrity-disarmed");
        let report = run_chaos_engine_rt::<f32, CompactIsing<f32>>(
            &integrity_pod(),
            6,
            2,
            &integrity_plan(),
            &dir,
            3,
            MeshRuntime::Threads,
            IntegrityKnobs::default(),
        )
        .expect("disarmed drill");
        // With nobody watching, the first (SDC) session sails through with
        // a poisoned lattice: no typed errors, no detections, and a final
        // history that silently disagrees with the reference.
        assert_eq!(report.scrub_detected, 0);
        assert_eq!(report.stalls_detected, 0);
        assert!(!report.bit_exact, "undetected corruption must diverge: {report:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multispin_armed_integrity_drill_recovers_bit_exact() {
        if !serde_is_real() {
            return;
        }
        let dir = tmpdir("integrity-multispin");
        let cfg = MultiSpinPodConfig {
            torus: Torus::new(2, 2),
            per_core_h: 4,
            per_core_w: 4,
            beta: 0.4,
            seed: 21,
        };
        let report = run_chaos_multispin_rt(
            &cfg,
            6,
            2,
            &integrity_plan(),
            &dir,
            3,
            MeshRuntime::Threads,
            IntegrityKnobs::armed(),
        )
        .expect("multispin armed drill");
        assert_eq!(report.crashes, 3, "every injection must end its session: {report:?}");
        assert_eq!(report.scrub_detected, 2, "{report:?}");
        assert_eq!(report.stalls_detected, 1, "{report:?}");
        assert!(report.bit_exact, "multispin armed drill diverged: {report:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

        /// The mass-kill generator's contract: every session schedules
        /// exactly ⌈F·cores⌉ *distinct* victims for any F ∈ [0, 1], and
        /// the whole plan is a pure function of the seed.
        #[test]
        fn mass_kill_fraction_contract(
            seed in proptest::prelude::any::<u64>(),
            cores in 1usize..=256,
            fraction in 0.0f64..=1.0,
        ) {
            let expected = ((cores as f64 * fraction).ceil() as usize).min(cores);
            let plan = ChaosPlan::generate_mass_kill(seed, 2, cores, 16, fraction);
            for s in &plan.sessions {
                proptest::prop_assert_eq!(s.kills.len(), expected);
                let mut victims: Vec<usize> = s.kills().map(|(c, _)| c).collect();
                victims.sort_unstable();
                victims.dedup();
                proptest::prop_assert_eq!(victims.len(), expected, "victims must be distinct");
            }
            let again = ChaosPlan::generate_mass_kill(seed, 2, cores, 16, fraction);
            proptest::prop_assert_eq!(&plan, &again);
        }
    }

    #[test]
    fn multispin_chaos_run_is_bit_exact() {
        if !serde_is_real() {
            return;
        }
        let dir = tmpdir("multispin");
        let cfg = MultiSpinPodConfig {
            torus: Torus::new(2, 2),
            per_core_h: 4,
            per_core_w: 4,
            beta: 0.4,
            seed: 21,
        };
        let plan = ChaosPlan::generate(11, 3, 4, 8 * 6);
        let report = run_chaos_multispin(&cfg, 6, 2, &plan, &dir, 3).expect("chaos run");
        assert!(report.bit_exact, "chaos diverged: {report:?}");
        assert_eq!(report.final_sweep, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
