//! SPMD simulation over a modeled TPU Pod slice.
//!
//! One thread per TensorCore on a 2-D torus. Every core owns a window of
//! the global lattice in compact form and runs the identical program
//! (SIMD, paper §5.1): per half-sweep it exchanges four boundary halos with
//! its mesh neighbors through `collective_permute` and updates its color.
//! The paper's Fig. 5 pattern — shift right edges east-to-west and left
//! edges west-to-east — generalizes here to the four quarter-lattice
//! boundaries Algorithm 2 needs.
//!
//! With site-keyed randomness the distributed run is **bit-identical** to a
//! single-core run on the same global lattice (the integration tests assert
//! this); with split bulk streams it is a fast independent sampler.

use crate::compact::{ColorHalos, CompactIsing};
use crate::lattice::{random_plane_window, Color};
use crate::prob::Randomness;
use tpu_ising_bf16::Scalar;
use tpu_ising_device::mesh::{run_spmd, MeshHandle, Torus};
use tpu_ising_obs as obs;
use tpu_ising_rng::{PhiloxStream, RandomUniform};
use tpu_ising_tensor::{KernelBackend, Plane};

/// How per-core randomness is derived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PodRng {
    /// Site-keyed: uniforms are pure functions of global coordinates, so
    /// the run reproduces the single-core trajectory exactly.
    SiteKeyed,
    /// Each core splits an independent Philox stream from the seed —
    /// production mode, statistically independent across cores.
    BulkSplit,
}

/// Configuration of a Pod run.
#[derive(Clone, Copy, Debug)]
pub struct PodConfig {
    /// Core topology.
    pub torus: Torus,
    /// Per-core lattice height (must be divisible by `2·tile`).
    pub per_core_h: usize,
    /// Per-core lattice width (must be divisible by `2·tile`).
    pub per_core_w: usize,
    /// Quarter-grid tile size (128 on real TPU).
    pub tile: usize,
    /// Inverse temperature β.
    pub beta: f64,
    /// Master seed (initial lattice + update randomness).
    pub seed: u64,
    /// Randomness derivation mode.
    pub rng: PodRng,
    /// Neighbor-sum kernel backend for every core (dense reference matmuls
    /// or the band-structured fused path — bit-identical trajectories).
    pub backend: KernelBackend,
}

impl PodConfig {
    /// Global lattice height.
    pub fn global_h(&self) -> usize {
        self.per_core_h * self.torus.nx
    }

    /// Global lattice width.
    pub fn global_w(&self) -> usize {
        self.per_core_w * self.torus.ny
    }

    /// Total sites.
    pub fn sites(&self) -> usize {
        self.global_h() * self.global_w()
    }
}

/// Result of a Pod run.
pub struct PodResult<S> {
    /// Global `Σσ` after every sweep.
    pub magnetization_sums: Vec<f64>,
    /// The final global lattice, stitched from the core windows.
    pub final_plane: Plane<S>,
}

/// Run `sweeps` full sweeps from the seed-determined hot start.
pub fn run_pod<S: Scalar + RandomUniform>(cfg: &PodConfig, sweeps: usize) -> PodResult<S> {
    let torus = cfg.torus;
    let per_core: Vec<(Vec<f64>, Plane<S>)> =
        run_spmd(torus, |mut h: MeshHandle<Vec<S>>| core_main::<S>(cfg, &mut h, sweeps));

    // Stitch the global lattice and reduce magnetizations on the host.
    let mut mags = vec![0.0f64; sweeps];
    for (local_mags, _) in &per_core {
        for (acc, &m) in mags.iter_mut().zip(local_mags.iter()) {
            *acc += m;
        }
    }
    let final_plane = Plane::from_fn(cfg.global_h(), cfg.global_w(), |r, c| {
        let core = torus.id(r / cfg.per_core_h, c / cfg.per_core_w);
        per_core[core].1.get(r % cfg.per_core_h, c % cfg.per_core_w)
    });
    PodResult { magnetization_sums: mags, final_plane }
}

/// The per-core SPMD program.
fn core_main<S: Scalar + RandomUniform>(
    cfg: &PodConfig,
    handle: &mut MeshHandle<Vec<S>>,
    sweeps: usize,
) -> (Vec<f64>, Plane<S>) {
    let (x, y) = handle.coords();
    if obs::is_tracing() {
        // One timeline track per modeled TensorCore (the trace-viewer rows
        // of paper Fig. 6).
        obs::register_track(format!("core-{} ({x},{y})", handle.id()));
    }
    let row0 = x * cfg.per_core_h;
    let col0 = y * cfg.per_core_w;
    // Every core constructs its window of the same global lattice.
    let window = random_plane_window::<S>(cfg.seed, cfg.per_core_h, cfg.per_core_w, row0, col0);
    let rng = match cfg.rng {
        PodRng::SiteKeyed => Randomness::site_keyed(cfg.seed),
        PodRng::BulkSplit => {
            Randomness::Bulk(PhiloxStream::from_seed(cfg.seed).split(handle.id() as u64 + 1))
        }
    };
    let mut sim = CompactIsing::from_plane_at(&window, cfg.tile, cfg.beta, rng, row0, col0)
        .with_backend(cfg.backend);

    let mut mags = Vec::with_capacity(sweeps);
    for _ in 0..sweeps {
        for color in [Color::Black, Color::White] {
            // Wrapper spans (kind-less): the kinded leaves inside them
            // (collective_permute, neighbor_sums, …) carry the breakdown.
            let halos = {
                let _g = obs::span!("halo_exchange");
                exchange_halos(&sim, handle, color)
            };
            let _g = obs::span!("update_color");
            sim.update_color(color, &halos);
        }
        sim.advance_sweep();
        mags.push(crate::sampler::Sweeper::magnetization_sum(&sim));
    }
    (mags, sim.to_plane())
}

/// The four collective permutes of one half-sweep.
fn exchange_halos<S: Scalar + RandomUniform>(
    sim: &CompactIsing<S>,
    handle: &mut MeshHandle<Vec<S>>,
    color: Color,
) -> ColorHalos<S> {
    let [north_spec, south_spec, first_spec, second_spec] = sim.halo_exchange_spec(color);
    if obs::is_metrics() {
        let lens =
            north_spec.0.len() + south_spec.0.len() + first_spec.0.len() + second_spec.0.len();
        obs::metrics().counter("halo_bytes_total").inc((lens * std::mem::size_of::<S>()) as u64);
    }
    let north = handle.shift(north_spec.0, north_spec.1);
    let south = handle.shift(south_spec.0, south_spec.1);
    let first_col = handle.shift(first_spec.0, first_spec.1);
    let second_col = handle.shift(second_spec.0, second_spec.1);
    ColorHalos { north, south, first_col, second_col }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::random_plane;
    use crate::sampler::Sweeper;

    fn single_core_trajectory(cfg: &PodConfig, sweeps: usize) -> Plane<f32> {
        let init = random_plane::<f32>(cfg.seed, cfg.global_h(), cfg.global_w());
        let mut sim =
            CompactIsing::from_plane(&init, cfg.tile, cfg.beta, Randomness::site_keyed(cfg.seed))
                .with_backend(cfg.backend);
        for _ in 0..sweeps {
            sim.sweep();
        }
        sim.to_plane()
    }

    #[test]
    fn distributed_matches_single_core_bitwise() {
        let cfg = PodConfig {
            torus: Torus::new(2, 2),
            per_core_h: 8,
            per_core_w: 8,
            tile: 2,
            beta: 1.0 / crate::T_CRITICAL,
            seed: 4242,
            rng: PodRng::SiteKeyed,
            backend: KernelBackend::Band,
        };
        let sweeps = 6;
        let pod = run_pod::<f32>(&cfg, sweeps);
        let single = single_core_trajectory(&cfg, sweeps);
        assert_eq!(pod.final_plane, single);
    }

    #[test]
    fn topology_is_transparent() {
        // The same global lattice split 1×4 vs 4×1 vs 2×2 gives the same
        // trajectory under site-keyed randomness.
        let mk = |nx: usize, ny: usize, h: usize, w: usize| PodConfig {
            torus: Torus::new(nx, ny),
            per_core_h: h,
            per_core_w: w,
            tile: 2,
            beta: 0.5,
            seed: 99,
            rng: PodRng::SiteKeyed,
            backend: KernelBackend::Band,
        };
        let a = run_pod::<f32>(&mk(1, 4, 16, 4), 4);
        let b = run_pod::<f32>(&mk(4, 1, 4, 16), 4);
        let c = run_pod::<f32>(&mk(2, 2, 8, 8), 4);
        assert_eq!(a.final_plane, b.final_plane);
        assert_eq!(a.final_plane, c.final_plane);
    }

    #[test]
    fn single_core_pod_equals_local_run() {
        let cfg = PodConfig {
            torus: Torus::new(1, 1),
            per_core_h: 12,
            per_core_w: 12,
            tile: 2,
            beta: 0.44,
            seed: 7,
            rng: PodRng::SiteKeyed,
            backend: KernelBackend::Dense,
        };
        let pod = run_pod::<f32>(&cfg, 5);
        let single = single_core_trajectory(&cfg, 5);
        assert_eq!(pod.final_plane, single);
    }

    #[test]
    fn magnetization_sums_match_final_plane() {
        let cfg = PodConfig {
            torus: Torus::new(2, 1),
            per_core_h: 8,
            per_core_w: 16,
            tile: 4,
            beta: 0.6,
            seed: 13,
            rng: PodRng::SiteKeyed,
            backend: KernelBackend::Band,
        };
        let pod = run_pod::<f32>(&cfg, 3);
        assert_eq!(pod.magnetization_sums.len(), 3);
        assert_eq!(*pod.magnetization_sums.last().unwrap(), pod.final_plane.sum_f64());
    }

    #[test]
    fn bulk_split_mode_runs_and_stays_spin_valued() {
        let cfg = PodConfig {
            torus: Torus::new(2, 2),
            per_core_h: 8,
            per_core_w: 8,
            tile: 2,
            beta: 0.7,
            seed: 21,
            rng: PodRng::BulkSplit,
            backend: KernelBackend::Band,
        };
        let pod = run_pod::<f32>(&cfg, 5);
        assert!(pod.final_plane.data().iter().all(|&s| s == 1.0 || s == -1.0));
        // low temperature from hot start: |m| should have grown
        let m_last = pod.magnetization_sums.last().unwrap() / cfg.sites() as f64;
        assert!(m_last.abs() <= 1.0);
    }

    #[test]
    fn pod_backends_are_bit_identical() {
        let mk = |backend| PodConfig {
            torus: Torus::new(2, 2),
            per_core_h: 8,
            per_core_w: 8,
            tile: 2,
            beta: 0.5,
            seed: 1717,
            rng: PodRng::BulkSplit,
            backend,
        };
        let dense = run_pod::<f32>(&mk(KernelBackend::Dense), 5);
        let band = run_pod::<f32>(&mk(KernelBackend::Band), 5);
        assert_eq!(dense.final_plane, band.final_plane);
        assert_eq!(dense.magnetization_sums, band.magnetization_sums);
    }

    #[test]
    fn bf16_distributed_matches_bf16_single_core() {
        use tpu_ising_bf16::Bf16;
        let cfg = PodConfig {
            torus: Torus::new(2, 2),
            per_core_h: 8,
            per_core_w: 8,
            tile: 2,
            beta: 0.55,
            seed: 31,
            rng: PodRng::SiteKeyed,
            backend: KernelBackend::Band,
        };
        let pod = run_pod::<Bf16>(&cfg, 4);
        let init = random_plane::<Bf16>(cfg.seed, 16, 16);
        let mut sim = CompactIsing::from_plane(&init, 2, cfg.beta, Randomness::site_keyed(31));
        for _ in 0..4 {
            sim.sweep();
        }
        assert_eq!(pod.final_plane, sim.to_plane());
    }
}
