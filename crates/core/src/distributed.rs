//! SPMD simulation over a modeled TPU Pod slice, survivable at
//! production-chain length.
//!
//! One thread per TensorCore on a 2-D torus. Every core owns a window of
//! the global lattice in compact form and runs the identical program
//! (SIMD, paper §5.1): per half-sweep it exchanges four boundary halos with
//! its mesh neighbors through `collective_permute` and updates its color.
//! The paper's Fig. 5 pattern — shift right edges east-to-west and left
//! edges west-to-east — generalizes here to the four quarter-lattice
//! boundaries Algorithm 2 needs.
//!
//! With site-keyed randomness the distributed run is **bit-identical** to a
//! single-core run on the same global lattice (the integration tests assert
//! this); with split bulk streams it is a fast independent sampler.
//!
//! At the paper's scale (10⁶–8·10⁶ sweeps on up to 2048 cores, §6) core
//! failure is routine, so the pod layer is built to survive it:
//!
//! - Mesh failures surface as [`PodError::Mesh`] from [`run_pod`] instead
//!   of panicking the process.
//! - [`PodCheckpoint`] bundles per-core [`Checkpoint`]s with the torus
//!   geometry, RNG mode and backend; cores write snapshots into a shared
//!   [`CheckpointStore`] every `checkpoint_every` sweeps, so a crashed run
//!   leaves its latest *complete* snapshot behind.
//! - [`run_pod_resilient`] retries from the latest complete snapshot with
//!   a bounded restart budget. Under site-keyed RNG a killed-and-resumed
//!   run reproduces the uninterrupted trajectory bit-exactly.
//! - Because every per-core [`Checkpoint`] records its global `row0`/`col0`
//!   window, a pod snapshot is just a sharded global lattice: it can be
//!   restored onto a **different torus shape** (re-sharding is a re-slice)
//!   under site-keyed RNG, whose uniforms depend only on global
//!   coordinates.

use crate::checkpoint::Checkpoint;
use crate::compact::CompactIsing;
use crate::engine::{Algo, MeshCore, ScalarMeshEngine};
use crate::lattice::{random_plane_window, Color};
use crate::prob::{Randomness, RngState};
use crate::vault::Vault;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::str::FromStr;
use std::sync::Mutex;
use std::time::Duration;
use tpu_ising_bf16::Scalar;
use tpu_ising_device::mesh::{
    run_mesh, Collectives, CoreProgram, FaultPlan, MeshConfig, MeshError, MeshRuntime, RetryPolicy,
    Torus,
};
use tpu_ising_obs as obs;
use tpu_ising_rng::{PhiloxStream, RandomUniform};
use tpu_ising_tensor::{KernelBackend, Plane};

/// How per-core randomness is derived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PodRng {
    /// Site-keyed: uniforms are pure functions of global coordinates, so
    /// the run reproduces the single-core trajectory exactly.
    SiteKeyed,
    /// Each core splits an independent Philox stream from the seed —
    /// production mode, statistically independent across cores.
    BulkSplit,
}

impl PodRng {
    /// The checkpoint/CLI spelling of this mode.
    pub fn name(self) -> &'static str {
        match self {
            PodRng::SiteKeyed => "site-keyed",
            PodRng::BulkSplit => "bulk-split",
        }
    }
}

impl FromStr for PodRng {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "site-keyed" => Ok(PodRng::SiteKeyed),
            "bulk-split" => Ok(PodRng::BulkSplit),
            other => Err(format!("unknown rng mode '{other}' (use 'site-keyed' or 'bulk-split')")),
        }
    }
}

/// Configuration of a Pod run.
#[derive(Clone, Copy, Debug)]
pub struct PodConfig {
    /// Core topology.
    pub torus: Torus,
    /// Per-core lattice height (must be divisible by `2·tile`).
    pub per_core_h: usize,
    /// Per-core lattice width (must be divisible by `2·tile`).
    pub per_core_w: usize,
    /// Quarter-grid tile size (128 on real TPU).
    pub tile: usize,
    /// Inverse temperature β.
    pub beta: f64,
    /// Master seed (initial lattice + update randomness).
    pub seed: u64,
    /// Randomness derivation mode.
    pub rng: PodRng,
    /// Neighbor-sum kernel backend for every core (dense reference matmuls
    /// or the band-structured fused path — bit-identical trajectories).
    pub backend: KernelBackend,
}

impl PodConfig {
    /// Global lattice height.
    pub fn global_h(&self) -> usize {
        self.per_core_h * self.torus.nx
    }

    /// Global lattice width.
    pub fn global_w(&self) -> usize {
        self.per_core_w * self.torus.ny
    }

    /// Total sites.
    pub fn sites(&self) -> usize {
        self.global_h() * self.global_w()
    }
}

/// Result of a Pod run.
#[derive(Debug)]
pub struct PodResult<S> {
    /// Global `Σσ` after every sweep (including history carried over a
    /// resume, so the vector always spans sweep 1 to the final sweep).
    pub magnetization_sums: Vec<f64>,
    /// The final global lattice, stitched from the core windows.
    pub final_plane: Plane<S>,
}

/// A failure at the pod level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PodError {
    /// A collective failed on the mesh (dead peer, timeout, injected kill,
    /// panicked core).
    Mesh(MeshError),
    /// A checkpoint could not be resumed onto the requested configuration.
    Resume(String),
    /// A checkpoint could not be serialized for persistence.
    Serialize(String),
    /// [`run_pod_resilient`] spent its restart budget without finishing.
    RestartsExhausted {
        /// Restarts attempted (equals the configured maximum).
        restarts: usize,
        /// The mesh error that killed the final attempt.
        last: MeshError,
    },
}

impl std::fmt::Display for PodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PodError::Mesh(e) => write!(f, "pod mesh failure: {e}"),
            PodError::Resume(msg) => write!(f, "pod resume failed: {msg}"),
            PodError::Serialize(msg) => write!(f, "pod checkpoint serialization failed: {msg}"),
            PodError::RestartsExhausted { restarts, last } => {
                write!(f, "pod gave up after {restarts} restart(s); last failure: {last}")
            }
        }
    }
}

impl std::error::Error for PodError {}

impl From<MeshError> for PodError {
    fn from(e: MeshError) -> PodError {
        PodError::Mesh(e)
    }
}

/// Current pod-checkpoint format version.
pub const POD_CHECKPOINT_VERSION: u32 = 1;

/// A resumable snapshot of a whole pod run: one [`Checkpoint`] per core
/// plus the geometry and derivation modes needed to validate a resume.
///
/// Because each core checkpoint carries its global window (`row0`/`col0`),
/// the snapshot is simply a sharded global lattice; under site-keyed RNG it
/// can be restored onto any torus shape covering the same global lattice.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PodCheckpoint {
    /// Format tag for forward compatibility.
    pub version: u32,
    /// Torus extent along the first axis when the snapshot was taken.
    pub nx: usize,
    /// Torus extent along the second axis.
    pub ny: usize,
    /// Per-core lattice height at snapshot time.
    pub per_core_h: usize,
    /// Per-core lattice width at snapshot time.
    pub per_core_w: usize,
    /// Quarter-grid tile size.
    pub tile: usize,
    /// Inverse temperature β.
    pub beta: f64,
    /// Master seed.
    pub seed: u64,
    /// RNG derivation mode name ("site-keyed" or "bulk-split").
    pub rng_mode: String,
    /// Storage dtype name ("f32" or "bf16").
    pub dtype: String,
    /// Kernel backend name at snapshot time (informational: backends are
    /// bit-identical, so a resume may use either).
    pub backend: String,
    /// Update-algorithm name ("naive", "compact", "conv"). Empty in
    /// snapshots written before the engine unification, which were always
    /// compact — resume treats empty as "compact".
    #[serde(default)]
    pub algo: String,
    /// Sweeps completed at snapshot time.
    pub sweep_index: u64,
    /// Global `Σσ` after every sweep from 1 to `sweep_index` — carried in
    /// the snapshot so a resumed run returns the full-history vector.
    pub magnetization_sums: Vec<f64>,
    /// Per-core snapshots, indexed by core id on the `nx × ny` torus.
    pub cores: Vec<Checkpoint>,
}

impl PodCheckpoint {
    /// Global lattice height.
    pub fn global_h(&self) -> usize {
        self.nx * self.per_core_h
    }

    /// Global lattice width.
    pub fn global_w(&self) -> usize {
        self.ny * self.per_core_w
    }

    /// Serialize to JSON. Fails only if the serializer itself fails (e.g.
    /// the offline stub) — propagated as [`PodError::Serialize`] instead of
    /// panicking a recovery path.
    pub fn to_json(&self) -> Result<String, PodError> {
        serde_json::to_string(self).map_err(|e| PodError::Serialize(e.to_string()))
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<PodCheckpoint, PodError> {
        serde_json::from_str(s).map_err(|e| PodError::Resume(format!("bad JSON: {e}")))
    }
}

/// Shared landing pad for in-flight per-core snapshots, generic over the
/// per-core checkpoint payload `C` and per-sweep observation `O` (scalar
/// engines: [`Checkpoint`] and `f64`; multispin: packed words and one
/// magnetization per replica).
///
/// Cores record their snapshots (plus local observation history) here as
/// the run progresses; because the store outlives a failed
/// [`run_mesh`] call, the driver can read back the latest sweep for
/// which **every** core checked in — the newest globally consistent state —
/// after a crash. Rows older than the latest complete one are pruned, so
/// memory stays bounded at two rows per run.
pub struct EngineStore<C, O> {
    cores: usize,
    #[allow(clippy::type_complexity)]
    rows: Mutex<BTreeMap<u64, Vec<Option<(C, Vec<O>)>>>>,
    /// Called with each newly completed row (outside the lock) — the hook
    /// the vault uses to persist every globally consistent snapshot.
    #[allow(clippy::type_complexity)]
    sink: Option<Box<dyn Fn(u64, &[(C, Vec<O>)]) + Send + Sync>>,
}

/// The scalar-engine store: one [`Checkpoint`] and a `Σσ` history per core.
pub type CheckpointStore = EngineStore<Checkpoint, f64>;

impl<C: Clone, O: Clone> EngineStore<C, O> {
    /// A store for an `cores`-core run.
    pub fn new(cores: usize) -> EngineStore<C, O> {
        EngineStore { cores, rows: Mutex::new(BTreeMap::new()), sink: None }
    }

    /// A store that additionally hands every completed row to `sink` (e.g.
    /// a durable-vault writer). The sink runs on the core thread that
    /// completed the row, after the store lock is released.
    pub fn with_sink(
        cores: usize,
        sink: impl Fn(u64, &[(C, Vec<O>)]) + Send + Sync + 'static,
    ) -> EngineStore<C, O> {
        EngineStore { cores, rows: Mutex::new(BTreeMap::new()), sink: Some(Box::new(sink)) }
    }

    /// Record one core's snapshot at a sweep boundary. `obs_hist` is the
    /// core's local observation history for the sweeps it has run this
    /// attempt.
    pub(crate) fn record(&self, sweep: u64, core: usize, ckpt: C, obs_hist: Vec<O>) {
        // A panicked peer may have poisoned the lock; snapshots must keep
        // flowing regardless — that is the whole point of the store.
        let mut rows = self.rows.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let row = rows.entry(sweep).or_insert_with(|| vec![None; self.cores]);
        row[core] = Some((ckpt, obs_hist));
        let completed: Option<Vec<(C, Vec<O>)>> =
            if row.iter().all(Option::is_some) { row.iter().cloned().collect() } else { None };
        if completed.is_some() {
            rows.retain(|&s, _| s >= sweep);
            if obs::is_metrics() {
                obs::metrics().counter("pod_checkpoints_total").inc(1);
            }
        }
        drop(rows);
        if let (Some(sink), Some(row)) = (&self.sink, completed) {
            sink(sweep, &row);
        }
    }

    /// The newest sweep at which every core checked in, with the per-core
    /// snapshots in core-id order.
    #[allow(clippy::type_complexity)]
    pub(crate) fn latest_complete(&self) -> Option<(u64, Vec<(C, Vec<O>)>)> {
        let rows = self.rows.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // `collect::<Option<Vec<_>>>` is None for any incomplete row, so
        // this cannot panic even if a row mutates between checks.
        rows.iter()
            .rev()
            .find_map(|(&s, row)| row.iter().cloned().collect::<Option<Vec<_>>>().map(|r| (s, r)))
    }
}

/// Options for a single (non-retrying) pod run.
#[derive(Default)]
pub struct PodRunOpts<'a> {
    /// Take a pod snapshot every this many sweeps (and always at the end).
    pub checkpoint_every: Option<usize>,
    /// Continue from this snapshot instead of the seed-determined start.
    pub resume: Option<&'a PodCheckpoint>,
    /// Mesh runtime knobs: recv timeout, fault plan, attempt number.
    pub mesh: MeshConfig,
    /// Where cores land their snapshots (required if `checkpoint_every`
    /// is set).
    pub store: Option<&'a CheckpointStore>,
}

/// Host-side data precomputed from a [`PodCheckpoint`] for the new torus.
struct ResumeData {
    start_sweep: u64,
    history: Vec<f64>,
    /// Per-core windows of the stitched global lattice, new-torus layout.
    planes: Vec<Plane<f32>>,
    /// Per-core RNG states, new-torus layout.
    rngs: Vec<RngState>,
}

/// Run `sweeps` full sweeps from the seed-determined hot start on the
/// compact engine (the paper's main configuration).
pub fn run_pod<S: Scalar + RandomUniform>(
    cfg: &PodConfig,
    sweeps: usize,
) -> Result<PodResult<S>, PodError> {
    run_pod_with_opts(cfg, sweeps, &PodRunOpts::default())
}

/// [`run_pod`] with checkpointing, resume, and mesh-fault knobs (compact
/// engine).
pub fn run_pod_with_opts<S: Scalar + RandomUniform>(
    cfg: &PodConfig,
    sweeps: usize,
    opts: &PodRunOpts<'_>,
) -> Result<PodResult<S>, PodError> {
    run_pod_engine_with_opts::<S, CompactIsing<S>>(cfg, sweeps, opts)
}

/// Run `sweeps` full sweeps of any scalar mesh engine `E` from the
/// seed-determined hot start.
pub fn run_pod_engine<S: Scalar + RandomUniform, E: ScalarMeshEngine<S>>(
    cfg: &PodConfig,
    sweeps: usize,
) -> Result<PodResult<S>, PodError> {
    run_pod_engine_with_opts::<S, E>(cfg, sweeps, &PodRunOpts::default())
}

/// [`run_pod_engine`] with checkpointing, resume, and mesh-fault knobs —
/// the one SPMD driver every scalar algorithm shares.
///
/// `sweeps` is the *total* chain length: resuming a snapshot taken at
/// sweep `k` runs `sweeps − k` more sweeps and returns the full-history
/// magnetization vector.
pub fn run_pod_engine_with_opts<S: Scalar + RandomUniform, E: ScalarMeshEngine<S>>(
    cfg: &PodConfig,
    sweeps: usize,
    opts: &PodRunOpts<'_>,
) -> Result<PodResult<S>, PodError> {
    let torus = cfg.torus;
    let resume = match opts.resume {
        Some(ck) => Some(prepare_resume::<S>(ck, cfg, E::ALGO)?),
        None => None,
    };
    let start_sweep = resume.as_ref().map_or(0, |r| r.start_sweep);
    if start_sweep > sweeps as u64 {
        return Err(PodError::Resume(format!(
            "checkpoint is at sweep {start_sweep}, past the requested total of {sweeps}"
        )));
    }
    let prog = ScalarPodProgram::<'_, S, E> {
        cfg,
        sweeps,
        resume: resume.as_ref(),
        checkpoint_every: opts.checkpoint_every,
        store: opts.store,
        _engine: PhantomData,
    };
    let per_core: Vec<(Vec<f64>, Plane<S>)> = run_mesh(torus, opts.mesh.clone(), &prog)?;

    // Stitch the global lattice and reduce magnetizations on the host.
    let mut mags = resume.map_or_else(Vec::new, |r| r.history);
    mags.extend(reduce_mags(per_core.iter().map(|p| &p.0)));
    let final_plane = Plane::from_fn(cfg.global_h(), cfg.global_w(), |r, c| {
        let core = torus.id(r / cfg.per_core_h, c / cfg.per_core_w);
        per_core[core].1.get(r % cfg.per_core_h, c % cfg.per_core_w)
    });
    Ok(PodResult { magnetization_sums: mags, final_plane })
}

/// Element-wise sum of the per-core magnetization histories.
fn reduce_mags<'a, I: IntoIterator<Item = &'a Vec<f64>>>(per_core: I) -> Vec<f64> {
    let mut out: Vec<f64> = Vec::new();
    for mags in per_core {
        if out.is_empty() {
            out = vec![0.0; mags.len()];
        }
        for (acc, &m) in out.iter_mut().zip(mags.iter()) {
            *acc += m;
        }
    }
    out
}

/// Validate a snapshot against the (possibly reshaped) target config and
/// pre-slice the per-core windows and RNG states for the new torus.
fn prepare_resume<S: Scalar>(
    ck: &PodCheckpoint,
    cfg: &PodConfig,
    algo: Algo,
) -> Result<ResumeData, PodError> {
    let err = |msg: String| Err(PodError::Resume(msg));
    if ck.version != POD_CHECKPOINT_VERSION {
        return err(format!("unsupported pod checkpoint version {}", ck.version));
    }
    // Pre-unification snapshots carry no algo tag; they were always compact.
    let ck_algo: Algo = if ck.algo.is_empty() {
        Algo::Compact
    } else {
        ck.algo.parse().map_err(PodError::Resume)?
    };
    if ck_algo != algo {
        return err(format!(
            "checkpoint was written by the {ck_algo} engine but resume requested {algo}"
        ));
    }
    if ck.dtype != S::DTYPE {
        return err(format!("checkpoint is {} but resume requested {}", ck.dtype, S::DTYPE));
    }
    if ck.cores.len() != ck.nx * ck.ny {
        return err(format!(
            "checkpoint claims a {}×{} torus but carries {} cores",
            ck.nx,
            ck.ny,
            ck.cores.len()
        ));
    }
    let (gh, gw) = (ck.global_h(), ck.global_w());
    if gh != cfg.global_h() || gw != cfg.global_w() {
        return err(format!(
            "checkpoint covers a {gh}×{gw} global lattice but the target config is {}×{}",
            cfg.global_h(),
            cfg.global_w()
        ));
    }
    if ck.tile != cfg.tile {
        return err(format!("tile mismatch: checkpoint {} vs config {}", ck.tile, cfg.tile));
    }
    if ck.beta != cfg.beta {
        return err(format!("beta mismatch: checkpoint {} vs config {}", ck.beta, cfg.beta));
    }
    if ck.seed != cfg.seed {
        return err(format!("seed mismatch: checkpoint {} vs config {}", ck.seed, cfg.seed));
    }
    let mode: PodRng = ck.rng_mode.parse().map_err(PodError::Resume)?;
    if mode != cfg.rng {
        return err(format!(
            "rng mode mismatch: checkpoint {} vs config {}",
            ck.rng_mode,
            cfg.rng.name()
        ));
    }
    if ck.magnetization_sums.len() as u64 != ck.sweep_index {
        return err(format!(
            "history length {} does not match sweep index {}",
            ck.magnetization_sums.len(),
            ck.sweep_index
        ));
    }
    let ck_torus = Torus::new(ck.nx, ck.ny);
    for (id, c) in ck.cores.iter().enumerate() {
        let (x, y) = ck_torus.coords(id);
        if c.height != ck.per_core_h
            || c.width != ck.per_core_w
            || c.row0 != x * ck.per_core_h
            || c.col0 != y * ck.per_core_w
        {
            return err(format!("core {id} window does not match the checkpoint geometry"));
        }
        if c.sweep_index != ck.sweep_index {
            return err(format!(
                "core {id} is at sweep {} but the pod snapshot claims {}",
                c.sweep_index, ck.sweep_index
            ));
        }
        if c.spins.len() != c.height * c.width || c.spins.iter().any(|&s| s != 1.0 && s != -1.0) {
            return err(format!("core {id} carries a corrupt spin payload"));
        }
    }
    // Stitch the sharded global lattice, then re-slice it for the target
    // torus — this is what makes reshape a pure host-side operation.
    let global = Plane::from_fn(gh, gw, |r, c| {
        let core = ck_torus.id(r / ck.per_core_h, c / ck.per_core_w);
        ck.cores[core].spins[(r % ck.per_core_h) * ck.per_core_w + (c % ck.per_core_w)]
    });
    let rngs: Vec<RngState> = match cfg.rng {
        // Site-keyed uniforms depend only on (seed, sweep, global coords):
        // the stream is stateless, so any torus shape continues exactly.
        PodRng::SiteKeyed => vec![Randomness::site_keyed(cfg.seed).state(); cfg.torus.cores()],
        // Bulk streams are per-core state; they only continue exactly on
        // the torus that produced them.
        PodRng::BulkSplit => {
            if ck.nx != cfg.torus.nx
                || ck.ny != cfg.torus.ny
                || ck.per_core_h != cfg.per_core_h
                || ck.per_core_w != cfg.per_core_w
            {
                return err(format!(
                    "bulk-split snapshots carry per-core stream state and only resume on the \
                     torus that wrote them ({}×{}); requested {}×{} — use site-keyed rng to \
                     reshape",
                    ck.nx, ck.ny, cfg.torus.nx, cfg.torus.ny
                ));
            }
            ck.cores.iter().map(|c| c.rng).collect()
        }
    };
    let planes = (0..cfg.torus.cores())
        .map(|id| {
            let (x, y) = cfg.torus.coords(id);
            let (r0, c0) = (x * cfg.per_core_h, y * cfg.per_core_w);
            Plane::from_fn(cfg.per_core_h, cfg.per_core_w, |r, c| global.get(r0 + r, c0 + c))
        })
        .collect();
    Ok(ResumeData {
        start_sweep: ck.sweep_index,
        history: ck.magnetization_sums.clone(),
        planes,
        rngs,
    })
}

/// Arm the per-core observability surfaces: one timeline track per modeled
/// TensorCore (the trace-viewer rows of paper Fig. 6), the flight-recorder
/// ring binding, and the postmortem guard that dumps every ring if the
/// core dies by panic.
pub(crate) fn arm_core_observability(id: usize, x: usize, y: usize) -> obs::PostmortemGuard {
    if obs::is_tracing() {
        obs::register_track(format!("core-{id} ({x},{y})"));
    }
    obs::recorder::register_core(id as u32);
    obs::PostmortemGuard::arm("core-panic")
}

/// The shared SPMD sweep loop every mesh engine runs: per sweep, exchange
/// halos and update each color, advance, observe, and land snapshots in
/// the store on the checkpoint cadence (always including the final sweep).
/// Returns the observation history for the sweeps run this attempt.
pub(crate) async fn drive_mesh_core<E: MeshCore, H: Collectives<Vec<E::Elem>>>(
    sim: &mut E,
    handle: &mut H,
    core_id: usize,
    total: u64,
    tile_hint: usize,
    checkpoint_every: Option<usize>,
    store: Option<&EngineStore<E::Ckpt, E::Obs>>,
) -> Result<Vec<E::Obs>, MeshError> {
    let start = sim.sweep_index();
    let mut history: Vec<E::Obs> = Vec::with_capacity((total - start) as usize);
    let scrub_every = handle.mesh_config().scrub_every;
    let attempt = handle.mesh_config().attempt;
    // Scrubber protocol: fold a digest at the cadence (and at the start),
    // cross-check it at the top of the *next* sweep — before the lattice
    // legitimately changes again — so any bit that flipped in between is
    // caught before it can poison an update or land in a checkpoint.
    let mut expected: Option<u32> = scrub_every.map(|_| sim.state_digest());
    for s in (start + 1)..=total {
        obs::recorder::set_sweep(s);
        // SDC injection point: flip one unit of lattice state *between*
        // sweeps, exactly where a real silent corruption would land.
        if let Some((word, bit)) = handle.mesh_config().faults.lattice_flip_for(core_id, s, attempt)
        {
            if obs::is_metrics() {
                obs::metrics().counter("mesh_faults_injected_total").inc(1);
            }
            sim.flip_lattice_bit(word as usize, bit);
        }
        if let Some(expect) = expected.take() {
            let found = sim.state_digest();
            if found != expect {
                obs::record(obs::EventKind::ScrubMismatch {
                    expect: expect as u64,
                    found: found as u64,
                });
                if obs::is_metrics() {
                    obs::metrics().counter("scrub_mismatches_total").inc(1);
                }
                return Err(MeshError::Corrupt {
                    core: core_id,
                    sweep: s - 1,
                    what: "lattice digest",
                });
            }
        }
        obs::record(obs::EventKind::SweepBoundary);
        for color in [Color::Black, Color::White] {
            // Wrapper spans (kind-less): the kinded leaves inside them
            // (collective_permute, neighbor_sums, …) carry the breakdown.
            // On the cooperative runtime the guard is held across the
            // suspension point; the per-task track context keeps its
            // begin/end on the right timeline row.
            let halos = {
                let _g = obs::span!("halo_exchange");
                exchange_engine_halos(sim, handle, color).await?
            };
            let _g = obs::span!("update_color");
            sim.update_color_with(color, &halos);
        }
        sim.advance_sweep();
        history.push(sim.observe_window());
        let checkpointing = matches!(checkpoint_every, Some(every) if s % every as u64 == 0)
            || (checkpoint_every.is_some() && s == total);
        if let Some(every) = scrub_every {
            // Fold at the cadence and at every checkpoint sweep, so a
            // snapshot is always written from digest-verified state.
            if s % every == 0 || s == total || checkpointing {
                expected = Some(sim.state_digest());
            }
        }
        if checkpointing {
            if let Some(store) = store {
                store.record(s, core_id, sim.snapshot(tile_hint), history.clone());
                obs::record(obs::EventKind::CheckpointRecorded);
            }
        }
    }
    if start == total {
        // Zero sweeps to run (e.g. resuming a finished chain): still land a
        // snapshot so the driver always has a final checkpoint.
        if let Some(store) = store {
            if checkpoint_every.is_some() {
                store.record(total, core_id, sim.snapshot(tile_hint), history.clone());
            }
        }
    }
    Ok(history)
}

/// The per-core SPMD program for any scalar mesh engine, generic over the
/// substrate: the same body runs on a dedicated thread (thread runtime) or
/// as a multiplexed task (cooperative runtime).
async fn core_main<S: Scalar + RandomUniform, E: ScalarMeshEngine<S>, H: Collectives<Vec<S>>>(
    cfg: &PodConfig,
    mut handle: H,
    sweeps: usize,
    resume: Option<&ResumeData>,
    checkpoint_every: Option<usize>,
    store: Option<&CheckpointStore>,
) -> Result<(Vec<f64>, Plane<S>), MeshError> {
    let id = handle.id();
    let (x, y) = handle.coords();
    let _postmortem = arm_core_observability(id, x, y);
    let row0 = x * cfg.per_core_h;
    let col0 = y * cfg.per_core_w;
    let mut sim = match resume {
        None => {
            // Every core constructs its window of the same global lattice.
            let window =
                random_plane_window::<S>(cfg.seed, cfg.per_core_h, cfg.per_core_w, row0, col0);
            let rng = match cfg.rng {
                PodRng::SiteKeyed => Randomness::site_keyed(cfg.seed),
                PodRng::BulkSplit => {
                    Randomness::Bulk(PhiloxStream::from_seed(cfg.seed).split(id as u64 + 1))
                }
            };
            E::from_plane_at_backend(&window, cfg.tile, cfg.beta, rng, row0, col0, cfg.backend)
        }
        Some(r) => {
            // Spins are ±1 — exact at every precision — so the f32 window
            // sliced on the host converts losslessly.
            let src = &r.planes[id];
            let window = Plane::from_fn(cfg.per_core_h, cfg.per_core_w, |rr, cc| {
                S::from_f32(src.get(rr, cc))
            });
            let rng = Randomness::from_state(r.rngs[id]);
            let mut sim =
                E::from_plane_at_backend(&window, cfg.tile, cfg.beta, rng, row0, col0, cfg.backend);
            sim.set_sweep_index(r.start_sweep);
            sim
        }
    };
    let mags = drive_mesh_core(
        &mut sim,
        &mut handle,
        id,
        sweeps as u64,
        cfg.tile,
        checkpoint_every,
        store,
    )
    .await?;
    Ok((mags, sim.to_plane()))
}

/// [`CoreProgram`] adapter binding [`core_main`] to a pod run's borrowed
/// host-side state, so [`run_mesh`] can execute it on either substrate.
struct ScalarPodProgram<'a, S: Scalar, E> {
    cfg: &'a PodConfig,
    sweeps: usize,
    resume: Option<&'a ResumeData>,
    checkpoint_every: Option<usize>,
    store: Option<&'a CheckpointStore>,
    _engine: PhantomData<fn() -> (S, E)>,
}

impl<S: Scalar + RandomUniform, E: ScalarMeshEngine<S>> CoreProgram<Vec<S>>
    for ScalarPodProgram<'_, S, E>
{
    type Out = (Vec<f64>, Plane<S>);

    fn run<H: Collectives<Vec<S>>>(
        &self,
        handle: H,
    ) -> impl std::future::Future<Output = Result<Self::Out, MeshError>> + Send {
        core_main::<S, E, H>(
            self.cfg,
            handle,
            self.sweeps,
            self.resume,
            self.checkpoint_every,
            self.store,
        )
    }
}

/// The four collective permutes of one half-sweep, for any mesh engine:
/// shift each of the engine's halo specs and hand the received vectors
/// back for assembly (fixed receiver-slot order, see
/// [`MeshCore::halo_exchange_spec`]). Halo traffic lands in the shared
/// `halo_bytes_total` metric.
/// When the scrubber is armed, each halo payload carries a 4-element CRC-32
/// trailer (one byte per element — exact even in bf16) that the receiver
/// strips and verifies, so a bit flipped on the wire surfaces as a typed
/// [`MeshError::Corrupt`] instead of a silently poisoned boundary.
pub(crate) async fn exchange_engine_halos<E: MeshCore, H: Collectives<Vec<E::Elem>>>(
    sim: &E,
    handle: &mut H,
    color: Color,
) -> Result<E::Halos, MeshError> {
    let specs = sim.halo_exchange_spec(color);
    if obs::is_metrics() {
        let elems: usize = specs.iter().map(|s| s.0.len()).sum();
        obs::metrics()
            .counter("halo_bytes_total")
            .inc((elems * std::mem::size_of::<E::Elem>()) as u64);
    }
    let armed = handle.mesh_config().scrub_every.is_some();
    let attempt = handle.mesh_config().attempt;
    let core = handle.id();
    // `sweep_index` counts *completed* sweeps; this exchange belongs to
    // the one in progress.
    let sweep = sim.sweep_index() + 1;
    let mut received: [Vec<E::Elem>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for (slot, (mut payload, dir)) in specs.into_iter().enumerate() {
        if armed {
            let crc = !E::fold_elems(0xFFFF_FFFF, &payload);
            payload.extend_from_slice(&E::encode_crc(crc));
        }
        let seq = handle.next_collective();
        // Wire-corruption injection: flip a payload bit *after* the
        // checksum trailer is attached, modeling a link error.
        if let Some(bit) = handle.mesh_config().faults.halo_corrupt_for(core, seq, attempt) {
            if let Some(first) = payload.first_mut() {
                if obs::is_metrics() {
                    obs::metrics().counter("mesh_faults_injected_total").inc(1);
                }
                E::flip_elem_bit(first, bit);
            }
        }
        let mut got = handle.shift(payload, dir).await?;
        if armed {
            if got.len() < 4 {
                return Err(MeshError::Protocol {
                    core,
                    msg: format!("halo payload too short for checksum trailer: {}", got.len()),
                });
            }
            let trailer = got.split_off(got.len() - 4);
            let expect = E::decode_crc(&trailer);
            let found = !E::fold_elems(0xFFFF_FFFF, &got);
            if found != expect {
                obs::record(obs::EventKind::HaloChecksumFail {
                    collective: seq,
                    expect: expect as u64,
                    found: found as u64,
                });
                if obs::is_metrics() {
                    obs::metrics().counter("halo_checksum_failures_total").inc(1);
                }
                return Err(MeshError::Corrupt { core, sweep, what: "halo checksum" });
            }
        }
        received[slot] = got;
    }
    Ok(sim.assemble_halos(color, received))
}

/// Assemble a [`PodCheckpoint`] from a complete store row, appending the
/// row's magnetization history to the base snapshot's.
fn assemble_checkpoint(
    cfg: &PodConfig,
    algo: Algo,
    base: Option<&PodCheckpoint>,
    sweep: u64,
    rows: Vec<(Checkpoint, Vec<f64>)>,
) -> PodCheckpoint {
    let mut mags: Vec<f64> = base.map(|b| b.magnetization_sums.clone()).unwrap_or_default();
    mags.extend(reduce_mags(rows.iter().map(|r| &r.1)));
    let dtype = rows[0].0.dtype.clone();
    PodCheckpoint {
        version: POD_CHECKPOINT_VERSION,
        nx: cfg.torus.nx,
        ny: cfg.torus.ny,
        per_core_h: cfg.per_core_h,
        per_core_w: cfg.per_core_w,
        tile: cfg.tile,
        beta: cfg.beta,
        seed: cfg.seed,
        rng_mode: cfg.rng.name().to_string(),
        dtype,
        backend: cfg.backend.name().to_string(),
        algo: algo.name().to_string(),
        sweep_index: sweep,
        magnetization_sums: mags,
        cores: rows.into_iter().map(|r| r.0).collect(),
    }
}

/// The recommended production scrubber cadence, in sweeps. Chosen so the
/// full-lattice CRC-32 digest amortizes to well under the 5% throughput
/// budget (the perfbase binary measures and gates this); integrity drills
/// scrub every sweep instead to catch injections at first opportunity.
pub const DEFAULT_SCRUB_CADENCE: u64 = 16;

/// Knobs for [`run_pod_resilient`].
#[derive(Clone, Debug)]
pub struct ResilienceOpts {
    /// Pod-snapshot cadence in sweeps (a final snapshot is always taken).
    pub checkpoint_every: usize,
    /// Restart budget: how many times a crashed attempt may be retried
    /// from the latest complete snapshot.
    pub max_restarts: usize,
    /// Mesh recv timeout bounding how long a dead peer stalls the run.
    pub recv_timeout: Duration,
    /// Deterministic fault schedule (testing; empty in production).
    pub faults: FaultPlan,
    /// Tier-1 recovery: bounded in-place retries of timed-out collectives
    /// before a fault escalates to the restart tier.
    pub retry: RetryPolicy,
    /// Which substrate carries the logical cores: one thread per core,
    /// the work-stealing cooperative scheduler, or auto-selection by
    /// topology size vs host parallelism.
    pub runtime: MeshRuntime,
    /// Integrity scrubber cadence in sweeps (`None`: disarmed). When
    /// armed, every core folds a CRC-32 over its lattice at this cadence
    /// and cross-checks it a sweep later, and halo payloads carry wire
    /// checksums; any mismatch surfaces as [`MeshError::Corrupt`] and
    /// feeds the tiered recovery ladder. Production runs should start
    /// from [`DEFAULT_SCRUB_CADENCE`]; drills scrub every sweep.
    pub scrub_every: Option<u64>,
    /// Liveness watchdog deadline (`None`: disarmed). A core making no
    /// progress within this window is declared [`MeshError::Stalled`] —
    /// wall-clock on the thread mesh, virtual-clock on the cooperative
    /// runtime.
    pub watchdog_timeout: Option<Duration>,
    /// Degraded continuation (`None`: disarmed). When the restart budget
    /// is exhausted, remap onto the largest strictly smaller torus that
    /// still covers the global lattice with at least this many cores and
    /// continue from the latest snapshot instead of failing.
    pub degraded_min_cores: Option<usize>,
}

impl Default for ResilienceOpts {
    fn default() -> ResilienceOpts {
        ResilienceOpts {
            checkpoint_every: 64,
            max_restarts: 3,
            recv_timeout: Duration::from_secs(30),
            faults: FaultPlan::new(),
            retry: RetryPolicy::default(),
            runtime: MeshRuntime::Threads,
            scrub_every: None,
            watchdog_timeout: None,
            degraded_min_cores: None,
        }
    }
}

/// Outcome of a resilient run.
#[derive(Debug)]
pub struct ResilientPodRun<S> {
    /// The completed run, bit-identical (under site-keyed RNG) to an
    /// uninterrupted one.
    pub result: PodResult<S>,
    /// Restarts actually taken.
    pub restarts: usize,
    /// Every mesh failure observed, in order.
    pub faults_seen: Vec<MeshError>,
    /// The final pod snapshot (at `sweeps`), ready to persist.
    pub final_checkpoint: PodCheckpoint,
    /// The survivor torus the run degraded onto after exhausting its
    /// restart budget, if it did (`None`: full topology throughout).
    pub degraded_to: Option<Torus>,
}

/// Drive a pod run to completion through failures: on a mesh error, resume
/// from the latest complete snapshot in the store (or the `resume`
/// argument, or from scratch) and retry, at most `max_restarts` times.
///
/// Each retry bumps the mesh `attempt` counter, so [`FaultPlan`] entries
/// fire only on the attempt they were scheduled for — a transient fault is
/// not replayed against the recovered run. Faults and recoveries are
/// counted in the `obs` metrics registry (`pod_faults_total`,
/// `pod_restarts_total`).
pub fn run_pod_resilient<S: Scalar + RandomUniform>(
    cfg: &PodConfig,
    sweeps: usize,
    opts: &ResilienceOpts,
    resume: Option<PodCheckpoint>,
) -> Result<ResilientPodRun<S>, PodError> {
    run_pod_engine_resilient::<S, CompactIsing<S>>(cfg, sweeps, opts, resume)
}

/// [`run_pod_resilient`] with every globally consistent snapshot also
/// persisted through a durable [`Vault`] (atomic writes, CRC envelopes,
/// keep-N generations). The vault is the write side only: pass the resumed
/// snapshot in via `resume` after loading it with [`Vault::load_latest`].
pub fn run_pod_vaulted<S: Scalar + RandomUniform>(
    cfg: &PodConfig,
    sweeps: usize,
    opts: &ResilienceOpts,
    resume: Option<PodCheckpoint>,
    vault: &Vault,
) -> Result<ResilientPodRun<S>, PodError> {
    run_pod_engine_vaulted::<S, CompactIsing<S>>(cfg, sweeps, opts, resume, vault)
}

/// [`run_pod_resilient`] for any scalar mesh engine.
pub fn run_pod_engine_resilient<S, E>(
    cfg: &PodConfig,
    sweeps: usize,
    opts: &ResilienceOpts,
    resume: Option<PodCheckpoint>,
) -> Result<ResilientPodRun<S>, PodError>
where
    S: Scalar + RandomUniform + 'static,
    E: ScalarMeshEngine<S> + 'static,
{
    run_pod_engine_resilient_impl::<S, E>(cfg, sweeps, opts, resume, None)
}

/// [`run_pod_vaulted`] for any scalar mesh engine.
pub fn run_pod_engine_vaulted<S, E>(
    cfg: &PodConfig,
    sweeps: usize,
    opts: &ResilienceOpts,
    resume: Option<PodCheckpoint>,
    vault: &Vault,
) -> Result<ResilientPodRun<S>, PodError>
where
    S: Scalar + RandomUniform + 'static,
    E: ScalarMeshEngine<S> + 'static,
{
    run_pod_engine_resilient_impl::<S, E>(cfg, sweeps, opts, resume, Some(vault))
}

/// The envelope `kind` tag of scalar pod checkpoints in a vault.
pub const POD_VAULT_KIND: &str = "pod";

/// One engine family's bindings for the shared restart loop: how many
/// cores run, how a complete store row becomes a pod-level snapshot, how
/// that snapshot serializes for the vault, and how one mesh attempt runs.
/// The scalar engines and multispin each implement this once;
/// [`run_resilient_family`] is the single retry/restart driver both use.
pub(crate) trait RestartFamily: Clone + Send + Sync + 'static {
    /// Pod-level (whole-run) checkpoint.
    type Ckpt: Clone + Send + Sync + 'static;
    /// Per-core checkpoint payload landing in the store.
    type CoreCkpt: Clone + Send + 'static;
    /// Per-sweep observation in the store rows.
    type Obs: Clone + Send + 'static;
    /// The completed run's result.
    type Output;

    /// The vault envelope `kind` tag for this family's snapshots.
    const VAULT_KIND: &'static str;

    /// Cores on the torus.
    fn cores(&self) -> usize;

    /// The torus this family currently runs on.
    fn torus(&self) -> Torus;

    /// This family remapped onto the largest valid torus with at most
    /// `max_cores` cores over the same global lattice — the degraded-
    /// continuation step. `None` when no strictly smaller topology can
    /// continue bit-exactly (bulk-split RNG carries per-core stream
    /// state; some lattices admit no smaller valid sharding).
    fn degrade(&self, max_cores: usize) -> Option<Self>;

    /// Assemble a pod-level checkpoint from a complete store row,
    /// appending the row's history to `base`'s.
    fn assemble(
        &self,
        base: Option<&Self::Ckpt>,
        sweep: u64,
        rows: Vec<(Self::CoreCkpt, Vec<Self::Obs>)>,
    ) -> Self::Ckpt;

    /// Serialize a pod-level checkpoint for the vault.
    fn ckpt_to_json(&self, ck: &Self::Ckpt) -> Result<String, PodError>;

    /// Run one mesh attempt to completion (or to its first mesh fault).
    fn attempt(
        &self,
        resume: Option<&Self::Ckpt>,
        checkpoint_every: usize,
        mesh: MeshConfig,
        store: &EngineStore<Self::CoreCkpt, Self::Obs>,
    ) -> Result<Self::Output, PodError>;
}

/// What [`run_resilient_family`] hands back: the family's run output plus
/// the restart bookkeeping and the final pod snapshot.
pub(crate) struct FamilyRun<F: RestartFamily> {
    pub output: F::Output,
    pub restarts: usize,
    pub faults_seen: Vec<MeshError>,
    pub final_checkpoint: F::Ckpt,
    pub degraded_to: Option<Torus>,
}

/// The one restart loop every deployment shape shares: run an attempt; on
/// a mesh fault adopt the newest globally consistent snapshot and retry
/// (bounded by the restart budget); on success assemble the final
/// checkpoint. With a vault, every completed store row is persisted from
/// the core thread that completed it.
pub(crate) fn run_resilient_family<F: RestartFamily>(
    family: &F,
    opts: &ResilienceOpts,
    resume: Option<F::Ckpt>,
    vault: Option<&Vault>,
) -> Result<FamilyRun<F>, PodError> {
    assert!(opts.checkpoint_every > 0, "checkpoint interval must be positive");
    let mut family = family.clone();
    let mut latest = resume;
    let mut faults_seen: Vec<MeshError> = Vec::new();
    let mut restarts = 0usize;
    // `attempt` gates the fault plan and never resets: a degraded
    // continuation zeroes the restart *budget* but must not replay the
    // faults already absorbed by earlier attempts.
    let mut attempt = 0usize;
    let mut degraded_to: Option<Torus> = None;
    loop {
        let _attempt_span = obs::span!("pod_attempt");
        let store = match vault {
            None => EngineStore::new(family.cores()),
            Some(v) => {
                // The sink runs on a core thread mid-run, so failures are
                // counted, not propagated: a full disk must not kill the
                // simulation that the vault exists to protect.
                let (v, fam, base) = (v.clone(), family.clone(), latest.clone());
                EngineStore::with_sink(family.cores(), move |sweep, rows| {
                    let ckpt = fam.assemble(base.as_ref(), sweep, rows.to_vec());
                    let saved =
                        fam.ckpt_to_json(&ckpt).map_err(|e| e.to_string()).and_then(|json| {
                            v.save(F::VAULT_KIND, sweep, &json).map_err(|e| e.to_string())
                        });
                    if saved.is_err() && obs::is_metrics() {
                        obs::metrics().counter("vault_write_errors_total").inc(1);
                    }
                })
            }
        };
        let mesh = MeshConfig {
            recv_timeout: opts.recv_timeout,
            faults: opts.faults.clone(),
            attempt,
            retry: opts.retry,
            runtime: opts.runtime,
            scrub_every: opts.scrub_every,
            watchdog_timeout: opts.watchdog_timeout,
        };
        match family.attempt(latest.as_ref(), opts.checkpoint_every, mesh, &store) {
            Ok(output) => {
                let final_checkpoint = store
                    .latest_complete()
                    .map(|(s, rows)| family.assemble(latest.as_ref(), s, rows))
                    .or(latest)
                    .ok_or_else(|| {
                        PodError::Resume("completed run produced no checkpoint".into())
                    })?;
                return Ok(FamilyRun {
                    output,
                    restarts,
                    faults_seen,
                    final_checkpoint,
                    degraded_to,
                });
            }
            Err(PodError::Mesh(e)) => {
                if obs::is_metrics() {
                    obs::metrics().counter("pod_faults_total").inc(1);
                }
                obs::record(obs::EventKind::MeshFault { root: e.core() as u32 });
                obs::recorder::dump_postmortem("mesh-fault");
                faults_seen.push(e.clone());
                if restarts >= opts.max_restarts {
                    // Adopt whatever complete snapshot the failed attempt
                    // left behind before deciding how to end.
                    if let Some((s, rows)) = store.latest_complete() {
                        latest = Some(family.assemble(latest.as_ref(), s, rows));
                    }
                    // Degraded continuation: give up on the full topology
                    // and remap onto the largest survivor torus the knob
                    // still allows, continuing from the latest snapshot.
                    let survivor = opts.degraded_min_cores.and_then(|min| {
                        family
                            .degrade(family.cores().saturating_sub(1))
                            .filter(|f| f.cores() >= min)
                    });
                    if let Some(smaller) = survivor {
                        let (from, to) = (family.cores(), smaller.cores());
                        obs::record(obs::EventKind::DegradedContinue {
                            from_cores: from as u64,
                            to_cores: to as u64,
                        });
                        if obs::is_metrics() {
                            obs::metrics().counter("pod_degraded_continues_total").inc(1);
                        }
                        obs::recorder::dump_postmortem("degraded-continue");
                        obs::recorder::bump_generation();
                        degraded_to = Some(smaller.torus());
                        family = smaller;
                        restarts = 0;
                        attempt += 1;
                        continue;
                    }
                    if obs::is_metrics() {
                        obs::metrics().counter("recovery_tier_exhausted_total").inc(1);
                    }
                    return Err(PodError::RestartsExhausted { restarts, last: e });
                }
                restarts += 1;
                attempt += 1;
                if obs::is_metrics() {
                    obs::metrics().counter("pod_restarts_total").inc(1);
                    obs::metrics().counter("recovery_tier_restart_total").inc(1);
                }
                obs::recorder::bump_generation();
                obs::record(obs::EventKind::PodRestart { restarts: restarts as u64 });
                // Adopt the newest globally consistent snapshot the crashed
                // attempt left behind; otherwise retry from the previous
                // resume point (or from scratch).
                if let Some((s, rows)) = store.latest_complete() {
                    latest = Some(family.assemble(latest.as_ref(), s, rows));
                }
            }
            // Resume-validation errors are configuration bugs, not
            // transient faults: retrying cannot fix them.
            Err(other) => return Err(other),
        }
    }
}

/// The scalar-engine restart family: one instance per `(S, E)` pair.
struct ScalarPodFamily<S, E> {
    cfg: PodConfig,
    sweeps: usize,
    _marker: PhantomData<fn() -> (S, E)>,
}

impl<S, E> Clone for ScalarPodFamily<S, E> {
    fn clone(&self) -> Self {
        ScalarPodFamily { cfg: self.cfg, sweeps: self.sweeps, _marker: PhantomData }
    }
}

impl<S, E> RestartFamily for ScalarPodFamily<S, E>
where
    S: Scalar + RandomUniform + 'static,
    E: ScalarMeshEngine<S> + 'static,
{
    type Ckpt = PodCheckpoint;
    type CoreCkpt = Checkpoint;
    type Obs = f64;
    type Output = PodResult<S>;

    const VAULT_KIND: &'static str = POD_VAULT_KIND;

    fn cores(&self) -> usize {
        self.cfg.torus.cores()
    }

    fn torus(&self) -> Torus {
        self.cfg.torus
    }

    fn degrade(&self, max_cores: usize) -> Option<Self> {
        // Only the stateless site-keyed stream continues exactly on a
        // different sharding; bulk-split streams are per-core state.
        if self.cfg.rng != PodRng::SiteKeyed {
            return None;
        }
        let (gh, gw) = (self.cfg.global_h(), self.cfg.global_w());
        // Per-core windows must stay divisible by 2·tile (compact
        // quadrants of whole tiles; even offsets keep parity global).
        let unit = 2 * self.cfg.tile;
        let mut best: Option<Torus> = None;
        for nx in 1..=max_cores {
            if gh % nx != 0 || (gh / nx) % unit != 0 {
                continue;
            }
            for ny in 1..=max_cores / nx {
                if gw % ny != 0 || (gw / ny) % unit != 0 {
                    continue;
                }
                let cand = Torus::new(nx, ny);
                // Only strictly smaller pods count as "degraded".
                if cand.cores() >= self.cfg.torus.cores() {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => {
                        cand.cores() > b.cores() || (cand.cores() == b.cores() && cand.nx < b.nx)
                    }
                };
                if better {
                    best = Some(cand);
                }
            }
        }
        let t = best?;
        let cfg = PodConfig { torus: t, per_core_h: gh / t.nx, per_core_w: gw / t.ny, ..self.cfg };
        Some(ScalarPodFamily { cfg, sweeps: self.sweeps, _marker: PhantomData })
    }

    fn assemble(
        &self,
        base: Option<&PodCheckpoint>,
        sweep: u64,
        rows: Vec<(Checkpoint, Vec<f64>)>,
    ) -> PodCheckpoint {
        assemble_checkpoint(&self.cfg, E::ALGO, base, sweep, rows)
    }

    fn ckpt_to_json(&self, ck: &PodCheckpoint) -> Result<String, PodError> {
        ck.to_json()
    }

    fn attempt(
        &self,
        resume: Option<&PodCheckpoint>,
        checkpoint_every: usize,
        mesh: MeshConfig,
        store: &CheckpointStore,
    ) -> Result<PodResult<S>, PodError> {
        let run_opts = PodRunOpts {
            checkpoint_every: Some(checkpoint_every),
            resume,
            mesh,
            store: Some(store),
        };
        run_pod_engine_with_opts::<S, E>(&self.cfg, self.sweeps, &run_opts)
    }
}

fn run_pod_engine_resilient_impl<S, E>(
    cfg: &PodConfig,
    sweeps: usize,
    opts: &ResilienceOpts,
    resume: Option<PodCheckpoint>,
    vault: Option<&Vault>,
) -> Result<ResilientPodRun<S>, PodError>
where
    S: Scalar + RandomUniform + 'static,
    E: ScalarMeshEngine<S> + 'static,
{
    let family = ScalarPodFamily::<S, E> { cfg: *cfg, sweeps, _marker: PhantomData };
    let run = run_resilient_family(&family, opts, resume, vault)?;
    Ok(ResilientPodRun {
        result: run.output,
        restarts: run.restarts,
        faults_seen: run.faults_seen,
        final_checkpoint: run.final_checkpoint,
        degraded_to: run.degraded_to,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::random_plane;
    use crate::sampler::Sweeper;

    /// The offline dev container stubs `serde_json` out; JSON assertions
    /// only run where real serde is available (CI, workstations).
    fn serde_is_real() -> bool {
        serde_json::to_string(&7u32).map(|s| s == "7").unwrap_or(false)
    }

    fn single_core_trajectory(cfg: &PodConfig, sweeps: usize) -> Plane<f32> {
        let init = random_plane::<f32>(cfg.seed, cfg.global_h(), cfg.global_w());
        let mut sim =
            CompactIsing::from_plane(&init, cfg.tile, cfg.beta, Randomness::site_keyed(cfg.seed))
                .with_backend(cfg.backend);
        for _ in 0..sweeps {
            sim.sweep();
        }
        sim.to_plane()
    }

    fn site_keyed_cfg(nx: usize, ny: usize, h: usize, w: usize, seed: u64) -> PodConfig {
        PodConfig {
            torus: Torus::new(nx, ny),
            per_core_h: h,
            per_core_w: w,
            tile: 2,
            beta: 0.5,
            seed,
            rng: PodRng::SiteKeyed,
            backend: KernelBackend::Band,
        }
    }

    fn fast_resilience(every: usize, faults: FaultPlan) -> ResilienceOpts {
        ResilienceOpts {
            checkpoint_every: every,
            max_restarts: 3,
            recv_timeout: Duration::from_millis(300),
            faults,
            retry: RetryPolicy::none(),
            runtime: MeshRuntime::Threads,
            ..ResilienceOpts::default()
        }
    }

    #[test]
    fn distributed_matches_single_core_bitwise() {
        let cfg = PodConfig {
            torus: Torus::new(2, 2),
            per_core_h: 8,
            per_core_w: 8,
            tile: 2,
            beta: 1.0 / crate::T_CRITICAL,
            seed: 4242,
            rng: PodRng::SiteKeyed,
            backend: KernelBackend::Band,
        };
        let sweeps = 6;
        let pod = run_pod::<f32>(&cfg, sweeps).unwrap();
        let single = single_core_trajectory(&cfg, sweeps);
        assert_eq!(pod.final_plane, single);
    }

    #[test]
    fn topology_is_transparent() {
        // The same global lattice split 1×4 vs 4×1 vs 2×2 gives the same
        // trajectory under site-keyed randomness.
        let a = run_pod::<f32>(&site_keyed_cfg(1, 4, 16, 4, 99), 4).unwrap();
        let b = run_pod::<f32>(&site_keyed_cfg(4, 1, 4, 16, 99), 4).unwrap();
        let c = run_pod::<f32>(&site_keyed_cfg(2, 2, 8, 8, 99), 4).unwrap();
        assert_eq!(a.final_plane, b.final_plane);
        assert_eq!(a.final_plane, c.final_plane);
    }

    #[test]
    fn single_core_pod_equals_local_run() {
        let cfg = PodConfig {
            torus: Torus::new(1, 1),
            per_core_h: 12,
            per_core_w: 12,
            tile: 2,
            beta: 0.44,
            seed: 7,
            rng: PodRng::SiteKeyed,
            backend: KernelBackend::Dense,
        };
        let pod = run_pod::<f32>(&cfg, 5).unwrap();
        let single = single_core_trajectory(&cfg, 5);
        assert_eq!(pod.final_plane, single);
    }

    #[test]
    fn magnetization_sums_match_final_plane() {
        let cfg = PodConfig {
            torus: Torus::new(2, 1),
            per_core_h: 8,
            per_core_w: 16,
            tile: 4,
            beta: 0.6,
            seed: 13,
            rng: PodRng::SiteKeyed,
            backend: KernelBackend::Band,
        };
        let pod = run_pod::<f32>(&cfg, 3).unwrap();
        assert_eq!(pod.magnetization_sums.len(), 3);
        assert_eq!(*pod.magnetization_sums.last().unwrap(), pod.final_plane.sum_f64());
    }

    #[test]
    fn bulk_split_mode_runs_and_stays_spin_valued() {
        let cfg = PodConfig {
            torus: Torus::new(2, 2),
            per_core_h: 8,
            per_core_w: 8,
            tile: 2,
            beta: 0.7,
            seed: 21,
            rng: PodRng::BulkSplit,
            backend: KernelBackend::Band,
        };
        let pod = run_pod::<f32>(&cfg, 5).unwrap();
        assert!(pod.final_plane.data().iter().all(|&s| s == 1.0 || s == -1.0));
        // low temperature from hot start: |m| should have grown
        let m_last = pod.magnetization_sums.last().unwrap() / cfg.sites() as f64;
        assert!(m_last.abs() <= 1.0);
    }

    #[test]
    fn pod_backends_are_bit_identical() {
        let mk = |backend| PodConfig {
            torus: Torus::new(2, 2),
            per_core_h: 8,
            per_core_w: 8,
            tile: 2,
            beta: 0.5,
            seed: 1717,
            rng: PodRng::BulkSplit,
            backend,
        };
        let dense = run_pod::<f32>(&mk(KernelBackend::Dense), 5).unwrap();
        let band = run_pod::<f32>(&mk(KernelBackend::Band), 5).unwrap();
        assert_eq!(dense.final_plane, band.final_plane);
        assert_eq!(dense.magnetization_sums, band.magnetization_sums);
    }

    #[test]
    fn bf16_distributed_matches_bf16_single_core() {
        use tpu_ising_bf16::Bf16;
        let cfg = PodConfig {
            torus: Torus::new(2, 2),
            per_core_h: 8,
            per_core_w: 8,
            tile: 2,
            beta: 0.55,
            seed: 31,
            rng: PodRng::SiteKeyed,
            backend: KernelBackend::Band,
        };
        let pod = run_pod::<Bf16>(&cfg, 4).unwrap();
        let init = random_plane::<Bf16>(cfg.seed, 16, 16);
        let mut sim = CompactIsing::from_plane(&init, 2, cfg.beta, Randomness::site_keyed(31));
        for _ in 0..4 {
            sim.sweep();
        }
        assert_eq!(pod.final_plane, sim.to_plane());
    }

    // ------------------------------------------------------------------
    // Fault tolerance
    // ------------------------------------------------------------------

    #[test]
    fn killed_core_resumes_bit_exact() {
        // The headline invariant: kill a core mid-run; the resilient driver
        // resumes from the latest complete pod snapshot; the final plane is
        // bit-identical to the uninterrupted single-core trajectory.
        let cfg = site_keyed_cfg(2, 2, 8, 8, 4242);
        let sweeps = 6;
        // 8 collectives per sweep (4 shifts × 2 colors): seq 30 is inside
        // sweep 4, after the sweep-2 snapshot and before the sweep-4 one.
        let faults = FaultPlan::new().kill(3, 30);
        let run = run_pod_resilient::<f32>(&cfg, sweeps, &fast_resilience(2, faults), None)
            .expect("resilient run must survive one kill");
        assert_eq!(run.restarts, 1);
        assert_eq!(run.faults_seen, vec![MeshError::InjectedKill { core: 3, seq: 30 }]);
        assert_eq!(run.result.final_plane, single_core_trajectory(&cfg, sweeps));
        // the history spans the whole chain despite the crash
        assert_eq!(run.result.magnetization_sums.len(), sweeps);
        assert_eq!(
            *run.result.magnetization_sums.last().unwrap(),
            run.result.final_plane.sum_f64()
        );
        // and the final snapshot resumes to the same state
        assert_eq!(run.final_checkpoint.sweep_index, sweeps as u64);
    }

    #[test]
    fn engine_generic_resilient_resume_is_bit_exact() {
        // The generic restart loop restores naive and conv engines from
        // their snapshots just as faithfully as compact: a killed run
        // ends bit-identical to an unfaulted one of the same engine.
        fn drill<E: crate::engine::ScalarMeshEngine<f32> + 'static>(cfg: &PodConfig) {
            let clean = run_pod_engine_resilient::<f32, E>(
                cfg,
                6,
                &fast_resilience(2, FaultPlan::new()),
                None,
            )
            .expect("clean run");
            let faulted = run_pod_engine_resilient::<f32, E>(
                cfg,
                6,
                &fast_resilience(2, FaultPlan::new().kill(3, 30)),
                None,
            )
            .expect("faulted run");
            assert_eq!(clean.restarts, 0);
            assert_eq!(faulted.restarts, 1);
            assert_eq!(clean.result.final_plane, faulted.result.final_plane);
            assert_eq!(clean.result.magnetization_sums, faulted.result.magnetization_sums);
        }
        let cfg = site_keyed_cfg(2, 2, 8, 8, 4242);
        drill::<crate::naive::NaiveIsing<f32>>(&cfg);
        drill::<crate::conv::ConvIsing<f32>>(&cfg);
    }

    #[test]
    fn resilient_run_matches_unfaulted_run() {
        // With and without a mid-run kill, the resilient driver produces
        // the same snapshot-able end state.
        let cfg = site_keyed_cfg(1, 4, 16, 4, 77);
        let clean = run_pod_resilient::<f32>(&cfg, 5, &fast_resilience(2, FaultPlan::new()), None)
            .expect("clean run");
        let faulted = run_pod_resilient::<f32>(
            &cfg,
            5,
            &fast_resilience(2, FaultPlan::new().kill(1, 20)),
            None,
        )
        .expect("faulted run");
        assert_eq!(clean.restarts, 0);
        assert_eq!(faulted.restarts, 1);
        assert_eq!(clean.result.final_plane, faulted.result.final_plane);
        assert_eq!(clean.result.magnetization_sums, faulted.result.magnetization_sums);
    }

    #[test]
    fn checkpoint_reshapes_onto_different_torus() {
        // Snapshot a 2×2 pod, restore onto a 1×4 torus, and the trajectory
        // continues exactly (site-keyed rng is a pure function of global
        // coordinates, so the sharding is invisible to it).
        let cfg_2x2 = site_keyed_cfg(2, 2, 8, 8, 4242);
        let cfg_1x4 = site_keyed_cfg(1, 4, 16, 4, 4242);
        let half =
            run_pod_resilient::<f32>(&cfg_2x2, 4, &fast_resilience(2, FaultPlan::new()), None)
                .expect("first half");
        let ckpt = half.final_checkpoint;
        assert_eq!((ckpt.nx, ckpt.ny), (2, 2));
        // through JSON, like a real resume from disk
        let ckpt = if serde_is_real() {
            PodCheckpoint::from_json(&ckpt.to_json().unwrap()).unwrap()
        } else {
            ckpt
        };
        let rest = run_pod_resilient::<f32>(
            &cfg_1x4,
            8,
            &fast_resilience(2, FaultPlan::new()),
            Some(ckpt),
        )
        .expect("second half on reshaped torus");
        assert_eq!(rest.result.final_plane, single_core_trajectory(&cfg_2x2, 8));
        assert_eq!(rest.result.magnetization_sums.len(), 8);
    }

    #[test]
    fn bulk_split_reshape_is_rejected() {
        let mk = |nx, ny, h, w| PodConfig {
            torus: Torus::new(nx, ny),
            per_core_h: h,
            per_core_w: w,
            tile: 2,
            beta: 0.5,
            seed: 5,
            rng: PodRng::BulkSplit,
            backend: KernelBackend::Band,
        };
        let half = run_pod_resilient::<f32>(
            &mk(2, 2, 8, 8),
            4,
            &fast_resilience(2, FaultPlan::new()),
            None,
        )
        .expect("bulk run");
        let err = run_pod_resilient::<f32>(
            &mk(1, 4, 16, 4),
            8,
            &fast_resilience(2, FaultPlan::new()),
            Some(half.final_checkpoint),
        )
        .expect_err("bulk-split reshape must be rejected");
        match err {
            PodError::Resume(msg) => assert!(msg.contains("bulk-split")),
            other => panic!("expected PodError::Resume, got {other:?}"),
        }
    }

    #[test]
    fn degrade_picks_the_largest_survivor_torus() {
        let fam = ScalarPodFamily::<f32, CompactIsing<f32>> {
            cfg: site_keyed_cfg(2, 2, 8, 8, 1),
            sweeps: 4,
            _marker: PhantomData,
        };
        // Global 16×16, tile 2: with at most 3 cores the best survivor is
        // 2 cores, and the nx < ny tie-break picks 1×2 over 2×1.
        let d = fam.degrade(3).expect("a survivor torus exists");
        assert_eq!(d.torus(), Torus::new(1, 2));
        assert_eq!((d.cfg.per_core_h, d.cfg.per_core_w), (16, 8));
        // The survivor must be strictly smaller than the current torus.
        assert!(fam.degrade(4).is_some_and(|d| d.torus().cores() < 4));
        assert!(fam.degrade(0).is_none(), "no zero-core pods");
        // Only the site-keyed stream survives resharding.
        let mut bulk = fam.clone();
        bulk.cfg.rng = PodRng::BulkSplit;
        assert!(bulk.degrade(3).is_none(), "bulk-split streams cannot degrade");
        // A single-core pod has nowhere smaller to go.
        let solo = ScalarPodFamily::<f32, CompactIsing<f32>> {
            cfg: site_keyed_cfg(1, 1, 16, 16, 1),
            sweeps: 4,
            _marker: PhantomData,
        };
        assert!(solo.degrade(1).is_none());
    }

    #[test]
    fn degraded_continuation_is_bit_exact_on_the_survivor_torus() {
        // Core 3 dies on both budgeted attempts; instead of giving up, the
        // driver remaps the 2×2 pod onto the 1×2 survivor torus and
        // finishes from the latest snapshot — ending bit-identical to the
        // uninterrupted single-core trajectory AND to a clean from-scratch
        // run at the survivor topology.
        let cfg = site_keyed_cfg(2, 2, 8, 8, 4242);
        let sweeps = 6;
        let faults = FaultPlan::new().kill_on_attempt(3, 30, 0).kill_on_attempt(3, 30, 1);
        let mut opts = fast_resilience(2, faults);
        opts.max_restarts = 1;
        opts.degraded_min_cores = Some(2);
        let run = run_pod_resilient::<f32>(&cfg, sweeps, &opts, None)
            .expect("degraded continuation must survive budget exhaustion");
        assert_eq!(run.degraded_to, Some(Torus::new(1, 2)), "must remap onto the survivor");
        assert_eq!(run.faults_seen.len(), 2);
        assert_eq!(run.result.final_plane, single_core_trajectory(&cfg, sweeps));
        assert_eq!(run.result.magnetization_sums.len(), sweeps);
        let survivor_cfg = site_keyed_cfg(1, 2, 16, 8, 4242);
        let clean = run_pod_resilient::<f32>(
            &survivor_cfg,
            sweeps,
            &fast_resilience(2, FaultPlan::new()),
            None,
        )
        .expect("clean survivor-topology run");
        assert_eq!(run.result.final_plane, clean.result.final_plane);
        assert_eq!(run.result.magnetization_sums, clean.result.magnetization_sums);
        assert_eq!(run.final_checkpoint.sweep_index, sweeps as u64);
    }

    #[test]
    fn degraded_continuation_respects_the_min_cores_floor() {
        // Same exhaustion, but the floor forbids anything below 4 cores:
        // the driver must fall through to RestartsExhausted.
        let cfg = site_keyed_cfg(2, 2, 8, 8, 4242);
        let faults = FaultPlan::new().kill_on_attempt(3, 30, 0).kill_on_attempt(3, 30, 1);
        let mut opts = fast_resilience(2, faults);
        opts.max_restarts = 1;
        opts.degraded_min_cores = Some(4);
        let err = run_pod_resilient::<f32>(&cfg, 6, &opts, None)
            .expect_err("no survivor torus satisfies the floor");
        assert!(matches!(err, PodError::RestartsExhausted { .. }), "got {err:?}");
    }

    #[test]
    fn armed_watchdog_turns_a_wedge_into_a_typed_stall() {
        let cfg = site_keyed_cfg(2, 2, 8, 8, 7);
        let mut opts = fast_resilience(2, FaultPlan::new().wedge(3, 10));
        opts.max_restarts = 0;
        opts.watchdog_timeout = Some(Duration::from_millis(50));
        let err = run_pod_resilient::<f32>(&cfg, 6, &opts, None).expect_err("wedged");
        match err {
            PodError::RestartsExhausted {
                last: MeshError::Stalled { core, stalled_ms, .. },
                ..
            } => {
                assert_eq!(core, 3, "the watchdog must name the wedged core");
                assert!(stalled_ms >= 50);
            }
            other => panic!("expected a typed stall, got {other:?}"),
        }
    }

    #[test]
    fn disarmed_wedge_surfaces_as_a_peer_timeout_and_restart_recovers() {
        // Without the watchdog the wedged core just hangs; its neighbors'
        // receive timeouts fire instead, and the ordinary restart tier
        // still recovers the run bit-exactly.
        let cfg = site_keyed_cfg(2, 2, 8, 8, 7);
        let mut opts = fast_resilience(2, FaultPlan::new().wedge(3, 10));
        opts.recv_timeout = Duration::from_millis(150);
        let run = run_pod_resilient::<f32>(&cfg, 6, &opts, None).expect("restart recovers");
        assert!(run.restarts >= 1);
        assert!(
            run.faults_seen
                .iter()
                .any(|e| matches!(e, MeshError::RecvTimeout { .. } | MeshError::PeerGone { .. })),
            "a disarmed wedge must surface as an untyped peer failure: {:?}",
            run.faults_seen
        );
        assert_eq!(run.result.final_plane, single_core_trajectory(&cfg, 6));
    }

    #[test]
    fn armed_scrubber_is_invisible_on_a_clean_run() {
        // Arming the lattice digests + halo checksums on a fault-free run
        // must not change a single bit of the trajectory — for f32 and for
        // the Bf16 wire format the CRC trailer rides on.
        let cfg = site_keyed_cfg(2, 2, 8, 8, 4242);
        let mut armed = fast_resilience(2, FaultPlan::new());
        armed.scrub_every = Some(1);
        armed.watchdog_timeout = Some(Duration::from_millis(500));
        let run = run_pod_resilient::<f32>(&cfg, 6, &armed, None).expect("armed clean run");
        assert_eq!(run.restarts, 0, "no false positives: {:?}", run.faults_seen);
        assert_eq!(run.result.final_plane, single_core_trajectory(&cfg, 6));

        let bf = run_pod_resilient::<tpu_ising_bf16::Bf16>(&cfg, 6, &armed, None)
            .expect("armed bf16 clean run");
        let bf_plain = run_pod_resilient::<tpu_ising_bf16::Bf16>(
            &cfg,
            6,
            &fast_resilience(2, FaultPlan::new()),
            None,
        )
        .expect("disarmed bf16 clean run");
        assert_eq!(bf.restarts, 0);
        assert_eq!(bf.result.final_plane, bf_plain.result.final_plane);
        assert_eq!(bf.result.magnetization_sums, bf_plain.result.magnetization_sums);
    }

    #[test]
    fn bulk_split_same_torus_resumes_exactly() {
        let cfg = PodConfig {
            torus: Torus::new(2, 2),
            per_core_h: 8,
            per_core_w: 8,
            tile: 2,
            beta: 0.6,
            seed: 321,
            rng: PodRng::BulkSplit,
            backend: KernelBackend::Band,
        };
        let uninterrupted = run_pod::<f32>(&cfg, 7).unwrap();
        let half = run_pod_resilient::<f32>(&cfg, 3, &fast_resilience(3, FaultPlan::new()), None)
            .expect("first half");
        let rest = run_pod_resilient::<f32>(
            &cfg,
            7,
            &fast_resilience(3, FaultPlan::new()),
            Some(half.final_checkpoint),
        )
        .expect("second half");
        assert_eq!(rest.result.final_plane, uninterrupted.final_plane);
        assert_eq!(rest.result.magnetization_sums, uninterrupted.magnetization_sums);
    }

    #[test]
    fn restart_budget_is_bounded() {
        // Kill core 0 at the very first collective on every attempt: the
        // driver must give up after max_restarts and say why.
        let cfg = site_keyed_cfg(1, 2, 8, 8, 11);
        let faults = (0..=1).fold(FaultPlan::new(), |p, a| p.kill_on_attempt(0, 0, a));
        let opts = ResilienceOpts { max_restarts: 1, ..fast_resilience(2, faults) };
        let err = run_pod_resilient::<f32>(&cfg, 4, &opts, None).expect_err("must exhaust budget");
        match err {
            PodError::RestartsExhausted { restarts: 1, last } => {
                assert_eq!(last, MeshError::InjectedKill { core: 0, seq: 0 });
            }
            other => panic!("expected RestartsExhausted, got {other:?}"),
        }
    }

    #[test]
    fn pod_checkpoint_json_roundtrip() {
        if !serde_is_real() {
            return;
        }
        let cfg = site_keyed_cfg(2, 1, 4, 8, 9);
        let run = run_pod_resilient::<f32>(&cfg, 3, &fast_resilience(2, FaultPlan::new()), None)
            .expect("run");
        let ck = run.final_checkpoint;
        let back = PodCheckpoint::from_json(&ck.to_json().unwrap()).unwrap();
        assert_eq!(back.sweep_index, ck.sweep_index);
        assert_eq!(back.magnetization_sums, ck.magnetization_sums);
        assert_eq!(back.cores.len(), 2);
        assert_eq!(back.rng_mode, "site-keyed");
        assert_eq!(back.dtype, "f32");
    }

    #[test]
    fn mismatched_resume_configs_are_rejected() {
        let cfg = site_keyed_cfg(1, 2, 8, 8, 50);
        let run = run_pod_resilient::<f32>(&cfg, 2, &fast_resilience(2, FaultPlan::new()), None)
            .expect("run");
        let ck = run.final_checkpoint;
        let reject = |mutate: &dyn Fn(&mut PodConfig)| {
            let mut bad = cfg;
            mutate(&mut bad);
            let err = run_pod_with_opts::<f32>(
                &bad,
                4,
                &PodRunOpts { resume: Some(&ck), ..PodRunOpts::default() },
            )
            .expect_err("mismatch must be rejected");
            assert!(matches!(err, PodError::Resume(_)), "got {err:?}");
        };
        reject(&|c| c.seed = 51);
        reject(&|c| c.beta = 0.9);
        reject(&|c| c.tile = 4);
        reject(&|c| c.per_core_w = 4); // shrinks the global lattice
        reject(&|c| c.rng = PodRng::BulkSplit);
        // dtype mismatch
        let err = run_pod_with_opts::<tpu_ising_bf16::Bf16>(
            &cfg,
            4,
            &PodRunOpts { resume: Some(&ck), ..PodRunOpts::default() },
        )
        .expect_err("dtype mismatch must be rejected");
        assert!(matches!(err, PodError::Resume(_)));
        // resuming past the end is an error, not an underflow
        let err = run_pod_with_opts::<f32>(
            &cfg,
            1,
            &PodRunOpts { resume: Some(&ck), ..PodRunOpts::default() },
        )
        .expect_err("past-the-end resume must be rejected");
        assert!(matches!(err, PodError::Resume(_)));
    }
}
