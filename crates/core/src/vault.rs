//! Durable, multi-generation checkpoint vault.
//!
//! PR 3's single `std::fs::write` JSON blob has a failure mode the paper's
//! week-long 2048-core runs cannot afford: a crash *during* the write tears
//! the only resume point, and nothing on the load path notices until the
//! run is already gone. The vault closes that hole with three mechanisms,
//! none of which trusts the filesystem or the bytes on it:
//!
//! - **Atomic generations.** Every snapshot is written to a temp file in
//!   the same directory, flushed, and `rename`d into place — on POSIX the
//!   generation either fully exists or does not exist at all. Generations
//!   are named `<stem>-ckpt-<sweep>.json` and the newest `keep` of them are
//!   retained (keep-N pruning), so one torn write can never cost more than
//!   one checkpoint interval.
//! - **Checksummed, schema-versioned envelopes.** Each file starts with a
//!   single header line carrying a magic tag, format version, payload kind,
//!   sweep index, payload length and CRC-32; the payload follows. A
//!   truncation, bit-flip or torn header at *any* byte offset fails at
//!   least one of the checks (length, CRC, header shape) and is detected
//!   on load, not silently resumed.
//! - **Quarantine + fallback.** [`Vault::load_latest`] scans generations
//!   newest→oldest; a corrupt one is renamed to `<name>.corrupt` (kept for
//!   forensics, never rescanned) and the scan falls back to the next older
//!   generation. Only when no valid generation survives does the load fail,
//!   and the error names every quarantined file.
//!
//! The vault is payload-agnostic (it stores and verifies opaque UTF-8
//! payloads), so the scalar [`crate::distributed::PodCheckpoint`] and the
//! packed [`crate::multispin::MultiSpinPodCheckpoint`] go through the same
//! machinery, and its integrity logic is testable without any serializer.
//!
//! Metrics (when `obs` metrics are enabled): `vault_writes_total`,
//! `vault_corrupt_quarantined`, `vault_generations_pruned_total`,
//! `vault_write_errors_total`.

use std::io::Write;
use std::path::{Path, PathBuf};
use tpu_ising_obs as obs;

/// First token of every vault envelope header.
pub const VAULT_MAGIC: &str = "TPUISING-VAULT";

/// Current envelope schema version.
pub const VAULT_VERSION: u32 = 1;

/// A failure in the vault layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VaultError {
    /// An I/O operation failed.
    Io {
        /// The file involved.
        path: String,
        /// The underlying error, stringified.
        msg: String,
    },
    /// A requested file exists but its envelope failed verification.
    Corrupt {
        /// The file involved.
        path: String,
        /// What check failed.
        msg: String,
    },
    /// No generation survived verification.
    NoValidGeneration {
        /// Files quarantined during this scan (newest first).
        quarantined: Vec<String>,
        /// How many generation files were scanned in total.
        scanned: usize,
    },
    /// The vault was misconfigured (e.g. `keep == 0`).
    Config(String),
}

impl std::fmt::Display for VaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VaultError::Io { path, msg } => write!(f, "vault I/O error on {path}: {msg}"),
            VaultError::Corrupt { path, msg } => write!(f, "corrupt checkpoint {path}: {msg}"),
            VaultError::NoValidGeneration { quarantined, scanned } => {
                if quarantined.is_empty() {
                    write!(f, "no checkpoint generation found ({scanned} scanned)")
                } else {
                    write!(
                        f,
                        "no valid checkpoint generation ({} scanned); quarantined: {}",
                        scanned,
                        quarantined.join(", ")
                    )
                }
            }
            VaultError::Config(msg) => write!(f, "vault misconfigured: {msg}"),
        }
    }
}

impl std::error::Error for VaultError {}

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time so
/// the vault needs no external checksum dependency.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(0xFFFF_FFFF, bytes)
}

/// Fold bytes into an in-flight (pre-inversion) CRC-32 state. Start from
/// `0xFFFF_FFFF` and invert the final state to finish; the integrity
/// scrubber uses this to fold lattice words incrementally.
pub(crate) fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// The envelope checksum covers the semantic header fields *and* the
/// payload, so a bit-flip anywhere in the file — including in the sweep
/// index or length digits of the header — fails verification.
fn envelope_crc(kind: &str, sweep: u64, payload: &str) -> u32 {
    let head = format!("kind={kind} sweep={sweep} len={}\n", payload.len());
    !crc32_update(crc32_update(0xFFFF_FFFF, head.as_bytes()), payload.as_bytes())
}

/// Parsed envelope header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnvelopeMeta {
    /// Schema version of the envelope.
    pub version: u32,
    /// Payload kind tag (e.g. `"pod"` or `"multispin-pod"`).
    pub kind: String,
    /// Sweep index the snapshot was taken at.
    pub sweep: u64,
}

/// Wrap a payload in a checksummed, versioned envelope.
pub fn encode_envelope(kind: &str, sweep: u64, payload: &str) -> String {
    debug_assert!(!kind.contains(char::is_whitespace), "kind must be a single token");
    format!(
        "{VAULT_MAGIC} v{VAULT_VERSION} kind={kind} sweep={sweep} len={} crc32={:08x}\n{payload}",
        payload.len(),
        envelope_crc(kind, sweep, payload),
    )
}

/// `true` if the bytes begin with the vault magic (i.e. claim to be an
/// envelope rather than a legacy raw-JSON checkpoint).
pub fn looks_like_envelope(bytes: &[u8]) -> bool {
    bytes.starts_with(VAULT_MAGIC.as_bytes())
}

/// Verify and unwrap an envelope. Every corruption class maps to a message
/// naming the failed check: torn/garbled headers fail the header parse,
/// truncations fail the length check, bit-flips fail the CRC (or, in the
/// header, the parse), version skew fails the version check.
pub fn decode_envelope(bytes: &[u8]) -> Result<(EnvelopeMeta, String), String> {
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| "torn header: no newline terminator".to_string())?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| "torn header: not valid UTF-8".to_string())?;
    let mut tokens = header.split_whitespace();
    if tokens.next() != Some(VAULT_MAGIC) {
        return Err(format!("bad magic (expected {VAULT_MAGIC})"));
    }
    let version = tokens
        .next()
        .and_then(|t| t.strip_prefix('v'))
        .and_then(|t| t.parse::<u32>().ok())
        .ok_or_else(|| "torn header: missing version token".to_string())?;
    if version != VAULT_VERSION {
        return Err(format!("unsupported envelope version {version}"));
    }
    let mut kind = None;
    let mut sweep = None;
    let mut len = None;
    let mut crc = None;
    for tok in tokens {
        match tok.split_once('=') {
            Some(("kind", v)) => kind = Some(v.to_string()),
            Some(("sweep", v)) => sweep = v.parse::<u64>().ok(),
            Some(("len", v)) => len = v.parse::<usize>().ok(),
            Some(("crc32", v)) => crc = u32::from_str_radix(v, 16).ok(),
            _ => return Err(format!("torn header: unrecognized token '{tok}'")),
        }
    }
    let (kind, sweep, len, crc) = match (kind, sweep, len, crc) {
        (Some(k), Some(s), Some(l), Some(c)) => (k, s, l, c),
        _ => return Err("torn header: missing kind/sweep/len/crc32 field".to_string()),
    };
    let payload = &bytes[newline + 1..];
    if payload.len() != len {
        return Err(format!("truncated payload: {} bytes, header claims {len}", payload.len()));
    }
    let payload =
        std::str::from_utf8(payload).map_err(|_| "payload is not valid UTF-8".to_string())?;
    let actual = envelope_crc(&kind, sweep, payload);
    if actual != crc {
        return Err(format!("checksum mismatch: computed {actual:08x}, header {crc:08x}"));
    }
    Ok((EnvelopeMeta { version, kind, sweep }, payload.to_string()))
}

/// One on-disk generation of a vault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Generation {
    /// Sweep index encoded in the filename.
    pub sweep: u64,
    /// Full path of the generation file.
    pub path: PathBuf,
}

/// A successfully loaded (and verified) checkpoint payload.
#[derive(Clone, Debug)]
pub struct LoadedCheckpoint {
    /// Sweep index from the envelope header.
    pub sweep: u64,
    /// The file the payload came from.
    pub path: PathBuf,
    /// The verified payload.
    pub payload: String,
    /// Files quarantined (renamed to `*.corrupt`) while scanning for this
    /// payload, newest first. Empty on the happy path.
    pub quarantined: Vec<PathBuf>,
}

/// A durable multi-generation checkpoint store rooted at one directory.
#[derive(Clone, Debug)]
pub struct Vault {
    dir: PathBuf,
    stem: String,
    keep: usize,
    quarantine_keep: usize,
}

/// Default retention budget for quarantined (`*.corrupt`) generations.
/// Quarantine files are evidence, not state: a handful is enough for a
/// postmortem, and an unbounded pile-up would eventually eat the disk on
/// a long-lived pod that keeps hitting flaky storage.
pub const DEFAULT_QUARANTINE_KEEP: usize = 8;

impl Vault {
    /// Open (creating the directory if needed) a vault that retains the
    /// newest `keep` generations of `<stem>-ckpt-<sweep>.json` files under
    /// `dir`. `keep` must be at least 1.
    pub fn new(dir: impl Into<PathBuf>, stem: &str, keep: usize) -> Result<Vault, VaultError> {
        if keep == 0 {
            return Err(VaultError::Config("must keep at least 1 generation".into()));
        }
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| VaultError::Io { path: dir.display().to_string(), msg: e.to_string() })?;
        Ok(Vault { dir, stem: stem.to_string(), keep, quarantine_keep: DEFAULT_QUARANTINE_KEEP })
    }

    /// Override the quarantine retention budget (how many `*.corrupt`
    /// files survive pruning). Zero means quarantined files are deleted
    /// at the next prune.
    pub fn with_quarantine_keep(mut self, quarantine_keep: usize) -> Vault {
        self.quarantine_keep = quarantine_keep;
        self
    }

    /// The vault directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Filename stem shared by this vault's generations.
    pub fn stem(&self) -> &str {
        &self.stem
    }

    /// Path of the generation for `sweep`.
    pub fn generation_path(&self, sweep: u64) -> PathBuf {
        self.dir.join(format!("{}-ckpt-{sweep}.json", self.stem))
    }

    /// All generations currently on disk, newest (highest sweep) first.
    /// Quarantined (`*.corrupt`) files are never listed.
    pub fn generations(&self) -> Vec<Generation> {
        let prefix = format!("{}-ckpt-", self.stem);
        let mut out: Vec<Generation> = Vec::new();
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return out;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(middle) = name.strip_prefix(&prefix).and_then(|r| r.strip_suffix(".json"))
            else {
                continue;
            };
            if let Ok(sweep) = middle.parse::<u64>() {
                out.push(Generation { sweep, path: entry.path() });
            }
        }
        out.sort_by_key(|g| std::cmp::Reverse(g.sweep));
        out
    }

    /// Atomically persist one generation: envelope → temp file in the same
    /// directory → flush → rename. Returns the generation path. Older
    /// generations beyond the retention budget are pruned afterwards (the
    /// prune can never remove the generation just written).
    pub fn save(&self, kind: &str, sweep: u64, payload: &str) -> Result<PathBuf, VaultError> {
        let path = self.generation_path(sweep);
        let tmp = self.dir.join(format!(".{}-ckpt-{sweep}.json.tmp", self.stem));
        let io_err = |p: &Path, e: std::io::Error| VaultError::Io {
            path: p.display().to_string(),
            msg: e.to_string(),
        };
        let envelope = encode_envelope(kind, sweep, payload);
        {
            let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            f.write_all(envelope.as_bytes()).map_err(|e| io_err(&tmp, e))?;
            f.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        // The rename is only durable once the directory entry itself is on
        // disk: fsync the parent so a crash right after `save` returns can
        // never lose the generation we just promised the caller.
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        if obs::is_metrics() {
            obs::metrics().counter("vault_writes_total").inc(1);
        }
        obs::record(obs::EventKind::VaultWrite { sweep, bytes: envelope.len() as u64 });
        self.prune();
        Ok(path)
    }

    /// Remove generations beyond the newest `keep`. Best-effort: an
    /// unremovable file is skipped, never an error.
    fn prune(&self) {
        let gens = self.generations();
        let mut removed = 0u64;
        for g in gens.iter().skip(self.keep) {
            if std::fs::remove_file(&g.path).is_ok() {
                removed += 1;
                if obs::is_metrics() {
                    obs::metrics().counter("vault_generations_pruned_total").inc(1);
                }
            }
        }
        // Quarantined generations age out on the same schedule, just with
        // their own (larger) budget: keep the newest few as postmortem
        // evidence, drop the rest.
        let mut corrupt = self.quarantined_generations();
        for (_, path) in corrupt.drain(..).skip(self.quarantine_keep) {
            if std::fs::remove_file(&path).is_ok() {
                removed += 1;
                if obs::is_metrics() {
                    obs::metrics().counter("vault_quarantine_pruned_total").inc(1);
                }
            }
        }
        if removed > 0 {
            obs::record(obs::EventKind::VaultPrune { removed });
        }
    }

    /// Quarantined generation files (`<stem>-ckpt-<sweep>.json.corrupt`)
    /// currently on disk, newest (highest sweep) first.
    fn quarantined_generations(&self) -> Vec<(u64, PathBuf)> {
        let prefix = format!("{}-ckpt-", self.stem);
        let mut out: Vec<(u64, PathBuf)> = Vec::new();
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return out;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(middle) =
                name.strip_prefix(&prefix).and_then(|r| r.strip_suffix(".json.corrupt"))
            else {
                continue;
            };
            if let Ok(sweep) = middle.parse::<u64>() {
                out.push((sweep, entry.path()));
            }
        }
        out.sort_by_key(|(sweep, _)| std::cmp::Reverse(*sweep));
        out
    }

    /// Load the newest generation whose envelope verifies, quarantining
    /// every corrupt generation encountered on the way (renamed to
    /// `<name>.corrupt`). `kind` must match the envelope's kind tag —
    /// a scalar pod must not silently resume a multispin snapshot.
    pub fn load_latest(&self, kind: &str) -> Result<LoadedCheckpoint, VaultError> {
        let gens = self.generations();
        let scanned = gens.len();
        let mut quarantined: Vec<PathBuf> = Vec::new();
        for g in gens {
            match Self::read_verified(&g.path, kind) {
                Ok((meta, payload)) => {
                    if !quarantined.is_empty() {
                        // The newest generation was corrupt; an older one
                        // is carrying the restore.
                        obs::record(obs::EventKind::VaultFallback { sweep: meta.sweep });
                    }
                    return Ok(LoadedCheckpoint {
                        sweep: meta.sweep,
                        path: g.path,
                        payload,
                        quarantined,
                    });
                }
                Err(_) => {
                    quarantined.push(self.quarantine(&g.path));
                }
            }
        }
        Err(VaultError::NoValidGeneration {
            quarantined: quarantined.iter().map(|p| p.display().to_string()).collect(),
            scanned,
        })
    }

    /// Rename a corrupt file to `<name>.corrupt` (best-effort: if the
    /// rename fails the original path is reported instead) and count it.
    pub fn quarantine(&self, path: &Path) -> PathBuf {
        let mut target = path.as_os_str().to_owned();
        target.push(".corrupt");
        let target = PathBuf::from(target);
        let reported =
            if std::fs::rename(path, &target).is_ok() { target } else { path.to_path_buf() };
        if obs::is_metrics() {
            obs::metrics().counter("vault_corrupt_quarantined").inc(1);
        }
        obs::record(obs::EventKind::VaultQuarantine);
        reported
    }

    /// Read and fully verify one generation file (no quarantine).
    fn read_verified(path: &Path, kind: &str) -> Result<(EnvelopeMeta, String), VaultError> {
        let corrupt = |msg: String| VaultError::Corrupt { path: path.display().to_string(), msg };
        let bytes = std::fs::read(path)
            .map_err(|e| VaultError::Io { path: path.display().to_string(), msg: e.to_string() })?;
        let (meta, payload) = decode_envelope(&bytes).map_err(corrupt)?;
        if meta.kind != kind {
            return Err(corrupt(format!("payload kind '{}' (expected '{kind}')", meta.kind)));
        }
        Ok((meta, payload))
    }
}

/// How a checkpoint file read outside the generation scan turned out.
/// Produced by [`load_file`], the entry point behind `--resume <path>`.
#[derive(Clone, Debug)]
pub enum FileLoad {
    /// A verified vault envelope.
    Envelope(EnvelopeMeta, String),
    /// A pre-vault (PR 3) raw payload, passed through unverified for
    /// backward compatibility. Only files that do not claim to be
    /// envelopes take this path.
    Legacy(String),
}

/// Read a single checkpoint file: vault envelopes are verified (kind
/// included), anything else is passed through as a legacy raw payload for
/// the caller's parser to judge.
pub fn load_file(path: &Path, kind: &str) -> Result<FileLoad, VaultError> {
    let bytes = std::fs::read(path)
        .map_err(|e| VaultError::Io { path: path.display().to_string(), msg: e.to_string() })?;
    if looks_like_envelope(&bytes) {
        let corrupt = |msg: String| VaultError::Corrupt { path: path.display().to_string(), msg };
        let (meta, payload) = decode_envelope(&bytes).map_err(corrupt)?;
        if meta.kind != kind {
            return Err(corrupt(format!("payload kind '{}' (expected '{kind}')", meta.kind)));
        }
        Ok(FileLoad::Envelope(meta, payload))
    } else {
        String::from_utf8(bytes).map(FileLoad::Legacy).map_err(|_| VaultError::Corrupt {
            path: path.display().to_string(),
            msg: "legacy checkpoint is not valid UTF-8".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tpu-ising-vault-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn envelope_roundtrip() {
        let payload = "{\"hello\": [1, 2, 3]}";
        let env = encode_envelope("pod", 42, payload);
        assert!(looks_like_envelope(env.as_bytes()));
        let (meta, back) = decode_envelope(env.as_bytes()).unwrap();
        assert_eq!(meta, EnvelopeMeta { version: VAULT_VERSION, kind: "pod".into(), sweep: 42 });
        assert_eq!(back, payload);
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        // Flip one bit at every offset of an envelope, and truncate at
        // every length: no corruption may decode successfully with the
        // original payload.
        let payload = "0123456789abcdef";
        let env = encode_envelope("pod", 7, payload).into_bytes();
        for offset in 0..env.len() {
            for bit in [0u8, 3, 7] {
                let mut bad = env.clone();
                bad[offset] ^= 1 << bit;
                if let Ok((meta, back)) = decode_envelope(&bad) {
                    // A flip may land in the payload *and* be compensated
                    // nowhere: CRC must have caught it. The only tolerated
                    // decodes are ones that changed nothing semantic
                    // (impossible for a single bit flip).
                    panic!(
                        "bit {bit} at offset {offset} decoded as kind={} sweep={} payload={back:?}",
                        meta.kind, meta.sweep
                    );
                }
            }
        }
        for cut in 0..env.len() {
            assert!(decode_envelope(&env[..cut]).is_err(), "truncation at {cut} not detected");
        }
    }

    #[test]
    fn save_load_roundtrip_and_generations() {
        let dir = tmpdir("roundtrip");
        let vault = Vault::new(&dir, "pod", 3).unwrap();
        vault.save("pod", 4, "payload-4").unwrap();
        vault.save("pod", 8, "payload-8").unwrap();
        let gens = vault.generations();
        assert_eq!(gens.iter().map(|g| g.sweep).collect::<Vec<_>>(), vec![8, 4]);
        let loaded = vault.load_latest("pod").unwrap();
        assert_eq!(loaded.sweep, 8);
        assert_eq!(loaded.payload, "payload-8");
        assert!(loaded.quarantined.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keep_n_pruning_retains_newest() {
        let dir = tmpdir("prune");
        let vault = Vault::new(&dir, "pod", 2).unwrap();
        for sweep in [2, 4, 6, 8] {
            vault.save("pod", sweep, "x").unwrap();
        }
        let sweeps: Vec<u64> = vault.generations().iter().map(|g| g.sweep).collect();
        assert_eq!(sweeps, vec![8, 6]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_is_durable_no_temp_left_and_dir_syncable() {
        // The fsync contract: after `save` returns, the generation is the
        // only artifact — the temp file is gone (renamed, not copied) and
        // the parent directory can be opened for the entry fsync. We can't
        // observe fsync from userspace, but we can pin the sequence that
        // makes it meaningful.
        let dir = tmpdir("durable");
        let vault = Vault::new(&dir, "pod", 2).unwrap();
        let path = vault.save("pod", 3, "payload").unwrap();
        assert!(path.exists());
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files survived save: {leftovers:?}");
        assert!(std::fs::File::open(&dir).is_ok(), "parent dir must be openable for fsync");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_pruning_keeps_newest_corrupt_files() {
        let dir = tmpdir("quarantine-prune");
        let vault = Vault::new(&dir, "pod", 2).unwrap().with_quarantine_keep(2);
        // Manufacture five quarantined generations plus one stranger file
        // the pruner must never touch.
        for sweep in [1u64, 2, 3, 4, 5] {
            std::fs::write(dir.join(format!("pod-ckpt-{sweep}.json.corrupt")), "bad").unwrap();
        }
        std::fs::write(dir.join("resume.json.corrupt"), "user file").unwrap();
        vault.save("pod", 10, "good").unwrap();
        let mut corrupt: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".corrupt"))
            .collect();
        corrupt.sort();
        assert_eq!(
            corrupt,
            vec![
                "pod-ckpt-4.json.corrupt".to_string(),
                "pod-ckpt-5.json.corrupt".to_string(),
                "resume.json.corrupt".to_string(),
            ],
            "newest two vault quarantines survive; foreign .corrupt files are untouched"
        );
        // The live generation is unaffected.
        assert_eq!(vault.load_latest("pod").unwrap().sweep, 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_falls_back_to_older_and_quarantines() {
        let dir = tmpdir("fallback");
        let vault = Vault::new(&dir, "pod", 3).unwrap();
        vault.save("pod", 4, "old-good").unwrap();
        let newest = vault.save("pod", 8, "new-bad").unwrap();
        // Bit-flip the newest generation's payload.
        let mut bytes = std::fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        std::fs::write(&newest, &bytes).unwrap();

        let loaded = vault.load_latest("pod").unwrap();
        assert_eq!(loaded.sweep, 4);
        assert_eq!(loaded.payload, "old-good");
        assert_eq!(loaded.quarantined.len(), 1);
        let q = &loaded.quarantined[0];
        assert!(q.to_string_lossy().ends_with(".corrupt"), "quarantine path: {q:?}");
        assert!(q.exists());
        assert!(!newest.exists(), "corrupt generation must be renamed away");
        // The quarantined file is not rescanned.
        let again = vault.load_latest("pod").unwrap();
        assert_eq!(again.sweep, 4);
        assert!(again.quarantined.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_and_torn_header_fall_back() {
        let dir = tmpdir("torn");
        let vault = Vault::new(&dir, "ms", 4).unwrap();
        vault.save("multispin-pod", 2, "gen-2").unwrap();
        let p6 = vault.save("multispin-pod", 6, "gen-6").unwrap();
        let p9 = vault.save("multispin-pod", 9, "gen-9").unwrap();
        // Truncate generation 9 mid-payload; tear generation 6's header.
        let bytes = std::fs::read(&p9).unwrap();
        std::fs::write(&p9, &bytes[..bytes.len() - 3]).unwrap();
        std::fs::write(&p6, &b"TPUISING-VAULT v1 ki"[..]).unwrap();

        let loaded = vault.load_latest("multispin-pod").unwrap();
        assert_eq!(loaded.sweep, 2);
        assert_eq!(loaded.payload, "gen-2");
        assert_eq!(loaded.quarantined.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_generations_corrupt_is_a_named_error() {
        let dir = tmpdir("all-bad");
        let vault = Vault::new(&dir, "pod", 3).unwrap();
        let p = vault.save("pod", 5, "only").unwrap();
        std::fs::write(&p, "garbage").unwrap();
        match vault.load_latest("pod") {
            Err(VaultError::NoValidGeneration { quarantined, scanned }) => {
                assert_eq!(scanned, 1);
                assert_eq!(quarantined.len(), 1);
                assert!(quarantined[0].ends_with(".corrupt"));
            }
            other => panic!("expected NoValidGeneration, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let dir = tmpdir("kind");
        let vault = Vault::new(&dir, "pod", 3).unwrap();
        vault.save("multispin-pod", 3, "packed").unwrap();
        assert!(vault.load_latest("pod").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_keep_is_rejected() {
        assert!(matches!(Vault::new(std::env::temp_dir(), "x", 0), Err(VaultError::Config(_))));
    }

    #[test]
    fn load_file_handles_envelope_legacy_and_corrupt() {
        let dir = tmpdir("file");
        // Envelope path.
        let good = dir.join("good.json");
        std::fs::write(&good, encode_envelope("pod", 11, "data")).unwrap();
        match load_file(&good, "pod").unwrap() {
            FileLoad::Envelope(meta, payload) => {
                assert_eq!(meta.sweep, 11);
                assert_eq!(payload, "data");
            }
            other => panic!("expected envelope, got {other:?}"),
        }
        // Legacy raw payload (a PR 3 snapshot).
        let legacy = dir.join("legacy.json");
        std::fs::write(&legacy, "{\"version\":1}").unwrap();
        match load_file(&legacy, "pod").unwrap() {
            FileLoad::Legacy(payload) => assert_eq!(payload, "{\"version\":1}"),
            other => panic!("expected legacy, got {other:?}"),
        }
        // Corrupt envelope (claims the magic, fails verification).
        let bad = dir.join("bad.json");
        let mut env = encode_envelope("pod", 11, "data").into_bytes();
        let n = env.len();
        env[n - 2] ^= 0x01;
        std::fs::write(&bad, &env).unwrap();
        assert!(matches!(load_file(&bad, "pod"), Err(VaultError::Corrupt { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
