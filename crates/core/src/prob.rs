//! Acceptance-uniform sources for the updaters.

use crate::lattice::Color;
use tpu_ising_bf16::Scalar;
use tpu_ising_rng::{PhiloxStream, RandomUniform, SiteRng};
use tpu_ising_tensor::Tensor4;

/// Where an updater's acceptance uniforms come from.
///
/// - `Bulk` mirrors production TPU code: one `tf.random_uniform` tensor per
///   update, drawn from a sequential Philox stream in layout order. Fast,
///   but the uniform a given *site* sees depends on the tensor layout.
/// - `SiteKeyed` makes the uniform a pure function of
///   `(seed, sweep, color, global row, global col)`. All four update
///   implementations — and any distribution of the lattice over cores —
///   then make bit-identical flip decisions, which the equivalence tests
///   exploit. Slower (one Philox call per site).
pub enum Randomness {
    /// Sequential stream, layout-order fills.
    Bulk(PhiloxStream),
    /// Site-keyed pure-function field.
    SiteKeyed(SiteRng),
}

/// Serializable snapshot of a [`Randomness`] source (checkpointing).
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RngState {
    /// A bulk Philox stream: key words plus the 128-bit counter split in
    /// two halves.
    Bulk {
        /// Low key word.
        k0: u32,
        /// High key word.
        k1: u32,
        /// Counter bits 0..64.
        counter_lo: u64,
        /// Counter bits 64..128.
        counter_hi: u64,
    },
    /// A site-keyed field: its key words.
    SiteKeyed {
        /// Low key word.
        k0: u32,
        /// High key word.
        k1: u32,
    },
}

impl Randomness {
    /// Convenience constructor for a bulk stream.
    pub fn bulk(seed: u64) -> Randomness {
        Randomness::Bulk(PhiloxStream::from_seed(seed))
    }

    /// Snapshot the generator state. For bulk streams the snapshot is
    /// exact at any [`fill`](Self::fill) boundary (fills reset the output
    /// buffer); see [`PhiloxStream::from_state`].
    pub fn state(&self) -> RngState {
        match self {
            Randomness::Bulk(s) => RngState::Bulk {
                k0: s.key().k0,
                k1: s.key().k1,
                counter_lo: s.counter() as u64,
                counter_hi: (s.counter() >> 64) as u64,
            },
            Randomness::SiteKeyed(s) => RngState::SiteKeyed { k0: s.key().k0, k1: s.key().k1 },
        }
    }

    /// Reconstruct a generator from a snapshot.
    pub fn from_state(state: RngState) -> Randomness {
        use tpu_ising_rng::Philox4x32Key;
        match state {
            RngState::Bulk { k0, k1, counter_lo, counter_hi } => {
                Randomness::Bulk(PhiloxStream::from_state(
                    Philox4x32Key::new(k0, k1),
                    (counter_hi as u128) << 64 | counter_lo as u128,
                ))
            }
            RngState::SiteKeyed { k0, k1 } => {
                Randomness::SiteKeyed(SiteRng::from_key(Philox4x32Key::new(k0, k1)))
            }
        }
    }

    /// Convenience constructor for a site-keyed field.
    pub fn site_keyed(seed: u64) -> Randomness {
        Randomness::SiteKeyed(SiteRng::new(seed))
    }

    /// Fill a probs tensor. `global` maps tensor indices `(b0, b1, r, c)`
    /// to the *global lattice coordinates* of the site that will consume
    /// that uniform (only used by `SiteKeyed`).
    pub fn fill<S: Scalar + RandomUniform>(
        &mut self,
        out: &mut Tensor4<S>,
        sweep: u64,
        color: Color,
        global: impl Fn(usize, usize, usize, usize) -> (u32, u32),
    ) {
        match self {
            Randomness::Bulk(stream) => {
                stream.fill_uniform(out.data_mut());
            }
            Randomness::SiteKeyed(site) => {
                let [_, n, rr, cc] = out.shape();
                let tag = color.tag();
                for (idx, v) in out.data_mut().iter_mut().enumerate() {
                    let c = idx % cc;
                    let r = (idx / cc) % rr;
                    let b1 = (idx / (cc * rr)) % n;
                    let b0 = idx / (cc * rr * n);
                    let (gr, gc) = global(b0, b1, r, c);
                    *v = site.uniform(sweep, tag, gr, gc);
                }
            }
        }
    }

    /// The uniform for one site (used by the sequential reference and the
    /// plane-based conv updater).
    pub fn site<S: Scalar + RandomUniform>(
        &mut self,
        sweep: u64,
        color: Color,
        row: u32,
        col: u32,
    ) -> S {
        match self {
            Randomness::Bulk(stream) => stream.uniform(),
            Randomness::SiteKeyed(site) => site.uniform(sweep, color.tag(), row, col),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_fill_matches_stream_order() {
        let mut r = Randomness::bulk(5);
        let mut t = Tensor4::<f32>::zeros([1, 1, 2, 4]);
        r.fill(&mut t, 0, Color::Black, |_, _, _, _| (0, 0));
        let mut s = PhiloxStream::from_seed(5);
        let expect = tpu_ising_rng::uniform_vec::<f32>(&mut s, 8);
        assert_eq!(t.data(), &expect[..]);
    }

    #[test]
    fn site_keyed_fill_is_layout_independent() {
        // The same global site must get the same uniform regardless of the
        // tiling it is accessed through.
        let mut a = Randomness::site_keyed(9);
        let mut b = Randomness::site_keyed(9);
        // 4×4 lattice as one 4×4 tile
        let mut t1 = Tensor4::<f32>::zeros([1, 1, 4, 4]);
        a.fill(&mut t1, 3, Color::White, |_, _, r, c| (r as u32, c as u32));
        // same lattice as 2×2 grid of 2×2 tiles
        let mut t2 = Tensor4::<f32>::zeros([2, 2, 2, 2]);
        b.fill(&mut t2, 3, Color::White, |b0, b1, r, c| ((b0 * 2 + r) as u32, (b1 * 2 + c) as u32));
        for gr in 0..4 {
            for gc in 0..4 {
                assert_eq!(
                    t1.get(0, 0, gr, gc),
                    t2.get(gr / 2, gc / 2, gr % 2, gc % 2),
                    "site ({gr},{gc})"
                );
            }
        }
    }

    #[test]
    fn site_keyed_depends_on_sweep_and_color() {
        let mut r = Randomness::site_keyed(1);
        let a: f32 = r.site(0, Color::Black, 5, 5);
        let b: f32 = r.site(1, Color::Black, 5, 5);
        let c: f32 = r.site(0, Color::White, 5, 5);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // and is reproducible
        let a2: f32 = r.site(0, Color::Black, 5, 5);
        assert_eq!(a, a2);
    }
}
