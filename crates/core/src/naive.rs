//! **Algorithm 1**: the naive masked checkerboard update.
//!
//! The whole lattice lives as one `[m, n, t, t]` grid. Neighbor sums are
//! computed for *every* site with two band-kernel matmuls per sub-lattice
//! (`σ·K + K·σ`) plus boundary compensation (Algorithm 1 lines 3–6), a
//! uniform is generated for every site, and a parity mask `M` throws away
//! the half that belongs to the fixed color. This is the straightforward
//! TPU mapping the paper presents first — correct, but with 2× the matmul
//! work, 2× the RNG and extra mask arithmetic, which is why Algorithm 2
//! exists (~3× faster in the paper's experiments).

use crate::lattice::Color;
use crate::prob::Randomness;
use crate::sampler::Sweeper;
use tpu_ising_bf16::Scalar;
use tpu_ising_obs as obs;
use tpu_ising_rng::RandomUniform;
use tpu_ising_tensor::{band_kernel, Axis, Mat, Plane, Side, Tensor4};

/// Algorithm 1 sampler over a tiled full lattice.
pub struct NaiveIsing<S> {
    grid: Tensor4<S>,
    k: Mat<S>,
    /// Parity mask: 1 where `(r + c)` even within a tile (tile size must be
    /// even, so tile parity equals global parity).
    mask_black: Tensor4<S>,
    beta: f64,
    rng: Randomness,
    sweep_index: u64,
}

impl<S: Scalar + RandomUniform> NaiveIsing<S> {
    /// Tile a full lattice into `[m, n, tile, tile]`. `tile` must be even
    /// (so intra-tile parity equals global parity) and divide both plane
    /// dimensions.
    pub fn from_plane(plane: &Plane<S>, tile: usize, beta: f64, rng: Randomness) -> Self {
        assert!(tile.is_multiple_of(2), "tile size must be even for a parity mask");
        let grid = plane.to_tiles(tile);
        let [m, n, _, _] = grid.shape();
        let mask_black = Tensor4::from_fn([m, n, tile, tile], |_, _, r, c| {
            if (r + c) % 2 == 0 {
                S::one()
            } else {
                S::zero()
            }
        });
        NaiveIsing { grid, k: band_kernel::<S>(tile), mask_black, beta, rng, sweep_index: 0 }
    }

    /// Reassemble the full lattice.
    pub fn to_plane(&self) -> Plane<S> {
        Plane::from_tiles(&self.grid)
    }

    /// Inverse temperature.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Change β.
    pub fn set_beta(&mut self, beta: f64) {
        self.beta = beta;
    }

    /// Full-lattice neighbor sums: `σ·K + K·σ` per tile, then the four
    /// boundary compensations of Algorithm 1 lines 3–6 (torus wrap via
    /// grid rolls).
    pub fn neighbor_sums(&self) -> Tensor4<S> {
        let mut nn = self.grid.matmul_right(&self.k);
        nn.add_assign(&self.grid.matmul_left(&self.k));
        // northern boundary: needs the southern edge of the tile above
        let e = self.grid.roll_batch(1, 0).edge(Axis::Row, Side::Last);
        nn.add_edge_assign(Axis::Row, Side::First, &e);
        // southern boundary
        let e = self.grid.roll_batch(-1, 0).edge(Axis::Row, Side::First);
        nn.add_edge_assign(Axis::Row, Side::Last, &e);
        // western boundary
        let e = self.grid.roll_batch(0, 1).edge(Axis::Col, Side::Last);
        nn.add_edge_assign(Axis::Col, Side::First, &e);
        // eastern boundary
        let e = self.grid.roll_batch(0, -1).edge(Axis::Col, Side::First);
        nn.add_edge_assign(Axis::Col, Side::Last, &e);
        nn
    }

    /// Update all spins of one color (Algorithm 1).
    pub fn update_color(&mut self, color: Color) {
        let [m, n, t, _] = self.grid.shape();
        // line 1: probs for ALL sites (the waste Algorithm 2 eliminates)
        let mut probs = Tensor4::<S>::zeros([m, n, t, t]);
        let sweep = self.sweep_index;
        self.rng.fill(&mut probs, sweep, color, |b0, b1, r, c| {
            ((b0 * t + r) as u32, (b1 * t + c) as u32)
        });
        // lines 2–6
        let nn = self.neighbor_sums();
        // line 7: acceptance = exp(−2β·nn·σ)
        let m2b = S::from_f32((-2.0 * self.beta) as f32);
        let ratio = nn.zip_map(&self.grid, move |nv, s| ((nv * s) * m2b).exp());
        // lines 8–9: mask the fixed color
        let accept = probs.zip_map(&ratio, |u, r| if u < r { S::one() } else { S::zero() });
        let flips = match color {
            Color::Black => accept.zip_map(&self.mask_black, |f, mk| f * mk),
            Color::White => accept.zip_map(&self.mask_black, |f, mk| f * (S::one() - mk)),
        };
        // line 10: σ ← σ − 2·flips·σ
        self.grid = self.grid.zip_map(&flips, |s, f| s * (S::one() - (f + f)));
    }
}

impl<S: Scalar + RandomUniform> Sweeper for NaiveIsing<S> {
    fn sweep(&mut self) {
        {
            let _g = obs::span!("naive_halfsweep");
            self.update_color(Color::Black);
        }
        {
            let _g = obs::span!("naive_halfsweep");
            self.update_color(Color::White);
        }
        self.sweep_index += 1;
    }

    fn sites(&self) -> usize {
        self.grid.len()
    }

    fn magnetization_sum(&self) -> f64 {
        self.grid.sum_f64()
    }

    fn energy_sum(&self) -> f64 {
        crate::observables::energy_sum(&self.to_plane())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{cold_plane, random_plane};
    use crate::reference::ReferenceIsing;

    #[test]
    fn neighbor_sums_match_bruteforce() {
        for (h, w, tile) in [(8, 8, 2), (12, 16, 4), (16, 8, 8)] {
            let plane = random_plane::<f32>(h as u64 * 31 + w as u64, h, w);
            let nv = NaiveIsing::from_plane(&plane, tile, 0.4, Randomness::bulk(0));
            let expect = plane.neighbor_sum_periodic().to_tiles(tile);
            assert_eq!(nv.neighbor_sums(), expect, "{h}x{w}/{tile}");
        }
    }

    #[test]
    fn matches_reference_exactly_with_site_keyed_rng() {
        let beta = 0.5;
        let init = random_plane::<f32>(44, 12, 12);
        let mut refer = ReferenceIsing::new(init.clone(), beta, Randomness::site_keyed(77));
        let mut naive = NaiveIsing::from_plane(&init, 2, beta, Randomness::site_keyed(77));
        for step in 0..8 {
            refer.sweep();
            naive.sweep();
            assert_eq!(&naive.to_plane(), refer.plane(), "diverged at sweep {step}");
        }
    }

    #[test]
    fn matches_compact_exactly_with_site_keyed_rng() {
        use crate::compact::CompactIsing;
        let beta = 1.0 / crate::T_CRITICAL;
        let init = random_plane::<f32>(60, 16, 16);
        let mut naive = NaiveIsing::from_plane(&init, 4, beta, Randomness::site_keyed(271));
        let mut comp = CompactIsing::from_plane(&init, 4, beta, Randomness::site_keyed(271));
        for step in 0..6 {
            naive.sweep();
            comp.sweep();
            assert_eq!(naive.to_plane(), comp.to_plane(), "diverged at sweep {step}");
        }
    }

    #[test]
    fn mask_alternates_updates() {
        // β=0 from cold: black update flips only black sites.
        let mut nv = NaiveIsing::from_plane(&cold_plane::<f32>(4, 4), 2, 0.0, Randomness::bulk(0));
        nv.update_color(Color::Black);
        let p = nv.to_plane();
        for r in 0..4 {
            for c in 0..4 {
                let expect = if (r + c) % 2 == 0 { -1.0 } else { 1.0 };
                assert_eq!(p.get(r, c), expect, "({r},{c})");
            }
        }
        nv.update_color(Color::White);
        assert_eq!(nv.magnetization_sum(), -16.0);
    }

    #[test]
    #[should_panic(expected = "tile size must be even")]
    fn odd_tile_panics() {
        let p = random_plane::<f32>(1, 9, 9);
        let _ = NaiveIsing::from_plane(&p, 3, 0.4, Randomness::bulk(0));
    }
}
