//! **Algorithm 1**: the naive masked checkerboard update.
//!
//! The whole lattice lives as one `[m, n, t, t]` grid. Neighbor sums are
//! computed for *every* site with two band-kernel matmuls per sub-lattice
//! (`σ·K + K·σ`) plus boundary compensation (Algorithm 1 lines 3–6), a
//! uniform is generated for every site, and a parity mask `M` throws away
//! the half that belongs to the fixed color. This is the straightforward
//! TPU mapping the paper presents first — correct, but with 2× the matmul
//! work, 2× the RNG and extra mask arithmetic, which is why Algorithm 2
//! exists (~3× faster in the paper's experiments).
//!
//! Like [`CompactIsing`](crate::compact::CompactIsing), the sampler carries
//! a [`KernelBackend`]: `Dense` keeps the reference `σ·K + K·σ` matmuls,
//! `Band` walks the tridiagonal kernel's two nonzero diagonals directly and
//! fuses acceptance + mask + flip into one in-place pass over preallocated
//! workspace buffers (zero heap allocations in steady state). Both backends
//! are bit-identical.

use crate::lattice::{grid_boundary_col, grid_boundary_row, Color, PlaneHalos};
use crate::prob::Randomness;
use crate::sampler::Sweeper;
use rayon::prelude::*;
use tpu_ising_bf16::Scalar;
use tpu_ising_device::mesh::Dir;
use tpu_ising_obs as obs;
use tpu_ising_rng::RandomUniform;
use tpu_ising_tensor::{band_kernel, Axis, BandKernel, KernelBackend, Mat, Plane, Side, Tensor4};

/// Preallocated per-update buffers so a half-sweep allocates nothing.
struct NaiveWorkspace<S> {
    /// Full-grid neighbor sums.
    nn: Tensor4<S>,
    /// One uniform per site (Algorithm 1 draws for every site).
    probs: Tensor4<S>,
    /// `[m, n, 1, t]` scratch for row-boundary compensation edges.
    edge_row: Tensor4<S>,
    /// `[m, n, t, 1]` scratch for column-boundary compensation edges.
    edge_col: Tensor4<S>,
}

impl<S: Scalar> NaiveWorkspace<S> {
    fn new(shape: [usize; 4]) -> Self {
        let [m, n, t, _] = shape;
        NaiveWorkspace {
            nn: Tensor4::zeros(shape),
            probs: Tensor4::zeros(shape),
            edge_row: Tensor4::zeros([m, n, 1, t]),
            edge_col: Tensor4::zeros([m, n, t, 1]),
        }
    }
}

/// Algorithm 1 sampler over a tiled full lattice.
pub struct NaiveIsing<S> {
    grid: Tensor4<S>,
    k: Mat<S>,
    /// Parity mask: 1 where `(r + c)` even within a tile (tile size must be
    /// even, so tile parity equals global parity).
    mask_black: Tensor4<S>,
    beta: f64,
    rng: Randomness,
    sweep_index: u64,
    /// Global offset of the local window (distributed site-keying).
    row0: usize,
    col0: usize,
    backend: KernelBackend,
    ws: NaiveWorkspace<S>,
}

impl<S: Scalar + RandomUniform> NaiveIsing<S> {
    /// Tile a full lattice into `[m, n, tile, tile]`. `tile` must be even
    /// (so intra-tile parity equals global parity) and divide both plane
    /// dimensions.
    pub fn from_plane(plane: &Plane<S>, tile: usize, beta: f64, rng: Randomness) -> Self {
        Self::from_plane_at(plane, tile, beta, rng, 0, 0)
    }

    /// Like [`from_plane`](Self::from_plane) with a global window offset
    /// (both even, so the intra-tile parity mask stays valid and the
    /// site-keyed RNG addresses global coordinates).
    pub fn from_plane_at(
        plane: &Plane<S>,
        tile: usize,
        beta: f64,
        rng: Randomness,
        row0: usize,
        col0: usize,
    ) -> Self {
        assert!(tile.is_multiple_of(2), "tile size must be even for a parity mask");
        assert!(row0.is_multiple_of(2) && col0.is_multiple_of(2), "core offsets must be even");
        let grid = plane.to_tiles(tile);
        let [m, n, _, _] = grid.shape();
        let mask_black = Tensor4::from_fn([m, n, tile, tile], |_, _, r, c| {
            if (r + c) % 2 == 0 {
                S::one()
            } else {
                S::zero()
            }
        });
        let ws = NaiveWorkspace::new(grid.shape());
        NaiveIsing {
            grid,
            k: band_kernel::<S>(tile),
            mask_black,
            beta,
            rng,
            sweep_index: 0,
            row0,
            col0,
            backend: KernelBackend::default(),
            ws,
        }
    }

    /// Select the neighbor-sum kernel backend (builder style).
    pub fn with_backend(mut self, backend: KernelBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The active kernel backend.
    pub fn backend(&self) -> KernelBackend {
        self.backend
    }

    /// Reassemble the full lattice.
    pub fn to_plane(&self) -> Plane<S> {
        Plane::from_tiles(&self.grid)
    }

    /// Negate the spin at linear site `site % (height·width)` — the
    /// chaos drill's silent-corruption injection. The flipped spin is a
    /// legal value, so only the integrity scrubber can tell.
    pub(crate) fn flip_spin(&mut self, site: usize) {
        let [m, n, t, _] = self.grid.shape();
        let (h, w) = (m * t, n * t);
        let site = site % (h * w);
        let (r, c) = (site / w, site % w);
        let v = self.grid.get(r / t, c / t, r % t, c % t);
        self.grid.set(r / t, c / t, r % t, c % t, S::from_f32(-v.to_f32()));
    }

    /// Inverse temperature.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Change β.
    pub fn set_beta(&mut self, beta: f64) {
        self.beta = beta;
    }

    /// Completed sweeps.
    pub fn sweep_index(&self) -> u64 {
        self.sweep_index
    }

    /// Set the sweep counter (resume).
    pub fn set_sweep_index(&mut self, sweep: u64) {
        self.sweep_index = sweep;
    }

    /// Global offset of the local window.
    pub fn window_offset(&self) -> (usize, usize) {
        (self.row0, self.col0)
    }

    /// The tile size the lattice is blocked into.
    pub fn tile(&self) -> usize {
        self.grid.shape()[2]
    }

    /// Snapshot of the RNG state (checkpointing).
    pub fn rng_state(&self) -> crate::prob::RngState {
        self.rng.state()
    }

    /// Bump the sweep counter after both colors of a mesh sweep (the
    /// single-core [`Sweeper::sweep`] does this internally).
    pub fn advance_sweep(&mut self) {
        self.sweep_index += 1;
    }

    /// What this core must contribute to its neighbors for a color
    /// update, as `(payload, shift direction)` pairs in the fixed order
    /// `[north, south, west, east]` (the receiver's [`PlaneHalos`]
    /// slots). Shifting a payload in direction `D` delivers it to the
    /// neighbor on the `D` side, so e.g. the `north` halo every core
    /// *receives* is the last row its north neighbor sent southward. The
    /// payloads are full (both-color) edges, identical for either color
    /// update.
    pub fn halo_exchange_spec(&self, _color: Color) -> [(Vec<S>, Dir); 4] {
        [
            (grid_boundary_row(&self.grid, Side::Last), Dir::South),
            (grid_boundary_row(&self.grid, Side::First), Dir::North),
            (grid_boundary_col(&self.grid, Side::Last), Dir::East),
            (grid_boundary_col(&self.grid, Side::First), Dir::West),
        ]
    }

    /// Full-lattice neighbor sums: `σ·K + K·σ` per tile, then the four
    /// boundary compensations of Algorithm 1 lines 3–6 (torus wrap via
    /// grid rolls). This is the dense reference path; the band backend
    /// produces bit-identical sums without the allocations.
    pub fn neighbor_sums(&self) -> Tensor4<S> {
        let mut nn = self.grid.matmul_right(&self.k);
        nn.add_assign(&self.grid.matmul_left(&self.k));
        // northern boundary: needs the southern edge of the tile above
        let e = self.grid.roll_batch(1, 0).edge(Axis::Row, Side::Last);
        nn.add_edge_assign(Axis::Row, Side::First, &e);
        // southern boundary
        let e = self.grid.roll_batch(-1, 0).edge(Axis::Row, Side::First);
        nn.add_edge_assign(Axis::Row, Side::Last, &e);
        // western boundary
        let e = self.grid.roll_batch(0, 1).edge(Axis::Col, Side::Last);
        nn.add_edge_assign(Axis::Col, Side::First, &e);
        // eastern boundary
        let e = self.grid.roll_batch(0, -1).edge(Axis::Col, Side::First);
        nn.add_edge_assign(Axis::Col, Side::Last, &e);
        nn
    }

    /// Update all spins of one color (Algorithm 1).
    pub fn update_color(&mut self, color: Color) {
        self.update_color_impl(color, None);
    }

    /// [`update_color`](Self::update_color) for a mesh window: local
    /// periodic sums are corrected at the window boundary with the
    /// neighboring cores' edges, giving the exact global-torus sums —
    /// bit-identical to a single-core run on the stitched lattice.
    pub fn update_color_with_halos(&mut self, color: Color, halos: &PlaneHalos<S>) {
        self.update_color_impl(color, Some(halos));
    }

    fn update_color_impl(&mut self, color: Color, halos: Option<&PlaneHalos<S>>) {
        let [m, n, t, _] = self.grid.shape();
        // line 1: probs for ALL sites (the waste Algorithm 2 eliminates)
        let sweep = self.sweep_index;
        let (row0, col0) = (self.row0, self.col0);
        self.rng.fill(&mut self.ws.probs, sweep, color, |b0, b1, r, c| {
            ((row0 + b0 * t + r) as u32, (col0 + b1 * t + c) as u32)
        });
        if obs::is_metrics() {
            obs::metrics().counter("rng_draws_total").inc(self.ws.probs.len() as u64);
        }
        // lines 2–6
        match self.backend {
            KernelBackend::Dense => {
                self.ws.nn = self.neighbor_sums();
                if obs::is_metrics() {
                    // 2 dense t×t matmuls at 2·t³ flops per tile
                    obs::metrics().counter("kernel_flops").inc((4 * m * n * t * t * t) as u64);
                }
            }
            KernelBackend::Band => {
                let _span = obs::span!("neighbor_sums", obs::SpanKind::Mxu);
                let ws = &mut self.ws;
                band_neighbor_sums(&self.grid, &mut ws.nn, &mut ws.edge_row, &mut ws.edge_col);
                if obs::is_metrics() {
                    // 2 band products at ~2·t² adds per tile
                    obs::metrics().counter("kernel_flops").inc((4 * m * n * t * t) as u64);
                }
            }
        }
        if let Some(halos) = halos {
            correct_grid_boundary(&mut self.ws.nn, &self.grid, halos);
        }
        // lines 7–10 fused in place: acceptance = exp(−2β·nn·σ), parity
        // mask, flip. Off-color sites are left untouched, which equals the
        // reference `σ·(1 − 2·f·M)` with `f·M = 0` bit for bit; accepted
        // flips negate, which equals `σ·(1 − 2)` exactly.
        let m2b = S::from_f32((-2.0 * self.beta) as f32);
        let on = match color {
            Color::Black => S::one(),
            Color::White => S::zero(),
        };
        let accepted: u64 = self
            .grid
            .data_mut()
            .par_iter_mut()
            .zip(self.ws.nn.data().par_iter())
            .zip(self.ws.probs.data().par_iter())
            .zip(self.mask_black.data().par_iter())
            .map(|(((s, &nv), &u), &mk)| {
                if mk != on {
                    return 0u64;
                }
                let ratio = ((nv * *s) * m2b).exp();
                if u < ratio {
                    *s = -*s;
                    1
                } else {
                    0
                }
            })
            .sum();
        if obs::is_metrics() {
            let metrics = obs::metrics();
            metrics.counter("flip_proposals_total").inc((self.grid.len() / 2) as u64);
            metrics.counter("flips_accepted_total").inc(accepted);
        }
    }
}

/// Band-backend neighbor sums: walk the tridiagonal kernel's two nonzero
/// diagonals instead of dense matmuls, writing into caller-provided
/// buffers. Accumulation order matches [`NaiveIsing::neighbor_sums`]
/// exactly (right product, then left, then the four boundary edges), so
/// the result is bit-identical at every precision.
fn band_neighbor_sums<S: Scalar>(
    grid: &Tensor4<S>,
    nn: &mut Tensor4<S>,
    edge_row: &mut Tensor4<S>,
    edge_col: &mut Tensor4<S>,
) {
    grid.band_mul_right_into(BandKernel::Tridiag, nn);
    grid.band_mul_left_acc(BandKernel::Tridiag, nn);
    // northern boundary: needs the southern edge of the tile above
    grid.rolled_edge_into(1, 0, Axis::Row, Side::Last, edge_row);
    nn.add_edge_assign(Axis::Row, Side::First, edge_row);
    // southern boundary
    grid.rolled_edge_into(-1, 0, Axis::Row, Side::First, edge_row);
    nn.add_edge_assign(Axis::Row, Side::Last, edge_row);
    // western boundary
    grid.rolled_edge_into(0, 1, Axis::Col, Side::Last, edge_col);
    nn.add_edge_assign(Axis::Col, Side::First, edge_col);
    // eastern boundary
    grid.rolled_edge_into(0, -1, Axis::Col, Side::First, edge_col);
    nn.add_edge_assign(Axis::Col, Side::Last, edge_col);
}

/// Replace the locally-wrapped contributions at the window boundary of a
/// periodic neighbor-sum grid with the true neighboring cores' edges:
/// `nn += halo − wrongly_wrapped_own_edge`, in the tiled `[m, n, t, t]`
/// layout. Exact for ±1 spins: every term and partial sum is a small
/// integer, represented without rounding in both `f32` and bf16, so the
/// corrected sums are bit-identical to global-torus sums.
fn correct_grid_boundary<S: Scalar>(nn: &mut Tensor4<S>, grid: &Tensor4<S>, halos: &PlaneHalos<S>) {
    let [m, n, t, _] = grid.shape();
    assert_eq!(halos.north.len(), n * t, "north halo length");
    assert_eq!(halos.south.len(), n * t, "south halo length");
    assert_eq!(halos.west.len(), m * t, "west halo length");
    assert_eq!(halos.east.len(), m * t, "east halo length");
    for b1 in 0..n {
        for c in 0..t {
            let top = nn.get(0, b1, 0, c) + halos.north[b1 * t + c] - grid.get(m - 1, b1, t - 1, c);
            nn.set(0, b1, 0, c, top);
            let bot = nn.get(m - 1, b1, t - 1, c) + halos.south[b1 * t + c] - grid.get(0, b1, 0, c);
            nn.set(m - 1, b1, t - 1, c, bot);
        }
    }
    for b0 in 0..m {
        for r in 0..t {
            let left = nn.get(b0, 0, r, 0) + halos.west[b0 * t + r] - grid.get(b0, n - 1, r, t - 1);
            nn.set(b0, 0, r, 0, left);
            let right =
                nn.get(b0, n - 1, r, t - 1) + halos.east[b0 * t + r] - grid.get(b0, 0, r, 0);
            nn.set(b0, n - 1, r, t - 1, right);
        }
    }
}

impl<S: Scalar + RandomUniform> Sweeper for NaiveIsing<S> {
    fn sweep(&mut self) {
        let track = obs::is_metrics();
        let alloc0 = if track { obs::alloc::allocated_bytes() } else { 0 };
        {
            let _g = obs::span!("naive_halfsweep");
            self.update_color(Color::Black);
        }
        {
            let _g = obs::span!("naive_halfsweep");
            self.update_color(Color::White);
        }
        self.sweep_index += 1;
        if track {
            let delta = obs::alloc::allocated_bytes() - alloc0;
            obs::metrics().gauge("alloc_bytes_per_sweep").set(delta as f64);
        }
    }

    fn sites(&self) -> usize {
        self.grid.len()
    }

    fn magnetization_sum(&self) -> f64 {
        self.grid.sum_f64()
    }

    fn energy_sum(&self) -> f64 {
        crate::observables::energy_sum(&self.to_plane())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{cold_plane, random_plane};
    use crate::reference::ReferenceIsing;

    #[test]
    fn neighbor_sums_match_bruteforce() {
        for (h, w, tile) in [(8, 8, 2), (12, 16, 4), (16, 8, 8)] {
            let plane = random_plane::<f32>(h as u64 * 31 + w as u64, h, w);
            let nv = NaiveIsing::from_plane(&plane, tile, 0.4, Randomness::bulk(0));
            let expect = plane.neighbor_sum_periodic().to_tiles(tile);
            assert_eq!(nv.neighbor_sums(), expect, "{h}x{w}/{tile}");
        }
    }

    #[test]
    fn band_neighbor_sums_bit_identical_to_dense() {
        for (h, w, tile) in [(8, 8, 2), (12, 20, 2), (16, 24, 4), (24, 8, 8)] {
            let plane = random_plane::<f32>(h as u64 * 13 + w as u64, h, w);
            let mut nv = NaiveIsing::from_plane(&plane, tile, 0.4, Randomness::bulk(0));
            let dense = nv.neighbor_sums();
            let ws = &mut nv.ws;
            band_neighbor_sums(&nv.grid, &mut ws.nn, &mut ws.edge_row, &mut ws.edge_col);
            assert_eq!(nv.ws.nn, dense, "{h}x{w}/{tile}");
        }
    }

    #[test]
    fn band_backend_trajectory_bit_identical_to_dense() {
        let beta = 1.0 / crate::T_CRITICAL;
        let init = random_plane::<f32>(23, 16, 24);
        let mut dense = NaiveIsing::from_plane(&init, 4, beta, Randomness::bulk(9))
            .with_backend(KernelBackend::Dense);
        let mut band = NaiveIsing::from_plane(&init, 4, beta, Randomness::bulk(9))
            .with_backend(KernelBackend::Band);
        for step in 0..8 {
            dense.sweep();
            band.sweep();
            assert_eq!(dense.to_plane(), band.to_plane(), "diverged at sweep {step}");
        }
    }

    #[test]
    fn band_backend_trajectory_bit_identical_to_dense_bf16() {
        use tpu_ising_bf16::Bf16;
        let init = random_plane::<Bf16>(29, 12, 20);
        let mut dense = NaiveIsing::from_plane(&init, 2, 0.6, Randomness::bulk(11))
            .with_backend(KernelBackend::Dense);
        let mut band = NaiveIsing::from_plane(&init, 2, 0.6, Randomness::bulk(11))
            .with_backend(KernelBackend::Band);
        for step in 0..8 {
            dense.sweep();
            band.sweep();
            assert_eq!(dense.to_plane(), band.to_plane(), "diverged at sweep {step}");
        }
    }

    #[test]
    fn matches_reference_exactly_with_site_keyed_rng() {
        let beta = 0.5;
        let init = random_plane::<f32>(44, 12, 12);
        let mut refer = ReferenceIsing::new(init.clone(), beta, Randomness::site_keyed(77));
        let mut naive = NaiveIsing::from_plane(&init, 2, beta, Randomness::site_keyed(77));
        for step in 0..8 {
            refer.sweep();
            naive.sweep();
            assert_eq!(&naive.to_plane(), refer.plane(), "diverged at sweep {step}");
        }
    }

    #[test]
    fn matches_compact_exactly_with_site_keyed_rng() {
        use crate::compact::CompactIsing;
        let beta = 1.0 / crate::T_CRITICAL;
        let init = random_plane::<f32>(60, 16, 16);
        let mut naive = NaiveIsing::from_plane(&init, 4, beta, Randomness::site_keyed(271));
        let mut comp = CompactIsing::from_plane(&init, 4, beta, Randomness::site_keyed(271));
        for step in 0..6 {
            naive.sweep();
            comp.sweep();
            assert_eq!(naive.to_plane(), comp.to_plane(), "diverged at sweep {step}");
        }
    }

    #[test]
    fn mask_alternates_updates() {
        // β=0 from cold: black update flips only black sites.
        let mut nv = NaiveIsing::from_plane(&cold_plane::<f32>(4, 4), 2, 0.0, Randomness::bulk(0));
        nv.update_color(Color::Black);
        let p = nv.to_plane();
        for r in 0..4 {
            for c in 0..4 {
                let expect = if (r + c) % 2 == 0 { -1.0 } else { 1.0 };
                assert_eq!(p.get(r, c), expect, "({r},{c})");
            }
        }
        nv.update_color(Color::White);
        assert_eq!(nv.magnetization_sum(), -16.0);
    }

    #[test]
    fn self_wrap_halos_reproduce_periodic_update() {
        // On a 1×1 "torus" every halo is the window's own wrapped edge, so
        // the boundary correction is exactly zero and the halo update must
        // be bit-identical to the plain periodic one — for both backends.
        for backend in [KernelBackend::Dense, KernelBackend::Band] {
            let init = random_plane::<f32>(5, 8, 12);
            let mut plain = NaiveIsing::from_plane(&init, 4, 0.44, Randomness::site_keyed(13))
                .with_backend(backend);
            let mut meshy = NaiveIsing::from_plane(&init, 4, 0.44, Randomness::site_keyed(13))
                .with_backend(backend);
            for step in 0..4 {
                for color in [Color::Black, Color::White] {
                    let g = &meshy.grid;
                    let halos = PlaneHalos {
                        north: grid_boundary_row(g, Side::Last),
                        south: grid_boundary_row(g, Side::First),
                        west: grid_boundary_col(g, Side::Last),
                        east: grid_boundary_col(g, Side::First),
                    };
                    plain.update_color(color);
                    meshy.update_color_with_halos(color, &halos);
                }
                plain.advance_sweep();
                meshy.advance_sweep();
                assert_eq!(plain.to_plane(), meshy.to_plane(), "diverged at sweep {step}");
            }
        }
    }

    #[test]
    fn offset_window_draws_global_coordinates() {
        // Two vertically stacked 4×8 windows of a global 8×8 lattice,
        // fed each other's edges, must reproduce the single-lattice run.
        let beta = 1.0 / crate::T_CRITICAL;
        let full = random_plane::<f32>(91, 8, 8);
        let mut whole = NaiveIsing::from_plane(&full, 2, beta, Randomness::site_keyed(5));
        let top_init = Plane::from_fn(4, 8, |r, c| full.get(r, c));
        let bot_init = Plane::from_fn(4, 8, |r, c| full.get(4 + r, c));
        let mut top =
            NaiveIsing::from_plane_at(&top_init, 2, beta, Randomness::site_keyed(5), 0, 0);
        let mut bot =
            NaiveIsing::from_plane_at(&bot_init, 2, beta, Randomness::site_keyed(5), 4, 0);
        for step in 0..4 {
            for color in [Color::Black, Color::White] {
                // On a 2×1 torus each window's north AND south neighbor is
                // the other window; east/west wrap to itself.
                let top_halos = PlaneHalos {
                    north: grid_boundary_row(&bot.grid, Side::Last),
                    south: grid_boundary_row(&bot.grid, Side::First),
                    west: grid_boundary_col(&top.grid, Side::Last),
                    east: grid_boundary_col(&top.grid, Side::First),
                };
                let bot_halos = PlaneHalos {
                    north: grid_boundary_row(&top.grid, Side::Last),
                    south: grid_boundary_row(&top.grid, Side::First),
                    west: grid_boundary_col(&bot.grid, Side::Last),
                    east: grid_boundary_col(&bot.grid, Side::First),
                };
                whole.update_color(color);
                top.update_color_with_halos(color, &top_halos);
                bot.update_color_with_halos(color, &bot_halos);
            }
            whole.advance_sweep();
            top.advance_sweep();
            bot.advance_sweep();
            let stitched = Plane::from_fn(8, 8, |r, c| {
                if r < 4 {
                    top.to_plane().get(r, c)
                } else {
                    bot.to_plane().get(r - 4, c)
                }
            });
            assert_eq!(whole.to_plane(), stitched, "diverged at sweep {step}");
        }
    }

    #[test]
    #[should_panic(expected = "tile size must be even")]
    fn odd_tile_panics() {
        let p = random_plane::<f32>(1, 9, 9);
        let _ = NaiveIsing::from_plane(&p, 3, 0.4, Randomness::bulk(0));
    }
}
