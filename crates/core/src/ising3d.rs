//! Three-dimensional Ising model — the paper's stated follow-up.
//!
//! §6: "The algorithm used in this work can be generalized for
//! three-dimensional Ising model." The checkerboard decomposition carries
//! over verbatim: color a site by the parity of `x + y + z`; all six
//! nearest neighbors of a site have the opposite color, so each color
//! updates in one data-parallel step. Unlike 2-D there is no closed-form
//! solution; the critical temperature is known numerically to high
//! precision, `Tc(3D) ≈ 4.5115` (e.g. Ferrenberg–Xu–Landau 2018, the
//! reference the paper cites), and our tests check ordering on either
//! side of it.

use crate::lattice::Color;
use crate::prob::Randomness;
use crate::sampler::Sweeper;
use rayon::prelude::*;
use tpu_ising_bf16::Scalar;
use tpu_ising_rng::RandomUniform;

/// Best numerical estimate of the 3-D critical temperature (J/k_B units).
pub const T_CRITICAL_3D: f64 = 4.511_523;

/// Checkerboard Metropolis sampler on a periodic cubic lattice.
pub struct Ising3D<S> {
    /// spins, index `((z * ny) + y) * nx + x`
    spins: Vec<S>,
    nx: usize,
    ny: usize,
    nz: usize,
    beta: f64,
    rng: Randomness,
    sweep_index: u64,
}

impl<S: Scalar + RandomUniform> Ising3D<S> {
    /// A hot-start cubic lattice, spins i.i.d. from the seed.
    pub fn hot(nx: usize, ny: usize, nz: usize, beta: f64, seed: u64, rng: Randomness) -> Self {
        let site = tpu_ising_rng::SiteRng::new(seed ^ 0x3D15_1A77);
        let mut spins = Vec::with_capacity(nx * ny * nz);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let w = site.word(z as u64, 0, y as u32, x as u32);
                    spins.push(if w & 1 == 0 { S::one() } else { -S::one() });
                }
            }
        }
        Ising3D { spins, nx, ny, nz, beta, rng, sweep_index: 0 }
    }

    /// A cold-start (all up) cubic lattice.
    pub fn cold(nx: usize, ny: usize, nz: usize, beta: f64, rng: Randomness) -> Self {
        Ising3D { spins: vec![S::one(); nx * ny * nz], nx, ny, nz, beta, rng, sweep_index: 0 }
    }

    /// Lattice dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Inverse temperature.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Change β.
    pub fn set_beta(&mut self, beta: f64) {
        self.beta = beta;
    }

    /// Spin at `(x, y, z)`.
    pub fn spin(&self, x: usize, y: usize, z: usize) -> S {
        self.spins[(z * self.ny + y) * self.nx + x]
    }

    /// Sum of the six nearest neighbors (torus wrap).
    fn neighbor_sum(&self, x: usize, y: usize, z: usize) -> f32 {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let at = |x: usize, y: usize, z: usize| self.spins[(z * ny + y) * nx + x].to_f32();
        at((x + 1) % nx, y, z)
            + at((x + nx - 1) % nx, y, z)
            + at(x, (y + 1) % ny, z)
            + at(x, (y + ny - 1) % ny, z)
            + at(x, y, (z + 1) % nz)
            + at(x, y, (z + nz - 1) % nz)
    }

    /// Update all sites of one color (parity of `x + y + z`), in parallel
    /// over z-planes.
    pub fn update_color(&mut self, color: Color) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let parity = color.tag() as usize;
        let m2b = S::from_f32((-2.0 * self.beta) as f32);
        let sweep = self.sweep_index;
        // Uniforms: bulk mode splits an independent stream per (z, y) row
        // so rows update in parallel; site-keyed mode keys on the folded
        // (sweep, z) index plus (y, x).
        let row_streams: Option<Vec<tpu_ising_rng::PhiloxStream>> = match &self.rng {
            Randomness::Bulk(stream) => Some(
                (0..nz * ny)
                    .map(|row| {
                        stream.split((sweep * 2 + parity as u64) * (nz * ny) as u64 + row as u64)
                    })
                    .collect(),
            ),
            Randomness::SiteKeyed(_) => None,
        };
        let site = match &self.rng {
            Randomness::SiteKeyed(s) => Some(*s),
            Randomness::Bulk(_) => None,
        };
        let snapshot = &self.spins;
        let row_streams = &row_streams;
        let new: Vec<S> = (0..nz * ny)
            .into_par_iter()
            .flat_map_iter(|row| {
                let (z, y) = (row / ny, row % ny);
                let mut stream = row_streams.as_ref().map(|v| v[row].clone());
                let this = &*snapshot;
                (0..nx)
                    .map(move |x| {
                        let idx = (z * ny + y) * nx + x;
                        let s = this[idx];
                        if (x + y + z) % 2 != parity {
                            return s;
                        }
                        let at =
                            |x: usize, y: usize, z: usize| this[(z * ny + y) * nx + x].to_f32();
                        let nn = at((x + 1) % nx, y, z)
                            + at((x + nx - 1) % nx, y, z)
                            + at(x, (y + 1) % ny, z)
                            + at(x, (y + ny - 1) % ny, z)
                            + at(x, y, (z + 1) % nz)
                            + at(x, y, (z + nz - 1) % nz);
                        let ratio = ((S::from_f32(nn) * s) * m2b).exp();
                        let u: S = match (&mut stream, &site) {
                            (Some(st), _) => st.uniform(),
                            (None, Some(sr)) => sr.uniform(
                                sweep * nz as u64 + z as u64,
                                color.tag(),
                                y as u32,
                                x as u32,
                            ),
                            _ => unreachable!(),
                        };
                        if u < ratio {
                            -s
                        } else {
                            s
                        }
                    })
                    .collect::<Vec<S>>()
            })
            .collect();
        self.spins = new;
    }
}

impl<S: Scalar + RandomUniform> Sweeper for Ising3D<S> {
    fn sweep(&mut self) {
        self.update_color(Color::Black);
        self.update_color(Color::White);
        self.sweep_index += 1;
    }

    fn sites(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    fn magnetization_sum(&self) -> f64 {
        self.spins.iter().map(|s| s.to_f32() as f64).sum()
    }

    fn energy_sum(&self) -> f64 {
        let mut acc = 0.0f64;
        for z in 0..self.nz {
            for y in 0..self.ny {
                for x in 0..self.nx {
                    acc += (self.spin(x, y, z).to_f32() * self.neighbor_sum(x, y, z)) as f64;
                }
            }
        }
        -acc / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::run_chain;

    #[test]
    fn ground_state_energy() {
        // 3 bonds per site in 3-D: H = −3N for the all-up cube.
        let c = Ising3D::<f32>::cold(4, 4, 4, 1.0, Randomness::bulk(0));
        assert_eq!(c.energy_sum(), -192.0);
        assert_eq!(c.magnetization_sum(), 64.0);
    }

    #[test]
    fn frozen_at_high_beta() {
        let mut c = Ising3D::<f32>::cold(4, 4, 4, 10.0, Randomness::bulk(1));
        for _ in 0..5 {
            c.sweep();
        }
        assert_eq!(c.magnetization_sum(), 64.0);
    }

    #[test]
    fn beta_zero_flips_everything() {
        let mut c = Ising3D::<f32>::cold(4, 4, 4, 0.0, Randomness::bulk(2));
        c.sweep();
        assert_eq!(c.magnetization_sum(), -64.0);
    }

    #[test]
    fn checkerboard_colors_partition_neighbors() {
        // every neighbor of an (x+y+z)-even site is odd: the independence
        // property the parallel update relies on.
        for (x, y, z) in [(0usize, 0usize, 0usize), (1, 2, 3), (3, 3, 2)] {
            let p = (x + y + z) % 2;
            for (dx, dy, dz) in [(1, 0, 0), (0, 1, 0), (0, 0, 1)] {
                let q = (x + dx + (y + dy) + (z + dz)) % 2;
                assert_ne!(p, q);
            }
        }
    }

    #[test]
    fn orders_below_tc_disorders_above() {
        // T = 3.5 < Tc(3D) ≈ 4.51 < T = 6.0
        let mut low = Ising3D::<f32>::cold(8, 8, 8, 1.0 / 3.5, Randomness::bulk(3));
        let stats = run_chain(&mut low, 100, 400);
        assert!(stats.mean_abs_m > 0.75, "low-T ⟨|m|⟩ = {}", stats.mean_abs_m);

        let mut high = Ising3D::<f32>::hot(8, 8, 8, 1.0 / 6.0, 9, Randomness::bulk(4));
        let stats = run_chain(&mut high, 100, 400);
        assert!(stats.mean_abs_m < 0.2, "high-T ⟨|m|⟩ = {}", stats.mean_abs_m);
    }

    #[test]
    fn known_mean_field_direction() {
        // magnetization at T = 4.0 (below Tc) exceeds that at T = 5.0
        let m_at = |t: f64, seed: u64| {
            let mut sim = Ising3D::<f32>::cold(8, 8, 8, 1.0 / t, Randomness::bulk(seed));
            run_chain(&mut sim, 150, 400).mean_abs_m
        };
        let below = m_at(4.0, 5);
        let above = m_at(5.0, 6);
        assert!(below > above + 0.1, "m(4.0)={below} m(5.0)={above}");
    }

    #[test]
    fn spins_stay_spins_both_precisions() {
        let mut f = Ising3D::<f32>::hot(6, 6, 6, 0.22, 7, Randomness::bulk(7));
        let mut b = Ising3D::<tpu_ising_bf16::Bf16>::hot(6, 6, 6, 0.22, 7, Randomness::bulk(7));
        for _ in 0..5 {
            f.sweep();
            b.sweep();
        }
        assert!(f.spins.iter().all(|s| s.to_f32().abs() == 1.0));
        assert!(b.spins.iter().all(|s| s.to_f32().abs() == 1.0));
    }
}
