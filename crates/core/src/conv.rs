//! The appendix variant: neighbor sums as a plus-kernel convolution.
//!
//! The paper's follow-up implementation (appendix §7.2) replaces the
//! band-kernel batch matmuls with `tf.nn.conv2d`, packing more MXU work per
//! memory load for an ~80 % speedup on TPU. Functionally the update is the
//! same checkerboard Metropolis: here the convolution is
//! [`Plane::neighbor_sum_periodic`] and the color selection is a parity
//! predicate, so this doubles as the most direct readable implementation.
//!
//! The [`KernelBackend`] selects between the legacy allocating update
//! (`Dense`, kept as the readable reference) and a fused pass (`Band`) that
//! convolves into a preallocated workspace and flips in place — zero heap
//! allocations in steady state, bit-identical to the reference.

use crate::lattice::{Color, PlaneHalos};
use crate::prob::Randomness;
use crate::sampler::Sweeper;
use rayon::prelude::*;
use tpu_ising_bf16::Scalar;
use tpu_ising_device::mesh::Dir;
use tpu_ising_obs as obs;
use tpu_ising_rng::RandomUniform;
use tpu_ising_tensor::{KernelBackend, Plane};

/// Preallocated per-update buffers for the fused (band) path.
struct ConvWorkspace<S> {
    /// Neighbor sums for the whole plane.
    nn: Plane<S>,
    /// Uniforms; only the updated color's entries are (re)written each
    /// half-sweep, and only those entries are ever read.
    probs: Plane<S>,
}

/// Conv-based checkerboard sampler on a full plane.
pub struct ConvIsing<S> {
    plane: Plane<S>,
    beta: f64,
    rng: Randomness,
    sweep_index: u64,
    /// Global offset of the local window (distributed site-keying).
    row0: usize,
    col0: usize,
    backend: KernelBackend,
    ws: ConvWorkspace<S>,
}

impl<S: Scalar + RandomUniform> ConvIsing<S> {
    /// Wrap an initial configuration.
    pub fn new(plane: Plane<S>, beta: f64, rng: Randomness) -> Self {
        Self::new_at(plane, beta, rng, 0, 0)
    }

    /// Like [`new`](Self::new) with a global window offset (both even).
    pub fn new_at(plane: Plane<S>, beta: f64, rng: Randomness, row0: usize, col0: usize) -> Self {
        assert!(row0.is_multiple_of(2) && col0.is_multiple_of(2), "core offsets must be even");
        let ws = ConvWorkspace {
            nn: Plane::zeros(plane.height(), plane.width()),
            probs: Plane::zeros(plane.height(), plane.width()),
        };
        ConvIsing {
            plane,
            beta,
            rng,
            sweep_index: 0,
            row0,
            col0,
            backend: KernelBackend::default(),
            ws,
        }
    }

    /// Select the update backend (builder style).
    pub fn with_backend(mut self, backend: KernelBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The active backend.
    pub fn backend(&self) -> KernelBackend {
        self.backend
    }

    /// The configuration.
    pub fn plane(&self) -> &Plane<S> {
        &self.plane
    }

    /// Negate the spin at linear site `site % (height·width)` — the
    /// chaos drill's silent-corruption injection. The flipped spin is a
    /// legal value, so only the integrity scrubber can tell.
    pub(crate) fn flip_spin(&mut self, site: usize) {
        let (h, w) = (self.plane.height(), self.plane.width());
        let site = site % (h * w);
        let (r, c) = (site / w, site % w);
        let v = self.plane.get(r, c);
        self.plane.set(r, c, S::from_f32(-v.to_f32()));
    }

    /// Inverse temperature.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Change β.
    pub fn set_beta(&mut self, beta: f64) {
        self.beta = beta;
    }

    /// Draw one uniform per `color` site into `probs`, site-keyed or in
    /// raster order (bulk). Off-color entries are left untouched — they are
    /// never read by the acceptance step.
    fn fill_probs_into(&mut self, color: Color) {
        let (h, w) = (self.plane.height(), self.plane.width());
        let (row0, col0) = (self.row0, self.col0);
        let probs = &mut self.ws.probs;
        match &mut self.rng {
            Randomness::Bulk(stream) => {
                // one uniform per updated (color) site, in raster order —
                // the compact layout consumes per-quarter, so bulk streams
                // are not cross-implementation comparable (documented).
                for r in 0..h {
                    for c in 0..w {
                        if Color::of(row0 + r, col0 + c) == color {
                            probs.set(r, c, stream.uniform());
                        }
                    }
                }
            }
            Randomness::SiteKeyed(site) => {
                let sweep = self.sweep_index;
                let tag = color.tag();
                for r in 0..h {
                    for c in 0..w {
                        if Color::of(row0 + r, col0 + c) == color {
                            probs.set(
                                r,
                                c,
                                site.uniform(sweep, tag, (row0 + r) as u32, (col0 + c) as u32),
                            );
                        }
                    }
                }
            }
        }
        if obs::is_metrics() {
            obs::metrics().counter("rng_draws_total").inc((h * w / 2) as u64);
        }
    }

    /// Update all sites of one color: convolve for neighbor sums, then a
    /// masked Metropolis accept. Neighbor sums wrap around the local
    /// window (correct for a single-core torus).
    pub fn update_color(&mut self, color: Color) {
        match self.backend {
            KernelBackend::Dense => self.update_color_dense(color, None),
            KernelBackend::Band => self.update_color_band(color, None),
        }
    }

    /// [`update_color`](Self::update_color) for a mesh window: local
    /// periodic sums are corrected at the window boundary with the
    /// neighboring cores' edges, giving the exact global-torus sums —
    /// bit-identical to a single-core run on the stitched lattice.
    pub fn update_color_with_halos(&mut self, color: Color, halos: &PlaneHalos<S>) {
        match self.backend {
            KernelBackend::Dense => self.update_color_dense(color, Some(halos)),
            KernelBackend::Band => self.update_color_band(color, Some(halos)),
        }
    }

    /// Completed sweeps.
    pub fn sweep_index(&self) -> u64 {
        self.sweep_index
    }

    /// Set the sweep counter (resume).
    pub fn set_sweep_index(&mut self, sweep: u64) {
        self.sweep_index = sweep;
    }

    /// Global offset of the local window.
    pub fn window_offset(&self) -> (usize, usize) {
        (self.row0, self.col0)
    }

    /// Snapshot of the RNG state (checkpointing).
    pub fn rng_state(&self) -> crate::prob::RngState {
        self.rng.state()
    }

    /// Bump the sweep counter after both colors of a mesh sweep (the
    /// single-core [`Sweeper::sweep`] does this internally).
    pub fn advance_sweep(&mut self) {
        self.sweep_index += 1;
    }

    /// What this core must contribute to its neighbors for a color
    /// update, as `(payload, shift direction)` pairs in the fixed order
    /// `[north, south, west, east]` (the receiver's [`PlaneHalos`]
    /// slots). Shifting a payload in direction `D` delivers it to the
    /// neighbor on the `D` side, so e.g. the `north` halo every core
    /// *receives* is the last row its north neighbor sent southward. The
    /// payloads are full (both-color) edges, identical for either color
    /// update.
    pub fn halo_exchange_spec(&self, _color: Color) -> [(Vec<S>, Dir); 4] {
        let (h, w) = (self.plane.height(), self.plane.width());
        [
            ((0..w).map(|c| self.plane.get(h - 1, c)).collect(), Dir::South),
            ((0..w).map(|c| self.plane.get(0, c)).collect(), Dir::North),
            ((0..h).map(|r| self.plane.get(r, w - 1)).collect(), Dir::East),
            ((0..h).map(|r| self.plane.get(r, 0)).collect(), Dir::West),
        ]
    }

    /// The legacy reference update: allocates the neighbor-sum plane, a
    /// zeroed uniforms plane, and a fresh output plane every call.
    fn update_color_dense(&mut self, color: Color, halos: Option<&PlaneHalos<S>>) {
        let mut nn = self.plane.neighbor_sum_periodic();
        if let Some(halos) = halos {
            correct_plane_boundary(&mut nn, &self.plane, halos);
        }
        let nn = nn;
        let (h, w) = (self.plane.height(), self.plane.width());
        if obs::is_metrics() {
            // plus-kernel stencil: 4 adds per site
            obs::metrics().counter("kernel_flops").inc((4 * h * w) as u64);
        }
        // Uniforms for every site of this color, generated site-keyed or
        // in plane layout order (bulk). The workspace buffer is used for
        // the draws (identical stream order), then copied into the zeroed
        // plane the reference formulation reads.
        self.fill_probs_into(color);
        let mut probs = Plane::<S>::zeros(h, w);
        let (row0, col0) = (self.row0, self.col0);
        for r in 0..h {
            for c in 0..w {
                if Color::of(row0 + r, col0 + c) == color {
                    probs.set(r, c, self.ws.probs.get(r, c));
                }
            }
        }
        let m2b = S::from_f32((-2.0 * self.beta) as f32);
        let parity_origin = (self.row0 + self.col0) % 2;
        let color_parity = match color {
            Color::Black => 0,
            Color::White => 1,
        };
        // rows in parallel: each site of the target color flips iff
        // u < exp(−2β·nn·σ)
        let nn_data = nn.data();
        let probs_data = probs.data();
        let pd: Vec<S> = self
            .plane
            .data()
            .par_iter()
            .enumerate()
            .map(|(idx, &s)| {
                let (r, c) = (idx / w, idx % w);
                if (r + c + parity_origin) % 2 != color_parity {
                    return s;
                }
                let ratio = ((nn_data[idx] * s) * m2b).exp();
                if probs_data[idx] < ratio {
                    -s
                } else {
                    s
                }
            })
            .collect();
        self.plane = Plane::from_fn(h, w, |r, c| pd[r * w + c]);
    }

    /// The fused update: convolve into the workspace, draw uniforms into
    /// the workspace, flip in place. No heap allocations in steady state,
    /// bit-identical to [`update_color_dense`](Self::update_color_dense).
    fn update_color_band(&mut self, color: Color, halos: Option<&PlaneHalos<S>>) {
        let (h, w) = (self.plane.height(), self.plane.width());
        {
            let _span = obs::span!("neighbor_sums", obs::SpanKind::Mxu);
            self.plane.neighbor_sum_periodic_into(&mut self.ws.nn);
        }
        if let Some(halos) = halos {
            correct_plane_boundary(&mut self.ws.nn, &self.plane, halos);
        }
        if obs::is_metrics() {
            obs::metrics().counter("kernel_flops").inc((4 * h * w) as u64);
        }
        self.fill_probs_into(color);
        let m2b = S::from_f32((-2.0 * self.beta) as f32);
        let parity_origin = (self.row0 + self.col0) % 2;
        let color_parity = match color {
            Color::Black => 0,
            Color::White => 1,
        };
        let nn_data = self.ws.nn.data();
        let probs_data = self.ws.probs.data();
        let accepted: u64 = self
            .plane
            .data_mut()
            .par_iter_mut()
            .enumerate()
            .map(|(idx, s)| {
                let (r, c) = (idx / w, idx % w);
                if (r + c + parity_origin) % 2 != color_parity {
                    return 0u64;
                }
                let ratio = ((nn_data[idx] * *s) * m2b).exp();
                if probs_data[idx] < ratio {
                    *s = -*s;
                    1
                } else {
                    0
                }
            })
            .sum();
        if obs::is_metrics() {
            let metrics = obs::metrics();
            metrics.counter("flip_proposals_total").inc((h * w / 2) as u64);
            metrics.counter("flips_accepted_total").inc(accepted);
        }
    }
}

/// Replace the locally-wrapped contributions at the window boundary of a
/// periodic neighbor-sum plane with the true neighboring cores' edges:
/// `nn += halo − wrongly_wrapped_own_edge`. Exact (not approximate) for
/// ±1 spins: every term and partial sum is a small integer, represented
/// without rounding in both `f32` and bf16, so the corrected sums are
/// bit-identical to computing the global-torus sums directly.
fn correct_plane_boundary<S: Scalar>(nn: &mut Plane<S>, plane: &Plane<S>, halos: &PlaneHalos<S>) {
    let (h, w) = (plane.height(), plane.width());
    assert_eq!(halos.north.len(), w, "north halo length");
    assert_eq!(halos.south.len(), w, "south halo length");
    assert_eq!(halos.west.len(), h, "west halo length");
    assert_eq!(halos.east.len(), h, "east halo length");
    for c in 0..w {
        let top = nn.get(0, c) + halos.north[c] - plane.get(h - 1, c);
        nn.set(0, c, top);
        let bot = nn.get(h - 1, c) + halos.south[c] - plane.get(0, c);
        nn.set(h - 1, c, bot);
    }
    for r in 0..h {
        let left = nn.get(r, 0) + halos.west[r] - plane.get(r, w - 1);
        nn.set(r, 0, left);
        let right = nn.get(r, w - 1) + halos.east[r] - plane.get(r, 0);
        nn.set(r, w - 1, right);
    }
}

impl<S: Scalar + RandomUniform> Sweeper for ConvIsing<S> {
    fn sweep(&mut self) {
        let track = obs::is_metrics();
        let alloc0 = if track { obs::alloc::allocated_bytes() } else { 0 };
        {
            let _g = obs::span!("conv_halfsweep");
            self.update_color(Color::Black);
        }
        {
            let _g = obs::span!("conv_halfsweep");
            self.update_color(Color::White);
        }
        self.sweep_index += 1;
        if track {
            let delta = obs::alloc::allocated_bytes() - alloc0;
            obs::metrics().gauge("alloc_bytes_per_sweep").set(delta as f64);
        }
    }

    fn sites(&self) -> usize {
        self.plane.height() * self.plane.width()
    }

    fn magnetization_sum(&self) -> f64 {
        self.plane.sum_f64()
    }

    fn energy_sum(&self) -> f64 {
        crate::observables::energy_sum(&self.plane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{cold_plane, random_plane};
    use crate::reference::ReferenceIsing;

    #[test]
    fn matches_reference_exactly_with_site_keyed_rng() {
        let beta = 0.44;
        let init = random_plane::<f32>(21, 12, 12);
        let mut refer = ReferenceIsing::new(init.clone(), beta, Randomness::site_keyed(55));
        let mut conv = ConvIsing::new(init, beta, Randomness::site_keyed(55));
        for step in 0..8 {
            refer.sweep();
            conv.sweep();
            assert_eq!(conv.plane(), refer.plane(), "diverged at sweep {step}");
        }
    }

    #[test]
    fn matches_compact_exactly_with_site_keyed_rng() {
        use crate::compact::CompactIsing;
        let beta = 1.0 / crate::T_CRITICAL;
        let init = random_plane::<f32>(8, 16, 16);
        let mut conv = ConvIsing::new(init.clone(), beta, Randomness::site_keyed(314));
        let mut comp = CompactIsing::from_plane(&init, 4, beta, Randomness::site_keyed(314));
        for step in 0..8 {
            conv.sweep();
            comp.sweep();
            assert_eq!(&comp.to_plane(), conv.plane(), "diverged at sweep {step}");
        }
    }

    #[test]
    fn band_backend_trajectory_bit_identical_to_dense() {
        let beta = 1.0 / crate::T_CRITICAL;
        let init = random_plane::<f32>(33, 14, 18);
        let mut dense = ConvIsing::new(init.clone(), beta, Randomness::bulk(7))
            .with_backend(KernelBackend::Dense);
        let mut band =
            ConvIsing::new(init, beta, Randomness::bulk(7)).with_backend(KernelBackend::Band);
        for step in 0..8 {
            dense.sweep();
            band.sweep();
            assert_eq!(dense.plane(), band.plane(), "diverged at sweep {step}");
        }
    }

    #[test]
    fn band_backend_trajectory_bit_identical_to_dense_bf16() {
        use tpu_ising_bf16::Bf16;
        let init = random_plane::<Bf16>(35, 12, 16);
        let mut dense = ConvIsing::new(init.clone(), 0.6, Randomness::site_keyed(99))
            .with_backend(KernelBackend::Dense);
        let mut band =
            ConvIsing::new(init, 0.6, Randomness::site_keyed(99)).with_backend(KernelBackend::Band);
        for step in 0..8 {
            dense.sweep();
            band.sweep();
            assert_eq!(dense.plane(), band.plane(), "diverged at sweep {step}");
        }
    }

    #[test]
    fn frozen_cold_lattice() {
        let mut c = ConvIsing::new(cold_plane::<f32>(8, 8), 100.0, Randomness::bulk(0));
        for _ in 0..5 {
            c.sweep();
        }
        assert_eq!(c.magnetization_sum(), 64.0);
    }

    #[test]
    fn beta_zero_alternates() {
        let mut c = ConvIsing::new(cold_plane::<f32>(6, 6), 0.0, Randomness::bulk(0));
        c.sweep();
        assert_eq!(c.magnetization_sum(), -36.0);
        c.sweep();
        assert_eq!(c.magnetization_sum(), 36.0);
    }

    #[test]
    fn self_wrap_halos_reproduce_periodic_update() {
        // On a 1×1 "torus" every halo is the window's own wrapped edge, so
        // the boundary correction is exactly zero and the halo update must
        // be bit-identical to the plain periodic one — for both backends.
        for backend in [KernelBackend::Dense, KernelBackend::Band] {
            let init = random_plane::<f32>(9, 10, 12);
            let mut plain = ConvIsing::new(init.clone(), 0.44, Randomness::site_keyed(17))
                .with_backend(backend);
            let mut meshy =
                ConvIsing::new(init, 0.44, Randomness::site_keyed(17)).with_backend(backend);
            for step in 0..4 {
                for color in [Color::Black, Color::White] {
                    let (h, w) = (meshy.plane().height(), meshy.plane().width());
                    let halos = PlaneHalos {
                        north: (0..w).map(|c| meshy.plane().get(h - 1, c)).collect(),
                        south: (0..w).map(|c| meshy.plane().get(0, c)).collect(),
                        west: (0..h).map(|r| meshy.plane().get(r, w - 1)).collect(),
                        east: (0..h).map(|r| meshy.plane().get(r, 0)).collect(),
                    };
                    plain.update_color(color);
                    meshy.update_color_with_halos(color, &halos);
                }
                plain.advance_sweep();
                meshy.advance_sweep();
                assert_eq!(plain.plane(), meshy.plane(), "diverged at sweep {step}");
            }
        }
    }

    #[test]
    fn halo_exchange_spec_carries_window_edges() {
        let init = random_plane::<f32>(3, 6, 8);
        let c = ConvIsing::new(init.clone(), 0.4, Randomness::site_keyed(1));
        let spec = c.halo_exchange_spec(Color::Black);
        let last_row: Vec<f32> = (0..8).map(|cc| init.get(5, cc)).collect();
        let first_col: Vec<f32> = (0..6).map(|r| init.get(r, 0)).collect();
        assert_eq!(spec[0].0, last_row);
        assert!(matches!(spec[0].1, Dir::South));
        assert_eq!(spec[3].0, first_col);
        assert!(matches!(spec[3].1, Dir::West));
    }

    #[test]
    fn offset_window_updates_correct_parity() {
        // With an offset of (2, 0) the local parity pattern is unchanged
        // (offsets are even), so a black update touches (r+c) even sites.
        let mut c = ConvIsing::new_at(cold_plane::<f32>(4, 4), 0.0, Randomness::bulk(0), 2, 0);
        c.update_color(Color::Black);
        for r in 0..4 {
            for cc in 0..4 {
                let expect = if (r + cc) % 2 == 0 { -1.0 } else { 1.0 };
                assert_eq!(c.plane().get(r, cc), expect);
            }
        }
    }
}
