//! High-performance checkerboard Monte Carlo simulation of the 2-D Ising
//! model — a Rust reproduction of *"High Performance Monte Carlo Simulation
//! of Ising Model on TPU Clusters"* (Yang et al., SC 2019).
//!
//! The Hamiltonian is `H(σ) = −J Σ_⟨ij⟩ σᵢσⱼ` with `J = 1`, no external
//! field, on a periodic (torus) square lattice. The paper's contribution is
//! the mapping of the classic checkerboard Metropolis update onto TPU
//! hardware; this crate implements every variant it describes:
//!
//! - [`mod@reference`]: textbook sequential single-spin Metropolis — the
//!   correctness oracle.
//! - [`naive`]: **Algorithm 1** — full-lattice nearest-neighbor sums via
//!   batched band-kernel matmuls plus a parity mask.
//! - [`compact`]: **Algorithm 2** — the lattice deinterleaved into four
//!   compact sub-lattices (σ̂00, σ̂11 black; σ̂01, σ̂10 white) updated with
//!   bidiagonal kernels `K̂`/`K̂ᵀ`; ~3× faster on TPU and the paper's main
//!   benchmark configuration. Supports cross-core halos for SPMD runs.
//! - [`conv`]: the appendix variant — neighbor sums as a plus-kernel
//!   convolution.
//! - [`distributed`]: the SPMD Pod run — one thread per modeled TensorCore
//!   on a 2-D torus, halos exchanged with `collective_permute` semantics.
//! - [`multispin`]: the bit-packed fast path — 64 independent replicas per
//!   `u64` word, bitwise full-adder neighbor counts, bit-sliced Bernoulli
//!   acceptance masks, packed halo exchange on the same mesh collectives.
//! - [`hlo_frontend`]: the update step built as an HLO-lite graph, the way
//!   the paper's TensorFlow program reaches the TPU.
//! - [`observables`] / [`sampler`]: magnetization, energy, Binder cumulant,
//!   Onsager exact references, and the chain driver with binning errors.
//!
//! Everything numeric is generic over [`Scalar`] (`f32` or [`Bf16`]) so the
//! paper's precision study (Fig. 4) runs both dtypes through identical
//! code. Randomness is Philox-based and can be *site-keyed*
//! ([`prob::Randomness::SiteKeyed`]), which makes all four implementations
//! — and distributed vs single-core — produce **bit-identical** spin
//! trajectories; the equivalence tests rely on this.

pub mod anneal;
pub mod autocorrelation;
pub mod chaos;
pub mod checkpoint;
pub mod compact;
pub mod conv;
pub mod coupling;
pub mod distributed;
pub mod engine;
pub mod fss;
pub mod hlo_frontend;
pub mod ising3d;
pub mod lattice;
pub mod multispin;
pub mod naive;
pub mod observables;
pub mod prob;
pub mod reference;
pub mod sampler;
pub mod sweep_pool;
pub mod tempering;
pub mod vault;
pub mod visualize;
pub mod wolff;

pub use chaos::{
    run_chaos_engine, run_chaos_engine_rt, run_chaos_multispin, run_chaos_multispin_rt,
    run_chaos_pod, ChaosPlan, ChaosReport, IntegrityKnobs, SessionFaults, VaultCorruption,
};
pub use checkpoint::Checkpoint;
pub use compact::{ColorHalos, CompactIsing};
pub use conv::ConvIsing;
pub use coupling::{Couplings, HeterogeneousIsing};
pub use distributed::{
    run_pod, run_pod_resilient, run_pod_vaulted, run_pod_with_opts, CheckpointStore, PodCheckpoint,
    PodConfig, PodError, PodResult, PodRng, PodRunOpts, ResilienceOpts, ResilientPodRun,
    DEFAULT_SCRUB_CADENCE, POD_VAULT_KIND,
};
pub use engine::{
    build_engine, restore_engine, with_scalar_engine, Algo, BackendKind, Dtype, Engine, EngineCaps,
    EngineCheckpoint, EngineDescriptor, EngineSpec, MeshCore, Observation, ScalarEngineVisitor,
    ScalarMeshEngine,
};
pub use ising3d::{Ising3D, T_CRITICAL_3D};
pub use lattice::{cold_plane, random_plane, Color};
pub use multispin::{
    run_multispin_pod, run_multispin_pod_resilient, run_multispin_pod_vaulted,
    run_multispin_pod_with_opts, MultiSpinCheckpoint, MultiSpinIsing, MultiSpinPodCheckpoint,
    MultiSpinPodConfig, MultiSpinPodResult, MultiSpinPodRunOpts, MultiSpinStore, PackedHalos,
    ResilientMultiSpinRun, MULTISPIN_VAULT_KIND, REPLICAS,
};
pub use naive::NaiveIsing;
pub use observables::onsager;
pub use prob::Randomness;
pub use reference::ReferenceIsing;
pub use sampler::{run_chain, run_chain_labeled, ChainStats, Sweeper};
pub use vault::{FileLoad, LoadedCheckpoint, Vault, VaultError};
pub use wolff::WolffIsing;

pub use tpu_ising_bf16::{Bf16, Scalar};
pub use tpu_ising_rng::{PhiloxStream, SiteRng};
pub use tpu_ising_tensor::{BandKernel, KernelBackend, Plane, Tensor4};

/// The exact critical temperature of the 2-D square-lattice Ising model,
/// `Tc = 2 / ln(1 + √2)` (Onsager 1944), in units of `J/k_B`.
pub const T_CRITICAL: f64 = 2.269_185_314_213_022;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_temperature_closed_form() {
        let tc = 2.0 / (1.0 + 2.0_f64.sqrt()).ln();
        assert!((T_CRITICAL - tc).abs() < 1e-14);
    }
}
