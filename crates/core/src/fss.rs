//! Finite-size scaling analysis (Binder 1981 — the paper's reference \[4\]).
//!
//! Computer simulations see finite lattices; finite-size scaling theory is
//! what turns their size-dependent observables into statements about the
//! infinite system. The paper leans on two of its consequences — the
//! Binder-cumulant crossing locates `Tc`, size-independent quantities
//! validate the simulation — and this module packages the machinery:
//! crossing solvers, the exact 2-D exponents, and a data-collapse quality
//! measure for `m·L^{β/ν}` vs `t·L^{1/ν}`.

/// Exact 2-D Ising critical exponents (Onsager universality class).
pub mod exponents {
    /// Order-parameter exponent β = 1/8.
    pub const BETA: f64 = 0.125;
    /// Correlation-length exponent ν = 1.
    pub const NU: f64 = 1.0;
    /// Susceptibility exponent γ = 7/4.
    pub const GAMMA: f64 = 1.75;
}

/// One measured curve: observable vs temperature at a fixed lattice size.
#[derive(Clone, Debug)]
pub struct SizeCurve {
    /// Lattice linear size `L`.
    pub l: usize,
    /// Temperatures (ascending).
    pub temps: Vec<f64>,
    /// Observable values at each temperature.
    pub values: Vec<f64>,
}

impl SizeCurve {
    /// Linear interpolation of the curve at temperature `t` (clamped to
    /// the measured range).
    pub fn at(&self, t: f64) -> f64 {
        let n = self.temps.len();
        assert!(n >= 2, "need at least two points");
        if t <= self.temps[0] {
            return self.values[0];
        }
        if t >= self.temps[n - 1] {
            return self.values[n - 1];
        }
        for i in 1..n {
            if t <= self.temps[i] {
                let f = (t - self.temps[i - 1]) / (self.temps[i] - self.temps[i - 1]);
                return self.values[i - 1] + f * (self.values[i] - self.values[i - 1]);
            }
        }
        unreachable!()
    }
}

/// Find the crossing temperature of two curves (e.g. Binder cumulants of
/// two sizes) by bisection on their interpolated difference. Returns
/// `None` if the difference does not change sign in the overlapping range.
pub fn crossing(a: &SizeCurve, b: &SizeCurve) -> Option<f64> {
    let lo = a.temps[0].max(b.temps[0]);
    let hi = a.temps[a.temps.len() - 1].min(b.temps[b.temps.len() - 1]);
    if lo >= hi {
        return None;
    }
    let d = |t: f64| a.at(t) - b.at(t);
    // scan for a sign change, then bisect
    let steps = 256;
    let mut prev_t = lo;
    let mut prev_d = d(lo);
    for i in 1..=steps {
        let t = lo + (hi - lo) * i as f64 / steps as f64;
        let dt = d(t);
        if prev_d == 0.0 {
            return Some(prev_t);
        }
        if prev_d * dt < 0.0 {
            // bisection
            let (mut t0, mut t1) = (prev_t, t);
            for _ in 0..60 {
                let tm = 0.5 * (t0 + t1);
                if d(t0) * d(tm) <= 0.0 {
                    t1 = tm;
                } else {
                    t0 = tm;
                }
            }
            return Some(0.5 * (t0 + t1));
        }
        prev_t = t;
        prev_d = dt;
    }
    None
}

/// Estimate `Tc` from all pairwise Binder crossings of ≥2 size curves
/// (mean of the pairwise estimates).
pub fn binder_tc_estimate(curves: &[SizeCurve]) -> Option<f64> {
    let mut xs = Vec::new();
    for i in 0..curves.len() {
        for j in i + 1..curves.len() {
            if let Some(t) = crossing(&curves[i], &curves[j]) {
                xs.push(t);
            }
        }
    }
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Data-collapse quality: rescale each magnetization curve as
/// `y = m·L^{β/ν}` vs `x = (T − Tc)/Tc · L^{1/ν}` and measure the spread
/// between curves over their common x-range (smaller = better collapse).
///
/// With the exact `Tc` and exponents, curves from different `L` collapse
/// onto one scaling function; with wrong exponents they fan out — so this
/// doubles as a crude exponent estimator via minimization.
pub fn collapse_spread(curves: &[SizeCurve], tc: f64, beta_over_nu: f64, one_over_nu: f64) -> f64 {
    assert!(curves.len() >= 2);
    // rescale
    let rescaled: Vec<(Vec<f64>, Vec<f64>)> = curves
        .iter()
        .map(|c| {
            let l = c.l as f64;
            let xs: Vec<f64> =
                c.temps.iter().map(|&t| (t - tc) / tc * l.powf(one_over_nu)).collect();
            let ys: Vec<f64> = c.values.iter().map(|&m| m * l.powf(beta_over_nu)).collect();
            (xs, ys)
        })
        .collect();
    // common x-window
    let lo = rescaled.iter().map(|(xs, _)| xs[0]).fold(f64::MIN, f64::max);
    let hi = rescaled.iter().map(|(xs, _)| *xs.last().unwrap()).fold(f64::MAX, f64::min);
    if lo >= hi {
        return f64::INFINITY;
    }
    let interp = |xs: &[f64], ys: &[f64], x: f64| -> f64 {
        for i in 1..xs.len() {
            if x <= xs[i] {
                let f = (x - xs[i - 1]) / (xs[i] - xs[i - 1]);
                return ys[i - 1] + f * (ys[i] - ys[i - 1]);
            }
        }
        *ys.last().unwrap()
    };
    // mean pairwise squared deviation over the window
    let samples = 64;
    let mut acc = 0.0;
    let mut count = 0usize;
    for s in 0..samples {
        let x = lo + (hi - lo) * s as f64 / (samples - 1) as f64;
        let ys: Vec<f64> = rescaled.iter().map(|(xs, ys)| interp(xs, ys, x)).collect();
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        for y in &ys {
            acc += (y - mean) * (y - mean);
            count += 1;
        }
    }
    (acc / count as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::T_CRITICAL;

    fn synthetic_binder(l: usize) -> SizeCurve {
        // model: U4 = 0.61 − tanh((T − Tc)/Tc · L) · 0.3 — all sizes cross
        // exactly at Tc with slope growing in L.
        let temps: Vec<f64> = (0..21).map(|i| T_CRITICAL * (0.9 + 0.01 * i as f64)).collect();
        let values = temps
            .iter()
            .map(|&t| 0.61 - ((t - T_CRITICAL) / T_CRITICAL * l as f64).tanh() * 0.3)
            .collect();
        SizeCurve { l, temps, values }
    }

    #[test]
    fn interpolation_is_exact_at_nodes() {
        let c = synthetic_binder(16);
        for (t, v) in c.temps.iter().zip(c.values.iter()) {
            assert!((c.at(*t) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn crossing_of_synthetic_curves_is_tc() {
        let a = synthetic_binder(8);
        let b = synthetic_binder(32);
        let tc = crossing(&a, &b).expect("curves must cross");
        assert!((tc - T_CRITICAL).abs() < 1e-6, "tc = {tc}");
    }

    #[test]
    fn tc_estimate_averages_pairwise_crossings() {
        let curves = [synthetic_binder(8), synthetic_binder(16), synthetic_binder(32)];
        let tc = binder_tc_estimate(&curves).unwrap();
        assert!((tc - T_CRITICAL).abs() < 1e-6);
    }

    #[test]
    fn no_crossing_returns_none() {
        let a = SizeCurve { l: 8, temps: vec![1.0, 2.0], values: vec![0.1, 0.2] };
        let b = SizeCurve { l: 16, temps: vec![1.0, 2.0], values: vec![0.4, 0.5] };
        assert!(crossing(&a, &b).is_none());
    }

    #[test]
    fn collapse_prefers_exact_exponents() {
        // synthetic magnetization obeying the scaling form exactly:
        // m = L^{−β/ν} · f((T−Tc)/Tc · L^{1/ν}) with f = exp(−x)
        let mk = |l: usize| {
            let temps: Vec<f64> = (0..15).map(|i| T_CRITICAL * (0.96 + 0.005 * i as f64)).collect();
            let values = temps
                .iter()
                .map(|&t| {
                    let x = (t - T_CRITICAL) / T_CRITICAL * l as f64;
                    (l as f64).powf(-exponents::BETA) * (-x).exp()
                })
                .collect();
            SizeCurve { l, temps, values }
        };
        let curves = [mk(8), mk(16), mk(32)];
        let good = collapse_spread(&curves, T_CRITICAL, exponents::BETA, 1.0);
        let bad = collapse_spread(&curves, T_CRITICAL, 0.5, 1.0);
        // `good` is bounded by the linear-interpolation error of the coarse
        // synthetic grids, not exactly zero.
        assert!(good < 5e-3, "exact exponents must collapse: {good}");
        assert!(bad > 20.0 * good, "wrong exponents must not collapse: good {good}, bad {bad}");
    }
}
